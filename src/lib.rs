//! Umbrella crate for the BcWAN reproduction workspace.
//!
//! Re-exports the member crates so the examples and integration tests can
//! use a single dependency root. See the individual crates for the real
//! APIs: [`bcwan`] (protocol), [`bcwan_chain`], [`bcwan_script`],
//! [`bcwan_crypto`], [`bcwan_lora`], [`bcwan_p2p`], [`bcwan_sim`].
//!
//! The README below doubles as the crate documentation; its Rust
//! snippet runs as a doctest so the quickstart cannot rot.
#![doc = include_str!("../README.md")]

pub use bcwan;
pub use bcwan_chain;
pub use bcwan_crypto;
pub use bcwan_lora;
pub use bcwan_p2p;
pub use bcwan_script;
pub use bcwan_sim;
