//! Integration test F3: the complete Fig. 3 message sequence, asserting
//! every step across the crate boundaries (lora frames, crypto, script,
//! chain validation).

use bcwan::escrow::{build_claim, build_escrow, extract_key_from_claim, find_escrow_for_key};
use bcwan::exchange::{open_reading, seal_reading, verify_uplink};
use bcwan::provisioning::{DeviceId, DeviceRegistry};
use bcwan_chain::{validate_transaction, Chain, ChainParams, OutPoint, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
use bcwan_lora::frame::{LoraFrame, ADDRESS_LEN};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Testbed {
    params: ChainParams,
    chain: Chain,
    recipient: Wallet,
    gateway: Wallet,
}

fn testbed(seed: u64) -> Testbed {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 0;
    let recipient = Wallet::generate(&mut rng);
    let gateway = Wallet::generate(&mut rng);
    let genesis = Chain::make_genesis(&params, &[(recipient.address(), 5_000)]);
    let chain = Chain::new(params.clone(), genesis);
    Testbed {
        params,
        chain,
        recipient,
        gateway,
    }
}

#[test]
fn full_figure3_sequence() {
    let t = testbed(1);
    let mut rng = StdRng::seed_from_u64(100);
    // Re-provision deterministically to get node credentials.
    let mut registry = DeviceRegistry::new();
    let creds = registry.provision(&mut rng, DeviceId(7), t.recipient.address());

    // Step 0 (unillustrated): the node's uplink request frame.
    let request = LoraFrame::UplinkRequest {
        device_id: 7,
        recipient: *t.recipient.address().as_bytes(),
    };
    let decoded = LoraFrame::decode(&request.encode()).expect("request round-trips");
    assert_eq!(decoded, request);

    // Steps 1-2: ephemeral keypair, key downlink.
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let downlink = LoraFrame::DownlinkEphemeralKey {
        device_id: 7,
        public_key: e_pk.to_bytes(),
    };
    let LoraFrame::DownlinkEphemeralKey { public_key, .. } =
        LoraFrame::decode(&downlink.encode()).expect("downlink round-trips")
    else {
        panic!("wrong frame type");
    };
    let received_pk = bcwan_crypto::RsaPublicKey::from_bytes(&public_key).expect("key parses");
    assert_eq!(received_pk, e_pk);

    // Steps 3-5: seal and uplink. Em and Sig are one RSA block each — the
    // paper's "predefined minimum payload of 128 bytes".
    let reading = b"t=19.5C";
    let sealed = seal_reading(&mut rng, &creds, &received_pk, reading).expect("seals");
    assert_eq!(sealed.em.len() + sealed.sig.len(), 128);
    let data = LoraFrame::DataUplink {
        device_id: 7,
        recipient: *t.recipient.address().as_bytes(),
        em: sealed.em.clone(),
        sig: sealed.sig.clone(),
    };
    let decoded = LoraFrame::decode(&data.encode()).expect("data round-trips");
    let LoraFrame::DataUplink {
        recipient, em, sig, ..
    } = decoded
    else {
        panic!("wrong frame type");
    };
    assert_eq!(recipient.len(), ADDRESS_LEN);

    // Step 8: authenticity at the recipient.
    let record = registry.get(&DeviceId(7)).expect("provisioned");
    let received = bcwan::exchange::SealedUplink { em, sig };
    assert!(verify_uplink(record, &received_pk, &received));

    // Step 9: escrow on the real chain.
    let coin = (
        OutPoint {
            txid: t.chain.block_at(0).unwrap().transactions[0].txid(),
            vout: 0,
        },
        t.recipient.locking_script(),
        5_000u64,
    );
    let escrow = build_escrow(
        &t.recipient,
        &[coin],
        &received_pk,
        &t.gateway.address(),
        50,
        5,
        t.chain.height(),
    );
    validate_transaction(&escrow.tx, t.chain.utxo(), 1, &t.params).expect("escrow valid");

    // Step 10: claim reveals the key; the recipient decrypts.
    let (vout, value) = find_escrow_for_key(&escrow.tx, &received_pk).expect("found");
    assert_eq!((vout, value), (0, 50));
    let claim = build_claim(
        &t.gateway,
        escrow.outpoint(),
        &escrow.script,
        value,
        &e_sk,
        2,
    );
    let revealed = extract_key_from_claim(&claim, &escrow.outpoint()).expect("revealed");
    let opened = open_reading(record, &revealed, &received.em).expect("decrypts");
    assert_eq!(opened, reading);
}

#[test]
fn gateway_never_learns_plaintext() {
    let t = testbed(2);
    let mut rng = StdRng::seed_from_u64(200);
    let mut registry = DeviceRegistry::new();
    let creds = registry.provision(&mut rng, DeviceId(7), t.recipient.address());
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let sealed = seal_reading(&mut rng, &creds, &e_pk, b"secret-reading").expect("seals");

    // The gateway has eSk — it can strip the outer RSA layer…
    let inner = e_sk.decrypt(&sealed.em).expect("outer layer off");
    let frame = bcwan_lora::frame::EncryptedReading::decode(&inner).expect("fig4 parses");
    // …but the inner AES layer needs K, which it does not have.
    let wrong_key = [0u8; 32];
    match bcwan_crypto::cbc_decrypt(&wrong_key, &frame.iv, &frame.ciphertext) {
        Err(_) => {}
        Ok(plain) => assert_ne!(plain, b"secret-reading".to_vec()),
    }
    let _ = t;
}

#[test]
fn recipient_rejects_forged_uplinks() {
    let t = testbed(3);
    let mut rng = StdRng::seed_from_u64(300);
    let mut registry = DeviceRegistry::new();
    let _creds = registry.provision(&mut rng, DeviceId(7), t.recipient.address());
    // An attacker without the provisioned Sk fabricates an uplink.
    let mut forged_registry = DeviceRegistry::new();
    let forged_creds = forged_registry.provision(&mut rng, DeviceId(7), t.recipient.address());
    let (e_pk, _) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let forged = seal_reading(&mut rng, &forged_creds, &e_pk, b"injected").expect("seals");
    let record = registry.get(&DeviceId(7)).expect("provisioned");
    assert!(
        !verify_uplink(record, &e_pk, &forged),
        "signature from a different Sk must not verify"
    );
}
