//! One scenario, two transports: the acceptance test for the unified
//! fleet layer.
//!
//! `fig3_partition_recovery` — the full Fig. 3 fair exchange plus a
//! §5.1 partition-recovery sync — runs here twice, byte-for-byte the
//! same scenario function, selected only by the transport value: once
//! over the in-process [`BusFleet`] and once over real loopback TCP
//! sockets ([`TcpFleet`]). A third, `#[ignore]`d test scales the live
//! TCP fleet to 64 hosts for the CI fleet-soak job.

use bcwan::fleet::{
    fig3_partition_recovery, BusFleet, Fleet, FleetOutcome, TcpFleet, FLEET_READING,
};
use bcwan_p2p::transport::TcpConfig;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn assert_outcome(outcome: &FleetOutcome, hosts: usize) {
    assert_eq!(
        outcome.decrypted.as_deref(),
        Some(FLEET_READING),
        "recipient decrypted the reading from the revealed eSk"
    );
    assert!(outcome.gateway_claimed, "gateway claimed the escrow");
    assert_eq!(outcome.heights.len(), hosts);
    assert!(
        outcome.heights.iter().all(|&h| h == 2),
        "every node (straggler included) converged at height 2: {:?}",
        outcome.heights
    );
    assert!(
        outcome.partitioned_caught_up,
        "the straggler's synced chain carries the claim transaction"
    );
    assert!(
        outcome.sync_batches_served >= 1,
        "catch-up went through the GetBlocksFrom serving path"
    );
}

#[test]
fn fig3_partition_recovery_on_simulated_bus() {
    let mut fleet = Fleet::new(BusFleet::new(5), 5, 42);
    let outcome = fig3_partition_recovery(&mut fleet, TIMEOUT);
    assert_outcome(&outcome, 5);
}

#[test]
fn fig3_partition_recovery_on_live_tcp() {
    let transport = TcpFleet::new(5, 2, TcpConfig::fast_test()).expect("bind fleet");
    let mut fleet = Fleet::new(transport, 5, 42);
    let outcome = fig3_partition_recovery(&mut fleet, TIMEOUT);
    assert_outcome(&outcome, 5);
}

/// CI fleet-soak smoke: the same scenario with 64 real sockets on one
/// shared runtime. Run with `cargo test --test unified_scenario --
/// --ignored`.
#[test]
#[ignore = "64 real sockets; run in the fleet-soak CI job"]
fn fig3_partition_recovery_on_64_live_tcp_hosts() {
    const HOSTS: usize = 64;
    let transport = TcpFleet::new(HOSTS, 4, TcpConfig::fast_test()).expect("bind fleet");
    let mut fleet = Fleet::new(transport, HOSTS, 7);
    let outcome = fig3_partition_recovery(&mut fleet, Duration::from_secs(120));
    assert_outcome(&outcome, HOSTS);
}
