//! Integration: chain reorganizations interacting with the protocol
//! state — escrows unconfirming, the IP directory following the chain.

use bcwan::directory::{Directory, IpAnnouncement, NetAddr};
use bcwan::escrow::build_escrow;
use bcwan_chain::{Block, BlockAction, Chain, ChainParams, OutPoint, Transaction, TxOut, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mine_on(
    chain: &Chain,
    parent: bcwan_chain::BlockHash,
    height: u64,
    tag: &[u8],
    txs: Vec<Transaction>,
) -> Block {
    let params = chain.params().clone();
    let mut all = vec![Transaction::coinbase(
        height,
        tag,
        vec![TxOut {
            value: params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    )];
    all.extend(txs);
    Block::mine(parent, height * 1_000, params.difficulty_bits, all)
}

#[test]
fn reorg_unconfirms_escrow_and_restores_funding_coin() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 0;
    let recipient = Wallet::generate(&mut rng);
    let gateway = Wallet::generate(&mut rng);
    let genesis = Chain::make_genesis(&params, &[(recipient.address(), 1_000)]);
    let mut chain = Chain::new(params, genesis);
    let genesis_hash = chain.tip();
    let coin = OutPoint {
        txid: chain.block_at(0).unwrap().transactions[0].txid(),
        vout: 0,
    };

    let (e_pk, _) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let escrow = build_escrow(
        &recipient,
        &[(coin, recipient.locking_script(), 1_000)],
        &e_pk,
        &gateway.address(),
        100,
        10,
        0,
    );
    let escrow_block = mine_on(&chain, genesis_hash, 1, b"escrow", vec![escrow.tx.clone()]);
    chain.add_block(escrow_block).unwrap();
    assert!(chain.utxo().contains(&escrow.outpoint()));
    assert!(!chain.utxo().contains(&coin));

    // A longer competing branch without the escrow.
    let a1 = mine_on(&chain, genesis_hash, 1, b"alt1", vec![]);
    chain.add_block(a1.clone()).unwrap();
    let a2 = mine_on(&chain, a1.hash(), 2, b"alt2", vec![]);
    let action = chain.add_block(a2).unwrap();
    assert!(matches!(
        action,
        BlockAction::Reorganized {
            disconnected: 1,
            connected: 2
        }
    ));

    // The escrow no longer exists; the recipient's coin is spendable again.
    assert!(!chain.utxo().contains(&escrow.outpoint()));
    assert!(chain.utxo().contains(&coin));
    assert!(chain.find_transaction(&escrow.tx.txid()).is_none());
}

#[test]
fn directory_follows_the_winning_branch() {
    let mut rng = StdRng::seed_from_u64(2);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 0;
    let recipient = Wallet::generate(&mut rng);
    let genesis = Chain::make_genesis(&params, &[(recipient.address(), 1_000)]);
    let mut chain = Chain::new(params, genesis);
    let coin = OutPoint {
        txid: chain.block_at(0).unwrap().transactions[0].txid(),
        vout: 0,
    };

    let addr_a = NetAddr {
        ip: [10, 0, 0, 1],
        port: 7000,
    };
    let announce = |endpoint: NetAddr, seq: u32| IpAnnouncement {
        address: recipient.address(),
        endpoint,
        seq,
    };
    let tx_a = recipient.build_payment(
        vec![(coin, recipient.locking_script())],
        vec![
            announce(addr_a, 1).to_output(),
            TxOut {
                value: 990,
                script_pubkey: recipient.locking_script(),
            },
        ],
        0,
    );
    let b1 = mine_on(&chain, chain.tip(), 1, b"ann", vec![tx_a]);
    chain.add_block(b1).unwrap();

    // A rescanning gateway sees the announcement.
    let dir = Directory::from_chain(&chain);
    assert_eq!(dir.lookup(&recipient.address()), Some(addr_a));
    assert_eq!(dir.seq_of(&recipient.address()), Some(1));

    // Scanning only main-chain blocks means a reorg that drops the block
    // also drops the entry on a fresh scan.
    let genesis_hash = chain.block_at(0).unwrap().hash();
    let a1 = mine_on(&chain, genesis_hash, 1, b"alt1", vec![]);
    chain.add_block(a1.clone()).unwrap();
    let a2 = mine_on(&chain, a1.hash(), 2, b"alt2", vec![]);
    chain.add_block(a2).unwrap();
    let dir_after = Directory::from_chain(&chain);
    assert_eq!(dir_after.lookup(&recipient.address()), None);
}

#[test]
fn deep_reorg_replays_transactions_correctly() {
    // Build two branches that both spend the same coin into different
    // destinations; whichever branch wins decides the UTXO contents.
    let mut rng = StdRng::seed_from_u64(3);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 0;
    let owner = Wallet::generate(&mut rng);
    let heir_a = Wallet::generate(&mut rng);
    let heir_b = Wallet::generate(&mut rng);
    let genesis = Chain::make_genesis(&params, &[(owner.address(), 500)]);
    let mut chain = Chain::new(params, genesis);
    let genesis_hash = chain.tip();
    let coin = OutPoint {
        txid: chain.block_at(0).unwrap().transactions[0].txid(),
        vout: 0,
    };

    let to_a = owner.build_payment(
        vec![(coin, owner.locking_script())],
        vec![TxOut {
            value: 500,
            script_pubkey: heir_a.locking_script(),
        }],
        0,
    );
    let to_b = owner.build_payment(
        vec![(coin, owner.locking_script())],
        vec![TxOut {
            value: 500,
            script_pubkey: heir_b.locking_script(),
        }],
        0,
    );

    // Main branch: pay A at height 1, then two empty blocks.
    let m1 = mine_on(&chain, genesis_hash, 1, b"m1", vec![to_a]);
    chain.add_block(m1.clone()).unwrap();
    let m2 = mine_on(&chain, m1.hash(), 2, b"m2", vec![]);
    chain.add_block(m2.clone()).unwrap();

    // Competing branch: pay B at height 1 and outgrow the main chain.
    let b1 = mine_on(&chain, genesis_hash, 1, b"b1", vec![to_b]);
    chain.add_block(b1.clone()).unwrap();
    let b2 = mine_on(&chain, b1.hash(), 2, b"b2", vec![]);
    chain.add_block(b2.clone()).unwrap();
    let b3 = mine_on(&chain, b2.hash(), 3, b"b3", vec![]);
    let action = chain.add_block(b3).unwrap();
    assert!(matches!(
        action,
        BlockAction::Reorganized {
            disconnected: 2,
            connected: 3
        }
    ));

    let has = |w: &Wallet| {
        let script = w.locking_script();
        chain
            .utxo()
            .find(move |e| e.output.script_pubkey == script)
            .count()
    };
    assert_eq!(has(&heir_a), 0, "branch A's payment must be unwound");
    assert_eq!(has(&heir_b), 1, "branch B's payment must be live");
}
