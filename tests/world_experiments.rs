//! Integration tests over the full simulated network: miniature versions
//! of the Fig. 5 / Fig. 6 experiments, plus failure injection.

use bcwan::costs::CostModel;
use bcwan::world::{WorkloadConfig, World};
use bcwan_chain::ChainParams;
use bcwan_p2p::FaultModel;
use bcwan_sim::{LatencyModel, SimDuration};

#[test]
fn miniature_fig5_shape() {
    // Scaled-down Fig. 5: real costs, planetlab latency, no stalls.
    let mut cfg = WorkloadConfig::paper_fig5();
    cfg.actor_hosts = 3;
    cfg.sensors_per_host = 4;
    cfg.target_exchanges = 12;
    cfg.seed = 5;
    let result = World::new(cfg).run();
    assert_eq!(result.failed, 0);
    assert!(result.completed >= 12);
    let s = result.latencies.summary().unwrap();
    // The paper's Fig. 5 scale: single-digit seconds, mean near 1.6.
    assert!((0.8..3.5).contains(&s.mean), "mean {s}");
    assert!(s.max < 10.0, "no stall-scale outliers: {s}");
    assert_eq!(result.stalls, 0);
}

#[test]
fn miniature_fig6_orders_of_magnitude_above_fig5() {
    let mut fig5 = WorkloadConfig::paper_fig5();
    fig5.actor_hosts = 3;
    fig5.sensors_per_host = 4;
    fig5.target_exchanges = 10;
    fig5.seed = 6;
    let mut fig6 = fig5.clone();
    fig6.chain_params = ChainParams::with_verification_stall();
    // At this miniature load the queueing amplification of the full
    // 2000-exchange runs can't build up: with 15 s blocks most of the ten
    // exchanges never overlap a stall. Shorten the block interval so the
    // stall *density* matches what a long run's steady state looks like.
    fig6.chain_params.target_block_interval = SimDuration::from_secs(5);

    let r5 = World::new(fig5).run();
    let r6 = World::new(fig6).run();
    let m5 = r5.latencies.summary().unwrap().mean;
    let m6 = r6.latencies.summary().unwrap().mean;
    // Stalls must still clearly dominate the no-verification baseline.
    assert!(
        m6 > m5 * 2.0 && m6 > 3.0,
        "verification stalls must dominate: fig5 {m5:.2}s vs fig6 {m6:.2}s"
    );
    assert!(r6.stalls > 0);
}

#[test]
fn message_duplication_is_harmless() {
    let mut cfg = WorkloadConfig::tiny(8, 21);
    cfg.faults = FaultModel {
        drop_probability: 0.0,
        duplicate_probability: 0.5,
    };
    let result = World::new(cfg).run();
    // Dedup at every layer: exactly the target completes, none twice.
    assert_eq!(result.failed, 0);
    assert!(result.completed >= 8);
    assert_eq!(result.latencies.len(), result.completed);
}

#[test]
fn chain_gossip_survives_moderate_loss() {
    // Drops hit block/tx gossip only (the Deliver leg is TCP-reliable);
    // the mesh's redundant flood paths carry the gossip through.
    let mut cfg = WorkloadConfig::tiny(10, 22);
    cfg.actor_hosts = 4; // more redundancy than the 2-host tiny preset
    cfg.faults = FaultModel {
        drop_probability: 0.10,
        duplicate_probability: 0.0,
    };
    cfg.max_sim_time = SimDuration::from_secs(3600);
    let result = World::new(cfg).run();
    assert!(
        result.completed >= 8,
        "flood redundancy should complete nearly all exchanges: {} done",
        result.completed
    );
}

#[test]
fn confirmation_depth_defeats_theft_but_costs_blocks() {
    let mut cfg = WorkloadConfig::tiny(4, 23);
    cfg.chain_params.target_block_interval = SimDuration::from_secs(4);
    cfg.confirmation_depth = 1;
    let result = World::new(cfg).run();
    assert!(result.completed >= 4);
    let mean = result.latencies.summary().unwrap().mean;
    // Every exchange now waits for at least one block.
    assert!(mean > 2.0, "confirmation wait missing: mean {mean:.2}s");
}

#[test]
fn rsa_1024_works_end_to_end_with_bigger_frames() {
    use bcwan_crypto::rsa::RsaKeySize;
    let mut cfg = WorkloadConfig::tiny(3, 24);
    cfg.rsa_size = RsaKeySize::Rsa1024;
    // 1024-bit frames exceed SF7's regional cap in the radio model, so the
    // world charges airtime for a larger frame; the exchange still works
    // because airtime is computed, not enforced, on the simulated uplink
    // path (the ablation bench reports the regulatory violation).
    let result = World::new(cfg).run();
    assert_eq!(result.failed, 0);
    assert!(result.completed >= 3);
}

#[test]
fn zero_cost_latency_is_pure_network_and_radio() {
    let mut cfg = WorkloadConfig::tiny(5, 25);
    cfg.costs = CostModel::zero();
    cfg.latency = LatencyModel::instant();
    let result = World::new(cfg).run();
    let s = result.latencies.summary().unwrap();
    // Only airtimes remain: ePk downlink (~133 ms) + data uplink (~260 ms).
    assert!((0.3..0.6).contains(&s.mean), "radio-only mean {s}");
}
