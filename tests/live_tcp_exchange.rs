//! The Fig. 3 fair exchange over real loopback TCP sockets.
//!
//! Two OS-thread hosts — a foreign gateway and the recipient — each bind
//! a `TcpHost` on 127.0.0.1, publish their endpoints in the on-chain
//! `OP_RETURN` directory, and run the complete exchange through
//! directory-driven dialing: uplink delivery (step 7), escrow (step 9),
//! claim revealing `eSk` (step 10), and decryption. A second run arms the
//! sender's fault injector so the connection dies mid-`Deliver` twice;
//! the exchange must still complete via the transport's retry/backoff.

use bcwan::directory::{Directory, IpAnnouncement, NetAddr};
use bcwan::escrow::{build_claim, build_escrow, extract_key_from_claim, find_escrow_for_key};
use bcwan::exchange::{open_reading, seal_reading, verify_uplink, SealedUplink};
use bcwan::net::{OverlayDialer, WanCodec};
use bcwan::provisioning::{DeviceId, DeviceRegistry};
use bcwan::wire::WanMessage;
use bcwan_chain::{Block, Chain, ChainParams, OutPoint, Transaction, TxOut, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize, RsaPublicKey};
use bcwan_p2p::transport::{TcpConfig, TcpHost, TransportStats};
use bcwan_p2p::{ChainMessage, NodeId};
use bcwan_script::Script;
use bcwan_sim::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::{Duration, Instant};

const READING: &[u8] = b"pm2.5=12ug/m3";
const RECV_TIMEOUT: Duration = Duration::from_secs(30);

struct Outcome {
    decrypted: Vec<u8>,
    claim_pays_gateway: bool,
    gateway: TcpHost<WanMessage, WanCodec>,
    recipient: TcpHost<WanMessage, WanCodec>,
}

/// Runs the full exchange over loopback TCP, with `faults` injected
/// connection kills on the gateway's side before the `Deliver` lands.
fn run_exchange(seed: u64, faults: u64) -> Outcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = ChainParams::fast_test();
    params.coinbase_maturity = 0;

    let recipient_wallet = Wallet::generate(&mut rng);
    let gateway_wallet = Wallet::generate(&mut rng);
    let recipient_address = recipient_wallet.address();
    let gateway_address = gateway_wallet.address();

    // Bind both hosts first so the real OS-assigned ports can be
    // published on chain.
    let loopback = "127.0.0.1:0".parse().unwrap();
    let (gateway_host, gateway_inbox) =
        TcpHost::bind(loopback, NodeId(1), WanCodec, TcpConfig::fast_test()).expect("gateway bind");
    let (recipient_host, recipient_inbox) =
        TcpHost::bind(loopback, NodeId(2), WanCodec, TcpConfig::fast_test())
            .expect("recipient bind");

    // Chain: genesis funds the recipient; block 1 carries both hosts'
    // directory announcements in coinbase OP_RETURN outputs (§4.3).
    let genesis = Chain::make_genesis(&params, &[(recipient_address, 1_000)]);
    let mut chain = Chain::new(params.clone(), genesis);
    let announce = |address, host: &TcpHost<WanMessage, WanCodec>| IpAnnouncement {
        address,
        endpoint: NetAddr::from_socket_addr(host.local_addr()).expect("loopback is v4"),
        seq: 1,
    };
    let coinbase = Transaction::coinbase(
        1,
        b"directory",
        vec![
            TxOut {
                value: params.coinbase_reward,
                script_pubkey: Script::new(),
            },
            announce(recipient_address, &recipient_host).to_output(),
            announce(gateway_address, &gateway_host).to_output(),
        ],
    );
    let block = Block::mine(chain.tip(), 1, params.difficulty_bits, vec![coinbase]);
    chain.add_block(block).expect("announcement block");

    // Each side scans the chain into its own directory view and dials
    // through it — no side channel carries any endpoint.
    let directory = Directory::from_chain(&chain);
    assert_eq!(directory.len(), 2, "both hosts published");
    let gateway_dialer = OverlayDialer::new(gateway_host.clone(), directory.clone());
    let recipient_dialer = OverlayDialer::new(recipient_host.clone(), directory);

    let mut registry = DeviceRegistry::new();
    let device = registry.provision(&mut rng, DeviceId(1), recipient_address);
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let sealed = seal_reading(&mut rng, &device, &e_pk, READING).expect("seal");

    let coin = (
        OutPoint {
            txid: chain.block_at(0).unwrap().transactions[0].txid(),
            vout: 0,
        },
        recipient_wallet.locking_script(),
        1_000u64,
    );

    // --- recipient thread: verify, escrow, extract eSk, decrypt --------
    let recipient = std::thread::spawn(move || {
        let mut pending: Option<SealedUplink> = None;
        let mut escrow_outpoint: Option<OutPoint> = None;
        loop {
            let env = recipient_inbox
                .recv_timeout(RECV_TIMEOUT)
                .expect("recipient starved");
            match env.msg {
                WanMessage::Deliver {
                    device_id,
                    e_pk_bytes,
                    uplink,
                } => {
                    let pk = RsaPublicKey::from_bytes(&e_pk_bytes).expect("key parses");
                    let record = registry.get(&device_id).expect("provisioned");
                    assert!(verify_uplink(record, &pk, &uplink), "step 8 authenticity");
                    let escrow = build_escrow(
                        &recipient_wallet,
                        std::slice::from_ref(&coin),
                        &pk,
                        &gateway_address,
                        100,
                        10,
                        0,
                    );
                    escrow_outpoint = Some(OutPoint {
                        txid: escrow.tx.txid(),
                        vout: escrow.vout,
                    });
                    pending = Some(uplink);
                    recipient_dialer
                        .deliver(
                            &gateway_address,
                            &WanMessage::Chain(ChainMessage::Tx(escrow.tx)),
                        )
                        .expect("escrow delivered");
                }
                WanMessage::Chain(ChainMessage::Tx(tx)) => {
                    let outpoint = escrow_outpoint.expect("escrow preceded claim");
                    let Some(revealed) = extract_key_from_claim(&tx, &outpoint) else {
                        continue;
                    };
                    let record = registry.get(&DeviceId(1)).expect("provisioned");
                    let uplink = pending.take().expect("delivery preceded claim");
                    return open_reading(record, &revealed, &uplink.em).expect("decrypts");
                }
                other => panic!("unexpected message at recipient: {other:?}"),
            }
        }
    });

    // --- gateway (this thread): deliver, wait for escrow, claim --------
    if faults > 0 {
        gateway_host.inject_send_faults(faults);
    }
    gateway_dialer
        .deliver(
            &recipient_address,
            &WanMessage::Deliver {
                device_id: DeviceId(1),
                e_pk_bytes: e_pk.to_bytes(),
                uplink: sealed,
            },
        )
        .expect("deliver survives faults via retry");

    let claim_pays_gateway;
    loop {
        let env = gateway_inbox
            .recv_timeout(RECV_TIMEOUT)
            .expect("gateway starved");
        let WanMessage::Chain(ChainMessage::Tx(tx)) = env.msg else {
            continue;
        };
        let Some((vout, value)) = find_escrow_for_key(&tx, &e_pk) else {
            continue;
        };
        let outpoint = OutPoint {
            txid: tx.txid(),
            vout,
        };
        let script = tx.outputs[vout as usize].script_pubkey.clone();
        let claim = build_claim(&gateway_wallet, outpoint, &script, value, &e_sk, 5);
        claim_pays_gateway = claim
            .outputs
            .iter()
            .any(|o| o.script_pubkey == gateway_wallet.locking_script());
        gateway_dialer
            .deliver(
                &recipient_address,
                &WanMessage::Chain(ChainMessage::Tx(claim)),
            )
            .expect("claim delivered");
        break;
    }

    let decrypted = recipient.join().expect("recipient thread");
    Outcome {
        decrypted,
        claim_pays_gateway,
        gateway: gateway_host,
        recipient: recipient_host,
    }
}

fn counter(reg: &mut Registry, host: &TcpHost<WanMessage, WanCodec>, name: &str) -> u64 {
    host.export_metrics(reg);
    let snap = reg.snapshot();
    snap.counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("{name} missing from snapshot"))
}

#[test]
fn fig3_exchange_over_loopback_tcp() {
    let out = run_exchange(42, 0);
    assert_eq!(out.decrypted, READING, "recipient decrypted the reading");
    assert!(out.claim_pays_gateway, "gateway claimed the escrow");

    // Transport metrics appear in the registry snapshot.
    let mut reg = Registry::new();
    assert_eq!(
        counter(
            &mut reg,
            &out.gateway,
            "transport.frames_sent_deliver_total"
        ),
        1
    );
    assert_eq!(
        counter(&mut reg, &out.gateway, "transport.frames_sent_tx_total"),
        1,
        "the claim rode as chain gossip"
    );
    assert!(counter(&mut reg, &out.gateway, "transport.bytes_sent_total") > 0);
    assert_eq!(
        counter(&mut reg, &out.gateway, "transport.retries_total"),
        0
    );
    let mut reg = Registry::new();
    assert_eq!(
        counter(
            &mut reg,
            &out.recipient,
            "transport.frames_received_deliver_total"
        ),
        1
    );
    assert!(counter(&mut reg, &out.recipient, "transport.bytes_received_total") > 0);
    out.gateway.shutdown();
    out.recipient.shutdown();
}

#[test]
fn fig3_exchange_completes_despite_killed_deliver_connections() {
    const FAULTS: u64 = 2;
    let out = run_exchange(7, FAULTS);
    assert_eq!(out.decrypted, READING, "exchange completed via retry");
    assert!(out.claim_pays_gateway);

    let mut reg = Registry::new();
    assert!(
        counter(&mut reg, &out.gateway, "transport.retries_total") >= FAULTS,
        "each killed connection forced a retry"
    );
    assert_eq!(
        counter(
            &mut reg,
            &out.gateway,
            "transport.frames_sent_deliver_total"
        ),
        1,
        "exactly one intact Deliver made it out"
    );
    // The recipient eventually observes both torn frames as rejects.
    let deadline = Instant::now() + Duration::from_secs(5);
    while TransportStats::get(&out.recipient.stats().frames_rejected) < FAULTS
        && Instant::now() < deadline
    {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        TransportStats::get(&out.recipient.stats().frames_rejected) >= FAULTS,
        "torn frames were rejected, not silently accepted"
    );
    out.gateway.shutdown();
    out.recipient.shutdown();
}
