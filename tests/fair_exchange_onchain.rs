//! Integration test L1: the Listing 1 escrow driven through real mined
//! blocks — claim path, refund path, and theft attempts.

use bcwan::escrow::{build_claim, build_escrow, build_refund, Escrow};
use bcwan_chain::{Block, BlockAction, Chain, ChainParams, OutPoint, Transaction, TxOut, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize, RsaPrivateKey, RsaPublicKey};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct OnChain {
    params: ChainParams,
    chain: Chain,
    recipient: Wallet,
    gateway: Wallet,
    e_pk: RsaPublicKey,
    e_sk: RsaPrivateKey,
    escrow: Escrow,
}

fn mine(chain: &mut Chain, txs: Vec<Transaction>) -> BlockAction {
    let params = chain.params().clone();
    let height = chain.height() + 1;
    let mut all = vec![Transaction::coinbase(
        height,
        b"it",
        vec![TxOut {
            value: params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    )];
    all.extend(txs);
    let block = Block::mine(chain.tip(), height, params.difficulty_bits, all);
    chain.add_block(block).expect("block valid")
}

/// Builds a chain with the escrow already mined.
fn setup(seed: u64) -> OnChain {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 0;
    let recipient = Wallet::generate(&mut rng);
    let gateway = Wallet::generate(&mut rng);
    let genesis = Chain::make_genesis(&params, &[(recipient.address(), 1_000)]);
    let mut chain = Chain::new(params.clone(), genesis);
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let coin = (
        OutPoint {
            txid: chain.block_at(0).unwrap().transactions[0].txid(),
            vout: 0,
        },
        recipient.locking_script(),
        1_000u64,
    );
    let escrow = build_escrow(
        &recipient,
        &[coin],
        &e_pk,
        &gateway.address(),
        100,
        10,
        chain.height(),
    );
    assert_eq!(
        mine(&mut chain, vec![escrow.tx.clone()]),
        BlockAction::Extended(1)
    );
    OnChain {
        params,
        chain,
        recipient,
        gateway,
        e_pk,
        e_sk,
        escrow,
    }
}

#[test]
fn claim_confirms_and_pays_gateway() {
    let mut t = setup(1);
    let claim = build_claim(
        &t.gateway,
        t.escrow.outpoint(),
        &t.escrow.script,
        100,
        &t.e_sk,
        5,
    );
    assert_eq!(mine(&mut t.chain, vec![claim]), BlockAction::Extended(2));
    // The gateway now owns a 95-unit coin.
    let gateway_script = t.gateway.locking_script();
    let paid: u64 = t
        .chain
        .utxo()
        .find(|e| e.output.script_pubkey == gateway_script)
        .map(|(_, e)| e.output.value)
        .sum();
    assert_eq!(paid, 95);
    // The escrow output is gone.
    assert!(!t.chain.utxo().contains(&t.escrow.outpoint()));
}

#[test]
fn claim_with_wrong_key_cannot_be_mined() {
    let mut t = setup(2);
    let mut rng = StdRng::seed_from_u64(999);
    let (_, wrong_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let bad_claim = build_claim(
        &t.gateway,
        t.escrow.outpoint(),
        &t.escrow.script,
        100,
        &wrong_sk,
        5,
    );
    // Mining a block containing the bad claim must fail validation.
    let height = t.chain.height() + 1;
    let cb = Transaction::coinbase(
        height,
        b"bad",
        vec![TxOut {
            value: t.params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    );
    let block = Block::mine(
        t.chain.tip(),
        height,
        t.params.difficulty_bits,
        vec![cb, bad_claim],
    );
    assert!(t.chain.add_block(block).is_err());
    assert!(
        t.chain.utxo().contains(&t.escrow.outpoint()),
        "escrow untouched"
    );
}

#[test]
fn refund_respects_the_time_lock_on_chain() {
    let mut t = setup(3);
    let refund = build_refund(&t.recipient, &t.escrow, 100, 5);

    // Far too early: the refund tx is non-final until the lock height.
    let height = t.chain.height() + 1;
    let cb = Transaction::coinbase(
        height,
        b"early",
        vec![TxOut {
            value: t.params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    );
    let early_block = Block::mine(
        t.chain.tip(),
        height,
        t.params.difficulty_bits,
        vec![cb, refund.clone()],
    );
    assert!(
        t.chain.add_block(early_block).is_err(),
        "premature refund rejected"
    );

    // Advance the chain past the lock height with empty blocks.
    while t.chain.height() < t.escrow.refund_height {
        mine(&mut t.chain, vec![]);
    }
    assert_eq!(
        mine(&mut t.chain, vec![refund]),
        BlockAction::Extended(t.escrow.refund_height + 1)
    );
    // The recipient recovered the escrow (minus fee).
    let recipient_script = t.recipient.locking_script();
    let refunded: u64 = t
        .chain
        .utxo()
        .find(|e| e.output.script_pubkey == recipient_script)
        .map(|(_, e)| e.output.value)
        .sum();
    // 890 change from the escrow + 95 refund.
    assert_eq!(refunded, 890 + 95);
}

#[test]
fn gateway_cannot_steal_via_refund_branch() {
    let mut t = setup(4);
    // Advance past the lock height, then the gateway tries the refund
    // path signed with its own key.
    while t.chain.height() < t.escrow.refund_height + 1 {
        mine(&mut t.chain, vec![]);
    }
    let fake_escrow = Escrow {
        tx: t.escrow.tx.clone(),
        vout: t.escrow.vout,
        script: t.escrow.script.clone(),
        refund_height: t.escrow.refund_height,
    };
    let theft = build_refund(&t.gateway, &fake_escrow, 100, 5);
    let height = t.chain.height() + 1;
    let cb = Transaction::coinbase(
        height,
        b"thief",
        vec![TxOut {
            value: t.params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    );
    let block = Block::mine(
        t.chain.tip(),
        height,
        t.params.difficulty_bits,
        vec![cb, theft],
    );
    assert!(t.chain.add_block(block).is_err());
}

#[test]
fn key_revealed_on_chain_is_readable_by_anyone() {
    // The whole point of the design: once the claim is mined, the
    // ephemeral private key is public data on the ledger.
    let mut t = setup(5);
    let claim = build_claim(
        &t.gateway,
        t.escrow.outpoint(),
        &t.escrow.script,
        100,
        &t.e_sk,
        5,
    );
    let claim_txid = claim.txid();
    mine(&mut t.chain, vec![claim]);
    let (height, mined_claim) = t.chain.find_transaction(&claim_txid).expect("mined");
    assert_eq!(height, 2);
    let revealed = bcwan::escrow::extract_key_from_claim(mined_claim, &t.escrow.outpoint())
        .expect("readable from the chain");
    assert!(t.e_pk.matches_private(&revealed));
}
