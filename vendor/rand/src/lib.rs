//! An offline, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace must build without network access to crates.io, so the
//! small slice of `rand` it actually uses is vendored here: the
//! [`RngCore`]/[`SeedableRng`]/[`Rng`] traits and a deterministic
//! [`rngs::StdRng`]. The generator is xoshiro256++ seeded through
//! SplitMix64 — statistically strong and fully reproducible from a `u64`
//! seed, which is all the simulation needs. It is **not** a
//! cryptographically secure RNG; the workspace only ever seeds it
//! deterministically for reproducible experiments.
//!
//! Numeric streams differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), so seeds produce different — but equally deterministic —
//! experiment trajectories.

#![warn(missing_docs)]

use core::fmt;

/// Error type for fallible RNG operations (never produced by [`rngs::StdRng`]).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64
    /// (the same expansion upstream `rand` documents for this method).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let out = splitmix64(&mut state);
            let bytes = out.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Convenience extension methods over [`RngCore`].
pub trait Rng: RngCore {
    /// Generates a value via the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
        Self: Sized,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Generates a uniform value in the given half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: UniformSample>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p out of range");
        f64_from_bits(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn f64_from_bits(bits: u64) -> f64 {
    // 53 significant bits, as upstream rand's Standard distribution.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that can be drawn uniformly from a half-open range.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform draw in `[low, high)`.
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "empty range");
                let span = (high - low) as u64;
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - (u64::MAX - span + 1) % span;
                loop {
                    let draw = rng.next_u64();
                    if draw <= zone {
                        return low + (draw % span) as $t;
                    }
                }
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);

impl UniformSample for f64 {
    fn sample_range<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "empty range");
        low + f64_from_bits(rng.next_u64()) * (high - low)
    }
}

/// Distributions usable with [`Rng::gen`].
pub mod distributions {
    use super::{f64_from_bits, RngCore};

    /// Maps raw generator output to values of `T`.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// The "natural" full-range (integers) or unit-interval (floats)
    /// distribution.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Standard;

    macro_rules! impl_standard_uint {
        ($($t:ty),*) => {$(
            impl Distribution<$t> for Standard {
                fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_standard_uint!(u8, u16, u32, u64, usize);

    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            f64_from_bits(rng.next_u64())
        }
    }

    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn step(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9e37_79b9_7f4a_7c15,
                    0xbf58_476d_1ce4_e5b9,
                    0x94d0_49bb_1331_11eb,
                    0x2545_f491_4f6c_dd1d,
                ];
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.step() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            self.step()
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.step().to_le_bytes();
                chunk.copy_from_slice(&bytes[..chunk.len()]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Standard};
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        let mut rng2 = StdRng::seed_from_u64(7);
        let mut buf2 = [0u8; 13];
        rng2.try_fill_bytes(&mut buf2).unwrap();
        assert_eq!(buf, buf2);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let i = rng.gen_range(0..10usize);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn standard_bool_balanced() {
        let mut rng = StdRng::seed_from_u64(3);
        let trues = (0..10_000)
            .filter(|_| {
                let v: bool = Standard.sample(&mut rng);
                v
            })
            .count();
        assert!((4_000..6_000).contains(&trues), "trues = {trues}");
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut rng = StdRng::from_seed([0u8; 32]);
        let a = rng.next_u64();
        let b = rng.next_u64();
        assert!(a != 0 || b != 0);
    }
}
