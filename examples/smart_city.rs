//! Smart-city roaming scenario.
//!
//! The paper's motivation: a company's parking sensors, smart meters and
//! trackers operate across a whole city, but the company only owns
//! gateways in its own district — BcWAN lets its devices deliver through
//! other operators' gateways for a micro-payment.
//!
//! This example places four operators' gateways on a city map, checks
//! radio reachability with the suburban path-loss model, then runs the
//! full BcWAN simulation and prints who carried whose traffic and what it
//! earned them.
//!
//! Run with: `cargo run --release --example smart_city`

use bcwan::world::{WorkloadConfig, World};
use bcwan_lora::link::{LinkModel, Position};
use bcwan_lora::params::SpreadingFactor;
use bcwan_sim::SimDuration;

fn main() {
    // --- The map: four operators' gateways across a 4 km × 3 km city ---
    let operators = [
        ("NordGrid (water metering)", Position::new(1_000.0, 2_600.0)),
        ("ParkSense (parking)", Position::new(2_800.0, 2_400.0)),
        ("FleetTrak (logistics)", Position::new(1_200.0, 800.0)),
        ("CivicLight (street lights)", Position::new(3_000.0, 700.0)),
    ];
    let link = LinkModel::suburban();
    let range = link.max_range_m(SpreadingFactor::Sf7);
    println!("suburban SF7 mean range: {range:.0} m\n");
    println!("gateway reachability matrix (sensor at A heard by gateway B):");
    print!("{:28}", "");
    for (name, _) in &operators {
        print!("{:>12}", &name[..name.find(' ').unwrap_or(8).min(10)]);
    }
    println!();
    for (a, pos_a) in &operators {
        print!("{a:28}");
        for (_, pos_b) in &operators {
            let d = pos_a.distance_to(pos_b);
            let ok = d <= range;
            print!("{:>12}", if ok { "in range" } else { "-" });
        }
        println!();
    }

    // --- Run the federation: 4 actors, their sensors roaming ---
    println!("\nrunning the federated exchange workload (4 operators × 12 sensors)…");
    let mut cfg = WorkloadConfig::paper_fig5();
    cfg.actor_hosts = 4;
    cfg.sensors_per_host = 12;
    cfg.target_exchanges = 120;
    cfg.seed = 77;
    cfg.max_sim_time = SimDuration::from_secs(4 * 3600);
    let result = World::new(cfg).run();

    let summary = result.latencies.summary().expect("exchanges completed");
    println!(
        "\n{} deliveries through foreign gateways, {} failed",
        result.completed, result.failed
    );
    println!(
        "delivery latency: mean {:.2}s  p95 {:.2}s  max {:.2}s",
        summary.mean, summary.p95, summary.max
    );
    println!(
        "{} blocks mined; {} escrow+claim transactions settled on chain",
        result.blocks_mined, result.confirmed_txs
    );
    println!("\nEach delivery moved 10 units from the data owner to the carrying",);
    println!(
        "gateway — {} units total, with no operator trusting any other.",
        result.completed * 10
    );
}
