//! Gateway relocation and the on-chain IP directory (§4.3).
//!
//! "The node may not directly know the IP address of the recipient,
//! mainly because the latter can change if the recipient gateway is moved
//! on another network." The recipient's fixed identity is its blockchain
//! address `@R`; this example moves a recipient to a new IP, republishes
//! the `OP_RETURN` announcement, mines it, and shows a foreign gateway's
//! lookup following the move.
//!
//! Run with: `cargo run --release --example gateway_relocation`

use bcwan::directory::{Directory, IpAnnouncement, NetAddr};
use bcwan_chain::{Block, Chain, ChainParams, OutPoint, Transaction, TxOut, Wallet};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn mine_with(chain: &mut Chain, txs: Vec<Transaction>) {
    let params = chain.params().clone();
    let height = chain.height() + 1;
    let mut all = vec![Transaction::coinbase(
        height,
        b"miner",
        vec![TxOut {
            value: params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    )];
    all.extend(txs);
    let block = Block::mine(chain.tip(), height, params.difficulty_bits, all);
    chain.add_block(block).expect("valid block");
}

fn main() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 0;
    let recipient = Wallet::generate(&mut rng);

    // Genesis gives the recipient coins and a first announcement.
    let first_home = NetAddr {
        ip: [203, 0, 113, 10],
        port: 7000,
    };
    let genesis = {
        let ann = IpAnnouncement {
            address: recipient.address(),
            endpoint: first_home,
            seq: 0,
        };
        let cb = Transaction::coinbase(
            0,
            b"genesis",
            vec![
                TxOut {
                    value: 1_000,
                    script_pubkey: recipient.locking_script(),
                },
                ann.to_output(),
            ],
        );
        Block::mine(
            bcwan_chain::BlockHash::GENESIS_PREV,
            0,
            params.difficulty_bits,
            vec![cb],
        )
    };
    let mut chain = Chain::new(params, genesis);

    // A foreign gateway boots and scans the chain (§5.1 start-up).
    let mut directory = Directory::from_chain(&chain);
    println!(
        "gateway's directory after start-up scan:\n  @R {} → {}",
        recipient.address(),
        directory.lookup(&recipient.address()).expect("announced")
    );

    // The recipient's master gateway moves to another network.
    let new_home = NetAddr {
        ip: [198, 51, 100, 42],
        port: 7000,
    };
    println!("\nrecipient relocates: {first_home} → {new_home}");
    let coin = OutPoint {
        txid: chain.block_at(0).unwrap().transactions[0].txid(),
        vout: 0,
    };
    let announcement = IpAnnouncement {
        address: recipient.address(),
        endpoint: new_home,
        seq: 1, // supersedes seq 0
    };
    let tx = recipient.build_payment(
        vec![(coin, recipient.locking_script())],
        vec![
            announcement.to_output(),
            TxOut {
                value: 990,
                script_pubkey: recipient.locking_script(),
            },
        ],
        0,
    );
    mine_with(&mut chain, vec![tx]);
    println!("announcement mined at height {}", chain.height());

    // The gateway absorbs the new block.
    for tx in &chain.block_at(chain.height()).unwrap().transactions {
        for ann in IpAnnouncement::all_from_transaction(tx) {
            directory.absorb(ann);
        }
    }
    println!(
        "\ngateway lookup now resolves:\n  @R {} → {} (seq {})",
        recipient.address(),
        directory
            .lookup(&recipient.address())
            .expect("still announced"),
        directory.seq_of(&recipient.address()).unwrap(),
    );

    // A stale announcement replayed later cannot roll the directory back.
    directory.absorb(IpAnnouncement {
        address: recipient.address(),
        endpoint: first_home,
        seq: 0,
    });
    assert_eq!(directory.lookup(&recipient.address()), Some(new_home));
    println!("\nreplaying the old announcement does not roll the entry back ✔");
    println!("the node never changed anything: it still addresses @R, not an IP.");
}
