//! Quickstart: one BcWAN exchange, narrated step by step.
//!
//! Walks the exact message sequence of paper Fig. 3 using the library
//! primitives directly — provisioning, the ephemeral key, the double
//! encryption, the Listing 1 escrow, the revealing claim, and the final
//! decryption — validating each transaction against a real chain.
//!
//! Run with: `cargo run --release --example quickstart`

use bcwan::escrow::{build_claim, build_escrow, extract_key_from_claim, find_escrow_for_key};
use bcwan::exchange::{open_reading, seal_reading, verify_uplink};
use bcwan::provisioning::{DeviceId, DeviceRegistry};
use bcwan_chain::{validate_transaction, Chain, ChainParams, OutPoint, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
use bcwan_lora::frame::LoraFrame;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(2018);

    // ------------------------------------------------------------------
    // Setup: two actors — a recipient (the sensor's home network) and a
    // foreign gateway — plus a chain bootstrapped with recipient funds.
    // ------------------------------------------------------------------
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 0; // keep the walkthrough focused
    let recipient_wallet = Wallet::generate(&mut rng);
    let gateway_wallet = Wallet::generate(&mut rng);
    let genesis = Chain::make_genesis(&params, &[(recipient_wallet.address(), 1_000)]);
    let chain = Chain::new(params.clone(), genesis);
    println!("chain bootstrapped at height {}", chain.height());
    println!("recipient @R = {}", recipient_wallet.address());
    println!("gateway      = {}", gateway_wallet.address());

    // Provisioning (§4.4): shared AES key K and signing pair Sk/Pk.
    let mut registry = DeviceRegistry::new();
    let device = registry.provision(&mut rng, DeviceId(1), recipient_wallet.address());
    println!(
        "\n[provisioning] device {} loaded with K and Sk",
        device.device_id
    );

    // ------------------------------------------------------------------
    // Step 1-2: the gateway generates the ephemeral RSA-512 pair and
    // sends ePk to the node over LoRa.
    // ------------------------------------------------------------------
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let downlink = LoraFrame::DownlinkEphemeralKey {
        device_id: device.device_id.0,
        public_key: e_pk.to_bytes(),
    };
    println!(
        "\n[step 1-2] gateway → node: ePk ({} bytes on air)",
        downlink.phy_len()
    );

    // ------------------------------------------------------------------
    // Steps 3-5: the node double-encrypts and signs, then uplinks.
    // ------------------------------------------------------------------
    let reading = b"t=21.5C;h=40%";
    let sealed = seal_reading(&mut rng, &device, &e_pk, reading)?;
    let uplink = LoraFrame::DataUplink {
        device_id: device.device_id.0,
        recipient: *recipient_wallet.address().as_bytes(),
        em: sealed.em.clone(),
        sig: sealed.sig.clone(),
    };
    println!(
        "[step 3-5] node → gateway: Em ({}B) + Sig ({}B), frame {}B — the paper's 128B payload",
        sealed.em.len(),
        sealed.sig.len(),
        uplink.phy_len()
    );

    // ------------------------------------------------------------------
    // Steps 6-7: the gateway looks up @R and forwards over TCP/IP.
    // (The directory lookup is exercised in the gateway_relocation
    // example; here the recipient is already known.)
    // Step 8: the recipient checks authenticity.
    // ------------------------------------------------------------------
    let record = registry.get(&device.device_id).expect("provisioned");
    assert!(verify_uplink(record, &e_pk, &sealed));
    println!("[step 8]   recipient verified Sig over (Em ‖ ePk)");

    // ------------------------------------------------------------------
    // Step 9: the recipient escrows the reward with Listing 1.
    // ------------------------------------------------------------------
    let coin = (
        OutPoint {
            txid: chain.block_at(0).unwrap().transactions[0].txid(),
            vout: 0,
        },
        recipient_wallet.locking_script(),
        1_000u64,
    );
    let escrow = build_escrow(
        &recipient_wallet,
        &[coin],
        &e_pk,
        &gateway_wallet.address(),
        100, // reward
        10,  // fee
        chain.height(),
    );
    let fee = validate_transaction(&escrow.tx, chain.utxo(), chain.height() + 1, &params)?;
    println!(
        "\n[step 9]   escrow tx {} valid (fee {fee}), locked by:\n           {}",
        escrow.tx.txid(),
        escrow.script
    );

    // ------------------------------------------------------------------
    // Step 10: the gateway recognizes its ePk, claims, and thereby
    // reveals eSk on chain.
    // ------------------------------------------------------------------
    let (vout, value) = find_escrow_for_key(&escrow.tx, &e_pk).expect("escrow pays our key");
    let claim = build_claim(
        &gateway_wallet,
        escrow.outpoint(),
        &escrow.script,
        value,
        &e_sk,
        5,
    );
    println!(
        "[step 10]  gateway claim {} spends escrow output {vout}, revealing eSk",
        claim.txid()
    );

    // The recipient reads eSk out of the claim and decrypts.
    let revealed = extract_key_from_claim(&claim, &escrow.outpoint()).expect("key revealed");
    assert!(e_pk.matches_private(&revealed));
    let opened = open_reading(record, &revealed, &sealed.em)?;
    assert_eq!(opened, reading);
    println!(
        "\n[done]     recipient decrypted the reading: {:?}",
        String::from_utf8_lossy(&opened)
    );
    println!("fair exchange complete: the gateway is paid, the recipient has the data.");
    Ok(())
}
