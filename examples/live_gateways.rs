//! Live threaded gateways: the exchange running over real OS threads.
//!
//! The simulator covers the paper's measurements; this example shows the
//! same protocol logic running *live* — one thread per host exchanging
//! real messages over the `bcwan-p2p` bus, in the spirit of the paper's
//! Golang daemons listening on TCP ports. A recipient thread verifies and
//! escrows; a gateway thread claims and reveals; the recipient decrypts.
//!
//! Run with: `cargo run --release --example live_gateways`

use bcwan::escrow::{build_claim, build_escrow, extract_key_from_claim, find_escrow_for_key};
use bcwan::exchange::{open_reading, seal_reading, verify_uplink, SealedUplink};
use bcwan::provisioning::{DeviceId, DeviceRegistry};
use bcwan_chain::{Address, Chain, ChainParams, OutPoint, Transaction, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize, RsaPublicKey};
use bcwan_p2p::{LiveBus, NodeId};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

/// Messages on the live bus.
#[derive(Clone)]
enum Msg {
    /// Gateway → recipient: step 7.
    Deliver {
        device: DeviceId,
        e_pk: Vec<u8>,
        uplink: SealedUplink,
    },
    /// Recipient → gateway: the escrow transaction (step 9).
    Escrow(Transaction),
    /// Gateway → everyone: the claim revealing eSk (step 10).
    Claim {
        tx: Transaction,
        escrow_outpoint: OutPoint,
    },
    /// Recipient → main: the decrypted reading.
    Decrypted(Vec<u8>),
}

const GATEWAY: NodeId = NodeId(1);
const RECIPIENT: NodeId = NodeId(2);
const MAIN: NodeId = NodeId(0);

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 0;

    // World state prepared up front; each thread takes what it owns.
    let recipient_wallet = Wallet::generate(&mut rng);
    let gateway_wallet = Wallet::generate(&mut rng);
    let gateway_address: Address = gateway_wallet.address();
    let genesis = Chain::make_genesis(&params, &[(recipient_wallet.address(), 1_000)]);
    let chain = Chain::new(params, genesis);
    let coin: (OutPoint, Script, u64) = (
        OutPoint {
            txid: chain.block_at(0).unwrap().transactions[0].txid(),
            vout: 0,
        },
        recipient_wallet.locking_script(),
        1_000,
    );

    let mut registry = DeviceRegistry::new();
    let device = registry.provision(&mut rng, DeviceId(1), recipient_wallet.address());

    // The gateway's ephemeral pair and the node's sealed uplink (the LoRa
    // leg is shown in the quickstart; here we focus on the WAN side).
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let sealed = seal_reading(&mut rng, &device, &e_pk, b"pm2.5=12ug/m3").expect("seal");

    let bus: LiveBus<Msg> = LiveBus::new();
    let main_inbox = bus.register(MAIN);
    let gateway_inbox = bus.register(GATEWAY);
    let recipient_inbox = bus.register(RECIPIENT);

    // --- gateway thread --------------------------------------------------
    let gw_bus = bus.clone();
    let gw_e_pk = e_pk.clone();
    let gw_sealed = sealed.clone();
    let gateway = std::thread::spawn(move || {
        println!("[gateway]   forwarding (Em, ePk, Sig) to the recipient");
        gw_bus
            .send(
                GATEWAY,
                RECIPIENT,
                Msg::Deliver {
                    device: DeviceId(1),
                    e_pk: gw_e_pk.to_bytes(),
                    uplink: gw_sealed,
                },
            )
            .expect("recipient reachable");
        // Wait for the escrow, then claim (zero-conf, as in the paper).
        while let Some(env) = gateway_inbox.recv() {
            if let Msg::Escrow(tx) = env.msg {
                let Some((vout, value)) = find_escrow_for_key(&tx, &gw_e_pk) else {
                    continue;
                };
                println!("[gateway]   escrow seen ({value} units) — claiming, revealing eSk");
                let outpoint = OutPoint {
                    txid: tx.txid(),
                    vout,
                };
                let script = tx.outputs[vout as usize].script_pubkey.clone();
                let claim = build_claim(&gateway_wallet, outpoint, &script, value, &e_sk, 5);
                gw_bus.broadcast(
                    GATEWAY,
                    &Msg::Claim {
                        tx: claim,
                        escrow_outpoint: outpoint,
                    },
                );
                break;
            }
        }
    });

    // --- recipient thread --------------------------------------------------
    let rc_bus = bus.clone();
    let recipient = std::thread::spawn(move || {
        let mut pending: Option<SealedUplink> = None;
        while let Some(env) = recipient_inbox.recv() {
            match env.msg {
                Msg::Deliver {
                    device,
                    e_pk,
                    uplink,
                } => {
                    let pk = RsaPublicKey::from_bytes(&e_pk).expect("key parses");
                    let record = registry.get(&device).expect("provisioned");
                    assert!(verify_uplink(record, &pk, &uplink), "authenticity (step 8)");
                    println!("[recipient] signature verified — escrowing payment");
                    let escrow = build_escrow(
                        &recipient_wallet,
                        std::slice::from_ref(&coin),
                        &pk,
                        &gateway_address,
                        100,
                        10,
                        0,
                    );
                    pending = Some(uplink);
                    rc_bus
                        .send(RECIPIENT, GATEWAY, Msg::Escrow(escrow.tx))
                        .expect("gateway reachable");
                }
                Msg::Claim {
                    tx,
                    escrow_outpoint,
                } => {
                    let revealed = extract_key_from_claim(&tx, &escrow_outpoint)
                        .expect("claim reveals the key");
                    println!("[recipient] eSk extracted from the claim — decrypting");
                    let record = registry.get(&DeviceId(1)).expect("provisioned");
                    let uplink = pending.take().expect("delivery preceded claim");
                    let reading = open_reading(record, &revealed, &uplink.em).expect("decrypts");
                    rc_bus.send(RECIPIENT, MAIN, Msg::Decrypted(reading)).ok();
                    break;
                }
                _ => {}
            }
        }
    });

    // Wait for the decrypted reading (the claim broadcast also lands in
    // this inbox; skip past it).
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let mut decrypted = None;
    while std::time::Instant::now() < deadline {
        match main_inbox.recv_timeout(Duration::from_secs(1)) {
            Some(env) => {
                if let Msg::Decrypted(reading) = env.msg {
                    decrypted = Some(reading);
                    break;
                }
            }
            None => continue,
        }
    }
    gateway.join().expect("gateway thread");
    recipient.join().expect("recipient thread");
    match decrypted {
        Some(reading) => {
            println!(
                "[main]      decrypted over live threads: {:?}",
                String::from_utf8_lossy(&reading)
            );
            println!("fair exchange across OS threads complete ✔");
        }
        None => println!("[main]      timed out"),
    }
}
