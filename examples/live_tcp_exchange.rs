//! The Fig. 3 fair exchange over real loopback TCP sockets.
//!
//! The `live_gateways` example runs the exchange over an in-process bus;
//! this one runs it the way the paper describes (§4.3): each host binds a
//! real TCP listener, publishes its IP endpoint in an on-chain `OP_RETURN`
//! announcement, and the gateway *dials the address it looked up in the
//! blockchain directory*. Frames are length-prefixed and checksummed; the
//! sender retries with backoff — demonstrated here by killing the first
//! `Deliver` connection mid-frame and letting the retry complete the
//! exchange anyway.
//!
//! Run with: `cargo run --release --example live_tcp_exchange`

use bcwan::directory::{Directory, IpAnnouncement, NetAddr};
use bcwan::escrow::{build_claim, build_escrow, extract_key_from_claim, find_escrow_for_key};
use bcwan::exchange::{open_reading, seal_reading, verify_uplink, SealedUplink};
use bcwan::net::{OverlayDialer, WanCodec};
use bcwan::provisioning::{DeviceId, DeviceRegistry};
use bcwan::wire::WanMessage;
use bcwan_chain::{Block, Chain, ChainParams, OutPoint, Transaction, TxOut, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize, RsaPublicKey};
use bcwan_p2p::transport::{TcpConfig, TcpHost};
use bcwan_p2p::{ChainMessage, NodeId};
use bcwan_script::Script;
use bcwan_sim::Registry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 0;

    let recipient_wallet = Wallet::generate(&mut rng);
    let gateway_wallet = Wallet::generate(&mut rng);
    let recipient_address = recipient_wallet.address();
    let gateway_address = gateway_wallet.address();

    // Real listeners first, so the OS-assigned ports exist to publish.
    let loopback = "127.0.0.1:0".parse().unwrap();
    let (gateway_host, gateway_inbox) =
        TcpHost::bind(loopback, NodeId(1), WanCodec, TcpConfig::default()).expect("gateway bind");
    let (recipient_host, recipient_inbox) =
        TcpHost::bind(loopback, NodeId(2), WanCodec, TcpConfig::default()).expect("recipient bind");
    println!(
        "[setup]     gateway listens on   {}",
        gateway_host.local_addr()
    );
    println!(
        "[setup]     recipient listens on {}",
        recipient_host.local_addr()
    );

    // Publish both endpoints on chain (§4.3: OP_RETURN announcements),
    // then scan the chain into the directory each side dials through.
    let genesis = Chain::make_genesis(&params, &[(recipient_address, 1_000)]);
    let mut chain = Chain::new(params.clone(), genesis);
    let announce = |address, host: &TcpHost<WanMessage, WanCodec>| IpAnnouncement {
        address,
        endpoint: NetAddr::from_socket_addr(host.local_addr()).expect("loopback is v4"),
        seq: 1,
    };
    let coinbase = Transaction::coinbase(
        1,
        b"directory",
        vec![
            TxOut {
                value: params.coinbase_reward,
                script_pubkey: Script::new(),
            },
            announce(recipient_address, &recipient_host).to_output(),
            announce(gateway_address, &gateway_host).to_output(),
        ],
    );
    let block = Block::mine(chain.tip(), 1, params.difficulty_bits, vec![coinbase]);
    chain.add_block(block).expect("announcement block");
    let directory = Directory::from_chain(&chain);
    println!(
        "[setup]     {} endpoints published on chain",
        directory.len()
    );
    let gateway_dialer = OverlayDialer::new(gateway_host.clone(), directory.clone());
    let recipient_dialer = OverlayDialer::new(recipient_host.clone(), directory);

    let mut registry = DeviceRegistry::new();
    let device = registry.provision(&mut rng, DeviceId(1), recipient_address);
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let sealed = seal_reading(&mut rng, &device, &e_pk, b"pm2.5=12ug/m3").expect("seal");

    let coin = (
        OutPoint {
            txid: chain.block_at(0).unwrap().transactions[0].txid(),
            vout: 0,
        },
        recipient_wallet.locking_script(),
        1_000u64,
    );

    // --- recipient thread --------------------------------------------------
    let recipient = std::thread::spawn(move || {
        let mut pending: Option<SealedUplink> = None;
        let mut escrow_outpoint: Option<OutPoint> = None;
        loop {
            let env = recipient_inbox
                .recv_timeout(Duration::from_secs(30))
                .expect("recipient starved");
            match env.msg {
                WanMessage::Deliver {
                    device_id,
                    e_pk_bytes,
                    uplink,
                } => {
                    let pk = RsaPublicKey::from_bytes(&e_pk_bytes).expect("key parses");
                    let record = registry.get(&device_id).expect("provisioned");
                    assert!(verify_uplink(record, &pk, &uplink), "step 8 authenticity");
                    println!("[recipient] signature verified — escrowing payment on chain");
                    let escrow = build_escrow(
                        &recipient_wallet,
                        std::slice::from_ref(&coin),
                        &pk,
                        &gateway_address,
                        100,
                        10,
                        0,
                    );
                    escrow_outpoint = Some(OutPoint {
                        txid: escrow.tx.txid(),
                        vout: escrow.vout,
                    });
                    pending = Some(uplink);
                    recipient_dialer
                        .deliver(
                            &gateway_address,
                            &WanMessage::Chain(ChainMessage::Tx(escrow.tx)),
                        )
                        .expect("escrow delivered");
                }
                WanMessage::Chain(ChainMessage::Tx(tx)) => {
                    let outpoint = escrow_outpoint.expect("escrow preceded claim");
                    let Some(revealed) = extract_key_from_claim(&tx, &outpoint) else {
                        continue;
                    };
                    println!("[recipient] eSk extracted from the claim — decrypting");
                    let record = registry.get(&DeviceId(1)).expect("provisioned");
                    let uplink = pending.take().expect("delivery preceded claim");
                    return open_reading(record, &revealed, &uplink.em).expect("decrypts");
                }
                _ => {}
            }
        }
    });

    // --- gateway (main thread) ---------------------------------------------
    // Kill the first Deliver connection mid-frame to show the retry path.
    gateway_host.inject_send_faults(1);
    println!("[gateway]   delivering (Em, ePk, Sig) — first connection will be killed mid-frame");
    let endpoint = gateway_dialer
        .deliver(
            &recipient_address,
            &WanMessage::Deliver {
                device_id: DeviceId(1),
                e_pk_bytes: e_pk.to_bytes(),
                uplink: sealed,
            },
        )
        .expect("deliver survives the killed connection via retry");
    println!("[gateway]   delivered to {endpoint} (after retry)");

    loop {
        let env = gateway_inbox
            .recv_timeout(Duration::from_secs(30))
            .expect("gateway starved");
        let WanMessage::Chain(ChainMessage::Tx(tx)) = env.msg else {
            continue;
        };
        let Some((vout, value)) = find_escrow_for_key(&tx, &e_pk) else {
            continue;
        };
        println!("[gateway]   escrow seen ({value} units) — claiming, revealing eSk");
        let outpoint = OutPoint {
            txid: tx.txid(),
            vout,
        };
        let script = tx.outputs[vout as usize].script_pubkey.clone();
        let claim = build_claim(&gateway_wallet, outpoint, &script, value, &e_sk, 5);
        gateway_dialer
            .deliver(
                &recipient_address,
                &WanMessage::Chain(ChainMessage::Tx(claim)),
            )
            .expect("claim delivered");
        break;
    }

    let reading = recipient.join().expect("recipient thread");
    println!(
        "[main]      decrypted over real TCP: {:?}",
        String::from_utf8_lossy(&reading)
    );

    // The transport counters, as they land in the metrics snapshot.
    let mut reg = Registry::new();
    gateway_host.export_metrics(&mut reg);
    println!("[metrics]   gateway transport counters:");
    for (name, value) in reg.snapshot().counters {
        if value > 0 {
            println!("[metrics]     {name} = {value}");
        }
    }
    gateway_host.shutdown();
    recipient_host.shutdown();
    println!("fair exchange across real sockets complete ✔");
}
