//! The §6 double-spend attack, step by step, against the real chain.
//!
//! A malicious recipient wants the data without paying: it hands the
//! escrow transaction to the gateway alone while racing a conflicting
//! spend of the same coin straight to the miner. A zero-confirmation
//! gateway (the paper's PoC policy) reveals the ephemeral key
//! immediately — and loses its reward when the conflict confirms.
//!
//! Run with: `cargo run --release --example double_spend`

use bcwan::attack::{play_double_spend_mechanics, simulate_attack_rates, AttackConfig};
use bcwan::costs::CostModel;
use bcwan_sim::{LatencyModel, SimRng};

fn main() {
    println!("=== zero-confirmation double spend, played on the real substrate ===\n");
    let m = play_double_spend_mechanics(2018);
    let tick = |b: bool| if b { "✔" } else { "✘" };
    println!(
        " {} recipient sends the escrow ONLY to the gateway",
        tick(m.gateway_accepted_escrow)
    );
    println!(
        " {} …and a conflicting spend of the same coin to the miner",
        tick(m.miner_accepted_conflict)
    );
    println!(
        " {} the relayed escrow is refused at the miner (first-seen rule)",
        tick(m.miner_rejected_escrow)
    );
    println!(
        " {} the gateway, at zero confirmations, claims and reveals eSk",
        tick(m.recipient_got_key)
    );
    println!(
        " {} the claim is an orphan at the miner — it can never be mined",
        tick(m.claim_orphaned_at_miner)
    );
    println!(
        " {} after the next block, the gateway holds nothing",
        tick(m.gateway_unpaid)
    );
    println!("\n attack succeeded: {}", m.attack_succeeded());

    println!("\n=== the counter-measure: wait for confirmations (§6) ===\n");
    println!("depth  theft-rate  honest extra latency");
    let mut rng = SimRng::seed_from_u64(9);
    for depth in [0u64, 1, 2, 6] {
        let out = simulate_attack_rates(
            &AttackConfig {
                latency: LatencyModel::planetlab(),
                costs: CostModel::pi_class(),
                block_interval_s: 15.0,
                confirmation_depth: depth,
            },
            10_000,
            &mut rng,
        );
        println!(
            "{:>5}  {:>10.3}  {:>12.1}s",
            depth, out.theft_rate, out.honest_extra_latency_s
        );
    }
    println!("\nThe paper keeps depth 0 in its PoC to separate BcWAN's own overhead");
    println!("from the blockchain's, and notes Bitcoin's 6-conf advice would cost an");
    println!("hour there; on this 15 s chain the same safety costs ~90 s.");
}
