//! Structured event tracing with sim-time spans.
//!
//! [`Tracer`] stamps named spans against the simulated clock: a span
//! opens with [`Tracer::span_start`] and closes with [`Tracer::span_end`],
//! keyed by a static phase name plus a caller-chosen `u64` id (an
//! exchange id, a block height, …) so many instances of the same phase
//! can be in flight at once. Closed spans fold into a per-name duration
//! [`Series`], which the bench harnesses summarize into the
//! phase-latency tables of the schema-versioned JSON reports.
//!
//! The tracer is designed around a hard overhead budget: when disabled
//! (the default for `World` unless `tracing` is set on the workload
//! config), every call is a single branch on a `bool` and returns
//! immediately — no allocation, no map lookup.

use crate::metrics::{Series, Summary};
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::collections::HashMap;

/// Key for a span instance: static phase name + caller-chosen instance id.
type SpanKey = (&'static str, u64);

/// A sim-time span tracer.
///
/// ```
/// use bcwan_sim::{SimTime, Tracer};
///
/// let mut tr = Tracer::enabled();
/// tr.span_start("uplink", 1, SimTime::from_micros(0));
/// tr.span_end("uplink", 1, SimTime::from_micros(1500));
/// assert_eq!(tr.durations("uplink").unwrap().len(), 1);
/// assert_eq!(tr.durations("uplink").unwrap().samples()[0], 0.0015);
/// ```
#[derive(Debug, Default)]
pub struct Tracer {
    enabled: bool,
    open: HashMap<SpanKey, SimTime>,
    /// Closed span durations (seconds), per phase name.
    closed: BTreeMap<&'static str, Series>,
    /// Count of instant events, per name.
    instants: BTreeMap<&'static str, u64>,
    /// span_end calls with no matching span_start (indicates an
    /// instrumentation bug; surfaced in reports rather than panicking).
    unmatched_ends: u64,
}

impl Tracer {
    /// A disabled tracer: every call is a no-op behind one branch.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// An enabled tracer.
    pub fn enabled() -> Self {
        Tracer {
            enabled: true,
            ..Tracer::default()
        }
    }

    /// Builds a tracer with the given enablement.
    pub fn new(enabled: bool) -> Self {
        if enabled {
            Tracer::enabled()
        } else {
            Tracer::disabled()
        }
    }

    /// Whether the tracer records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens span `name`/`id` at `now`. Re-opening an already-open span
    /// restarts it (the earlier start is discarded).
    #[inline]
    pub fn span_start(&mut self, name: &'static str, id: u64, now: SimTime) {
        if !self.enabled {
            return;
        }
        self.open.insert((name, id), now);
    }

    /// Closes span `name`/`id` at `now`, folding its duration into the
    /// per-name series. An end without a matching start is counted in
    /// [`Tracer::unmatched_ends`] and otherwise ignored.
    #[inline]
    pub fn span_end(&mut self, name: &'static str, id: u64, now: SimTime) {
        if !self.enabled {
            return;
        }
        match self.open.remove(&(name, id)) {
            Some(start) => {
                let dur = now.saturating_duration_since(start);
                self.closed
                    .entry(name)
                    .or_default()
                    .record(dur.as_secs_f64());
            }
            None => self.unmatched_ends += 1,
        }
    }

    /// Drops an open span without recording it (e.g. a failed exchange
    /// whose phase never completed).
    #[inline]
    pub fn span_cancel(&mut self, name: &'static str, id: u64) {
        if !self.enabled {
            return;
        }
        self.open.remove(&(name, id));
    }

    /// Records a zero-duration point event.
    #[inline]
    pub fn instant(&mut self, name: &'static str) {
        if !self.enabled {
            return;
        }
        *self.instants.entry(name).or_insert(0) += 1;
    }

    /// Records an externally measured duration directly, without a
    /// start/end pair — for phases whose endpoints live in different
    /// actors where threading an id through would distort the protocol.
    #[inline]
    pub fn record_span(&mut self, name: &'static str, duration: SimDuration) {
        if !self.enabled {
            return;
        }
        self.closed
            .entry(name)
            .or_default()
            .record(duration.as_secs_f64());
    }

    /// Closed-span durations (seconds) for `name`, if any were recorded.
    pub fn durations(&self, name: &'static str) -> Option<&Series> {
        self.closed.get(name)
    }

    /// All phase names with at least one closed span, sorted.
    pub fn phase_names(&self) -> Vec<&'static str> {
        self.closed.keys().copied().collect()
    }

    /// Per-phase summaries, sorted by phase name. Empty when disabled.
    pub fn phase_summaries(&self) -> Vec<(&'static str, Summary)> {
        self.closed
            .iter()
            .filter_map(|(name, series)| series.summary().map(|s| (*name, s)))
            .collect()
    }

    /// Instant-event counts, sorted by name.
    pub fn instant_counts(&self) -> Vec<(&'static str, u64)> {
        self.instants.iter().map(|(k, v)| (*k, *v)).collect()
    }

    /// Spans opened but never closed (in-flight work at end of run).
    pub fn open_spans(&self) -> usize {
        self.open.len()
    }

    /// `span_end` calls that had no matching `span_start`.
    pub fn unmatched_ends(&self) -> u64 {
        self.unmatched_ends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(us: u64) -> SimTime {
        SimTime::from_micros(us)
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut tr = Tracer::disabled();
        tr.span_start("phase", 0, t(0));
        tr.span_end("phase", 0, t(100));
        tr.instant("tick");
        assert!(tr.durations("phase").is_none());
        assert!(tr.phase_summaries().is_empty());
        assert!(tr.instant_counts().is_empty());
        assert_eq!(tr.open_spans(), 0);
    }

    #[test]
    fn span_duration_in_seconds() {
        let mut tr = Tracer::enabled();
        tr.span_start("up", 7, t(1_000_000));
        tr.span_end("up", 7, t(3_500_000));
        let s = tr.durations("up").unwrap();
        assert_eq!(s.samples(), &[2.5]);
    }

    #[test]
    fn concurrent_instances_do_not_collide() {
        let mut tr = Tracer::enabled();
        tr.span_start("x", 1, t(0));
        tr.span_start("x", 2, t(10));
        tr.span_end("x", 2, t(20));
        tr.span_end("x", 1, t(40));
        let samples = tr.durations("x").unwrap().samples().to_vec();
        assert_eq!(samples, vec![10e-6, 40e-6]);
    }

    #[test]
    fn unmatched_end_is_counted_not_recorded() {
        let mut tr = Tracer::enabled();
        tr.span_end("ghost", 1, t(5));
        assert_eq!(tr.unmatched_ends(), 1);
        assert!(tr.durations("ghost").is_none());
    }

    #[test]
    fn cancel_discards_open_span() {
        let mut tr = Tracer::enabled();
        tr.span_start("fail", 3, t(0));
        tr.span_cancel("fail", 3);
        tr.span_end("fail", 3, t(10));
        assert_eq!(tr.unmatched_ends(), 1);
        assert_eq!(tr.open_spans(), 0);
    }

    #[test]
    fn instants_and_summaries() {
        let mut tr = Tracer::enabled();
        tr.instant("mined");
        tr.instant("mined");
        tr.record_span("settle", SimDuration::from_millis(40));
        assert_eq!(tr.instant_counts(), vec![("mined", 2)]);
        let summaries = tr.phase_summaries();
        assert_eq!(summaries.len(), 1);
        assert_eq!(summaries[0].0, "settle");
        assert_eq!(summaries[0].1.count, 1);
    }

    #[test]
    fn open_span_visible_until_closed() {
        let mut tr = Tracer::enabled();
        tr.span_start("long", 1, t(0));
        assert_eq!(tr.open_spans(), 1);
        tr.span_end("long", 1, t(1));
        assert_eq!(tr.open_spans(), 0);
    }
}
