//! A minimal JSON document model: render and parse, no dependencies.
//!
//! The observability layer ([`crate::metrics::Registry`] snapshots, the
//! bench crate's schema-versioned reports) needs machine-readable output,
//! and the build environment cannot fetch serde. This module covers the
//! subset of JSON the workspace emits: objects with ordered keys, arrays,
//! strings, booleans, null, and IEEE-754 numbers.
//!
//! Rendering is deterministic: object keys keep insertion order, floats
//! use the shortest round-trippable form (`{:?}` on `f64`), and
//! non-finite floats render as `null` (JSON has no NaN/Infinity).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. Integers up to 2^53 survive the round trip exactly.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Builds a number from anything convertible to `f64`.
    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// Builds a number from a `u64` (lossy above 2^53, as in all JSON).
    pub fn uint(n: u64) -> Json {
        Json::Num(n as f64)
    }

    /// Builds a number from a `usize`.
    pub fn size(n: usize) -> Json {
        Json::Num(n as f64)
    }

    /// An empty object, for builder-style assembly.
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Appends a key to an object (panics on non-objects) and returns
    /// `self` for chaining.
    #[must_use]
    pub fn with(mut self, key: impl Into<String>, value: Json) -> Json {
        match &mut self {
            Json::Object(entries) => entries.push((key.into(), value)),
            _ => panic!("Json::with on a non-object"),
        }
        self
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders compactly (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if *n == n.trunc() && n.abs() < 9.007_199_254_740_992e15 {
                    // Integral values print without a trailing ".0".
                    fmt::Write::write_fmt(out, format_args!("{}", *n as i64))
                        .expect("string write");
                } else {
                    fmt::Write::write_fmt(out, format_args!("{n:?}")).expect("string write");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i, d| {
                    write_escaped(out, &entries[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    entries[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                fmt::Write::write_fmt(out, format_args!("\\u{:04x}", c as u32))
                    .expect("string write");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Why a parse failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub at: usize,
    /// Human-readable reason.
    pub reason: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.reason)
    }
}

impl std::error::Error for ParseError {}

/// Parses a JSON document.
///
/// Accepts exactly one top-level value with optional surrounding
/// whitespace. Duplicate object keys are kept in order (last one wins for
/// [`Json::get`]-style lookups is *not* implemented — first match wins).
///
/// # Errors
///
/// [`ParseError`] with the byte offset of the first offending character.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(ParseError {
            at: pos,
            reason: "trailing characters",
        });
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, what: u8) -> Result<(), ParseError> {
    if *pos < bytes.len() && bytes[*pos] == what {
        *pos += 1;
        Ok(())
    } else {
        Err(ParseError {
            at: *pos,
            reason: "unexpected character",
        })
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(ParseError {
            at: *pos,
            reason: "unexpected end of input",
        });
    };
    match b {
        b'n' => parse_keyword(bytes, pos, "null", Json::Null),
        b't' => parse_keyword(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_keyword(bytes, pos, "false", Json::Bool(false)),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b'[' => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            reason: "expected ',' or ']'",
                        })
                    }
                }
            }
        }
        b'{' => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(entries));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos,
                            reason: "expected ',' or '}'",
                        })
                    }
                }
            }
        }
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(ParseError {
            at: *pos,
            reason: "unexpected character",
        }),
    }
}

fn parse_keyword(
    bytes: &[u8],
    pos: &mut usize,
    word: &'static str,
    value: Json,
) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(ParseError {
            at: *pos,
            reason: "unknown keyword",
        })
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or(ParseError {
            at: start,
            reason: "malformed number",
        })
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(ParseError {
                at: *pos,
                reason: "unterminated string",
            });
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(ParseError {
                        at: *pos,
                        reason: "unterminated escape",
                    });
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or(ParseError {
                                at: *pos,
                                reason: "bad \\u escape",
                            })?;
                        *pos += 4;
                        // Surrogate pairs are not needed for our output;
                        // lone surrogates map to the replacement char.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                    }
                    _ => {
                        return Err(ParseError {
                            at: *pos - 1,
                            reason: "unknown escape",
                        })
                    }
                }
            }
            _ => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|_| ParseError {
                    at: *pos,
                    reason: "invalid UTF-8",
                })?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

/// Converts a map into a JSON object with sorted keys.
impl From<&BTreeMap<String, f64>> for Json {
    fn from(map: &BTreeMap<String, f64>) -> Json {
        Json::Object(
            map.iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::Num(3.0).render(), "3");
        assert_eq!(Json::Num(3.25).render(), "3.25");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\n").render(), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn renders_nested_pretty() {
        let doc = Json::object()
            .with("name", Json::str("fig5"))
            .with("rows", Json::Array(vec![Json::Num(1.0), Json::Num(2.5)]));
        let pretty = doc.render_pretty();
        assert!(pretty.contains("\"name\": \"fig5\""));
        assert!(pretty.ends_with("}\n"));
        assert_eq!(doc.render(), "{\"name\":\"fig5\",\"rows\":[1,2.5]}");
    }

    #[test]
    fn parse_round_trip() {
        let doc = Json::object()
            .with("schema_version", Json::uint(1))
            .with("ok", Json::Bool(false))
            .with("x", Json::Null)
            .with(
                "nested",
                Json::Array(vec![
                    Json::str("päyload \"quoted\""),
                    Json::Num(-1.5e-3),
                    Json::object().with("k", Json::Num(9007199254740991.0)),
                ]),
            );
        for text in [doc.render(), doc.render_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc);
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nulx").is_err());
    }

    #[test]
    fn parse_accepts_whitespace_and_escapes() {
        let v = parse(" {\n\t\"a\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        assert_eq!(
            v,
            Json::object().with("a", Json::Array(vec![Json::Num(1.0), Json::str("A\t")]))
        );
    }

    #[test]
    fn get_and_accessors() {
        let doc = Json::object()
            .with("n", Json::Num(2.0))
            .with("s", Json::str("x"));
        assert_eq!(doc.get("n").unwrap().as_f64(), Some(2.0));
        assert_eq!(doc.get("s").unwrap().as_str(), Some("x"));
        assert!(doc.get("missing").is_none());
        assert!(Json::Null.get("n").is_none());
    }
}
