//! Measurement collection for experiments.
//!
//! [`Series`] accumulates scalar samples (latencies, counts) and computes
//! the summary statistics and histogram rows that the figure harnesses
//! print — mean/percentiles for the text in EXPERIMENTS.md and fixed-width
//! buckets mirroring the paper's Fig. 5/6 latency histograms.

use std::fmt;

/// An append-only series of `f64` samples with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Series {
    samples: Vec<f64>,
}

/// Summary statistics over a [`Series`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for < 2 samples).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (p50).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

/// One histogram bucket: `[lo, hi)` with a count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound (last bucket is inclusive).
    pub hi: f64,
    /// Samples in the bucket.
    pub count: usize,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// Appends one sample.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Read-only view of the raw samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Computes summary statistics.
    ///
    /// Returns `None` for an empty series.
    pub fn summary(&self) -> Option<Summary> {
        if self.samples.is_empty() {
            return None;
        }
        let count = self.samples.len();
        let mean = self.samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let pct = |p: f64| -> f64 {
            let idx = ((count as f64 - 1.0) * p).round() as usize;
            sorted[idx]
        };
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: sorted[count - 1],
        })
    }

    /// Fixed-width histogram over `[min, max]` with `n` buckets.
    ///
    /// Samples outside the range clamp into the first/last bucket, so the
    /// bucket counts always sum to `len()`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max <= min`.
    pub fn histogram(&self, min: f64, max: f64, n: usize) -> Vec<Bucket> {
        assert!(n > 0, "need at least one bucket");
        assert!(max > min, "empty histogram range");
        let width = (max - min) / n as f64;
        let mut buckets: Vec<Bucket> = (0..n)
            .map(|i| Bucket {
                lo: min + i as f64 * width,
                hi: min + (i + 1) as f64 * width,
                count: 0,
            })
            .collect();
        for &s in &self.samples {
            let idx = (((s - min) / width).floor() as i64).clamp(0, n as i64 - 1) as usize;
            buckets[idx].count += 1;
        }
        buckets
    }
}

impl Extend<f64> for Series {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl FromIterator<f64> for Series {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Series {
            samples: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.std_dev, self.min, self.median, self.p95, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_has_no_summary() {
        assert!(Series::new().summary().is_none());
        assert!(Series::new().is_empty());
    }

    #[test]
    fn summary_of_known_values() {
        let s: Series = (1..=5).map(|x| x as f64).collect();
        let sum = s.summary().unwrap();
        assert_eq!(sum.count, 5);
        assert!((sum.mean - 3.0).abs() < 1e-12);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 5.0);
        assert_eq!(sum.median, 3.0);
        // Sample std of 1..5 = sqrt(2.5)
        assert!((sum.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_summary() {
        let mut s = Series::new();
        s.record(7.0);
        let sum = s.summary().unwrap();
        assert_eq!(sum.std_dev, 0.0);
        assert_eq!(sum.median, 7.0);
        assert_eq!(sum.p99, 7.0);
    }

    #[test]
    fn histogram_counts_sum_to_len() {
        let s: Series = (0..100).map(|x| x as f64 / 10.0).collect();
        let h = s.histogram(0.0, 10.0, 5);
        assert_eq!(h.len(), 5);
        assert_eq!(h.iter().map(|b| b.count).sum::<usize>(), 100);
        assert_eq!(h[0].count, 20);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut s = Series::new();
        s.record(-100.0);
        s.record(0.25);
        s.record(1e9);
        let h = s.histogram(0.0, 1.0, 2);
        assert_eq!(h[0].count, 2); // -100 clamps into first bucket, 0.25 lands there
        assert_eq!(h[1].count, 1); // 1e9 clamps into last
    }

    #[test]
    fn display_summary() {
        let s: Series = vec![1.0, 2.0].into_iter().collect();
        let text = s.summary().unwrap().to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.500"));
    }
}
