//! Measurement collection for experiments.
//!
//! [`Series`] accumulates scalar samples (latencies, counts) and computes
//! the summary statistics and histogram rows that the figure harnesses
//! print — mean/percentiles for the text in EXPERIMENTS.md and fixed-width
//! buckets mirroring the paper's Fig. 5/6 latency histograms.
//!
//! [`Registry`] is the workspace-wide metrics surface: named counters,
//! gauges, and log-scale [`LogHistogram`]s, registered once (cheap `Copy`
//! handles) and updated on hot paths with a plain vector index. A
//! [`Snapshot`] freezes the registry into sorted name/value rows and
//! serializes to the schema-versioned JSON the bench harnesses emit (see
//! [`Snapshot::to_json`] / [`Snapshot::from_json`]).

use crate::json::Json;
use crate::time::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Formats a labeled metric name, `base{key="value"}` — the convention
/// for per-host (or otherwise dimensioned) rows, so exporters can split
/// the dimension back out with [`split_label`]. The value must not
/// contain `"`.
pub fn labeled(base: &str, key: &str, value: impl fmt::Display) -> String {
    format!("{base}{{{key}=\"{value}\"}}")
}

/// Splits a [`labeled`] name into `(base, Some((key, value)))`; plain
/// names (or anything not matching the shape) come back `(name, None)`.
pub fn split_label(name: &str) -> (&str, Option<(&str, &str)>) {
    let Some(open) = name.find('{') else {
        return (name, None);
    };
    let Some(rest) = name[open..].strip_prefix('{') else {
        return (name, None);
    };
    let Some(body) = rest.strip_suffix('}') else {
        return (name, None);
    };
    let Some(eq) = body.find("=\"") else {
        return (name, None);
    };
    let Some(value) = body[eq + 2..].strip_suffix('"') else {
        return (name, None);
    };
    (&name[..open], Some((&body[..eq], value)))
}

/// An append-only series of `f64` samples with summary statistics.
#[derive(Debug, Clone, Default)]
pub struct Series {
    samples: Vec<f64>,
}

/// Summary statistics over a [`Series`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for < 2 samples).
    pub std_dev: f64,
    /// Smallest sample.
    pub min: f64,
    /// Median (p50).
    pub median: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Largest sample.
    pub max: f64,
}

/// One histogram bucket: `[lo, hi)` with a count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Inclusive lower bound.
    pub lo: f64,
    /// Exclusive upper bound (last bucket is inclusive).
    pub hi: f64,
    /// Samples in the bucket.
    pub count: usize,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Series::default()
    }

    /// Appends one sample.
    pub fn record(&mut self, value: f64) {
        self.samples.push(value);
    }

    /// Number of samples so far.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Read-only view of the raw samples in insertion order.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Computes summary statistics.
    ///
    /// Returns `None` for an empty series.
    pub fn summary(&self) -> Option<Summary> {
        if self.samples.is_empty() {
            return None;
        }
        let count = self.samples.len();
        let mean = self.samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            self.samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        // Linearly interpolated percentile (the "R-7" definition used by
        // numpy): rank (n-1)·p splits into an integer index and a
        // fractional part that blends the two neighbouring order
        // statistics.
        let pct = |p: f64| -> f64 {
            let rank = (count as f64 - 1.0) * p;
            let lo = rank.floor() as usize;
            let frac = rank - lo as f64;
            if lo + 1 < count {
                sorted[lo] + frac * (sorted[lo + 1] - sorted[lo])
            } else {
                sorted[count - 1]
            }
        };
        Some(Summary {
            count,
            mean,
            std_dev: var.sqrt(),
            min: sorted[0],
            median: pct(0.50),
            p95: pct(0.95),
            p99: pct(0.99),
            max: sorted[count - 1],
        })
    }

    /// Fixed-width histogram over `[min, max]` with `n` buckets.
    ///
    /// Samples outside the range clamp into the first/last bucket, so the
    /// bucket counts always sum to `len()`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `max <= min`.
    pub fn histogram(&self, min: f64, max: f64, n: usize) -> Vec<Bucket> {
        assert!(n > 0, "need at least one bucket");
        assert!(max > min, "empty histogram range");
        let width = (max - min) / n as f64;
        let mut buckets: Vec<Bucket> = (0..n)
            .map(|i| Bucket {
                lo: min + i as f64 * width,
                hi: min + (i + 1) as f64 * width,
                count: 0,
            })
            .collect();
        for &s in &self.samples {
            let idx = (((s - min) / width).floor() as i64).clamp(0, n as i64 - 1) as usize;
            buckets[idx].count += 1;
        }
        buckets
    }
}

impl Extend<f64> for Series {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.samples.extend(iter);
    }
}

impl FromIterator<f64> for Series {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Series {
            samples: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} std={:.3} min={:.3} p50={:.3} p95={:.3} p99={:.3} max={:.3}",
            self.count,
            self.mean,
            self.std_dev,
            self.min,
            self.median,
            self.p95,
            self.p99,
            self.max
        )
    }
}

/// Handle to a registered counter (a plain index — `Copy`, no lookup on
/// the hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Log-scale histogram: geometric buckets spanning `1e-6 … 1e10` with
/// four buckets per decade, plus exact count/sum/min/max so means are
/// not quantized. Built for latencies in seconds (1 µs resolution floor)
/// but unit-agnostic.
#[derive(Debug, Clone, PartialEq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Buckets per decade of the log-scale histogram.
const BUCKETS_PER_DECADE: f64 = 4.0;
/// Lower edge of the first log bucket.
const LOG_LO: f64 = 1e-6;
/// Number of decades covered.
const LOG_DECADES: usize = 16;
/// Total bucket count.
const LOG_BUCKETS: usize = LOG_DECADES * BUCKETS_PER_DECADE as usize;

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; LOG_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_index(value: f64) -> usize {
        if value <= LOG_LO {
            return 0;
        }
        let idx = ((value / LOG_LO).log10() * BUCKETS_PER_DECADE).floor() as i64;
        idx.clamp(0, LOG_BUCKETS as i64 - 1) as usize
    }

    /// Lower edge of bucket `i`.
    fn bucket_lo(i: usize) -> f64 {
        if i == 0 {
            0.0
        } else {
            LOG_LO * 10f64.powf(i as f64 / BUCKETS_PER_DECADE)
        }
    }

    /// Upper edge of bucket `i`.
    fn bucket_hi(i: usize) -> f64 {
        LOG_LO * 10f64.powf((i + 1) as f64 / BUCKETS_PER_DECADE)
    }

    /// Records one observation. Non-finite values are dropped; values at
    /// or below the histogram floor land in the first bucket.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.counts[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean observation (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Approximate quantile from bucket boundaries: the geometric midpoint
    /// of the bucket holding the `q`-th observation, clamped to the exact
    /// min/max. Accurate to bucket resolution (~78 % width).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * (self.count as f64 - 1.0)).round() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            if seen > rank {
                let lo = Self::bucket_lo(i).max(self.min);
                let hi = Self::bucket_hi(i).min(self.max);
                let mid = if lo > 0.0 { (lo * hi).sqrt() } else { hi / 2.0 };
                return Some(mid.clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Non-empty buckets as `(lo, hi, count)` rows.
    pub fn buckets(&self) -> Vec<Bucket> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Bucket {
                lo: Self::bucket_lo(i),
                hi: Self::bucket_hi(i),
                count: c as usize,
            })
            .collect()
    }
}

#[derive(Debug, Clone, Copy)]
enum Slot {
    Counter(usize),
    Gauge(usize),
    Histogram(usize),
}

/// A registry of named metrics.
///
/// Register by name once (idempotent; returns the same handle), then
/// update through the handle on hot paths. Names are conventionally
/// dot-separated with a `_total` suffix for counters, e.g.
/// `world.exchanges_completed_total`.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, LogHistogram)>,
    index: BTreeMap<String, Slot>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or finds) a counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&mut self, name: &str) -> CounterId {
        match self.index.get(name) {
            Some(Slot::Counter(i)) => CounterId(*i),
            Some(_) => panic!("metric {name} already registered with another kind"),
            None => {
                let i = self.counters.len();
                self.counters.push((name.to_string(), 0));
                self.index.insert(name.to_string(), Slot::Counter(i));
                CounterId(i)
            }
        }
    }

    /// Registers (or finds) a gauge.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        match self.index.get(name) {
            Some(Slot::Gauge(i)) => GaugeId(*i),
            Some(_) => panic!("metric {name} already registered with another kind"),
            None => {
                let i = self.gauges.len();
                self.gauges.push((name.to_string(), 0.0));
                self.index.insert(name.to_string(), Slot::Gauge(i));
                GaugeId(i)
            }
        }
    }

    /// Registers (or finds) a log-scale histogram.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        match self.index.get(name) {
            Some(Slot::Histogram(i)) => HistogramId(*i),
            Some(_) => panic!("metric {name} already registered with another kind"),
            None => {
                let i = self.histograms.len();
                self.histograms
                    .push((name.to_string(), LogHistogram::new()));
                self.index.insert(name.to_string(), Slot::Histogram(i));
                HistogramId(i)
            }
        }
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    /// Adds to a counter.
    pub fn add(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    /// Current counter value.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    /// Registers `name` if needed and sets it to `value` — for end-of-run
    /// aggregation of statistics tracked elsewhere (daemon, chain,
    /// mempool, network).
    pub fn set_counter(&mut self, name: &str, value: u64) {
        let id = self.counter(name);
        self.counters[id.0].1 = value;
    }

    /// Sets a gauge.
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    /// Registers `name` if needed and sets the gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        let id = self.gauge(name);
        self.gauges[id.0].1 = value;
    }

    /// Records a histogram observation.
    pub fn observe(&mut self, id: HistogramId, value: f64) {
        self.histograms[id.0].1.observe(value);
    }

    /// Direct access to a histogram's current state.
    pub fn histogram_state(&self, id: HistogramId) -> &LogHistogram {
        &self.histograms[id.0].1
    }

    /// Registers (or finds) a per-dimension counter row, e.g.
    /// `reg.counter_labeled("store.flush_total", "host", 3)` →
    /// `store.flush_total{host="3"}`.
    pub fn counter_labeled(
        &mut self,
        base: &str,
        key: &str,
        value: impl fmt::Display,
    ) -> CounterId {
        self.counter(&labeled(base, key, value))
    }

    /// Registers (or finds) a per-dimension gauge row.
    pub fn gauge_labeled(&mut self, base: &str, key: &str, value: impl fmt::Display) -> GaugeId {
        self.gauge(&labeled(base, key, value))
    }

    /// Freezes the registry into sorted rows.
    pub fn snapshot(&self) -> Snapshot {
        let mut counters: Vec<(String, u64)> = self.counters.clone();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, f64)> = self.gauges.clone();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSummary)> = self
            .histograms
            .iter()
            .map(|(name, h)| (name.clone(), HistogramSummary::of(h)))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// Frozen view of one [`LogHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation (0 when empty).
    pub min: f64,
    /// Largest observation (0 when empty).
    pub max: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
    /// Non-empty buckets `(lo, hi, count)`.
    pub buckets: Vec<(f64, f64, u64)>,
}

impl HistogramSummary {
    fn of(h: &LogHistogram) -> Self {
        HistogramSummary {
            count: h.count(),
            sum: h.sum(),
            min: if h.count() > 0 { h.min } else { 0.0 },
            max: if h.count() > 0 { h.max } else { 0.0 },
            p50: h.quantile(0.50).unwrap_or(0.0),
            p95: h.quantile(0.95).unwrap_or(0.0),
            p99: h.quantile(0.99).unwrap_or(0.0),
            buckets: h
                .buckets()
                .into_iter()
                .map(|b| (b.lo, b.hi, b.count as u64))
                .collect(),
        }
    }
}

/// A frozen, sorted view of a [`Registry`] — the unit of exchange between
/// an experiment run and the bench JSON emitter.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Counter rows, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge rows, sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram rows, sorted by name.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl Snapshot {
    /// Serializes to the JSON shape embedded in bench reports:
    ///
    /// ```json
    /// {
    ///   "counters": {"name": 1},
    ///   "gauges": {"name": 0.5},
    ///   "histograms": {"name": {"count": …, "sum": …, "min": …, "max": …,
    ///                            "p50": …, "p95": …, "p99": …,
    ///                            "buckets": [[lo, hi, count], …]}}
    /// }
    /// ```
    pub fn to_json(&self) -> Json {
        let counters = Json::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Json::uint(*v)))
                .collect(),
        );
        let gauges = Json::Object(
            self.gauges
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let histograms = Json::Object(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Json::Array(
                        h.buckets
                            .iter()
                            .map(|&(lo, hi, c)| {
                                Json::Array(vec![Json::Num(lo), Json::Num(hi), Json::uint(c)])
                            })
                            .collect(),
                    );
                    let obj = Json::object()
                        .with("count", Json::uint(h.count))
                        .with("sum", Json::Num(h.sum))
                        .with("min", Json::Num(h.min))
                        .with("max", Json::Num(h.max))
                        .with("p50", Json::Num(h.p50))
                        .with("p95", Json::Num(h.p95))
                        .with("p99", Json::Num(h.p99))
                        .with("buckets", buckets);
                    (k.clone(), obj)
                })
                .collect(),
        );
        Json::object()
            .with("counters", counters)
            .with("gauges", gauges)
            .with("histograms", histograms)
    }

    /// Counter rows whose [`labeled`] base equals `base`, as
    /// `(label value, count)` pairs in name order — e.g. every host's
    /// `store.flush_total{host="…"}` row.
    pub fn counters_with_base<'a>(&'a self, base: &str) -> Vec<(&'a str, u64)> {
        self.counters
            .iter()
            .filter_map(|(name, v)| {
                let (b, label) = split_label(name);
                (b == base).then_some((label?.1, *v))
            })
            .collect()
    }

    /// Looks up a counter row by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Rebuilds a snapshot from [`Snapshot::to_json`] output (round-trip
    /// schema check; also lets tooling diff `results/*.json` files).
    ///
    /// Returns `None` when the document does not match the schema.
    pub fn from_json(doc: &Json) -> Option<Snapshot> {
        let objects = |key: &str| -> Option<Vec<(String, Json)>> {
            match doc.get(key)? {
                Json::Object(entries) => Some(entries.clone()),
                _ => None,
            }
        };
        let counters = objects("counters")?
            .into_iter()
            .map(|(k, v)| Some((k, v.as_f64()? as u64)))
            .collect::<Option<Vec<_>>>()?;
        let gauges = objects("gauges")?
            .into_iter()
            .map(|(k, v)| Some((k, v.as_f64()?)))
            .collect::<Option<Vec<_>>>()?;
        let histograms = objects("histograms")?
            .into_iter()
            .map(|(k, v)| {
                let field = |name: &str| v.get(name)?.as_f64();
                let buckets = v
                    .get("buckets")?
                    .as_array()?
                    .iter()
                    .map(|row| {
                        let row = row.as_array()?;
                        Some((
                            row.first()?.as_f64()?,
                            row.get(1)?.as_f64()?,
                            row.get(2)?.as_f64()? as u64,
                        ))
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some((
                    k,
                    HistogramSummary {
                        count: field("count")? as u64,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        p50: field("p50")?,
                        p95: field("p95")?,
                        p99: field("p99")?,
                        buckets,
                    },
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Snapshot {
            counters,
            gauges,
            histograms,
        })
    }
}

/// A time series of [`Snapshot`]s sampled on a fixed sim-time interval —
/// the export mode that turns end-of-run totals into a timeline (e.g.
/// cache hit rate *during* a partition vs after it heals).
///
/// Drive it from any periodic hook with [`maybe_sample`]; sampling is
/// edge-triggered (at most one frame per call), so a hook that fires
/// more often than `every` samples on the interval and a hook that
/// fires less often degrades to the hook's own cadence.
///
/// [`maybe_sample`]: SnapshotSeries::maybe_sample
#[derive(Debug, Clone, Default)]
pub struct SnapshotSeries {
    every: SimDuration,
    next: Option<SimTime>,
    frames: Vec<(SimTime, Snapshot)>,
}

impl SnapshotSeries {
    /// A series sampling every `every` of sim time. The first
    /// `maybe_sample` call always records a frame.
    pub fn new(every: SimDuration) -> Self {
        SnapshotSeries {
            every,
            next: None,
            frames: Vec::new(),
        }
    }

    /// Records a frame if one is due; returns whether it sampled.
    pub fn maybe_sample(&mut self, now: SimTime, reg: &Registry) -> bool {
        if self.next.is_some_and(|next| now < next) {
            return false;
        }
        self.frames.push((now, reg.snapshot()));
        self.next = Some(now + self.every);
        true
    }

    /// The recorded `(time, snapshot)` frames, oldest first.
    pub fn frames(&self) -> &[(SimTime, Snapshot)] {
        &self.frames
    }

    /// Number of frames recorded.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether nothing was sampled.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Serializes as `{"interval_seconds": …, "frames": [{"t": seconds,
    /// "counters": …, "gauges": …, "histograms": …}, …]}` — each frame
    /// is a full [`Snapshot::to_json`] document plus its timestamp.
    pub fn to_json(&self) -> Json {
        let frames = Json::Array(
            self.frames
                .iter()
                .map(|(t, snap)| {
                    let secs = t.saturating_duration_since(SimTime::ZERO).as_secs_f64();
                    let Json::Object(mut fields) = snap.to_json() else {
                        unreachable!("Snapshot::to_json returns an object");
                    };
                    fields.insert(0, ("t".to_string(), Json::Num(secs)));
                    Json::Object(fields)
                })
                .collect(),
        );
        Json::object()
            .with("interval_seconds", Json::Num(self.every.as_secs_f64()))
            .with("frames", frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_has_no_summary() {
        assert!(Series::new().summary().is_none());
        assert!(Series::new().is_empty());
    }

    #[test]
    fn labeled_round_trips_through_split() {
        let name = labeled("store.flush_total", "host", 42);
        assert_eq!(name, "store.flush_total{host=\"42\"}");
        assert_eq!(
            split_label(&name),
            ("store.flush_total", Some(("host", "42")))
        );
        assert_eq!(split_label("plain_total"), ("plain_total", None));
        assert_eq!(split_label("odd{shape"), ("odd{shape", None));
    }

    #[test]
    fn labeled_counters_group_in_snapshots() {
        let mut reg = Registry::new();
        for host in 0..3u32 {
            let id = reg.counter_labeled("store.flush_total", "host", host);
            reg.add(id, u64::from(host) + 1);
        }
        reg.set_counter("store.flush_total", 6); // the unlabeled sum
        let snap = reg.snapshot();
        let rows = snap.counters_with_base("store.flush_total");
        assert_eq!(rows, vec![("0", 1), ("1", 2), ("2", 3)]);
        assert_eq!(snap.counter("store.flush_total"), Some(6));
        assert_eq!(snap.counter("missing"), None);
    }

    #[test]
    fn snapshot_series_samples_on_interval() {
        let mut reg = Registry::new();
        let c = reg.counter("ticks_total");
        let mut series = SnapshotSeries::new(SimDuration::from_secs(10));
        let t0 = SimTime::ZERO;
        assert!(series.maybe_sample(t0, &reg), "first call always samples");
        reg.inc(c);
        assert!(
            !series.maybe_sample(t0 + SimDuration::from_secs(5), &reg),
            "not due yet"
        );
        assert!(series.maybe_sample(t0 + SimDuration::from_secs(10), &reg));
        reg.inc(c);
        assert!(series.maybe_sample(t0 + SimDuration::from_secs(25), &reg));
        assert_eq!(series.len(), 3);
        let counts: Vec<u64> = series
            .frames()
            .iter()
            .map(|(_, s)| s.counter("ticks_total").unwrap())
            .collect();
        assert_eq!(counts, vec![0, 1, 2], "frames freeze point-in-time values");
        let json = series.to_json();
        let frames = json.get("frames").unwrap().as_array().unwrap();
        assert_eq!(frames.len(), 3);
        assert_eq!(frames[1].get("t").unwrap().as_f64(), Some(10.0));
        assert!(
            Snapshot::from_json(frames.last().unwrap()).is_some(),
            "each frame is a full snapshot document (plus its timestamp)"
        );
    }

    #[test]
    fn summary_of_known_values() {
        let s: Series = (1..=5).map(|x| x as f64).collect();
        let sum = s.summary().unwrap();
        assert_eq!(sum.count, 5);
        assert!((sum.mean - 3.0).abs() < 1e-12);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 5.0);
        assert_eq!(sum.median, 3.0);
        // Sample std of 1..5 = sqrt(2.5)
        assert!((sum.std_dev - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_sample_summary() {
        let mut s = Series::new();
        s.record(7.0);
        let sum = s.summary().unwrap();
        assert_eq!(sum.std_dev, 0.0);
        assert_eq!(sum.median, 7.0);
        assert_eq!(sum.p99, 7.0);
    }

    #[test]
    fn histogram_counts_sum_to_len() {
        let s: Series = (0..100).map(|x| x as f64 / 10.0).collect();
        let h = s.histogram(0.0, 10.0, 5);
        assert_eq!(h.len(), 5);
        assert_eq!(h.iter().map(|b| b.count).sum::<usize>(), 100);
        assert_eq!(h[0].count, 20);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut s = Series::new();
        s.record(-100.0);
        s.record(0.25);
        s.record(1e9);
        let h = s.histogram(0.0, 1.0, 2);
        assert_eq!(h[0].count, 2); // -100 clamps into first bucket, 0.25 lands there
        assert_eq!(h[1].count, 1); // 1e9 clamps into last
    }

    #[test]
    fn display_summary() {
        let s: Series = vec![1.0, 2.0].into_iter().collect();
        let text = s.summary().unwrap().to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=1.500"));
    }

    #[test]
    fn percentile_interpolates_linearly() {
        // R-7: p95 of [10, 20, 30, 40] has rank 3·0.95 = 2.85 →
        // 30 + 0.85·(40-30) = 38.5.
        let s: Series = vec![10.0, 20.0, 30.0, 40.0].into_iter().collect();
        let sum = s.summary().unwrap();
        assert!((sum.p95 - 38.5).abs() < 1e-12);
        assert!((sum.median - 25.0).abs() < 1e-12);
    }

    #[test]
    fn registry_handles_are_idempotent() {
        let mut reg = Registry::new();
        let a = reg.counter("a_total");
        let a2 = reg.counter("a_total");
        assert_eq!(a, a2);
        reg.inc(a);
        reg.add(a2, 4);
        assert_eq!(reg.counter_value(a), 5);

        let g = reg.gauge("g");
        reg.set(g, 1.5);
        let h = reg.histogram("h_seconds");
        reg.observe(h, 0.25);
        assert_eq!(reg.histogram_state(h).count(), 1);
    }

    #[test]
    #[should_panic(expected = "another kind")]
    fn registry_rejects_kind_collision() {
        let mut reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn log_histogram_stats() {
        let mut h = LogHistogram::new();
        assert!(h.mean().is_none());
        assert!(h.quantile(0.5).is_none());
        for v in [0.001, 0.01, 0.1, 1.0, 10.0] {
            h.observe(v);
        }
        h.observe(f64::NAN); // dropped
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 11.111).abs() < 1e-9);
        let p50 = h.quantile(0.5).unwrap();
        // Median observation is 0.1; bucket resolution allows ~78 % error.
        assert!((0.05..0.2).contains(&p50), "p50 = {p50}");
        assert_eq!(h.quantile(1.0).unwrap(), 10.0);
        assert_eq!(h.buckets().iter().map(|b| b.count).sum::<usize>(), 5);
    }

    #[test]
    fn snapshot_rows_are_sorted() {
        let mut reg = Registry::new();
        reg.counter("zeta_total");
        reg.counter("alpha_total");
        reg.set_gauge("mid", 2.0);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["alpha_total", "zeta_total"]);
        assert_eq!(snap.gauges, vec![("mid".to_string(), 2.0)]);
    }

    #[test]
    fn snapshot_json_round_trip() {
        let mut reg = Registry::new();
        let c = reg.counter("world.exchanges_completed_total");
        reg.add(c, 17);
        reg.set_gauge("world.sim_time_seconds", 123.456);
        let h = reg.histogram("world.exchange_latency_seconds");
        for v in [0.5, 1.5, 2.5, 30.0] {
            reg.observe(h, v);
        }
        // Also an empty histogram: min/max must survive as zeros.
        reg.histogram("world.empty_seconds");

        let snap = reg.snapshot();
        let text = snap.to_json().render();
        let parsed = crate::json::parse(&text).expect("snapshot JSON parses");
        let back = Snapshot::from_json(&parsed).expect("snapshot schema matches");
        assert_eq!(back, snap);
    }

    #[test]
    fn snapshot_from_json_rejects_wrong_shape() {
        let doc = crate::json::parse(r#"{"counters": [], "gauges": {}}"#).unwrap();
        assert!(Snapshot::from_json(&doc).is_none());
    }
}
