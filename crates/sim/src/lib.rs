//! # bcwan-sim
//!
//! A deterministic discrete-event simulation kernel. The BcWAN paper
//! evaluated its proof of concept on PlanetLab hardware that no longer
//! exists; this crate replaces the testbed with a simulated clock, a
//! time-ordered event queue, seeded randomness, WAN latency models
//! (including a PlanetLab-shaped preset), and measurement collection.
//!
//! Layers above (`bcwan-lora`, `bcwan-p2p`, `bcwan`) define their own
//! event types and drive them through [`EventQueue`].
//!
//! ## Example
//!
//! ```
//! use bcwan_sim::{run, Actor, EventQueue, SimDuration, SimTime};
//!
//! struct Pinger { pongs: u32 }
//!
//! #[derive(Debug)]
//! enum Ev { Ping, Pong }
//!
//! impl Actor<Ev> for Pinger {
//!     fn handle(&mut self, _now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
//!         match ev {
//!             Ev::Ping => q.schedule_in(SimDuration::from_millis(40), Ev::Pong),
//!             Ev::Pong => self.pongs += 1,
//!         }
//!     }
//! }
//!
//! let mut world = Pinger { pongs: 0 };
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::ZERO, Ev::Ping);
//! run(&mut world, &mut q, None);
//! assert_eq!(world.pongs, 1);
//! assert_eq!(q.now().as_micros(), 40_000);
//! ```

#![warn(missing_docs)]

pub mod chaos;
pub mod json;
pub mod latency;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod time;
pub mod trace;

pub use chaos::{ChaosEngine, ChaosFault, ChaosMeters, ChaosPlan, ChaosProfile};
pub use json::Json;
pub use latency::LatencyModel;
pub use metrics::{
    labeled, split_label, Bucket, CounterId, GaugeId, HistogramId, HistogramSummary, LogHistogram,
    Registry, Series, Snapshot, SnapshotSeries, Summary,
};
pub use queue::{run, Actor, EventQueue};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::Tracer;
