//! The event queue at the heart of the discrete-event kernel.
//!
//! Events are generic: each simulation defines its own event type `E` and a
//! [`Actor`] that consumes them. Ties in time break by
//! insertion order (a monotone sequence number), which keeps runs fully
//! deterministic for a given seed.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so the BinaryHeap (a max-heap) pops the earliest entry.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered queue of simulation events.
///
/// # Examples
///
/// ```
/// use bcwan_sim::{EventQueue, SimDuration, SimTime};
///
/// let mut q: EventQueue<&str> = EventQueue::new();
/// q.schedule_in(SimDuration::from_secs(2), "later");
/// q.schedule_in(SimDuration::from_secs(1), "sooner");
/// let (t, e) = q.pop().unwrap();
/// assert_eq!(e, "sooner");
/// assert_eq!(t, SimTime::from_micros(1_000_000));
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The current simulated time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `at`.
    ///
    /// Scheduling in the past is clamped to `now` — the event fires
    /// immediately-next rather than violating clock monotonicity.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Schedules `event` after a relative delay.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "time went backwards");
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

/// A simulation world that reacts to events of type `E`.
///
/// The kernel pops events in time order and hands each to
/// [`Actor::handle`], which may schedule follow-up events on the queue.
pub trait Actor<E> {
    /// Processes one event at simulated instant `now`.
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>);
}

/// Runs the simulation until the queue drains or `until` is passed.
///
/// Returns the number of events processed. When `until` is given, events
/// with a timestamp strictly after it remain unprocessed (and the clock
/// stops at the last processed event).
pub fn run<E, W: Actor<E>>(
    world: &mut W,
    queue: &mut EventQueue<E>,
    until: Option<SimTime>,
) -> u64 {
    let mut processed = 0;
    while let Some(next) = queue.peek_time() {
        if let Some(limit) = until {
            if next > limit {
                break;
            }
        }
        let (now, event) = queue.pop().expect("peeked non-empty");
        world.handle(now, event, queue);
        processed += 1;
    }
    processed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(30), "c");
        q.schedule_at(SimTime::from_micros(10), "a");
        q.schedule_at(SimTime::from_micros(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_micros(5);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(1), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now().as_secs(), 1);
    }

    #[test]
    fn past_scheduling_clamps_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_micros(100), "first");
        q.pop();
        q.schedule_at(SimTime::from_micros(50), "late");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_micros(100));
    }

    struct Counter {
        fired: Vec<u32>,
    }

    impl Actor<u32> for Counter {
        fn handle(&mut self, _now: SimTime, event: u32, queue: &mut EventQueue<u32>) {
            self.fired.push(event);
            if event < 3 {
                queue.schedule_in(SimDuration::from_secs(1), event + 1);
            }
        }
    }

    #[test]
    fn run_drives_cascading_events() {
        let mut world = Counter { fired: Vec::new() };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 0);
        let n = run(&mut world, &mut q, None);
        assert_eq!(n, 4);
        assert_eq!(world.fired, vec![0, 1, 2, 3]);
        assert_eq!(q.now().as_secs(), 3);
    }

    #[test]
    fn run_respects_until() {
        let mut world = Counter { fired: Vec::new() };
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, 0);
        run(&mut world, &mut q, Some(SimTime::from_micros(1_500_000)));
        assert_eq!(world.fired, vec![0, 1]);
        assert_eq!(q.len(), 1); // event at t=2s still pending
    }
}
