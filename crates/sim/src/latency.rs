//! Network latency models.
//!
//! The paper's evaluation ran on five PlanetLab hosts spread across the
//! wide area plus an AWS master; one-way delays between such sites are
//! tens of milliseconds with a heavy right tail. [`LatencyModel`] captures
//! the distributions we need, and [`LatencyModel::planetlab`] is the
//! calibrated preset the figure harnesses use.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// A one-way network delay distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Always exactly this delay.
    Constant(SimDuration),
    /// Uniform in `[min, max]`.
    Uniform {
        /// Lower bound.
        min: SimDuration,
        /// Upper bound.
        max: SimDuration,
    },
    /// Normal with a floor (samples below `min` clamp up).
    Normal {
        /// Mean delay in seconds.
        mean_s: f64,
        /// Standard deviation in seconds.
        std_s: f64,
        /// Minimum physically-possible delay.
        min: SimDuration,
    },
    /// Log-normal (µ/σ of the underlying normal, in ln-seconds) with floor.
    LogNormal {
        /// Underlying normal mean (ln seconds).
        mu: f64,
        /// Underlying normal std dev (ln seconds).
        sigma: f64,
        /// Minimum physically-possible delay.
        min: SimDuration,
    },
}

impl LatencyModel {
    /// Zero-delay model (useful in unit tests).
    pub fn instant() -> Self {
        LatencyModel::Constant(SimDuration::ZERO)
    }

    /// Calibrated WAN preset shaped like PlanetLab inter-site one-way
    /// delays: median ≈ 40 ms, mean ≈ 50 ms, occasional 200 ms+ stragglers.
    pub fn planetlab() -> Self {
        // ln-median = ln(0.040 s), sigma chosen for a moderate heavy tail.
        LatencyModel::LogNormal {
            mu: (0.040f64).ln(),
            sigma: 0.6,
            min: SimDuration::from_millis(5),
        }
    }

    /// LAN preset: sub-millisecond, tight.
    pub fn lan() -> Self {
        LatencyModel::Normal {
            mean_s: 0.0004,
            std_s: 0.0001,
            min: SimDuration::from_micros(50),
        }
    }

    /// Draws one delay.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            LatencyModel::Constant(d) => *d,
            LatencyModel::Uniform { min, max } => {
                let lo = min.as_micros();
                let hi = max.as_micros().max(lo);
                SimDuration::from_micros(lo + (rng.uniform() * (hi - lo + 1) as f64) as u64)
            }
            LatencyModel::Normal { mean_s, std_s, min } => {
                let s = rng.normal(*mean_s, *std_s);
                SimDuration::from_secs_f64(s).max(*min)
            }
            LatencyModel::LogNormal { mu, sigma, min } => {
                let s = rng.log_normal(*mu, *sigma);
                SimDuration::from_secs_f64(s).max(*min)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::seed_from_u64(1);
        let m = LatencyModel::Constant(SimDuration::from_millis(10));
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng).as_millis(), 10);
        }
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SimRng::seed_from_u64(2);
        let m = LatencyModel::Uniform {
            min: SimDuration::from_millis(10),
            max: SimDuration::from_millis(20),
        };
        for _ in 0..200 {
            let d = m.sample(&mut rng);
            assert!(d >= SimDuration::from_millis(10), "{d}");
            assert!(d <= SimDuration::from_millis(21), "{d}");
        }
    }

    #[test]
    fn normal_clamps_to_min() {
        let mut rng = SimRng::seed_from_u64(3);
        let m = LatencyModel::Normal {
            mean_s: 0.001,
            std_s: 0.1, // huge spread: many negative raw samples
            min: SimDuration::from_millis(1),
        };
        for _ in 0..100 {
            assert!(m.sample(&mut rng) >= SimDuration::from_millis(1));
        }
    }

    #[test]
    fn planetlab_preset_plausible() {
        let mut rng = SimRng::seed_from_u64(4);
        let m = LatencyModel::planetlab();
        let n = 10_000;
        let samples: Vec<f64> = (0..n).map(|_| m.sample(&mut rng).as_secs_f64()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((0.03..0.08).contains(&mean), "mean one-way {mean}s");
        let max = samples.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.1, "should have heavy tail, max {max}");
        assert!(samples.iter().all(|&s| s >= 0.005));
    }

    #[test]
    fn instant_is_zero() {
        let mut rng = SimRng::seed_from_u64(5);
        assert_eq!(LatencyModel::instant().sample(&mut rng), SimDuration::ZERO);
    }
}
