//! Simulated clock types.
//!
//! The simulator counts microseconds in a `u64`, which covers half a
//! million simulated years — enough for any BcWAN experiment while keeping
//! arithmetic exact (no floating-point clock drift).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulated clock (microseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Builds an instant from raw microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// The instant as raw microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The instant as (truncated) whole seconds.
    pub fn as_secs(self) -> u64 {
        self.0 / 1_000_000
    }

    /// The instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Elapsed duration since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is after `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// Saturating version of [`SimTime::duration_since`].
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Builds a duration from fractional seconds (negative clamps to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e6).round() as u64)
    }

    /// The duration as raw microseconds.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration as milliseconds (truncated).
    pub fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Scales the duration by an integer factor.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, factor: u64) -> Self {
        SimDuration(self.0 * factor)
    }

    /// Checked subtraction.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0 + d.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0 + d.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        self.0 += d.0;
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.duration_since(other)
    }
}

/// Pretty-prints a microsecond count, picking µs/ms/s automatically.
fn fmt_micros(us: u64, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    if us < 1_000 {
        write!(f, "{us}µs")
    } else if us < 1_000_000 {
        write!(f, "{:.3}ms", us as f64 / 1e3)
    } else {
        write!(f, "{:.3}s", us as f64 / 1e6)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_micros(self.0, f)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_micros(self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1_500);
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimTime::from_micros(5_500_000).as_secs(), 5);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_secs(1);
        let t2 = t + SimDuration::from_millis(500);
        assert_eq!(t2 - t, SimDuration::from_millis(500));
        assert_eq!(t2.duration_since(SimTime::ZERO).as_secs_f64(), 1.5);
        assert_eq!(
            SimTime::ZERO.saturating_duration_since(t2),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "earlier is later")]
    fn duration_since_panics_on_reverse() {
        let _ = SimTime::ZERO.duration_since(SimTime::from_micros(1));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_micros(5).to_string(), "5µs");
        assert_eq!(SimDuration::from_micros(2_500).to_string(), "2.500ms");
        assert_eq!(SimDuration::from_secs(3).to_string(), "3.000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert!(SimDuration::from_millis(1) < SimDuration::from_secs(1));
    }
}
