//! Deterministic chaos scheduling: seeded fault plans for simulations.
//!
//! A [`ChaosPlan`] is a list of fault windows and one-shot faults drawn
//! from the experiment's [`SimRng`], so a chaotic run is exactly as
//! reproducible as a clean one — rerunning the same seed replays the
//! same crashes, partitions, bursts, and forks at the same simulated
//! instants. The [`ChaosEngine`] answers point-in-time queries ("is host
//! 3 down now?", "what extra LoRa loss applies?") and hands out one-shot
//! faults (connection kills, chain forks) exactly once.
//!
//! The engine is deliberately layer-agnostic: it knows about hosts,
//! links, radio loss, and block propagation as *categories*, and the
//! layer that owns each mechanism (the world simulation, the overlay,
//! the miner) interprets the fault. Activations are counted through the
//! [`ChaosMeters`] handles as `chaos.*` rows in the metrics registry.

use crate::metrics::{CounterId, Registry};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One scheduled fault.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosFault {
    /// Extra LoRa frame loss applied to every radio frame in the window
    /// (collision storm / interference burst).
    LoraBurst {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Loss probability while the burst is active (overrides the
        /// configured base loss when larger).
        loss: f64,
    },
    /// A host crashes at `from` and restarts at `until`: messages to or
    /// from it are dropped and its radio does not answer. Durable state
    /// (chain, provisioning) survives; volatile state (mempool, relay
    /// filters) is lost at restart.
    HostCrash {
        /// The crashed host. Generated plans draw from `1..=actor_hosts`
        /// and only target the master (host 0) when the profile's
        /// `master_crashes` knob explicitly schedules a failover drill.
        host: u32,
        /// Crash instant.
        from: SimTime,
        /// Restart instant.
        until: SimTime,
    },
    /// Kills the next `kills` overlay messages involving `host` (either
    /// as sender or receiver) after `from` — the event-level analogue of
    /// tearing down a TCP connection mid-frame on either side.
    ConnKill {
        /// The host whose connections die.
        host: u32,
        /// First instant at which kills apply.
        from: SimTime,
        /// How many messages to kill.
        kills: u32,
    },
    /// Delays every block broadcast leaving the miner inside the window
    /// (withheld / slow block propagation).
    BlockDelay {
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
        /// Extra propagation delay per block.
        delay: SimDuration,
    },
    /// Splits hosts `0..=boundary` from hosts `> boundary` for the
    /// window: messages across the cut are dropped.
    Partition {
        /// Highest host id in the first group.
        boundary: u32,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// The gateway on `host` withholds escrow claims during the window —
    /// the misbehaving-gateway case whose backstop is the escrow's
    /// `OP_CHECKLOCKTIMEVERIFY` refund branch.
    ClaimWithhold {
        /// The withholding gateway host.
        host: u32,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive; `SimTime::MAX`-like values model a
        /// gateway that vanished for good).
        until: SimTime,
    },
    /// One-shot: at the first mining opportunity after `at`, the miner
    /// abandons the top `depth` blocks and mines a longer empty branch,
    /// reorganizing every node and orphaning the transactions in the
    /// abandoned blocks.
    Fork {
        /// Earliest instant the fork fires.
        at: SimTime,
        /// How many tip blocks to orphan.
        depth: u32,
    },
    /// N-way network partition: each listed group can only talk to
    /// itself for the window; a link is cut iff its endpoints sit in
    /// *different* listed groups. Hosts in no group keep all their
    /// links — the generalization of the single [`ChaosFault::Partition`]
    /// boundary cut.
    PartitionGroups {
        /// The disjoint host groups. Two groups reproduce a boundary
        /// cut; three or more model the multi-way splits a federated
        /// WAN across several carriers can suffer.
        groups: Vec<Vec<u32>>,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Byzantine gateway: inside the window the gateway on `host` signs
    /// *two* conflicting claims against each escrow it settles (forked
    /// session state, different fee → different txid, both revealing the
    /// true `eSk` — the Listing 1 script makes lying about the key
    /// impossible) and broadcasts them to disjoint peer sets.
    Equivocate {
        /// The equivocating gateway host.
        host: u32,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Byzantine miner: while active as block producer inside the
    /// window, `miner` silently excludes claim and refund transactions
    /// from its block templates (escrows still confirm — the censor
    /// wants the timeout, not an empty chain).
    CensorClaims {
        /// The censoring miner host.
        miner: u32,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
}

/// A deterministic schedule of faults for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChaosPlan {
    /// The scheduled faults, in no particular order.
    pub faults: Vec<ChaosFault>,
}

/// Knobs for [`ChaosPlan::generate`]: how many of each fault to draw.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosProfile {
    /// Number of LoRa loss bursts.
    pub lora_bursts: u32,
    /// Loss probability inside a burst.
    pub lora_burst_loss: f64,
    /// Length of each burst.
    pub lora_burst_len: SimDuration,
    /// Number of host crash-and-restart windows.
    pub host_crashes: u32,
    /// Length of each crash window.
    pub crash_len: SimDuration,
    /// Number of connection-kill one-shots (each kills 1–3 messages).
    pub conn_kills: u32,
    /// Number of block-propagation delay windows.
    pub block_delays: u32,
    /// Extra delay per block inside a window.
    pub block_delay: SimDuration,
    /// Length of each delay window.
    pub block_delay_len: SimDuration,
    /// Number of network partitions.
    pub partitions: u32,
    /// Length of each partition.
    pub partition_len: SimDuration,
    /// Number of claim-withhold windows (misbehaving gateways).
    pub claim_withholds: u32,
    /// Length of each withhold window.
    pub withhold_len: SimDuration,
    /// Number of one-shot chain forks.
    pub forks: u32,
    /// Number of crash windows aimed at the master (host 0) itself.
    /// Zero in every profile that models the paper's AWS anchor staying
    /// up; non-zero profiles exercise miner failover, where a standby
    /// host must take over block production.
    pub master_crashes: u32,
    /// Length of each master crash window.
    pub master_crash_len: SimDuration,
    /// Number of N-way group-partition windows. Consecutive windows
    /// overlap (each starts halfway into the previous one), so plans
    /// exercise partitions that split while another is still healing.
    pub group_partitions: u32,
    /// How many groups each group partition splits the fleet into.
    pub partition_groups: u32,
    /// Length of each group-partition window.
    pub group_partition_len: SimDuration,
    /// Number of equivocation windows (Byzantine double-claiming
    /// gateways).
    pub equivocations: u32,
    /// Length of each equivocation window.
    pub equivocate_len: SimDuration,
    /// Number of claim-censorship windows aimed at the master miner.
    pub censorships: u32,
    /// Length of each censorship window.
    pub censor_len: SimDuration,
}

impl ChaosProfile {
    /// A mixed soak profile: every fault category represented.
    pub fn soak() -> Self {
        ChaosProfile {
            lora_bursts: 2,
            lora_burst_loss: 0.5,
            lora_burst_len: SimDuration::from_secs(20),
            host_crashes: 2,
            crash_len: SimDuration::from_secs(25),
            conn_kills: 3,
            block_delays: 1,
            block_delay: SimDuration::from_secs(6),
            block_delay_len: SimDuration::from_secs(30),
            partitions: 1,
            partition_len: SimDuration::from_secs(15),
            claim_withholds: 1,
            withhold_len: SimDuration::from_secs(100_000),
            forks: 2,
            master_crashes: 0,
            master_crash_len: SimDuration::ZERO,
            group_partitions: 0,
            partition_groups: 0,
            group_partition_len: SimDuration::ZERO,
            equivocations: 0,
            equivocate_len: SimDuration::ZERO,
            censorships: 0,
            censor_len: SimDuration::ZERO,
        }
    }

    /// A miner-failover drill: the master (host 0) crashes mid-run, so
    /// a standby host must take over mining until the master restarts
    /// and catches back up. Light background faults keep the drill
    /// honest without drowning the failover signal.
    pub fn master_failover() -> Self {
        ChaosProfile {
            lora_bursts: 1,
            lora_burst_loss: 0.4,
            lora_burst_len: SimDuration::from_secs(15),
            host_crashes: 1,
            crash_len: SimDuration::from_secs(20),
            conn_kills: 1,
            block_delays: 0,
            block_delay: SimDuration::ZERO,
            block_delay_len: SimDuration::ZERO,
            partitions: 0,
            partition_len: SimDuration::ZERO,
            claim_withholds: 0,
            withhold_len: SimDuration::ZERO,
            forks: 0,
            master_crashes: 1,
            master_crash_len: SimDuration::from_secs(60),
            group_partitions: 0,
            partition_groups: 0,
            group_partition_len: SimDuration::ZERO,
            equivocations: 0,
            equivocate_len: SimDuration::ZERO,
            censorships: 0,
            censor_len: SimDuration::ZERO,
        }
    }

    /// A Byzantine soak: active adversaries instead of passive faults —
    /// equivocating and withholding gateways, a censoring master miner,
    /// and overlapping three-way partitions. No crash windows: the
    /// adversaries are *up* and misbehaving, which is the harder case
    /// for the fairness argument.
    pub fn byzantine() -> Self {
        ChaosProfile {
            lora_bursts: 1,
            lora_burst_loss: 0.4,
            lora_burst_len: SimDuration::from_secs(15),
            host_crashes: 0,
            crash_len: SimDuration::ZERO,
            conn_kills: 2,
            block_delays: 0,
            block_delay: SimDuration::ZERO,
            block_delay_len: SimDuration::ZERO,
            partitions: 0,
            partition_len: SimDuration::ZERO,
            claim_withholds: 1,
            withhold_len: SimDuration::from_secs(100_000),
            forks: 1,
            master_crashes: 0,
            master_crash_len: SimDuration::ZERO,
            group_partitions: 2,
            partition_groups: 3,
            group_partition_len: SimDuration::from_secs(12),
            equivocations: 1,
            equivocate_len: SimDuration::from_secs(100_000),
            censorships: 1,
            censor_len: SimDuration::from_secs(90),
        }
    }
}

impl ChaosPlan {
    /// The empty plan: no faults, zero overhead.
    pub fn none() -> Self {
        ChaosPlan::default()
    }

    /// Whether the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Draws a plan from `rng`. Fault windows start inside the first 60%
    /// of `horizon` so recovery has room to finish before the run ends;
    /// hosts are drawn from `1..=actor_hosts` — the master, host 0, is
    /// the experiment's AWS anchor and crashes only when the profile's
    /// `master_crashes` knob schedules a failover drill.
    pub fn generate(
        rng: &mut SimRng,
        profile: &ChaosProfile,
        horizon: SimDuration,
        actor_hosts: u32,
    ) -> Self {
        assert!(actor_hosts > 0, "need at least one actor host");
        let mut faults = Vec::new();
        let start = |rng: &mut SimRng| {
            SimTime::ZERO
                + SimDuration::from_secs_f64(rng.uniform_range(0.05, 0.60) * horizon.as_secs_f64())
        };
        let actor = |rng: &mut SimRng| rng.index(actor_hosts as usize) as u32 + 1;
        for _ in 0..profile.lora_bursts {
            let from = start(rng);
            faults.push(ChaosFault::LoraBurst {
                from,
                until: from + profile.lora_burst_len,
                loss: profile.lora_burst_loss,
            });
        }
        for _ in 0..profile.host_crashes {
            let from = start(rng);
            faults.push(ChaosFault::HostCrash {
                host: actor(rng),
                from,
                until: from + profile.crash_len,
            });
        }
        for _ in 0..profile.master_crashes {
            let from = start(rng);
            faults.push(ChaosFault::HostCrash {
                host: 0,
                from,
                until: from + profile.master_crash_len,
            });
        }
        for _ in 0..profile.conn_kills {
            faults.push(ChaosFault::ConnKill {
                host: actor(rng),
                from: start(rng),
                kills: rng.index(3) as u32 + 1,
            });
        }
        for _ in 0..profile.block_delays {
            let from = start(rng);
            faults.push(ChaosFault::BlockDelay {
                from,
                until: from + profile.block_delay_len,
                delay: profile.block_delay,
            });
        }
        for _ in 0..profile.partitions {
            let from = start(rng);
            faults.push(ChaosFault::Partition {
                boundary: rng.index(actor_hosts as usize) as u32,
                from,
                until: from + profile.partition_len,
            });
        }
        for _ in 0..profile.claim_withholds {
            let from = start(rng);
            faults.push(ChaosFault::ClaimWithhold {
                host: actor(rng),
                from,
                until: from + profile.withhold_len,
            });
        }
        for _ in 0..profile.forks {
            faults.push(ChaosFault::Fork {
                at: start(rng),
                depth: rng.index(2) as u32 + 1,
            });
        }
        // Group partitions split the *whole* fleet — master included —
        // into `partition_groups` round-robin groups from a rotated
        // start, so which hosts share a side varies per window.
        // Consecutive windows start halfway into the previous one:
        // overlapping multi-way splits, not a single clean cut.
        if profile.group_partitions > 0 {
            let n_groups = profile.partition_groups.max(2) as usize;
            let mut from = start(rng);
            for _ in 0..profile.group_partitions {
                let offset = rng.index(n_groups);
                let mut groups = vec![Vec::new(); n_groups];
                for host in 0..=actor_hosts {
                    groups[(host as usize + offset) % n_groups].push(host);
                }
                faults.push(ChaosFault::PartitionGroups {
                    groups,
                    from,
                    until: from + profile.group_partition_len,
                });
                from += SimDuration::from_secs_f64(profile.group_partition_len.as_secs_f64() / 2.0);
            }
        }
        for _ in 0..profile.equivocations {
            let from = start(rng);
            faults.push(ChaosFault::Equivocate {
                host: actor(rng),
                from,
                until: from + profile.equivocate_len,
            });
        }
        for _ in 0..profile.censorships {
            let from = start(rng);
            faults.push(ChaosFault::CensorClaims {
                miner: 0,
                from,
                until: from + profile.censor_len,
            });
        }
        ChaosPlan { faults }
    }

    /// The hosts the plan marks adversarial — gateways scheduled to
    /// equivocate, withhold claims, or censor settlements. Crashes and
    /// network faults are *failures*, not misbehavior, and don't count.
    pub fn adversarial_hosts(&self) -> Vec<u32> {
        let mut hosts: Vec<u32> = self
            .faults
            .iter()
            .filter_map(|f| match f {
                ChaosFault::Equivocate { host, .. } => Some(*host),
                ChaosFault::ClaimWithhold { host, .. } => Some(*host),
                ChaosFault::CensorClaims { miner, .. } => Some(*miner),
                _ => None,
            })
            .collect();
        hosts.sort_unstable();
        hosts.dedup();
        hosts
    }
}

/// Counter handles for chaos activations (`chaos.*` registry rows).
#[derive(Debug, Clone, Copy)]
pub struct ChaosMeters {
    /// Radio frames lost to a LoRa burst.
    pub lora_drops: CounterId,
    /// Messages dropped because an endpoint was crashed.
    pub crash_drops: CounterId,
    /// Messages killed by a connection-kill fault.
    pub conn_kills: CounterId,
    /// Messages dropped across a partition cut.
    pub partition_drops: CounterId,
    /// Block broadcasts that left late.
    pub blocks_delayed: CounterId,
    /// Escrow claims a misbehaving gateway withheld.
    pub claims_withheld: CounterId,
    /// One-shot chain forks fired.
    pub forks: CounterId,
    /// Conflicting claim pairs an equivocating gateway injected.
    pub equivocations: CounterId,
    /// Settlement transactions a censoring miner excluded from a block
    /// template it produced.
    pub claims_censored: CounterId,
}

impl ChaosMeters {
    fn register(reg: &mut Registry) -> Self {
        ChaosMeters {
            lora_drops: reg.counter("chaos.lora_burst_drops_total"),
            crash_drops: reg.counter("chaos.crash_drops_total"),
            conn_kills: reg.counter("chaos.conn_kills_total"),
            partition_drops: reg.counter("chaos.partition_drops_total"),
            blocks_delayed: reg.counter("chaos.blocks_delayed_total"),
            claims_withheld: reg.counter("chaos.claims_withheld_total"),
            forks: reg.counter("chaos.forks_total"),
            equivocations: reg.counter("chaos.equivocations_injected_total"),
            claims_censored: reg.counter("chaos.claims_censored_total"),
        }
    }
}

/// Executes a [`ChaosPlan`]: point-in-time queries plus one-shot
/// consumption, all deterministic.
#[derive(Debug)]
pub struct ChaosEngine {
    plan: ChaosPlan,
    /// Remaining kills per `ConnKill` fault (parallel to plan order).
    conn_kills_left: Vec<u32>,
    /// Whether each `Fork` fault fired yet (parallel to plan order).
    forks_fired: Vec<bool>,
    meters: ChaosMeters,
}

impl ChaosEngine {
    /// Builds an engine over `plan`, registering the `chaos.*` counters
    /// (and recording how many faults were scheduled).
    pub fn new(plan: ChaosPlan, reg: &mut Registry) -> Self {
        let meters = ChaosMeters::register(reg);
        reg.set_counter("chaos.faults_scheduled_total", plan.faults.len() as u64);
        let conn_kills_left = plan
            .faults
            .iter()
            .map(|f| match f {
                ChaosFault::ConnKill { kills, .. } => *kills,
                _ => 0,
            })
            .collect();
        let forks_fired = vec![false; plan.faults.len()];
        ChaosEngine {
            plan,
            conn_kills_left,
            forks_fired,
            meters,
        }
    }

    /// The plan being executed.
    pub fn plan(&self) -> &ChaosPlan {
        &self.plan
    }

    /// Whether the plan schedules nothing (fast-path guard).
    pub fn is_idle(&self) -> bool {
        self.plan.is_empty()
    }

    /// Counter handles for chaos-attributed drops.
    pub fn meters(&self) -> ChaosMeters {
        self.meters
    }

    /// Extra LoRa loss probability active at `now` (0.0 when no burst).
    pub fn lora_loss_boost(&self, now: SimTime) -> f64 {
        self.plan
            .faults
            .iter()
            .filter_map(|f| match f {
                ChaosFault::LoraBurst { from, until, loss } if *from <= now && now < *until => {
                    Some(*loss)
                }
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Whether `host` is crashed at `now`.
    pub fn host_down(&self, host: u32, now: SimTime) -> bool {
        self.plan.faults.iter().any(|f| {
            matches!(f, ChaosFault::HostCrash { host: h, from, until }
                if *h == host && *from <= now && now < *until)
        })
    }

    /// Whether the link `a`↔`b` crosses an active partition cut —
    /// either side of a boundary [`ChaosFault::Partition`], or
    /// different groups of a [`ChaosFault::PartitionGroups`] window
    /// (hosts listed in no group keep all their links).
    pub fn partitioned(&self, a: u32, b: u32, now: SimTime) -> bool {
        self.plan.faults.iter().any(|f| match f {
            ChaosFault::Partition {
                boundary,
                from,
                until,
            } => *from <= now && now < *until && ((a <= *boundary) != (b <= *boundary)),
            ChaosFault::PartitionGroups {
                groups,
                from,
                until,
            } => {
                if !(*from <= now && now < *until) {
                    return false;
                }
                let side = |h: u32| groups.iter().position(|g| g.contains(&h));
                match (side(a), side(b)) {
                    (Some(ga), Some(gb)) => ga != gb,
                    _ => false,
                }
            }
            _ => false,
        })
    }

    /// Whether the gateway on `host` equivocates (double-claims) at
    /// `now`.
    pub fn equivocate_claim(&self, host: u32, now: SimTime) -> bool {
        self.plan.faults.iter().any(|f| {
            matches!(f, ChaosFault::Equivocate { host: h, from, until }
                if *h == host && *from <= now && now < *until)
        })
    }

    /// Whether `miner` censors settlement transactions from its block
    /// templates at `now`.
    pub fn censoring_miner(&self, miner: u32, now: SimTime) -> bool {
        self.plan.faults.iter().any(|f| {
            matches!(f, ChaosFault::CensorClaims { miner: m, from, until }
                if *m == miner && *from <= now && now < *until)
        })
    }

    /// Whether the gateway on `host` is withholding claims at `now`.
    pub fn withhold_claim(&self, host: u32, now: SimTime) -> bool {
        self.plan.faults.iter().any(|f| {
            matches!(f, ChaosFault::ClaimWithhold { host: h, from, until }
                if *h == host && *from <= now && now < *until)
        })
    }

    /// Extra block propagation delay at `now` (zero outside windows).
    pub fn block_delay(&self, now: SimTime) -> SimDuration {
        self.plan
            .faults
            .iter()
            .filter_map(|f| match f {
                ChaosFault::BlockDelay { from, until, delay } if *from <= now && now < *until => {
                    Some(*delay)
                }
                _ => None,
            })
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Consumes one connection kill involving `a` or `b`, if armed.
    pub fn take_conn_kill(&mut self, a: u32, b: u32, now: SimTime) -> bool {
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if let ChaosFault::ConnKill { host, from, .. } = fault {
                if (*host == a || *host == b) && *from <= now && self.conn_kills_left[i] > 0 {
                    self.conn_kills_left[i] -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Consumes the next unfired fork due at `now`, returning its depth.
    pub fn take_fork(&mut self, now: SimTime) -> Option<u32> {
        for (i, fault) in self.plan.faults.iter().enumerate() {
            if let ChaosFault::Fork { at, depth } = fault {
                if *at <= now && !self.forks_fired[i] {
                    self.forks_fired[i] = true;
                    return Some(*depth);
                }
            }
        }
        None
    }

    /// The restart instants of every crash window, for scheduling
    /// restart events: `(host, restart_at)` pairs.
    pub fn restarts(&self) -> Vec<(u32, SimTime)> {
        self.plan
            .faults
            .iter()
            .filter_map(|f| match f {
                ChaosFault::HostCrash { host, until, .. } => Some((*host, *until)),
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(secs)
    }

    fn engine(faults: Vec<ChaosFault>) -> ChaosEngine {
        let mut reg = Registry::new();
        ChaosEngine::new(ChaosPlan { faults }, &mut reg)
    }

    #[test]
    fn windows_are_half_open() {
        let e = engine(vec![ChaosFault::HostCrash {
            host: 2,
            from: t(10),
            until: t(20),
        }]);
        assert!(!e.host_down(2, t(9)));
        assert!(e.host_down(2, t(10)));
        assert!(e.host_down(2, t(19)));
        assert!(!e.host_down(2, t(20)));
        assert!(!e.host_down(1, t(15)));
    }

    #[test]
    fn lora_boost_takes_strongest_burst() {
        let e = engine(vec![
            ChaosFault::LoraBurst {
                from: t(0),
                until: t(50),
                loss: 0.3,
            },
            ChaosFault::LoraBurst {
                from: t(10),
                until: t(20),
                loss: 0.9,
            },
        ]);
        assert_eq!(e.lora_loss_boost(t(5)), 0.3);
        assert_eq!(e.lora_loss_boost(t(15)), 0.9);
        assert_eq!(e.lora_loss_boost(t(60)), 0.0);
    }

    #[test]
    fn partition_splits_groups() {
        let e = engine(vec![ChaosFault::Partition {
            boundary: 1,
            from: t(0),
            until: t(10),
        }]);
        assert!(e.partitioned(0, 2, t(5)));
        assert!(e.partitioned(3, 1, t(5)));
        assert!(!e.partitioned(0, 1, t(5)), "same side of the cut");
        assert!(!e.partitioned(2, 3, t(5)), "same side of the cut");
        assert!(!e.partitioned(0, 2, t(10)), "window over");
    }

    #[test]
    fn conn_kills_consume_exactly_n() {
        let mut e = engine(vec![ChaosFault::ConnKill {
            host: 1,
            from: t(5),
            kills: 2,
        }]);
        assert!(!e.take_conn_kill(1, 2, t(0)), "not armed yet");
        assert!(e.take_conn_kill(1, 2, t(5)));
        assert!(e.take_conn_kill(3, 1, t(6)), "receive side counts too");
        assert!(!e.take_conn_kill(1, 2, t(7)), "budget spent");
        assert!(!e.take_conn_kill(0, 2, t(6)), "other hosts unaffected");
    }

    #[test]
    fn forks_fire_once() {
        let mut e = engine(vec![ChaosFault::Fork { at: t(5), depth: 2 }]);
        assert_eq!(e.take_fork(t(4)), None);
        assert_eq!(e.take_fork(t(5)), Some(2));
        assert_eq!(e.take_fork(t(6)), None);
    }

    #[test]
    fn generate_is_deterministic_and_spares_the_master() {
        let horizon = SimDuration::from_secs(600);
        let mut rng_a = SimRng::seed_from_u64(7);
        let mut rng_b = SimRng::seed_from_u64(7);
        let a = ChaosPlan::generate(&mut rng_a, &ChaosProfile::soak(), horizon, 3);
        let b = ChaosPlan::generate(&mut rng_b, &ChaosProfile::soak(), horizon, 3);
        assert_eq!(a, b, "same seed, same plan");
        assert!(!a.is_empty());
        for fault in &a.faults {
            if let ChaosFault::HostCrash { host, .. } = fault {
                assert!((1..=3).contains(host), "master never crashes");
            }
        }
    }

    #[test]
    fn master_failover_profile_schedules_a_host_zero_crash() {
        let horizon = SimDuration::from_secs(600);
        let mut rng = SimRng::seed_from_u64(11);
        let plan = ChaosPlan::generate(&mut rng, &ChaosProfile::master_failover(), horizon, 3);
        let master_windows: Vec<_> = plan
            .faults
            .iter()
            .filter(|f| matches!(f, ChaosFault::HostCrash { host: 0, .. }))
            .collect();
        assert_eq!(master_windows.len(), 1, "exactly one master crash window");
        for fault in &plan.faults {
            if let ChaosFault::HostCrash { host, from, until } = fault {
                assert!(*host <= 3, "crash hosts stay inside the fleet");
                assert!(until > from, "crash windows are non-empty");
            }
        }
    }

    #[test]
    fn group_partition_cuts_only_cross_group_links() {
        let e = engine(vec![ChaosFault::PartitionGroups {
            groups: vec![vec![0, 3], vec![1, 4], vec![2]],
            from: t(0),
            until: t(10),
        }]);
        assert!(e.partitioned(0, 1, t(5)), "different groups");
        assert!(e.partitioned(3, 2, t(5)), "different groups");
        assert!(!e.partitioned(0, 3, t(5)), "same group");
        assert!(!e.partitioned(1, 4, t(5)), "same group");
        assert!(!e.partitioned(0, 5, t(5)), "host 5 in no group keeps links");
        assert!(!e.partitioned(0, 1, t(10)), "window over");
    }

    #[test]
    fn byzantine_profile_generates_overlapping_three_way_partitions() {
        let horizon = SimDuration::from_secs(600);
        let mut rng = SimRng::seed_from_u64(5);
        let plan = ChaosPlan::generate(&mut rng, &ChaosProfile::byzantine(), horizon, 4);
        let windows: Vec<(SimTime, SimTime)> = plan
            .faults
            .iter()
            .filter_map(|f| match f {
                ChaosFault::PartitionGroups {
                    groups,
                    from,
                    until,
                } => {
                    assert_eq!(groups.len(), 3, "three-way split");
                    let total: usize = groups.iter().map(Vec::len).sum();
                    assert_eq!(total, 5, "every host (master included) in a group");
                    assert!(groups.iter().all(|g| !g.is_empty()));
                    Some((*from, *until))
                }
                _ => None,
            })
            .collect();
        assert_eq!(windows.len(), 2);
        assert!(
            windows[1].0 < windows[0].1,
            "second window starts inside the first"
        );
        assert!(
            plan.faults
                .iter()
                .any(|f| matches!(f, ChaosFault::Equivocate { .. })),
            "byzantine profile schedules an equivocation"
        );
        assert!(
            plan.faults
                .iter()
                .any(|f| matches!(f, ChaosFault::CensorClaims { miner: 0, .. })),
            "byzantine profile aims censorship at the master miner"
        );
    }

    #[test]
    fn equivocate_and_censor_windows_are_half_open() {
        let e = engine(vec![
            ChaosFault::Equivocate {
                host: 2,
                from: t(10),
                until: t(20),
            },
            ChaosFault::CensorClaims {
                miner: 0,
                from: t(5),
                until: t(15),
            },
        ]);
        assert!(!e.equivocate_claim(2, t(9)));
        assert!(e.equivocate_claim(2, t(10)));
        assert!(!e.equivocate_claim(2, t(20)));
        assert!(!e.equivocate_claim(1, t(15)), "other hosts honest");
        assert!(!e.censoring_miner(0, t(4)));
        assert!(e.censoring_miner(0, t(5)));
        assert!(!e.censoring_miner(0, t(15)));
        assert!(!e.censoring_miner(1, t(10)), "other miners honest");
    }

    #[test]
    fn adversarial_hosts_lists_byzantine_actors_only() {
        let plan = ChaosPlan {
            faults: vec![
                ChaosFault::Equivocate {
                    host: 3,
                    from: t(0),
                    until: t(10),
                },
                ChaosFault::ClaimWithhold {
                    host: 1,
                    from: t(0),
                    until: t(10),
                },
                ChaosFault::CensorClaims {
                    miner: 0,
                    from: t(0),
                    until: t(10),
                },
                ChaosFault::HostCrash {
                    host: 2,
                    from: t(0),
                    until: t(10),
                },
                ChaosFault::Equivocate {
                    host: 3,
                    from: t(20),
                    until: t(30),
                },
            ],
        };
        assert_eq!(plan.adversarial_hosts(), vec![0, 1, 3]);
    }

    #[test]
    fn restarts_report_crash_ends() {
        let e = engine(vec![
            ChaosFault::HostCrash {
                host: 1,
                from: t(5),
                until: t(9),
            },
            ChaosFault::Partition {
                boundary: 0,
                from: t(0),
                until: t(1),
            },
        ]);
        assert_eq!(e.restarts(), vec![(1, t(9))]);
    }
}
