//! Seeded randomness and distribution sampling for simulations.
//!
//! Every experiment takes a single `u64` seed; all stochastic behaviour
//! (key generation, latency draws, sensor jitter) flows from it, so runs
//! are exactly reproducible.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulation RNG: a seeded [`StdRng`] plus distribution helpers.
pub struct SimRng {
    inner: StdRng,
}

impl std::fmt::Debug for SimRng {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SimRng { .. }")
    }
}

impl SimRng {
    /// Creates an RNG from an experiment seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Forks an independent child RNG (e.g. one per simulated host) so
    /// adding hosts does not perturb other hosts' draws.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let base = self.inner.gen::<u64>();
        SimRng::seed_from_u64(base ^ label.wrapping_mul(0x9e3779b97f4a7c15))
    }

    /// Derives stream `label` of experiment `seed` *without* consuming any
    /// state from a parent RNG.
    ///
    /// Unlike [`SimRng::fork`], which draws from the parent (so stream
    /// identity depends on fork order), `stream` is a pure function of
    /// `(seed, label)`. That makes it the right constructor for sharded
    /// simulations stepped on worker threads: shard `k` always gets the
    /// same stream no matter how many threads run or in what order shards
    /// are created. The mixing is a splitmix64 finalizer over
    /// `seed ⊕ φ·label`, so nearby labels land on unrelated seeds.
    pub fn stream(seed: u64, label: u64) -> SimRng {
        let mut z = seed ^ label.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        SimRng::seed_from_u64(z ^ (z >> 31))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[low, high)`.
    pub fn uniform_range(&mut self, low: f64, high: f64) -> f64 {
        assert!(high >= low, "empty range");
        low + self.uniform() * (high - low)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Exponential draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "mean must be positive");
        let u: f64 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        -mean * u.ln()
    }

    /// Normal draw via Box–Muller.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "std_dev must be non-negative");
        let u1: f64 = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        mean + std_dev * z
    }

    /// Log-normal draw parameterized by the *underlying* normal's µ and σ.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(99);
        let mut b = SimRng::seed_from_u64(99);
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forks_are_independent_of_sibling_count() {
        let mut parent1 = SimRng::seed_from_u64(1);
        let mut parent2 = SimRng::seed_from_u64(1);
        let mut child_a1 = parent1.fork(0);
        let mut child_a2 = parent2.fork(0);
        assert_eq!(child_a1.next_u64(), child_a2.next_u64());
    }

    #[test]
    fn streams_are_pure_functions_of_seed_and_label() {
        let mut a = SimRng::stream(42, 3);
        let mut b = SimRng::stream(42, 3);
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        // Different labels (and different seeds) give different streams.
        let mut c = SimRng::stream(42, 4);
        let mut d = SimRng::stream(43, 3);
        let x = SimRng::stream(42, 3).next_u64();
        assert_ne!(c.next_u64(), x);
        assert_ne!(d.next_u64(), x);
    }

    #[test]
    fn exponential_mean_roughly_correct() {
        let mut rng = SimRng::seed_from_u64(7);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.2, "mean was {mean}");
    }

    #[test]
    fn normal_moments_roughly_correct() {
        let mut rng = SimRng::seed_from_u64(8);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(9);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-5.0));
        assert!(rng.chance(7.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::seed_from_u64(10);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn uniform_range_bounds() {
        let mut rng = SimRng::seed_from_u64(11);
        for _ in 0..100 {
            let x = rng.uniform_range(2.0, 3.0);
            assert!((2.0..3.0).contains(&x));
        }
    }
}
