//! Property tests for the discrete-event kernel and metrics.

// QUARANTINED (see ROADMAP "Open items"): the proptest crate cannot be
// fetched in the offline build environment, so this suite only compiles
// with `--features proptest-tests` after restoring the proptest
// dev-dependency in Cargo.toml. The properties themselves are still the
// reference spec for this crate's invariants.
#![cfg(feature = "proptest-tests")]

use bcwan_sim::{Bucket, EventQueue, Series, SimDuration, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Events always pop in non-decreasing time order, with FIFO ties.
    #[test]
    fn queue_pops_in_order(times in proptest::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q: EventQueue<usize> = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(t), i);
        }
        let mut last_time = SimTime::ZERO;
        let mut popped = Vec::new();
        while let Some((t, id)) = q.pop() {
            prop_assert!(t >= last_time, "time went backwards");
            last_time = t;
            popped.push((t, id));
        }
        prop_assert_eq!(popped.len(), times.len());
        // FIFO among equal timestamps: ids at the same time are ascending.
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke out of order");
            }
        }
    }

    /// The clock equals the timestamp of the last popped event and
    /// scheduling in the past clamps to now.
    #[test]
    fn clock_monotone_under_mixed_scheduling(
        script in proptest::collection::vec((0u64..1000, any::<bool>()), 1..50),
    ) {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule_at(SimTime::from_micros(10), 0);
        let mut last = SimTime::ZERO;
        let mut i = 0;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
            if let Some(&(delta, past)) = script.get(i) {
                if past {
                    // Past-time schedule clamps to now.
                    q.schedule_at(SimTime::ZERO, i as u32);
                } else {
                    q.schedule_in(SimDuration::from_micros(delta), i as u32);
                }
            }
            i += 1;
            if i > script.len() {
                break;
            }
        }
    }

    /// Summary statistics are internally consistent for any sample set.
    #[test]
    fn summary_invariants(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let series: Series = samples.iter().copied().collect();
        let s = series.summary().unwrap();
        prop_assert_eq!(s.count, samples.len());
        prop_assert!(s.min <= s.median && s.median <= s.max);
        prop_assert!(s.median <= s.p95 && s.p95 <= s.p99 && s.p99 <= s.max);
        prop_assert!(s.min <= s.mean && s.mean <= s.max);
        prop_assert!(s.std_dev >= 0.0);
    }

    /// Histogram counts always total the sample count, over any range.
    #[test]
    fn histogram_total_invariant(
        samples in proptest::collection::vec(-100f64..100.0, 0..100),
        lo in -50f64..0.0,
        width in 1f64..100.0,
        buckets in 1usize..20,
    ) {
        let series: Series = samples.iter().copied().collect();
        let hist = series.histogram(lo, lo + width, buckets);
        prop_assert_eq!(hist.len(), buckets);
        let total: usize = hist.iter().map(|b: &Bucket| b.count).sum();
        prop_assert_eq!(total, samples.len());
        // Buckets tile the range contiguously.
        for w in hist.windows(2) {
            prop_assert!((w[0].hi - w[1].lo).abs() < 1e-9);
        }
    }
}
