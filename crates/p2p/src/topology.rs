//! Node identities and overlay topology.

use std::collections::{HashMap, HashSet};
use std::fmt;

/// A peer identifier on the overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Which peers can talk to which.
///
/// BcWAN gateways "communicate directly with another gateway in a
/// peer-to-peer manner"; the paper's five-node PlanetLab deployment is a
/// full mesh, but sparse topologies are useful for gossip experiments.
#[derive(Debug, Clone)]
pub struct Topology {
    adjacency: HashMap<NodeId, HashSet<NodeId>>,
}

impl Topology {
    /// A full mesh over `n` nodes with ids `0..n`.
    pub fn full_mesh(n: u32) -> Self {
        let mut adjacency = HashMap::new();
        for i in 0..n {
            let peers: HashSet<NodeId> = (0..n).filter(|&j| j != i).map(NodeId).collect();
            adjacency.insert(NodeId(i), peers);
        }
        Topology { adjacency }
    }

    /// A ring over `n` nodes (each node sees its two neighbours).
    pub fn ring(n: u32) -> Self {
        let mut adjacency: HashMap<NodeId, HashSet<NodeId>> = HashMap::new();
        for i in 0..n {
            let mut peers = HashSet::new();
            if n > 1 {
                peers.insert(NodeId((i + 1) % n));
                peers.insert(NodeId((i + n - 1) % n));
            }
            adjacency.insert(NodeId(i), peers);
        }
        Topology { adjacency }
    }

    /// An empty topology to build up with [`Topology::connect`].
    pub fn empty(n: u32) -> Self {
        Topology {
            adjacency: (0..n).map(|i| (NodeId(i), HashSet::new())).collect(),
        }
    }

    /// Adds a bidirectional link.
    pub fn connect(&mut self, a: NodeId, b: NodeId) {
        if a == b {
            return;
        }
        self.adjacency.entry(a).or_default().insert(b);
        self.adjacency.entry(b).or_default().insert(a);
    }

    /// Removes a bidirectional link (partition injection).
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) {
        if let Some(peers) = self.adjacency.get_mut(&a) {
            peers.remove(&b);
        }
        if let Some(peers) = self.adjacency.get_mut(&b) {
            peers.remove(&a);
        }
    }

    /// All nodes.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency.keys().copied()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether there are no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Peers of `node` (empty for unknown nodes).
    pub fn peers_of(&self, node: NodeId) -> Vec<NodeId> {
        let mut peers: Vec<NodeId> = self
            .adjacency
            .get(&node)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        peers.sort_unstable(); // deterministic iteration for the simulator
        peers
    }

    /// Whether a direct link exists.
    pub fn linked(&self, a: NodeId, b: NodeId) -> bool {
        self.adjacency
            .get(&a)
            .is_some_and(|peers| peers.contains(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mesh_links_everyone() {
        let t = Topology::full_mesh(5);
        assert_eq!(t.len(), 5);
        for i in 0..5 {
            assert_eq!(t.peers_of(NodeId(i)).len(), 4);
            for j in 0..5 {
                assert_eq!(t.linked(NodeId(i), NodeId(j)), i != j);
            }
        }
    }

    #[test]
    fn ring_has_two_neighbours() {
        let t = Topology::ring(6);
        for i in 0..6 {
            assert_eq!(t.peers_of(NodeId(i)).len(), 2, "node {i}");
        }
        assert!(t.linked(NodeId(0), NodeId(5)));
        assert!(!t.linked(NodeId(0), NodeId(3)));
    }

    #[test]
    fn connect_disconnect() {
        let mut t = Topology::empty(3);
        assert!(t.peers_of(NodeId(0)).is_empty());
        t.connect(NodeId(0), NodeId(1));
        assert!(t.linked(NodeId(0), NodeId(1)));
        assert!(t.linked(NodeId(1), NodeId(0)));
        t.disconnect(NodeId(0), NodeId(1));
        assert!(!t.linked(NodeId(0), NodeId(1)));
        // Self-links ignored.
        t.connect(NodeId(2), NodeId(2));
        assert!(!t.linked(NodeId(2), NodeId(2)));
    }

    #[test]
    fn peers_sorted_for_determinism() {
        let t = Topology::full_mesh(10);
        let peers = t.peers_of(NodeId(3));
        let mut sorted = peers.clone();
        sorted.sort_unstable();
        assert_eq!(peers, sorted);
    }
}
