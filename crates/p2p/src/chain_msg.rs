//! Chain gossip messages and relay bookkeeping.
//!
//! In BcWAN each gateway runs a full node: transactions and blocks flood
//! the overlay, and "on start-up, each node retrieves the recent blocks
//! from other nodes" (paper §5.1). [`ChainMessage`] is the wire
//! vocabulary; [`RelayState`] decides what to re-flood.

use crate::network::SeenFilter;
use bcwan_chain::{Block, BlockHash, BlockHeader, Transaction, TxId};

/// Messages gateways exchange about the chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainMessage {
    /// A new transaction for the mempool.
    Tx(Transaction),
    /// A freshly mined block.
    Block(Block),
    /// Request a block by hash (orphan-parent fetch or initial sync).
    GetBlock(BlockHash),
    /// Request main-chain blocks *strictly above* a height (initial
    /// sync and partition catch-up). Servers answer with a bounded
    /// batch of `Block` messages; a still-behind requester re-asks from
    /// its new tip.
    GetBlocksFrom(u64),
    /// Inventory announcement of the sender's tip.
    TipAnnounce {
        /// Sender's best hash.
        hash: BlockHash,
        /// Sender's best height.
        height: u64,
    },
    /// Headers-first sync, step 1: request main-chain headers *strictly
    /// above* a height. Servers answer with one bounded [`Headers`]
    /// batch; the requester walks back (doubling its look-behind) until
    /// a batch connects to its own chain, locating the fork without
    /// transferring bodies.
    ///
    /// [`Headers`]: ChainMessage::Headers
    GetHeadersFrom(u64),
    /// Headers-first sync, step 2: a bounded batch of main-chain
    /// headers answering [`GetHeadersFrom`].
    ///
    /// [`GetHeadersFrom`]: ChainMessage::GetHeadersFrom
    Headers {
        /// Height the batch starts above: `headers[i]` sits at
        /// `start_height + 1 + i` on the sender's main chain.
        start_height: u64,
        /// The headers, parent before child.
        headers: Vec<BlockHeader>,
    },
}

impl ChainMessage {
    /// A 32-byte relay-dedup id for floodable messages (`None` for
    /// request/response traffic, which is never re-flooded).
    pub fn flood_id(&self) -> Option<[u8; 32]> {
        match self {
            ChainMessage::Tx(tx) => Some(tx.txid().0),
            ChainMessage::Block(block) => Some(block.hash().0),
            _ => None,
        }
    }
}

/// Per-node relay state: which transactions/blocks it already saw.
#[derive(Debug, Clone, Default)]
pub struct RelayState {
    seen: SeenFilter,
}

impl RelayState {
    /// Fresh state.
    pub fn new() -> Self {
        RelayState::default()
    }

    /// Whether `msg` is new to this node and should be processed and
    /// re-flooded. Request/response messages always process, never flood.
    pub fn should_relay(&mut self, msg: &ChainMessage) -> bool {
        match msg.flood_id() {
            Some(id) => self.seen.first_sighting(id),
            None => false,
        }
    }

    /// Marks an id as seen without receiving it (e.g. self-originated
    /// messages), returning whether it was new.
    pub fn mark_seen(&mut self, id: [u8; 32]) -> bool {
        self.seen.first_sighting(id)
    }

    /// Whether a transaction id was seen.
    pub fn saw_tx(&mut self, txid: &TxId) -> bool {
        !self.seen.first_sighting(txid.0)
    }

    /// Forgets an id so a future re-broadcast relays again — required
    /// when a reorg orphans a transaction that must propagate anew.
    pub fn forget(&mut self, id: &[u8; 32]) -> bool {
        self.seen.forget(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcwan_chain::{ChainParams, Wallet};
    use rand::SeedableRng;

    fn sample_block() -> Block {
        let params = ChainParams::fast_test();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = Wallet::generate(&mut rng);
        bcwan_chain::Chain::make_genesis(&params, &[(w.address(), 10)])
    }

    #[test]
    fn flood_ids_for_tx_and_block() {
        let block = sample_block();
        let tx = block.transactions[0].clone();
        assert_eq!(ChainMessage::Tx(tx.clone()).flood_id(), Some(tx.txid().0));
        assert_eq!(
            ChainMessage::Block(block.clone()).flood_id(),
            Some(block.hash().0)
        );
        assert_eq!(ChainMessage::GetBlock(block.hash()).flood_id(), None);
        assert_eq!(ChainMessage::GetBlocksFrom(0).flood_id(), None);
        assert_eq!(ChainMessage::GetHeadersFrom(0).flood_id(), None);
        assert_eq!(
            ChainMessage::Headers {
                start_height: 0,
                headers: vec![block.header],
            }
            .flood_id(),
            None,
            "headers batches are request/response, never flooded"
        );
    }

    #[test]
    fn relay_state_floods_once() {
        let block = sample_block();
        let msg = ChainMessage::Block(block);
        let mut relay = RelayState::new();
        assert!(relay.should_relay(&msg));
        assert!(!relay.should_relay(&msg));
    }

    #[test]
    fn requests_never_flood() {
        let mut relay = RelayState::new();
        let msg = ChainMessage::GetBlocksFrom(3);
        assert!(!relay.should_relay(&msg));
    }

    #[test]
    fn self_originated_marking() {
        let block = sample_block();
        let mut relay = RelayState::new();
        assert!(relay.mark_seen(block.hash().0));
        assert!(!relay.should_relay(&ChainMessage::Block(block)));
    }

    #[test]
    fn forget_reopens_relay() {
        let block = sample_block();
        let msg = ChainMessage::Block(block.clone());
        let mut relay = RelayState::new();
        assert!(relay.should_relay(&msg));
        assert!(!relay.should_relay(&msg));
        assert!(relay.forget(&block.hash().0));
        assert!(relay.should_relay(&msg), "re-broadcast relays again");
        assert!(!relay.forget(&[9; 32]), "unknown id");
    }

    #[test]
    fn saw_tx_tracks() {
        let block = sample_block();
        let txid = block.transactions[0].txid();
        let mut relay = RelayState::new();
        assert!(
            !relay.saw_tx(&txid),
            "first sighting returns 'not seen before'"
        );
        assert!(relay.saw_tx(&txid));
    }
}
