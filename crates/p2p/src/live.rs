//! A thread-backed message bus for running gateways as real OS threads.
//!
//! The discrete-event simulator covers the experiments; this bus exists
//! so the examples can also demonstrate the protocol running *live* — one
//! thread per gateway, mpsc channels as sockets — closer in spirit
//! to the paper's Golang daemons listening on TCP ports.

use crate::topology::NodeId;
use std::collections::HashMap;
use std::fmt;
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, RwLock};

/// An addressed message on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Payload.
    pub msg: M,
}

/// Errors from bus operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// The target node is not registered (or has hung up).
    Unreachable(NodeId),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Unreachable(n) => write!(f, "node {n} unreachable"),
        }
    }
}

impl std::error::Error for BusError {}

struct Registry<M> {
    senders: HashMap<NodeId, Sender<Envelope<M>>>,
}

/// A clonable handle to the shared bus.
pub struct LiveBus<M> {
    registry: Arc<RwLock<Registry<M>>>,
}

impl<M> Clone for LiveBus<M> {
    fn clone(&self) -> Self {
        LiveBus {
            registry: Arc::clone(&self.registry),
        }
    }
}

impl<M> fmt::Debug for LiveBus<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LiveBus({} nodes)",
            self.registry.read().unwrap().senders.len()
        )
    }
}

impl<M> Default for LiveBus<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// A node's inbox.
pub struct Inbox<M> {
    receiver: Receiver<Envelope<M>>,
}

impl<M> fmt::Debug for Inbox<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Inbox { .. }")
    }
}

impl<M> Inbox<M> {
    /// Blocks until a message arrives (or every sender hung up).
    pub fn recv(&self) -> Option<Envelope<M>> {
        self.receiver.recv().ok()
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<Envelope<M>> {
        match self.receiver.try_recv() {
            Ok(env) => Some(env),
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => None,
        }
    }

    /// Blocks with a timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Envelope<M>> {
        self.receiver.recv_timeout(timeout).ok()
    }
}

impl<M> LiveBus<M> {
    /// An empty bus.
    pub fn new() -> Self {
        LiveBus {
            registry: Arc::new(RwLock::new(Registry {
                senders: HashMap::new(),
            })),
        }
    }

    /// Registers a node and returns its inbox. Re-registering replaces the
    /// previous inbox (the old receiver starts draining nothing).
    pub fn register(&self, node: NodeId) -> Inbox<M> {
        let (tx, rx) = channel();
        self.registry.write().unwrap().senders.insert(node, tx);
        Inbox { receiver: rx }
    }

    /// Removes a node from the bus.
    pub fn unregister(&self, node: NodeId) {
        self.registry.write().unwrap().senders.remove(&node);
    }

    /// Registered node count.
    pub fn len(&self) -> usize {
        self.registry.read().unwrap().senders.len()
    }

    /// Whether no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.registry.read().unwrap().senders.is_empty()
    }

    /// Sends a message to one node.
    ///
    /// # Errors
    ///
    /// [`BusError::Unreachable`] when the target is unknown or gone.
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), BusError> {
        let registry = self.registry.read().unwrap();
        let sender = registry.senders.get(&to).ok_or(BusError::Unreachable(to))?;
        sender
            .send(Envelope { from, msg })
            .map_err(|_| BusError::Unreachable(to))
    }
}

impl<M: Clone> LiveBus<M> {
    /// Broadcasts to every registered node except the sender; returns how
    /// many inboxes accepted it.
    pub fn broadcast(&self, from: NodeId, msg: &M) -> usize {
        let registry = self.registry.read().unwrap();
        let mut delivered = 0;
        for (&node, sender) in &registry.senders {
            if node == from {
                continue;
            }
            if sender
                .send(Envelope {
                    from,
                    msg: msg.clone(),
                })
                .is_ok()
            {
                delivered += 1;
            }
        }
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn point_to_point_delivery() {
        let bus: LiveBus<&str> = LiveBus::new();
        let inbox = bus.register(NodeId(1));
        bus.register(NodeId(0));
        bus.send(NodeId(0), NodeId(1), "hi").unwrap();
        let env = inbox.recv().unwrap();
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.msg, "hi");
    }

    #[test]
    fn unknown_target_errors() {
        let bus: LiveBus<()> = LiveBus::new();
        assert_eq!(
            bus.send(NodeId(0), NodeId(9), ()),
            Err(BusError::Unreachable(NodeId(9)))
        );
    }

    #[test]
    fn broadcast_skips_sender() {
        let bus: LiveBus<u32> = LiveBus::new();
        let a = bus.register(NodeId(0));
        let b = bus.register(NodeId(1));
        let c = bus.register(NodeId(2));
        let delivered = bus.broadcast(NodeId(0), &7);
        assert_eq!(delivered, 2);
        assert!(a.try_recv().is_none());
        assert_eq!(b.recv().unwrap().msg, 7);
        assert_eq!(c.recv().unwrap().msg, 7);
    }

    #[test]
    fn cross_thread_exchange() {
        let bus: LiveBus<u64> = LiveBus::new();
        let server_inbox = bus.register(NodeId(0));
        let client_inbox = bus.register(NodeId(1));
        let bus2 = bus.clone();
        let server = std::thread::spawn(move || {
            // Echo doubled values back.
            for _ in 0..10 {
                let env = server_inbox.recv().unwrap();
                bus2.send(NodeId(0), env.from, env.msg * 2).unwrap();
            }
        });
        for i in 0..10u64 {
            bus.send(NodeId(1), NodeId(0), i).unwrap();
            let reply = client_inbox
                .recv_timeout(Duration::from_secs(5))
                .expect("echo reply");
            assert_eq!(reply.msg, i * 2);
        }
        server.join().unwrap();
    }

    #[test]
    fn unregister_makes_unreachable() {
        let bus: LiveBus<()> = LiveBus::new();
        bus.register(NodeId(3));
        assert_eq!(bus.len(), 1);
        bus.unregister(NodeId(3));
        assert!(bus.is_empty());
        assert!(bus.send(NodeId(0), NodeId(3), ()).is_err());
    }
}
