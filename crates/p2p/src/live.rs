//! A thread-backed message bus for running gateways as real OS threads.
//!
//! The discrete-event simulator covers the experiments; this bus exists
//! so the examples can also demonstrate the protocol running *live* — one
//! thread per gateway, mpsc channels as sockets — closer in spirit
//! to the paper's Golang daemons listening on TCP ports. It implements
//! the same [`Transport`](crate::transport::Transport) trait as the real
//! TCP runtime in [`crate::transport::tcp`], so protocol code can swap
//! between the two.
//!
//! # Inbox disconnect semantics
//!
//! [`Inbox::try_recv`] is deliberately three-state ([`TryRecv`]):
//! `Message` / `Empty` / `Disconnected`. The distinction carries the
//! shutdown protocol. A polling daemon loop treats `Empty` as "idle
//! tick, keep polling" but `Disconnected` as "every sender handle is
//! dropped — no message can ever arrive again", its cue to exit
//! instead of spinning forever on a dead channel. Both transports share
//! the same depth-tracked inbox (`inbox_channel`), so `Disconnected`
//! means the same thing over mpsc channels and over real sockets, and
//! the `inbox_depth` gauge is comparable across them. A two-state API
//! (`Option`) was rejected in review of the original transport PR
//! because it forced daemons to choose between busy-waiting on a dead
//! peer and racy out-of-band liveness checks; that rationale lives here
//! now rather than in commit prose.
//!
//! # Where the retry/backoff constants live
//!
//! The bus has no retries — an mpsc send either lands or the peer is
//! [`BusError::Unreachable`], which is exactly the at-most-once shape
//! in-process channels give. The dial/write retry and exponential
//! backoff constants (25 ms base, 400 ms cap, 5 attempts, and why those
//! numbers) belong to the socket world and are documented on
//! [`crate::transport::tcp`]'s module docs and
//! [`TcpConfig`](crate::transport::TcpConfig) — tune them there, not
//! here.

use crate::topology::NodeId;
use bcwan_sim::Registry;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, RwLock};

/// An addressed message on the bus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope<M> {
    /// Sender.
    pub from: NodeId,
    /// Payload.
    pub msg: M,
}

/// Errors from bus operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// The target node is not registered (or has hung up).
    Unreachable(NodeId),
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::Unreachable(n) => write!(f, "node {n} unreachable"),
        }
    }
}

impl std::error::Error for BusError {}

/// Counters one bus accumulates across all its clones.
#[derive(Debug, Default)]
struct BusStats {
    sends: AtomicU64,
    unreachable: AtomicU64,
    broadcasts: AtomicU64,
    broadcast_deliveries: AtomicU64,
}

struct Registered<M> {
    sender: InboxSender<M>,
}

struct SharedRegistry<M> {
    senders: HashMap<NodeId, Registered<M>>,
}

/// A clonable handle to the shared bus.
pub struct LiveBus<M> {
    registry: Arc<RwLock<SharedRegistry<M>>>,
    stats: Arc<BusStats>,
}

impl<M> Clone for LiveBus<M> {
    fn clone(&self) -> Self {
        LiveBus {
            registry: Arc::clone(&self.registry),
            stats: Arc::clone(&self.stats),
        }
    }
}

impl<M> fmt::Debug for LiveBus<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LiveBus({} nodes)",
            self.registry.read().unwrap().senders.len()
        )
    }
}

impl<M> Default for LiveBus<M> {
    fn default() -> Self {
        Self::new()
    }
}

/// Result of a non-blocking receive — distinguishes "nothing yet" from
/// "every sender hung up", so a live daemon can keep polling on
/// [`TryRecv::Empty`] but shut down cleanly on [`TryRecv::Disconnected`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TryRecv<M> {
    /// A message arrived.
    Message(Envelope<M>),
    /// No message queued right now; senders still exist.
    Empty,
    /// All senders dropped; no message will ever arrive again.
    Disconnected,
}

impl<M> TryRecv<M> {
    /// The envelope, if one arrived.
    pub fn message(self) -> Option<Envelope<M>> {
        match self {
            TryRecv::Message(env) => Some(env),
            _ => None,
        }
    }

    /// Whether this is [`TryRecv::Disconnected`].
    pub fn is_disconnected(&self) -> bool {
        matches!(self, TryRecv::Disconnected)
    }
}

/// The sending half of a depth-tracked inbox channel.
pub(crate) struct InboxSender<M> {
    tx: Sender<Envelope<M>>,
    depth: Arc<AtomicU64>,
}

impl<M> Clone for InboxSender<M> {
    fn clone(&self) -> Self {
        InboxSender {
            tx: self.tx.clone(),
            depth: Arc::clone(&self.depth),
        }
    }
}

impl<M> InboxSender<M> {
    pub(crate) fn send(&self, env: Envelope<M>) -> Result<(), ()> {
        self.tx.send(env).map_err(|_| ())?;
        self.depth.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Shared handle to the queue-depth counter, for gauges that outlive
    /// any particular sender clone.
    pub(crate) fn depth_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.depth)
    }
}

/// Creates a depth-tracked inbox channel (shared by the bus and the TCP
/// transport, so "inbox depth" means the same thing on both).
pub(crate) fn inbox_channel<M>() -> (InboxSender<M>, Inbox<M>) {
    let (tx, rx) = channel();
    let depth = Arc::new(AtomicU64::new(0));
    (
        InboxSender {
            tx,
            depth: Arc::clone(&depth),
        },
        Inbox {
            receiver: rx,
            depth,
        },
    )
}

/// A node's inbox.
pub struct Inbox<M> {
    receiver: Receiver<Envelope<M>>,
    depth: Arc<AtomicU64>,
}

impl<M> fmt::Debug for Inbox<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Inbox {{ depth: {} }}", self.depth())
    }
}

impl<M> Inbox<M> {
    fn took_one(&self) {
        // Saturating: a racing sender may not have incremented yet.
        let _ = self
            .depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| {
                Some(d.saturating_sub(1))
            });
    }

    /// Messages queued and not yet received (approximate under
    /// concurrency, exact once senders quiesce).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::Relaxed)
    }

    /// Blocks until a message arrives (or every sender hung up).
    pub fn recv(&self) -> Option<Envelope<M>> {
        let env = self.receiver.recv().ok()?;
        self.took_one();
        Some(env)
    }

    /// Non-blocking receive with a three-state result.
    pub fn try_recv(&self) -> TryRecv<M> {
        match self.receiver.try_recv() {
            Ok(env) => {
                self.took_one();
                TryRecv::Message(env)
            }
            Err(TryRecvError::Empty) => TryRecv::Empty,
            Err(TryRecvError::Disconnected) => TryRecv::Disconnected,
        }
    }

    /// Blocks with a timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Envelope<M>> {
        let env = self.receiver.recv_timeout(timeout).ok()?;
        self.took_one();
        Some(env)
    }
}

impl<M> LiveBus<M> {
    /// An empty bus.
    pub fn new() -> Self {
        LiveBus {
            registry: Arc::new(RwLock::new(SharedRegistry {
                senders: HashMap::new(),
            })),
            stats: Arc::new(BusStats::default()),
        }
    }

    /// Registers a node and returns its inbox. Re-registering replaces the
    /// previous inbox (the old receiver starts draining nothing).
    pub fn register(&self, node: NodeId) -> Inbox<M> {
        let (tx, inbox) = inbox_channel();
        self.registry
            .write()
            .unwrap()
            .senders
            .insert(node, Registered { sender: tx });
        inbox
    }

    /// Removes a node from the bus.
    pub fn unregister(&self, node: NodeId) {
        self.registry.write().unwrap().senders.remove(&node);
    }

    /// Registered node count.
    pub fn len(&self) -> usize {
        self.registry.read().unwrap().senders.len()
    }

    /// Whether no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.registry.read().unwrap().senders.is_empty()
    }

    /// Sends a message to one node.
    ///
    /// # Errors
    ///
    /// [`BusError::Unreachable`] when the target is unknown or gone.
    pub fn send(&self, from: NodeId, to: NodeId, msg: M) -> Result<(), BusError> {
        let registry = self.registry.read().unwrap();
        let result = registry
            .senders
            .get(&to)
            .ok_or(())
            .and_then(|reg| reg.sender.send(Envelope { from, msg }));
        match result {
            Ok(()) => {
                self.stats.sends.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(()) => {
                self.stats.unreachable.fetch_add(1, Ordering::Relaxed);
                Err(BusError::Unreachable(to))
            }
        }
    }

    /// Folds the bus counters into a metrics registry (`livebus.*` rows),
    /// closing the loop with the `sim::metrics` snapshot the bench
    /// harnesses emit. Inbox depth is summed across registered nodes.
    pub fn export_metrics(&self, reg: &mut Registry) {
        reg.set_counter(
            "livebus.sends_total",
            self.stats.sends.load(Ordering::Relaxed),
        );
        reg.set_counter(
            "livebus.unreachable_total",
            self.stats.unreachable.load(Ordering::Relaxed),
        );
        reg.set_counter(
            "livebus.broadcasts_total",
            self.stats.broadcasts.load(Ordering::Relaxed),
        );
        reg.set_counter(
            "livebus.broadcast_deliveries_total",
            self.stats.broadcast_deliveries.load(Ordering::Relaxed),
        );
        let depth: u64 = {
            let registry = self.registry.read().unwrap();
            registry
                .senders
                .values()
                .map(|r| r.sender.depth.load(Ordering::Relaxed))
                .sum()
        };
        reg.set_gauge("livebus.inbox_depth", depth as f64);
    }
}

impl<M: Clone> LiveBus<M> {
    /// Broadcasts to every registered node except the sender; returns how
    /// many inboxes accepted it.
    pub fn broadcast(&self, from: NodeId, msg: &M) -> usize {
        let registry = self.registry.read().unwrap();
        let mut delivered = 0;
        for (&node, reg) in &registry.senders {
            if node == from {
                continue;
            }
            if reg
                .sender
                .send(Envelope {
                    from,
                    msg: msg.clone(),
                })
                .is_ok()
            {
                delivered += 1;
            }
        }
        self.stats.broadcasts.fetch_add(1, Ordering::Relaxed);
        self.stats
            .broadcast_deliveries
            .fetch_add(delivered as u64, Ordering::Relaxed);
        delivered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn point_to_point_delivery() {
        let bus: LiveBus<&str> = LiveBus::new();
        let inbox = bus.register(NodeId(1));
        bus.register(NodeId(0));
        bus.send(NodeId(0), NodeId(1), "hi").unwrap();
        let env = inbox.recv().unwrap();
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.msg, "hi");
    }

    #[test]
    fn unknown_target_errors() {
        let bus: LiveBus<()> = LiveBus::new();
        assert_eq!(
            bus.send(NodeId(0), NodeId(9), ()),
            Err(BusError::Unreachable(NodeId(9)))
        );
    }

    #[test]
    fn broadcast_skips_sender() {
        let bus: LiveBus<u32> = LiveBus::new();
        let a = bus.register(NodeId(0));
        let b = bus.register(NodeId(1));
        let c = bus.register(NodeId(2));
        let delivered = bus.broadcast(NodeId(0), &7);
        assert_eq!(delivered, 2);
        assert_eq!(a.try_recv(), TryRecv::Empty);
        assert_eq!(b.recv().unwrap().msg, 7);
        assert_eq!(c.recv().unwrap().msg, 7);
    }

    #[test]
    fn try_recv_three_states() {
        let bus: LiveBus<u8> = LiveBus::new();
        let inbox = bus.register(NodeId(1));
        // Nothing queued, but the bus still holds a sender.
        assert_eq!(inbox.try_recv(), TryRecv::Empty);
        bus.send(NodeId(0), NodeId(1), 9).unwrap();
        assert_eq!(
            inbox.try_recv().message().map(|e| e.msg),
            Some(9),
            "queued message surfaces"
        );
        // Dropping the bus (the only sender) makes the state terminal.
        drop(bus);
        assert!(inbox.try_recv().is_disconnected());
        assert!(inbox.try_recv().is_disconnected(), "stays disconnected");
    }

    #[test]
    fn inbox_depth_tracks_queue() {
        let bus: LiveBus<u8> = LiveBus::new();
        let inbox = bus.register(NodeId(1));
        assert_eq!(inbox.depth(), 0);
        for i in 0..3 {
            bus.send(NodeId(0), NodeId(1), i).unwrap();
        }
        assert_eq!(inbox.depth(), 3);
        inbox.recv().unwrap();
        assert_eq!(inbox.depth(), 2);
        inbox.try_recv().message().unwrap();
        assert_eq!(inbox.depth(), 1);
        inbox.recv_timeout(Duration::from_secs(1)).unwrap();
        assert_eq!(inbox.depth(), 0);
    }

    #[test]
    fn export_metrics_counts_traffic() {
        let bus: LiveBus<u8> = LiveBus::new();
        let _a = bus.register(NodeId(0));
        let _b = bus.register(NodeId(1));
        bus.send(NodeId(0), NodeId(1), 1).unwrap();
        bus.send(NodeId(0), NodeId(9), 1).unwrap_err();
        bus.broadcast(NodeId(0), &2);

        let mut reg = Registry::new();
        bus.export_metrics(&mut reg);
        let snap = reg.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(counter("livebus.sends_total"), 1);
        assert_eq!(counter("livebus.unreachable_total"), 1);
        assert_eq!(counter("livebus.broadcasts_total"), 1);
        assert_eq!(counter("livebus.broadcast_deliveries_total"), 1);
        // 1 direct + 1 broadcast delivery still queued.
        let depth = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "livebus.inbox_depth")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(depth, 2.0);
    }

    #[test]
    fn cross_thread_exchange() {
        let bus: LiveBus<u64> = LiveBus::new();
        let server_inbox = bus.register(NodeId(0));
        let client_inbox = bus.register(NodeId(1));
        let bus2 = bus.clone();
        let server = std::thread::spawn(move || {
            // Echo doubled values back.
            for _ in 0..10 {
                let env = server_inbox.recv().unwrap();
                bus2.send(NodeId(0), env.from, env.msg * 2).unwrap();
            }
        });
        for i in 0..10u64 {
            bus.send(NodeId(1), NodeId(0), i).unwrap();
            let reply = client_inbox
                .recv_timeout(Duration::from_secs(5))
                .expect("echo reply");
            assert_eq!(reply.msg, i * 2);
        }
        server.join().unwrap();
    }

    #[test]
    fn unregister_makes_unreachable() {
        let bus: LiveBus<()> = LiveBus::new();
        bus.register(NodeId(3));
        assert_eq!(bus.len(), 1);
        bus.unregister(NodeId(3));
        assert!(bus.is_empty());
        assert!(bus.send(NodeId(0), NodeId(3), ()).is_err());
    }
}
