//! # bcwan-p2p
//!
//! The gateway-to-gateway overlay. BcWAN "removes the central core
//! network … any gateway in the system can communicate directly with
//! another gateway in a peer-to-peer manner"; this crate supplies that
//! fabric in two forms:
//!
//! - a **simulated** overlay for experiments: [`topology`] (mesh/ring/
//!   custom graphs), [`network`] (latency, loss, duplication, partitions —
//!   calibrated to the paper's PlanetLab deployment via
//!   `bcwan_sim::LatencyModel::planetlab`), and [`chain_msg`] (the block/
//!   transaction gossip vocabulary with flood dedup),
//! - a **live** thread-backed bus ([`live`]) so examples can run each
//!   gateway as an OS thread exchanging real messages, mirroring the
//!   paper's daemons listening on TCP ports,
//! - a **real TCP/IP transport** ([`transport`]): a framed, checksummed
//!   wire format and a per-host runtime on `std::net` (accept loop,
//!   connection pool, timeouts, retry with backoff), behind a common
//!   [`Transport`] trait the live bus also
//!   implements — so protocol code is pluggable between channels and
//!   sockets.
//!
//! ## Example
//!
//! ```
//! use bcwan_p2p::network::Network;
//! use bcwan_p2p::topology::{NodeId, Topology};
//! use bcwan_sim::{LatencyModel, SimRng};
//!
//! let network = Network::new(Topology::full_mesh(5), LatencyModel::planetlab());
//! let mut rng = SimRng::seed_from_u64(1);
//! let deliveries = network.broadcast(&mut rng, NodeId(0), &"new block");
//! assert_eq!(deliveries.len(), 4); // every other PlanetLab node
//! ```

#![warn(missing_docs)]

pub mod chain_msg;
pub mod live;
pub mod network;
pub mod topology;
pub mod transport;

pub use chain_msg::{ChainMessage, RelayState};
pub use live::{BusError, Envelope, Inbox, LiveBus, TryRecv};
pub use network::{Delivery, FaultModel, NetStats, Network, SeenFilter};
pub use topology::{NodeId, Topology};
pub use transport::{
    BusTransport, Codec, CodecError, TcpConfig, TcpHost, Transport, TransportError, TransportStats,
};
