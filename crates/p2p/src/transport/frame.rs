//! The length-prefixed binary frame every overlay byte stream carries.
//!
//! A frame is a fixed 22-byte header followed by an opaque payload the
//! [`Codec`](super::Codec) produced:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "BCWF"
//!      4     1  version (currently 1)
//!      5     1  kind    (codec's dense payload-kind index, for metrics)
//!      6     8  from    (sender NodeId, u64 LE)
//!     14     4  len     (payload length, u32 LE, ≤ MAX_FRAME_PAYLOAD)
//!     18     4  crc     (CRC-32/IEEE of the payload, u32 LE)
//! ```
//!
//! The header is validated before a single payload byte is allocated, so
//! a garbage or hostile stream cannot force an oversized allocation; the
//! checksum rejects corruption that TCP's own checksum missed (or that a
//! fault-injected half-written frame produced).

use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic — first bytes of every frame on the wire.
pub const MAGIC: [u8; 4] = *b"BCWF";

/// Current frame format version.
pub const FRAME_VERSION: u8 = 1;

/// Header length in bytes.
pub const HEADER_LEN: usize = 22;

/// Hard ceiling on payload size (4 MiB — far above any block this chain
/// produces, far below anything that could wedge a host's memory).
pub const MAX_FRAME_PAYLOAD: usize = 4 << 20;

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sender's node id as stamped in the header.
    pub from: u64,
    /// The codec's payload-kind index (metrics only; decoding re-derives
    /// the real kind from the payload).
    pub kind: u8,
    /// The opaque payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Total on-the-wire size of this frame.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying stream failure (includes timeouts and EOF mid-frame).
    Io(io::Error),
    /// The stream does not start with [`MAGIC`] — peer desynchronized or
    /// not speaking the protocol.
    BadMagic([u8; 4]),
    /// Unknown frame format version.
    BadVersion(u8),
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(u32),
    /// Payload checksum mismatch.
    BadChecksum {
        /// CRC the header declared.
        declared: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "stream failure: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Oversize(len) => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds {MAX_FRAME_PAYLOAD}"
                )
            }
            FrameError::BadChecksum { declared, computed } => {
                write!(
                    f,
                    "frame checksum {computed:08x} != declared {declared:08x}"
                )
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this is a clean end-of-stream before any header byte — the
    /// peer hung up between frames, which is not an error for a reader
    /// loop.
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, FrameError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof
            && e.get_ref().is_some_and(|inner| inner.to_string() == CLEAN_EOF))
    }

    /// Whether the failure was a read timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(self, FrameError::Io(e)
            if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut))
    }
}

const CLEAN_EOF: &str = "clean eof between frames";

/// CRC-32/IEEE (the Ethernet/zip polynomial), bytewise table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Serializes a frame into a standalone byte vector.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_PAYLOAD`]; senders are
/// expected to reject oversized messages before framing (see
/// `TcpHost::send`).
pub fn encode_frame(from: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD,
        "payload of {} bytes exceeds the frame ceiling",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(FRAME_VERSION);
    out.push(kind);
    out.extend_from_slice(&from.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Writes one frame to `w` (single `write_all`, so a fault that kills the
/// connection mid-call leaves at most one torn frame on the wire).
pub fn write_frame(w: &mut impl Write, from: u64, kind: u8, payload: &[u8]) -> io::Result<()> {
    w.write_all(&encode_frame(from, kind, payload))?;
    w.flush()
}

/// Reads one frame from `r`, validating header and checksum before
/// trusting the payload.
///
/// # Errors
///
/// Any [`FrameError`]; a clean hang-up between frames surfaces as an
/// `Io` error for which [`FrameError::is_clean_eof`] returns true.
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_tagged(r, &mut header)?;
    if header[0..4] != MAGIC {
        return Err(FrameError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    if header[4] != FRAME_VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let kind = header[5];
    let from = u64::from_le_bytes(header[6..14].try_into().expect("8 header bytes"));
    let len = u32::from_le_bytes(header[14..18].try_into().expect("4 header bytes"));
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversize(len));
    }
    let declared = u32::from_le_bytes(header[18..22].try_into().expect("4 header bytes"));
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let computed = crc32(&payload);
    if computed != declared {
        return Err(FrameError::BadChecksum { declared, computed });
    }
    Ok(Frame {
        from,
        kind,
        payload,
    })
}

/// Like `read_exact` for the header, but a hang-up before the *first*
/// byte is tagged as a clean EOF so reader loops can exit quietly.
fn read_exact_tagged(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    CLEAN_EOF,
                )))
            }
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn round_trip() {
        let bytes = encode_frame(42, 3, b"hello overlay");
        assert_eq!(bytes.len(), HEADER_LEN + 13);
        let frame = read_frame(&mut Cursor::new(&bytes)).unwrap();
        assert_eq!(frame.from, 42);
        assert_eq!(frame.kind, 3);
        assert_eq!(frame.payload, b"hello overlay");
        assert_eq!(frame.wire_len(), bytes.len());
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = encode_frame(1, 0, b"x");
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::BadMagic(_))
        ));
        let mut bytes = encode_frame(1, 0, b"x");
        bytes[4] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::BadVersion(9))
        ));
    }

    #[test]
    fn rejects_oversize_before_allocating() {
        let mut bytes = encode_frame(1, 0, b"x");
        bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes)),
            Err(FrameError::Oversize(u32::MAX))
        ));
    }

    #[test]
    fn rejects_corrupted_payload() {
        let mut bytes = encode_frame(1, 0, b"payload");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        match read_frame(&mut Cursor::new(&bytes)) {
            Err(FrameError::BadChecksum { declared, computed }) => assert_ne!(declared, computed),
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn truncation_is_io_not_panic() {
        let bytes = encode_frame(7, 1, b"truncate me");
        for cut in 0..bytes.len() {
            let result = read_frame(&mut Cursor::new(&bytes[..cut]));
            match result {
                Err(FrameError::Io(_)) => {}
                other => panic!("cut at {cut}: expected Io error, got {other:?}"),
            }
        }
    }

    #[test]
    fn clean_eof_is_distinguished() {
        let err = read_frame(&mut Cursor::new(&[][..])).unwrap_err();
        assert!(err.is_clean_eof());
        let bytes = encode_frame(7, 1, b"partial");
        let err = read_frame(&mut Cursor::new(&bytes[..5])).unwrap_err();
        assert!(!err.is_clean_eof());
    }
}
