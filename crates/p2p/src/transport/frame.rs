//! The length-prefixed, authenticated binary frame every overlay byte
//! stream carries.
//!
//! A frame is a fixed 38-byte header followed by an opaque payload the
//! [`Codec`](super::Codec) produced:
//!
//! ```text
//! offset  size  field
//!      0     4  magic  "BCWF"
//!      4     1  version (currently 2)
//!      5     1  kind    (codec's dense payload-kind index, for metrics)
//!      6     8  from    (sender NodeId, u64 LE)
//!     14     4  len     (payload length, u32 LE, ≤ MAX_FRAME_PAYLOAD)
//!     18     4  crc     (CRC-32/IEEE of the payload, u32 LE)
//!     22    16  tag     (HMAC-SHA256(key, header[0..22] ‖ payload),
//!                        truncated to 16 bytes)
//! ```
//!
//! The header is validated before a single payload byte is allocated, so
//! a garbage or hostile stream cannot force an oversized allocation; the
//! checksum rejects corruption that TCP's own checksum missed (or that a
//! fault-injected half-written frame produced).
//!
//! The **tag** is what makes the `from` field trustworthy at fleet
//! scale: it authenticates the entire pre-tag header *and* the payload
//! under the federation's provisioned [`FrameKey`], so a peer that does
//! not hold the key can neither forge a sender identity nor splice a
//! payload onto someone else's header. Authentication is mandatory —
//! there is no unauthenticated mode; frames whose tag does not verify
//! are rejected ([`FrameError::BadAuth`]) and counted as
//! `transport.auth.fail_total`. Version-1 frames (pre-auth) are rejected
//! as [`FrameError::BadVersion`].

use bcwan_crypto::hmac::{derive_key, hmac_sha256};
use std::fmt;
use std::io::{self, Read, Write};

/// Frame magic — first bytes of every frame on the wire.
pub const MAGIC: [u8; 4] = *b"BCWF";

/// Current frame format version. Version 2 added the mandatory
/// authentication tag; version-1 frames are rejected.
pub const FRAME_VERSION: u8 = 2;

/// Length of the truncated HMAC-SHA256 authentication tag.
pub const TAG_LEN: usize = 16;

/// Bytes of header covered by the tag (everything before the tag).
const AUTH_PREFIX_LEN: usize = 22;

/// Header length in bytes.
pub const HEADER_LEN: usize = AUTH_PREFIX_LEN + TAG_LEN;

/// Hard ceiling on payload size (4 MiB — far above any block this chain
/// produces, far below anything that could wedge a host's memory).
pub const MAX_FRAME_PAYLOAD: usize = 4 << 20;

/// The provisioned symmetric key a host's transport authenticates frames
/// with.
///
/// Every gateway in one BcWAN federation is provisioned with the same
/// 32-byte frame key (derived from the federation's master secret, the
/// same provisioning ceremony that hands devices their AES keys). Two
/// hosts with different keys cannot exchange a single frame: the tag
/// check fails before the payload is ever decoded.
#[derive(Clone, PartialEq, Eq)]
pub struct FrameKey([u8; 32]);

impl fmt::Debug for FrameKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "FrameKey(..)")
    }
}

impl FrameKey {
    /// Wraps raw key bytes.
    pub fn new(bytes: [u8; 32]) -> Self {
        FrameKey(bytes)
    }

    /// Derives the frame key from a federation master secret (HKDF-style
    /// expansion with a fixed info string, so the same master secret
    /// yields the same key on every host).
    pub fn from_master(master: &[u8]) -> Self {
        let derived = derive_key(master, b"bcwan-frame-auth-v2", 32);
        let mut bytes = [0u8; 32];
        bytes.copy_from_slice(&derived);
        FrameKey(bytes)
    }

    /// The well-known development key used by tests, examples, and
    /// single-machine experiments. Real deployments provision their own
    /// master secret; this one only proves the machinery works.
    pub fn dev() -> Self {
        FrameKey::from_master(b"bcwan-dev-network")
    }

    /// Computes the truncated tag over `prefix ‖ payload`.
    fn tag(&self, prefix: &[u8], payload: &[u8]) -> [u8; TAG_LEN] {
        let mut message = Vec::with_capacity(prefix.len() + payload.len());
        message.extend_from_slice(prefix);
        message.extend_from_slice(payload);
        let full = hmac_sha256(&self.0, &message);
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&full[..TAG_LEN]);
        tag
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sender's node id as stamped in the header (authenticated by the
    /// frame tag).
    pub from: u64,
    /// The codec's payload-kind index (metrics only; decoding re-derives
    /// the real kind from the payload).
    pub kind: u8,
    /// The opaque payload.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Total on-the-wire size of this frame.
    pub fn wire_len(&self) -> usize {
        HEADER_LEN + self.payload.len()
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying stream failure (includes timeouts and EOF mid-frame).
    Io(io::Error),
    /// The stream does not start with [`MAGIC`] — peer desynchronized or
    /// not speaking the protocol.
    BadMagic([u8; 4]),
    /// Unknown frame format version.
    BadVersion(u8),
    /// Declared payload length exceeds [`MAX_FRAME_PAYLOAD`].
    Oversize(u32),
    /// Payload checksum mismatch.
    BadChecksum {
        /// CRC the header declared.
        declared: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
    /// The authentication tag does not verify under our [`FrameKey`]:
    /// the peer holds a different key, or the header (e.g. the `from`
    /// field) was tampered with in flight.
    BadAuth,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "stream failure: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported frame version {v}"),
            FrameError::Oversize(len) => {
                write!(
                    f,
                    "frame payload of {len} bytes exceeds {MAX_FRAME_PAYLOAD}"
                )
            }
            FrameError::BadChecksum { declared, computed } => {
                write!(
                    f,
                    "frame checksum {computed:08x} != declared {declared:08x}"
                )
            }
            FrameError::BadAuth => write!(f, "frame authentication tag rejected"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl FrameError {
    /// Whether this is a clean end-of-stream before any header byte — the
    /// peer hung up between frames, which is not an error for a reader
    /// loop.
    pub fn is_clean_eof(&self) -> bool {
        matches!(self, FrameError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof
            && e.get_ref().is_some_and(|inner| inner.to_string() == CLEAN_EOF))
    }

    /// Whether the failure was a read timeout.
    pub fn is_timeout(&self) -> bool {
        matches!(self, FrameError::Io(e)
            if matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut))
    }

    /// Whether this is an authentication failure (for the
    /// `transport.auth.fail_total` counter).
    pub fn is_auth(&self) -> bool {
        matches!(self, FrameError::BadAuth)
    }
}

const CLEAN_EOF: &str = "clean eof between frames";

/// CRC-32/IEEE (the Ethernet/zip polynomial), bytewise table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Serializes a frame into a standalone byte vector, tag included.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_FRAME_PAYLOAD`]; senders are
/// expected to reject oversized messages before framing (see
/// `TcpHost::send`).
pub fn encode_frame(key: &FrameKey, from: u64, kind: u8, payload: &[u8]) -> Vec<u8> {
    assert!(
        payload.len() <= MAX_FRAME_PAYLOAD,
        "payload of {} bytes exceeds the frame ceiling",
        payload.len()
    );
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.push(FRAME_VERSION);
    out.push(kind);
    out.extend_from_slice(&from.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    let tag = key.tag(&out[..AUTH_PREFIX_LEN], payload);
    out.extend_from_slice(&tag);
    out.extend_from_slice(payload);
    out
}

/// Writes one frame to `w` (single `write_all`, so a fault that kills the
/// connection mid-call leaves at most one torn frame on the wire).
pub fn write_frame(
    w: &mut impl Write,
    key: &FrameKey,
    from: u64,
    kind: u8,
    payload: &[u8],
) -> io::Result<()> {
    w.write_all(&encode_frame(key, from, kind, payload))?;
    w.flush()
}

/// Validates a complete header + payload pair; shared by the blocking
/// reader and the streaming assembler. `header` is the full
/// [`HEADER_LEN`] bytes (magic/version/oversize are assumed checked).
fn finish_frame(key: &FrameKey, header: &[u8], payload: Vec<u8>) -> Result<Frame, FrameError> {
    let kind = header[5];
    let from = u64::from_le_bytes(header[6..14].try_into().expect("8 header bytes"));
    let declared = u32::from_le_bytes(header[18..22].try_into().expect("4 header bytes"));
    let computed = crc32(&payload);
    if computed != declared {
        return Err(FrameError::BadChecksum { declared, computed });
    }
    let expected = key.tag(&header[..AUTH_PREFIX_LEN], &payload);
    // Not constant-time; none of this workspace's crypto is (see the
    // README security notes), and the tag gates identity, not secrecy.
    if expected[..] != header[AUTH_PREFIX_LEN..HEADER_LEN] {
        return Err(FrameError::BadAuth);
    }
    Ok(Frame {
        from,
        kind,
        payload,
    })
}

/// Checks the fixed leading fields of a header (which need no payload):
/// magic, version, and the declared length against the ceiling.
fn check_header_prefix(header: &[u8]) -> Result<u32, FrameError> {
    if header[0..4] != MAGIC {
        return Err(FrameError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    if header[4] != FRAME_VERSION {
        return Err(FrameError::BadVersion(header[4]));
    }
    let len = u32::from_le_bytes(header[14..18].try_into().expect("4 header bytes"));
    if len as usize > MAX_FRAME_PAYLOAD {
        return Err(FrameError::Oversize(len));
    }
    Ok(len)
}

/// Reads one frame from `r`, validating header, checksum, and
/// authentication tag before trusting the payload.
///
/// # Errors
///
/// Any [`FrameError`]; a clean hang-up between frames surfaces as an
/// `Io` error for which [`FrameError::is_clean_eof`] returns true.
pub fn read_frame(r: &mut impl Read, key: &FrameKey) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    read_exact_tagged(r, &mut header)?;
    let len = check_header_prefix(&header)?;
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    finish_frame(key, &header, payload)
}

/// Incremental frame parser for non-blocking streams.
///
/// The event-driven transport workers read whatever bytes a socket has
/// ready and feed them in with [`FrameAssembler::extend`]; complete
/// frames pop out of [`FrameAssembler::next_frame`] as they finish.
/// Header validation still happens as soon as the first
/// [`HEADER_LEN`] bytes arrive, so an oversized or hostile declared
/// length is rejected before any payload is buffered beyond what the
/// peer already pushed.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Appends freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Whether no partial frame is buffered (a clean point to hang up).
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Extracts the next complete frame, if the buffer holds one.
    ///
    /// Returns `Ok(None)` while the frame is still incomplete. After any
    /// `Err` the stream is desynchronized or hostile and the connection
    /// must be dropped.
    ///
    /// # Errors
    ///
    /// The same header/checksum/auth failures as [`read_frame`] (never
    /// `Io` — there is no stream here).
    pub fn next_frame(&mut self, key: &FrameKey) -> Result<Option<Frame>, FrameError> {
        if self.buf.len() < HEADER_LEN {
            return Ok(None);
        }
        let len = check_header_prefix(&self.buf[..HEADER_LEN])? as usize;
        if self.buf.len() < HEADER_LEN + len {
            return Ok(None);
        }
        let rest = self.buf.split_off(HEADER_LEN + len);
        let payload = self.buf[HEADER_LEN..].to_vec();
        let header: Vec<u8> = std::mem::replace(&mut self.buf, rest);
        finish_frame(key, &header[..HEADER_LEN], payload).map(Some)
    }
}

/// Like `read_exact` for the header, but a hang-up before the *first*
/// byte is tagged as a clean EOF so reader loops can exit quietly.
fn read_exact_tagged(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    CLEAN_EOF,
                )))
            }
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "stream ended mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn key() -> FrameKey {
        FrameKey::dev()
    }

    #[test]
    fn round_trip() {
        let bytes = encode_frame(&key(), 42, 3, b"hello overlay");
        assert_eq!(bytes.len(), HEADER_LEN + 13);
        let frame = read_frame(&mut Cursor::new(&bytes), &key()).unwrap();
        assert_eq!(frame.from, 42);
        assert_eq!(frame.kind, 3);
        assert_eq!(frame.payload, b"hello overlay");
        assert_eq!(frame.wire_len(), bytes.len());
    }

    #[test]
    fn encoding_is_byte_identical_with_auth_enabled() {
        // Same key, same inputs → bit-for-bit identical frames, and a
        // decode returns exactly the encoded fields. Fuzz over lengths
        // and senders to pin byte-identity of the v2 format.
        let k = key();
        for (i, len) in [0usize, 1, 7, 64, 1000].into_iter().enumerate() {
            let payload: Vec<u8> = (0..len).map(|j| (j as u8).wrapping_mul(31)).collect();
            let from = 0x0123_4567_89ab_cdefu64.wrapping_add(i as u64);
            let a = encode_frame(&k, from, i as u8, &payload);
            let b = encode_frame(&k, from, i as u8, &payload);
            assert_eq!(a, b, "encoding must be deterministic");
            let frame = read_frame(&mut Cursor::new(&a), &k).unwrap();
            assert_eq!(frame.from, from);
            assert_eq!(frame.kind, i as u8);
            assert_eq!(frame.payload, payload);
        }
    }

    #[test]
    fn crc32_known_vector() {
        // The classic check value for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let mut bytes = encode_frame(&key(), 1, 0, b"x");
        bytes[0] = b'X';
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), &key()),
            Err(FrameError::BadMagic(_))
        ));
        let mut bytes = encode_frame(&key(), 1, 0, b"x");
        bytes[4] = 9;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), &key()),
            Err(FrameError::BadVersion(9))
        ));
        // A version-1 (pre-auth) frame is rejected, not silently trusted.
        let mut bytes = encode_frame(&key(), 1, 0, b"x");
        bytes[4] = 1;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), &key()),
            Err(FrameError::BadVersion(1))
        ));
    }

    #[test]
    fn rejects_oversize_before_allocating() {
        let mut bytes = encode_frame(&key(), 1, 0, b"x");
        bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), &key()),
            Err(FrameError::Oversize(u32::MAX))
        ));
    }

    #[test]
    fn rejects_corrupted_payload() {
        let mut bytes = encode_frame(&key(), 1, 0, b"payload");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        match read_frame(&mut Cursor::new(&bytes), &key()) {
            Err(FrameError::BadChecksum { declared, computed }) => assert_ne!(declared, computed),
            other => panic!("expected checksum failure, got {other:?}"),
        }
    }

    #[test]
    fn rejects_tampered_from_header() {
        // CRC only covers the payload, so identity forgery must be
        // caught by the tag: flip one byte of `from` and the frame dies.
        let mut bytes = encode_frame(&key(), 42, 0, b"payload");
        bytes[6] ^= 0x01;
        let err = read_frame(&mut Cursor::new(&bytes), &key()).unwrap_err();
        assert!(err.is_auth(), "tampered from must fail auth, got {err:?}");
    }

    #[test]
    fn rejects_bad_or_missing_mac() {
        // Corrupt the tag itself.
        let mut bytes = encode_frame(&key(), 7, 1, b"reading");
        bytes[AUTH_PREFIX_LEN] ^= 0xff;
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), &key()),
            Err(FrameError::BadAuth)
        ));
        // Zero the tag entirely ("missing" tag).
        let mut bytes = encode_frame(&key(), 7, 1, b"reading");
        bytes[AUTH_PREFIX_LEN..HEADER_LEN].fill(0);
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), &key()),
            Err(FrameError::BadAuth)
        ));
        // A frame honestly built under a different key.
        let other = FrameKey::from_master(b"some-other-federation");
        let bytes = encode_frame(&other, 7, 1, b"reading");
        assert!(matches!(
            read_frame(&mut Cursor::new(&bytes), &key()),
            Err(FrameError::BadAuth)
        ));
    }

    #[test]
    fn key_derivation_is_deterministic_and_domain_separated() {
        assert_eq!(FrameKey::dev(), FrameKey::dev());
        assert_eq!(
            FrameKey::from_master(b"secret"),
            FrameKey::from_master(b"secret")
        );
        assert_ne!(
            FrameKey::from_master(b"secret"),
            FrameKey::from_master(b"secret2")
        );
        assert_eq!(format!("{:?}", FrameKey::dev()), "FrameKey(..)");
    }

    #[test]
    fn truncation_is_io_not_panic() {
        let bytes = encode_frame(&key(), 7, 1, b"truncate me");
        for cut in 0..bytes.len() {
            let result = read_frame(&mut Cursor::new(&bytes[..cut]), &key());
            match result {
                Err(FrameError::Io(_)) => {}
                other => panic!("cut at {cut}: expected Io error, got {other:?}"),
            }
        }
    }

    #[test]
    fn clean_eof_is_distinguished() {
        let err = read_frame(&mut Cursor::new(&[][..]), &key()).unwrap_err();
        assert!(err.is_clean_eof());
        let bytes = encode_frame(&key(), 7, 1, b"partial");
        let err = read_frame(&mut Cursor::new(&bytes[..5]), &key()).unwrap_err();
        assert!(!err.is_clean_eof());
    }

    #[test]
    fn assembler_reassembles_across_arbitrary_chunking() {
        let k = key();
        let mut wire = Vec::new();
        for i in 0..5u64 {
            wire.extend_from_slice(&encode_frame(
                &k,
                i,
                i as u8,
                &vec![i as u8; i as usize * 7],
            ));
        }
        // Feed the stream one byte at a time — worst-case fragmentation.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for byte in &wire {
            asm.extend(std::slice::from_ref(byte));
            while let Some(frame) = asm.next_frame(&k).unwrap() {
                got.push(frame);
            }
        }
        assert!(asm.is_empty());
        assert_eq!(got.len(), 5);
        for (i, frame) in got.iter().enumerate() {
            assert_eq!(frame.from, i as u64);
            assert_eq!(frame.payload.len(), i * 7);
        }
    }

    #[test]
    fn assembler_rejects_what_the_blocking_reader_rejects() {
        let k = key();
        let mut tampered = encode_frame(&k, 3, 0, b"x");
        tampered[6] ^= 1; // forge `from`
        let mut asm = FrameAssembler::new();
        asm.extend(&tampered);
        assert!(matches!(asm.next_frame(&k), Err(FrameError::BadAuth)));

        let mut asm = FrameAssembler::new();
        let mut bad = encode_frame(&k, 3, 0, b"x");
        bad[0] = b'Z';
        asm.extend(&bad);
        assert!(matches!(asm.next_frame(&k), Err(FrameError::BadMagic(_))));

        // Oversize dies on the header alone, before the payload arrives.
        let mut asm = FrameAssembler::new();
        let mut oversize = encode_frame(&k, 3, 0, b"x");
        oversize[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
        asm.extend(&oversize[..HEADER_LEN]);
        assert!(matches!(
            asm.next_frame(&k),
            Err(FrameError::Oversize(u32::MAX))
        ));
    }

    #[test]
    fn assembler_waits_for_incomplete_frames() {
        let k = key();
        let wire = encode_frame(&k, 9, 2, b"pending");
        let mut asm = FrameAssembler::new();
        asm.extend(&wire[..HEADER_LEN + 3]);
        assert!(asm.next_frame(&k).unwrap().is_none());
        assert!(!asm.is_empty());
        asm.extend(&wire[HEADER_LEN + 3..]);
        let frame = asm.next_frame(&k).unwrap().unwrap();
        assert_eq!(frame.payload, b"pending");
        assert!(asm.is_empty());
    }
}
