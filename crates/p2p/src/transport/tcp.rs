//! The real thing: a per-host TCP/IP overlay runtime on `std::net`.
//!
//! Each [`TcpHost`] owns one listening socket (the paper's gateways
//! "open a direct TCP/IP connection" to the recipient looked up on
//! chain), an accept-loop thread that spawns one reader thread per
//! inbound connection, and a per-peer pool of outbound connections that
//! [`TcpHost::send`] reuses across messages. Dial and write failures
//! retry under bounded exponential backoff; connect, read, and write
//! deadlines keep a hung peer from wedging the host. Every event feeds
//! the shared [`TransportStats`] counters, which
//! [`TcpHost::export_metrics`] folds into a `sim::metrics` registry
//! snapshot next to the rest of the workspace instrumentation.
//!
//! Fault injection: [`TcpHost::inject_send_faults`] arms the sender to
//! tear down the next N connections mid-frame (half the bytes written,
//! then a hard shutdown). The torn frame is rejected by the receiver's
//! checksum/length validation and the sender's retry path re-dials and
//! re-sends — the failure drill the live loopback test runs.
//! [`TcpHost::inject_recv_faults`] is the mirror image on the receiving
//! end: the next N frames offered to this host's reader threads are
//! truncated mid-read and the reader dies with a hard shutdown, so
//! sender-side recovery against a crashing *receiver* is testable too.
//! Both knobs count into `transport.fault.send_total` /
//! `transport.fault.recv_total`.

use super::frame::{encode_frame, read_frame, MAX_FRAME_PAYLOAD};
use super::{Codec, TransportError, TransportStats};
use crate::live::{inbox_channel, Envelope, Inbox, InboxSender};
use crate::topology::NodeId;
use bcwan_sim::Registry;
use std::collections::HashMap;
use std::io::{self, Write};
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Tunables for one host's transport runtime.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Deadline for establishing an outbound connection.
    pub connect_timeout: Duration,
    /// Read deadline applied to accepted connections (`None` blocks
    /// forever; the default keeps a silent peer from pinning a reader
    /// thread).
    pub read_timeout: Option<Duration>,
    /// Write deadline on outbound connections.
    pub write_timeout: Duration,
    /// Total attempts per [`TcpHost::send`] (first try + retries).
    pub max_send_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff_base: Duration,
    /// Ceiling on the per-retry backoff.
    pub backoff_max: Duration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Duration::from_secs(5),
            max_send_attempts: 5,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_millis(400),
        }
    }
}

impl TcpConfig {
    /// Tight deadlines for loopback tests: failures surface in
    /// milliseconds instead of wedging CI.
    pub fn fast_test() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Duration::from_secs(2),
            max_send_attempts: 6,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(50),
        }
    }

    fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(10);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_max)
    }
}

struct Inner<C> {
    node: NodeId,
    codec: Arc<C>,
    cfg: TcpConfig,
    local: SocketAddr,
    pool: Mutex<HashMap<SocketAddr, TcpStream>>,
    stats: Arc<TransportStats>,
    running: Arc<AtomicBool>,
    inbox_depth: Arc<AtomicU64>,
    fault_sends: AtomicU64,
    /// Shared with every reader thread; armed by `inject_recv_faults`.
    fault_recvs: Arc<AtomicU64>,
}

impl<C> Drop for Inner<C> {
    fn drop(&mut self) {
        self.running.store(false, Ordering::SeqCst);
        // Wake the accept loop so its thread can observe the flag.
        let _ = TcpStream::connect_timeout(&self.local, Duration::from_millis(100));
    }
}

/// A live TCP transport endpoint: listener, reader threads, and an
/// outbound connection pool. Clones share the same host.
pub struct TcpHost<M, C> {
    inner: Arc<Inner<C>>,
    _msg: PhantomData<fn(&M)>,
}

impl<M, C> Clone for TcpHost<M, C> {
    fn clone(&self) -> Self {
        TcpHost {
            inner: Arc::clone(&self.inner),
            _msg: PhantomData,
        }
    }
}

impl<M, C> std::fmt::Debug for TcpHost<M, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpHost")
            .field("node", &self.inner.node)
            .field("local", &self.inner.local)
            .finish()
    }
}

impl<M: Send + 'static, C: Codec<M>> TcpHost<M, C> {
    /// Binds a listener on `addr` (use port 0 for an OS-assigned port),
    /// starts the accept loop, and returns the host handle plus the inbox
    /// where decoded inbound messages arrive.
    ///
    /// # Errors
    ///
    /// The bind failure, if any.
    pub fn bind(
        addr: SocketAddr,
        node: NodeId,
        codec: C,
        cfg: TcpConfig,
    ) -> io::Result<(Self, Inbox<M>)> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let codec = Arc::new(codec);
        let stats = Arc::new(TransportStats::new(codec.kind_count()));
        let running = Arc::new(AtomicBool::new(true));
        let (tx, inbox) = inbox_channel();
        let inbox_depth = tx.depth_handle();

        let fault_recvs = Arc::new(AtomicU64::new(0));
        let accept_codec = Arc::clone(&codec);
        let accept_stats = Arc::clone(&stats);
        let accept_running = Arc::clone(&running);
        let accept_faults = Arc::clone(&fault_recvs);
        let read_timeout = cfg.read_timeout;
        std::thread::Builder::new()
            .name(format!("bcwan-accept-{node}"))
            .spawn(move || {
                accept_loop(
                    listener,
                    accept_codec,
                    accept_stats,
                    accept_running,
                    tx,
                    read_timeout,
                    accept_faults,
                )
            })?;

        let host = TcpHost {
            inner: Arc::new(Inner {
                node,
                codec,
                cfg,
                local,
                pool: Mutex::new(HashMap::new()),
                stats,
                running,
                inbox_depth,
                fault_sends: AtomicU64::new(0),
                fault_recvs,
            }),
            _msg: PhantomData,
        };
        Ok((host, inbox))
    }

    /// The bound listening address (the one to publish in the directory).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local
    }

    /// This host's overlay identity (stamped into every frame header).
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Live view of the transport counters.
    pub fn stats(&self) -> &TransportStats {
        &self.inner.stats
    }

    /// Arms the sender to kill the next `n` outbound connections
    /// mid-frame (half the frame written, then a hard shutdown) — the
    /// chaos knob the fault-injection tests turn.
    pub fn inject_send_faults(&self, n: u64) {
        self.inner.fault_sends.fetch_add(n, Ordering::SeqCst);
    }

    /// Arms this host's *readers* to die on the next `n` inbound frames:
    /// the reader consumes a few bytes (a mid-frame truncation from the
    /// peer's perspective), hard-closes the connection, and its thread
    /// exits — the receive-side mirror of [`inject_send_faults`].
    ///
    /// [`inject_send_faults`]: TcpHost::inject_send_faults
    pub fn inject_recv_faults(&self, n: u64) {
        self.inner.fault_recvs.fetch_add(n, Ordering::SeqCst);
    }

    /// Sends one message to `to`, reusing a pooled connection when one
    /// exists and retrying dial/write failures under exponential backoff.
    ///
    /// # Errors
    ///
    /// [`TransportError`] once `max_send_attempts` are exhausted (or
    /// immediately for an oversized message).
    pub fn send(&self, to: SocketAddr, msg: &M) -> Result<(), TransportError> {
        let inner = &*self.inner;
        let payload = inner.codec.encode(msg);
        if payload.len() > MAX_FRAME_PAYLOAD {
            TransportStats::bump(&inner.stats.send_failures);
            return Err(TransportError::Oversize {
                len: payload.len(),
                max: MAX_FRAME_PAYLOAD,
            });
        }
        let kind = inner.codec.kind_index(msg);
        let frame = encode_frame(u64::from(inner.node.0), kind as u8, &payload);

        let mut last_err = TransportError::Unreachable(format!("{to}: no attempt made"));
        for attempt in 0..inner.cfg.max_send_attempts {
            if attempt > 0 {
                TransportStats::bump(&inner.stats.retries);
                std::thread::sleep(inner.cfg.backoff(attempt - 1));
            }
            let pooled = inner.pool.lock().unwrap().remove(&to);
            let mut stream = match pooled {
                Some(stream) => {
                    TransportStats::bump(&inner.stats.pool_hits);
                    stream
                }
                None => {
                    TransportStats::bump(&inner.stats.pool_misses);
                    match self.dial(to) {
                        Ok(stream) => stream,
                        Err(e) => {
                            last_err = e;
                            continue;
                        }
                    }
                }
            };

            if self.take_fault() {
                // Tear the frame: half the bytes, then a hard close. The
                // receiver sees a truncated frame; we see a failed send.
                TransportStats::bump(&inner.stats.faults_send);
                let torn = frame.len() / 2;
                let _ = stream.write_all(&frame[..torn]);
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
                last_err =
                    TransportError::Io(format!("{to}: injected fault killed the connection"));
                continue;
            }

            match stream.write_all(&frame).and_then(|_| stream.flush()) {
                Ok(()) => {
                    TransportStats::bump_by(&inner.stats.bytes_sent, frame.len() as u64);
                    TransportStats::bump(TransportStats::kind_slot(&inner.stats.frames_sent, kind));
                    inner.pool.lock().unwrap().insert(to, stream);
                    return Ok(());
                }
                Err(e) => {
                    last_err = classify_io(&inner.stats, to, e);
                }
            }
        }
        TransportStats::bump(&inner.stats.send_failures);
        Err(last_err)
    }

    fn dial(&self, to: SocketAddr) -> Result<TcpStream, TransportError> {
        let inner = &*self.inner;
        TransportStats::bump(&inner.stats.dials);
        match TcpStream::connect_timeout(&to, inner.cfg.connect_timeout) {
            Ok(stream) => {
                let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
                let _ = stream.set_nodelay(true);
                Ok(stream)
            }
            Err(e) => {
                TransportStats::bump(&inner.stats.dial_failures);
                if is_timeout(&e) {
                    TransportStats::bump(&inner.stats.timeouts);
                    Err(TransportError::Timeout(format!("dial {to}: {e}")))
                } else {
                    Err(TransportError::Unreachable(format!("dial {to}: {e}")))
                }
            }
        }
    }

    fn take_fault(&self) -> bool {
        take_one(&self.inner.fault_sends)
    }

    /// Drops every pooled outbound connection (peers relocated, test
    /// hygiene). Subsequent sends re-dial.
    pub fn drop_pool(&self) {
        self.inner.pool.lock().unwrap().clear();
    }

    /// Stops the accept loop and drops pooled connections. Reader threads
    /// exit as their peers hang up.
    pub fn shutdown(&self) {
        self.inner.running.store(false, Ordering::SeqCst);
        let _ = TcpStream::connect_timeout(&self.inner.local, Duration::from_millis(100));
        self.drop_pool();
    }

    /// Folds the transport counters into a metrics registry as
    /// `transport.*` rows (per-kind frame counters use the codec's
    /// labels), matching the workspace-wide `sim::metrics` snapshot
    /// convention.
    pub fn export_metrics(&self, reg: &mut Registry) {
        let stats = &self.inner.stats;
        let get = TransportStats::get;
        reg.set_counter("transport.bytes_sent_total", get(&stats.bytes_sent));
        reg.set_counter("transport.bytes_received_total", get(&stats.bytes_received));
        reg.set_counter("transport.dials_total", get(&stats.dials));
        reg.set_counter("transport.dial_failures_total", get(&stats.dial_failures));
        reg.set_counter("transport.retries_total", get(&stats.retries));
        reg.set_counter("transport.timeouts_total", get(&stats.timeouts));
        reg.set_counter("transport.pool_hits_total", get(&stats.pool_hits));
        reg.set_counter("transport.pool_misses_total", get(&stats.pool_misses));
        reg.set_counter("transport.conns_accepted_total", get(&stats.conns_accepted));
        reg.set_counter(
            "transport.frames_rejected_total",
            get(&stats.frames_rejected),
        );
        reg.set_counter("transport.send_failures_total", get(&stats.send_failures));
        reg.set_counter("transport.fault.send_total", get(&stats.faults_send));
        reg.set_counter("transport.fault.recv_total", get(&stats.faults_recv));
        for i in 0..self.inner.codec.kind_count() {
            let label = self.inner.codec.kind_label(i);
            reg.set_counter(
                &format!("transport.frames_sent_{label}_total"),
                get(TransportStats::kind_slot(&stats.frames_sent, i)),
            );
            reg.set_counter(
                &format!("transport.frames_received_{label}_total"),
                get(TransportStats::kind_slot(&stats.frames_received, i)),
            );
        }
        reg.set_gauge(
            "transport.inbox_depth",
            self.inner.inbox_depth.load(Ordering::Relaxed) as f64,
        );
    }
}

impl<M: Send + 'static, C: Codec<M>> super::Transport<SocketAddr, M> for TcpHost<M, C> {
    fn send(&self, to: SocketAddr, msg: &M) -> Result<(), TransportError> {
        TcpHost::send(self, to, msg)
    }
}

/// Atomically consumes one unit from an injected-fault budget.
fn take_one(budget: &AtomicU64) -> bool {
    budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn classify_io(stats: &TransportStats, to: SocketAddr, e: io::Error) -> TransportError {
    if is_timeout(&e) {
        TransportStats::bump(&stats.timeouts);
        TransportError::Timeout(format!("write {to}: {e}"))
    } else {
        TransportError::Io(format!("write {to}: {e}"))
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop<M: Send + 'static, C: Codec<M>>(
    listener: TcpListener,
    codec: Arc<C>,
    stats: Arc<TransportStats>,
    running: Arc<AtomicBool>,
    sender: InboxSender<M>,
    read_timeout: Option<Duration>,
    fault_recvs: Arc<AtomicU64>,
) {
    for conn in listener.incoming() {
        if !running.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = conn else { continue };
        TransportStats::bump(&stats.conns_accepted);
        let _ = stream.set_read_timeout(read_timeout);
        let codec = Arc::clone(&codec);
        let stats = Arc::clone(&stats);
        let running = Arc::clone(&running);
        let sender = sender.clone();
        let fault_recvs = Arc::clone(&fault_recvs);
        let spawned = std::thread::Builder::new()
            .name("bcwan-reader".to_string())
            .spawn(move || reader_loop(stream, codec, stats, running, sender, fault_recvs));
        if spawned.is_err() {
            // Out of threads: drop the connection; the peer will retry.
            continue;
        }
    }
}

fn reader_loop<M, C: Codec<M>>(
    mut stream: TcpStream,
    codec: Arc<C>,
    stats: Arc<TransportStats>,
    running: Arc<AtomicBool>,
    sender: InboxSender<M>,
    fault_recvs: Arc<AtomicU64>,
) {
    while running.load(Ordering::SeqCst) {
        if take_one(&fault_recvs) {
            // Injected receive fault: swallow a few bytes of whatever the
            // peer sends next (a mid-frame truncation from its point of
            // view), hard-close, and let this reader thread die.
            TransportStats::bump(&stats.faults_recv);
            let mut chunk = [0u8; 8];
            let _ = io::Read::read(&mut stream, &mut chunk);
            let _ = stream.shutdown(Shutdown::Both);
            break;
        }
        match read_frame(&mut stream) {
            Ok(frame) => {
                TransportStats::bump_by(&stats.bytes_received, frame.wire_len() as u64);
                match codec.decode(&frame.payload) {
                    Ok(msg) => {
                        let kind = codec.kind_index(&msg);
                        TransportStats::bump(TransportStats::kind_slot(
                            &stats.frames_received,
                            kind,
                        ));
                        let envelope = Envelope {
                            from: NodeId(frame.from as u32),
                            msg,
                        };
                        if sender.send(envelope).is_err() {
                            break; // inbox dropped — host is gone
                        }
                    }
                    Err(_) => {
                        // Framing is still aligned; skip the bad payload.
                        TransportStats::bump(&stats.frames_rejected);
                    }
                }
            }
            Err(e) => {
                if !e.is_clean_eof() {
                    TransportStats::bump(&stats.frames_rejected);
                    if e.is_timeout() {
                        TransportStats::bump(&stats.timeouts);
                    }
                }
                break; // desync, torn frame, timeout, or hang-up
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::CodecError;
    use std::sync::atomic::Ordering;

    /// Toy codec: u32 LE with a leading tag byte.
    struct U32Codec;

    impl Codec<u32> for U32Codec {
        fn encode(&self, msg: &u32) -> Vec<u8> {
            let mut out = vec![0xaa];
            out.extend_from_slice(&msg.to_le_bytes());
            out
        }

        fn decode(&self, bytes: &[u8]) -> Result<u32, CodecError> {
            if bytes.len() != 5 || bytes[0] != 0xaa {
                return Err(CodecError::new("want 5 tagged bytes"));
            }
            Ok(u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]))
        }

        fn kind_count(&self) -> usize {
            2
        }

        fn kind_index(&self, msg: &u32) -> usize {
            (*msg % 2) as usize
        }

        fn kind_label(&self, index: usize) -> &'static str {
            ["even", "odd"][index]
        }
    }

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    fn bind(node: u32) -> (TcpHost<u32, U32Codec>, Inbox<u32>) {
        TcpHost::bind(loopback(), NodeId(node), U32Codec, TcpConfig::fast_test()).expect("bind")
    }

    #[test]
    fn send_and_receive_over_loopback() {
        let (alice, _alice_inbox) = bind(1);
        let (bob, bob_inbox) = bind(2);
        alice.send(bob.local_addr(), &7).unwrap();
        alice.send(bob.local_addr(), &8).unwrap();
        let first = bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(first.from, NodeId(1));
        assert_eq!(first.msg, 7);
        assert_eq!(
            bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap().msg,
            8
        );
        // Second send reused the pooled connection.
        assert_eq!(TransportStats::get(&alice.stats().pool_hits), 1);
        assert_eq!(TransportStats::get(&alice.stats().dials), 1);
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn unreachable_peer_fails_after_retries() {
        let (host, _inbox) = bind(1);
        // Grab a loopback port with no listener behind it.
        let vacant = {
            let probe = TcpListener::bind(loopback()).unwrap();
            probe.local_addr().unwrap()
        };
        let err = host.send(vacant, &1).unwrap_err();
        assert!(matches!(
            err,
            TransportError::Unreachable(_) | TransportError::Timeout(_)
        ));
        let stats = host.stats();
        assert_eq!(
            TransportStats::get(&stats.dial_failures),
            u64::from(TcpConfig::fast_test().max_send_attempts)
        );
        assert!(TransportStats::get(&stats.retries) > 0);
        assert_eq!(TransportStats::get(&stats.send_failures), 1);
        host.shutdown();
    }

    #[test]
    fn injected_fault_recovers_via_retry() {
        let (alice, _alice_inbox) = bind(1);
        let (bob, bob_inbox) = bind(2);
        alice.inject_send_faults(2);
        alice.send(bob.local_addr(), &42).unwrap();
        assert_eq!(
            bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap().msg,
            42
        );
        assert!(TransportStats::get(&alice.stats().retries) >= 2);
        // Bob saw the torn frames and rejected them.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while TransportStats::get(&bob.stats().frames_rejected) < 2
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(TransportStats::get(&bob.stats().frames_rejected) >= 2);
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn undecodable_payload_rejected_without_dropping_connection() {
        let (bob, bob_inbox) = bind(2);
        // Speak raw frames: a garbage payload, then a valid message on
        // the same connection.
        let mut stream = TcpStream::connect(bob.local_addr()).unwrap();
        stream.write_all(&encode_frame(9, 0, b"not a u32")).unwrap();
        stream
            .write_all(&encode_frame(9, 0, &U32Codec.encode(&5)))
            .unwrap();
        stream.flush().unwrap();
        let env = bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(env.msg, 5);
        assert_eq!(env.from, NodeId(9));
        assert_eq!(TransportStats::get(&bob.stats().frames_rejected), 1);
        bob.shutdown();
    }

    #[test]
    fn oversize_message_rejected_before_dialing() {
        struct BloatCodec;
        impl Codec<u32> for BloatCodec {
            fn encode(&self, _msg: &u32) -> Vec<u8> {
                vec![0; MAX_FRAME_PAYLOAD + 1]
            }
            fn decode(&self, _bytes: &[u8]) -> Result<u32, CodecError> {
                Err(CodecError::new("unused"))
            }
        }
        let (host, _inbox) =
            TcpHost::bind(loopback(), NodeId(1), BloatCodec, TcpConfig::fast_test()).unwrap();
        let err = host.send(host.local_addr(), &1).unwrap_err();
        assert!(matches!(err, TransportError::Oversize { .. }));
        assert_eq!(TransportStats::get(&host.stats().dials), 0);
        host.shutdown();
    }

    #[test]
    fn export_metrics_names_kinds() {
        let (alice, _ai) = bind(1);
        let (bob, bob_inbox) = bind(2);
        alice.send(bob.local_addr(), &2).unwrap(); // even
        alice.send(bob.local_addr(), &3).unwrap(); // odd
        bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap();
        bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap();

        let mut reg = Registry::new();
        alice.export_metrics(&mut reg);
        let snap = reg.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(counter("transport.frames_sent_even_total"), 1);
        assert_eq!(counter("transport.frames_sent_odd_total"), 1);
        assert!(counter("transport.bytes_sent_total") > 0);
        assert_eq!(counter("transport.dials_total"), 1);
        assert_eq!(counter("transport.pool_hits_total"), 1);

        let mut reg = Registry::new();
        bob.export_metrics(&mut reg);
        let snap = reg.snapshot();
        let received: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("transport.frames_received_"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(received, 2);
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn inbox_depth_gauge_reflects_backlog() {
        let (alice, _ai) = bind(1);
        let (bob, bob_inbox) = bind(2);
        for i in 0..4 {
            alice.send(bob.local_addr(), &i).unwrap();
        }
        // Wait until the reader thread has parked all four.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while bob_inbox.depth() < 4 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(bob_inbox.depth(), 4);
        let mut reg = Registry::new();
        bob.export_metrics(&mut reg);
        let snap = reg.snapshot();
        let gauge = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "transport.inbox_depth")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(gauge, 4.0);
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn fault_counter_drains_to_zero() {
        let (host, _inbox) = bind(1);
        host.inject_send_faults(1);
        assert!(host.take_fault());
        assert!(!host.take_fault());
        assert_eq!(host.inner.fault_sends.load(Ordering::SeqCst), 0);
        host.shutdown();
    }

    #[test]
    fn injected_recv_fault_kills_reader_and_sender_recovers() {
        let (alice, _alice_inbox) = bind(1);
        let (bob, bob_inbox) = bind(2);
        // Arm bob's next reader to die mid-frame.
        bob.inject_recv_faults(1);
        // This send may "succeed" from alice's perspective (the bytes
        // land in the socket buffer before bob tears the connection), but
        // bob must never deliver it.
        let _ = alice.send(bob.local_addr(), &13);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while TransportStats::get(&bob.stats().faults_recv) < 1
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            TransportStats::get(&bob.stats().faults_recv),
            1,
            "reader consumed the injected fault"
        );
        // The pooled connection is now dead on bob's side. A fresh dial
        // (what the retry path does after the write error surfaces)
        // reaches a new, unarmed reader.
        alice.drop_pool();
        alice.send(bob.local_addr(), &14).unwrap();
        let env = bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(env.msg, 14);
        // The torn first message was truncated, never delivered.
        assert!(bob_inbox.try_recv().message().is_none());
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn recv_fault_counters_exported() {
        let (alice, _ai) = bind(1);
        let (bob, bob_inbox) = bind(2);
        bob.inject_recv_faults(1);
        alice.inject_send_faults(1);
        let _ = alice.send(bob.local_addr(), &21);
        // The send-side fault burns the first attempt; the retry lands on
        // bob's armed reader; the next retry gets through.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while bob_inbox.try_recv().message().is_none() && std::time::Instant::now() < deadline {
            alice.drop_pool();
            let _ = alice.send(bob.local_addr(), &21);
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut reg = Registry::new();
        alice.export_metrics(&mut reg);
        let snap = reg.snapshot();
        let counter = |snap: &bcwan_sim::Snapshot, name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(counter(&snap, "transport.fault.send_total"), 1);
        assert_eq!(counter(&snap, "transport.fault.recv_total"), 0);
        let mut reg = Registry::new();
        bob.export_metrics(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(counter(&snap, "transport.fault.send_total"), 0);
        assert_eq!(counter(&snap, "transport.fault.recv_total"), 1);
        alice.shutdown();
        bob.shutdown();
    }
}
