//! The real thing: an event-driven TCP/IP overlay runtime on `std::net`.
//!
//! # Host model
//!
//! A [`TcpRuntime`] owns a fixed, small set of threads — one
//! non-blocking accept **poller** plus a bounded pool of connection
//! **workers** — and any number of [`TcpHost`]s register their listening
//! sockets with it. Accepted connections are handed round-robin to the
//! workers, each of which multiplexes its share of non-blocking sockets
//! through a per-connection [`FrameAssembler`]. The thread bill for a
//! whole fleet is therefore `1 + worker_threads`, not one thread per
//! connection: a 64-host live smoke or a bench run with hundreds of
//! virtual peers costs the same handful of OS threads (the shape of
//! BNS-style experiments that multiplex thousands of peers over a small
//! pool). [`TcpHost::bind`] keeps the simple two-host ergonomics by
//! spinning up a private runtime; [`TcpHost::bind_with_runtime`] shares
//! one across a fleet.
//!
//! # Send path, retry, and backoff
//!
//! [`TcpHost::send`] reuses a per-peer pooled outbound connection and
//! retries dial/write failures under bounded exponential backoff:
//! attempt `k` sleeps `backoff_base << (k-1)` capped at `backoff_max`.
//! The defaults (25 ms base, 400 ms cap, 5 attempts) are tuned so a
//! single torn connection or in-progress peer restart heals within one
//! second, while a genuinely dead peer fails in about a second instead
//! of wedging the caller — the same order as the paper's LoRa duty-cycle
//! gaps, so transport-level healing is invisible at protocol level.
//! Connect and write deadlines keep a hung peer from pinning the sender.
//!
//! # Authentication
//!
//! Every frame is authenticated with the host's provisioned
//! [`FrameKey`] ([`TcpConfig::auth_key`]); inbound frames whose tag does
//! not verify are rejected and counted as `transport.auth.fail_total`.
//! There is no unauthenticated mode — a peer outside the federation (or
//! one forging another gateway's `from` identity) cannot get a single
//! message into the inbox.
//!
//! # Fault injection
//!
//! [`TcpHost::inject_send_faults`] arms the sender to tear down the next
//! N connections mid-frame (half the bytes written, then a hard
//! shutdown). The torn frame is rejected by the receiver's validation
//! and the sender's retry path re-dials and re-sends — the failure drill
//! the live loopback test runs. [`TcpHost::inject_recv_faults`] is the
//! mirror image: the next N connections that deliver bytes to this host
//! are hard-closed mid-frame, so sender-side recovery against a crashing
//! *receiver* is testable too. Both knobs count into
//! `transport.fault.send_total` / `transport.fault.recv_total`.

use super::frame::{encode_frame, FrameAssembler, FrameKey, MAX_FRAME_PAYLOAD};
use super::{Codec, TransportError, TransportStats};
use crate::live::{inbox_channel, Envelope, Inbox, InboxSender};
use crate::topology::NodeId;
use bcwan_sim::Registry;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::marker::PhantomData;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// How long the poller/workers sleep when no socket had anything ready.
const IDLE_TICK: Duration = Duration::from_millis(1);

/// Read buffer each worker drains sockets through.
const READ_CHUNK: usize = 64 * 1024;

/// Tunables for one host's transport runtime.
///
/// The retry/backoff constants are not arbitrary: see the module docs
/// for the rationale (heal a torn connection in under a second, give up
/// on a dead peer in about one).
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Deadline for establishing an outbound connection.
    pub connect_timeout: Duration,
    /// Idle deadline on accepted connections (`None` keeps silent
    /// connections forever; the default reaps a peer that goes quiet so
    /// a fleet's worker pool only tracks live sockets).
    pub read_timeout: Option<Duration>,
    /// Write deadline on outbound connections.
    pub write_timeout: Duration,
    /// Total attempts per [`TcpHost::send`] (first try + retries).
    pub max_send_attempts: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff_base: Duration,
    /// Ceiling on the per-retry backoff.
    pub backoff_max: Duration,
    /// Worker threads in a *private* runtime created by
    /// [`TcpHost::bind`]. Ignored by [`TcpHost::bind_with_runtime`],
    /// where the shared [`TcpRuntime`] fixes the pool size.
    pub worker_threads: usize,
    /// The provisioned frame-authentication key. Both ends of every
    /// connection must hold the same key; defaults to the well-known
    /// [`FrameKey::dev`] key, which is fine for tests and single-machine
    /// experiments and nothing else.
    pub auth_key: FrameKey,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Duration::from_secs(5),
            max_send_attempts: 5,
            backoff_base: Duration::from_millis(25),
            backoff_max: Duration::from_millis(400),
            worker_threads: 2,
            auth_key: FrameKey::dev(),
        }
    }
}

impl TcpConfig {
    /// Tight deadlines for loopback tests: failures surface in
    /// milliseconds instead of wedging CI.
    pub fn fast_test() -> Self {
        TcpConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Some(Duration::from_secs(5)),
            write_timeout: Duration::from_secs(2),
            max_send_attempts: 6,
            backoff_base: Duration::from_millis(5),
            backoff_max: Duration::from_millis(50),
            ..TcpConfig::default()
        }
    }

    fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.min(10);
        self.backoff_base
            .saturating_mul(factor)
            .min(self.backoff_max)
    }
}

/// Everything a worker needs to service one host's inbound traffic.
struct HostShared<M, C> {
    codec: Arc<C>,
    stats: Arc<TransportStats>,
    running: Arc<AtomicBool>,
    sender: InboxSender<M>,
    fault_recvs: Arc<AtomicU64>,
    key: FrameKey,
    read_timeout: Option<Duration>,
}

/// A registered listening socket awaiting accepts.
struct ListenerEntry<M, C> {
    listener: TcpListener,
    shared: Arc<HostShared<M, C>>,
}

/// One accepted connection owned by a worker.
struct ConnState<M, C> {
    stream: TcpStream,
    shared: Arc<HostShared<M, C>>,
    assembler: FrameAssembler,
    last_activity: Instant,
}

struct RuntimeInner<M, C> {
    shutdown: Arc<AtomicBool>,
    listeners: Arc<Mutex<Vec<ListenerEntry<M, C>>>>,
}

impl<M, C> Drop for RuntimeInner<M, C> {
    fn drop(&mut self) {
        // Poller and workers observe the flag within one idle tick.
        self.shutdown.store(true, Ordering::SeqCst);
    }
}

/// The shared event-driven engine behind one or more [`TcpHost`]s: one
/// non-blocking accept poller plus a bounded pool of connection workers.
///
/// Clones share the same threads. The runtime stays alive while any
/// clone or any host bound through it exists; when the last one drops,
/// the threads exit within a millisecond.
pub struct TcpRuntime<M, C> {
    inner: Arc<RuntimeInner<M, C>>,
}

impl<M, C> Clone for TcpRuntime<M, C> {
    fn clone(&self) -> Self {
        TcpRuntime {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<M, C> std::fmt::Debug for TcpRuntime<M, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpRuntime").finish_non_exhaustive()
    }
}

impl<M: Send + 'static, C: Codec<M>> TcpRuntime<M, C> {
    /// Starts a runtime with `worker_threads` connection workers (at
    /// least one) plus the accept poller.
    ///
    /// # Errors
    ///
    /// Thread spawn failure.
    pub fn new(worker_threads: usize) -> io::Result<Self> {
        let shutdown = Arc::new(AtomicBool::new(false));
        let listeners: Arc<Mutex<Vec<ListenerEntry<M, C>>>> = Arc::new(Mutex::new(Vec::new()));

        let mut conn_txs = Vec::new();
        for i in 0..worker_threads.max(1) {
            let (tx, rx) = mpsc::channel::<ConnState<M, C>>();
            conn_txs.push(tx);
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("bcwan-net-worker-{i}"))
                .spawn(move || worker_loop(rx, shutdown))?;
        }

        let poll_shutdown = Arc::clone(&shutdown);
        let poll_listeners = Arc::clone(&listeners);
        std::thread::Builder::new()
            .name("bcwan-net-poll".to_string())
            .spawn(move || poller_loop(poll_listeners, conn_txs, poll_shutdown))?;

        Ok(TcpRuntime {
            inner: Arc::new(RuntimeInner {
                shutdown,
                listeners,
            }),
        })
    }

    fn register(&self, listener: TcpListener, shared: Arc<HostShared<M, C>>) {
        self.inner
            .listeners
            .lock()
            .unwrap()
            .push(ListenerEntry { listener, shared });
    }
}

struct Inner<M, C> {
    node: NodeId,
    codec: Arc<C>,
    cfg: TcpConfig,
    local: SocketAddr,
    pool: Mutex<HashMap<SocketAddr, TcpStream>>,
    stats: Arc<TransportStats>,
    running: Arc<AtomicBool>,
    inbox_depth: Arc<AtomicU64>,
    fault_sends: AtomicU64,
    /// Shared with the workers servicing this host's connections; armed
    /// by `inject_recv_faults`.
    fault_recvs: Arc<AtomicU64>,
    /// Keeps the runtime threads alive while this host exists.
    _runtime: TcpRuntime<M, C>,
}

impl<M, C> Drop for Inner<M, C> {
    fn drop(&mut self) {
        // The poller drops the listener and workers drop this host's
        // connections on their next tick.
        self.running.store(false, Ordering::SeqCst);
    }
}

/// A live TCP transport endpoint: a registered listener on an
/// event-driven [`TcpRuntime`] plus a per-peer pool of outbound
/// connections. Clones share the same host.
pub struct TcpHost<M, C> {
    inner: Arc<Inner<M, C>>,
    _msg: PhantomData<fn(&M)>,
}

impl<M, C> Clone for TcpHost<M, C> {
    fn clone(&self) -> Self {
        TcpHost {
            inner: Arc::clone(&self.inner),
            _msg: PhantomData,
        }
    }
}

impl<M, C> std::fmt::Debug for TcpHost<M, C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpHost")
            .field("node", &self.inner.node)
            .field("local", &self.inner.local)
            .finish()
    }
}

impl<M: Send + 'static, C: Codec<M>> TcpHost<M, C> {
    /// Binds a listener on `addr` (use port 0 for an OS-assigned port)
    /// on a fresh private runtime with [`TcpConfig::worker_threads`]
    /// workers, and returns the host handle plus the inbox where decoded
    /// inbound messages arrive.
    ///
    /// # Errors
    ///
    /// The bind or thread-spawn failure, if any.
    pub fn bind(
        addr: SocketAddr,
        node: NodeId,
        codec: C,
        cfg: TcpConfig,
    ) -> io::Result<(Self, Inbox<M>)> {
        let runtime = TcpRuntime::new(cfg.worker_threads)?;
        Self::bind_with_runtime(&runtime, addr, node, codec, cfg)
    }

    /// Like [`TcpHost::bind`], but registers the listener on an existing
    /// shared [`TcpRuntime`] — the fleet shape, where dozens of hosts
    /// share one poller and a few workers.
    ///
    /// # Errors
    ///
    /// The bind failure, if any.
    pub fn bind_with_runtime(
        runtime: &TcpRuntime<M, C>,
        addr: SocketAddr,
        node: NodeId,
        codec: C,
        cfg: TcpConfig,
    ) -> io::Result<(Self, Inbox<M>)> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let codec = Arc::new(codec);
        let stats = Arc::new(TransportStats::new(codec.kind_count()));
        let running = Arc::new(AtomicBool::new(true));
        let (tx, inbox) = inbox_channel();
        let inbox_depth = tx.depth_handle();
        let fault_recvs = Arc::new(AtomicU64::new(0));

        runtime.register(
            listener,
            Arc::new(HostShared {
                codec: Arc::clone(&codec),
                stats: Arc::clone(&stats),
                running: Arc::clone(&running),
                sender: tx,
                fault_recvs: Arc::clone(&fault_recvs),
                key: cfg.auth_key.clone(),
                read_timeout: cfg.read_timeout,
            }),
        );

        let host = TcpHost {
            inner: Arc::new(Inner {
                node,
                codec,
                cfg,
                local,
                pool: Mutex::new(HashMap::new()),
                stats,
                running,
                inbox_depth,
                fault_sends: AtomicU64::new(0),
                fault_recvs,
                _runtime: runtime.clone(),
            }),
            _msg: PhantomData,
        };
        Ok((host, inbox))
    }

    /// The bound listening address (the one to publish in the directory).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.local
    }

    /// This host's overlay identity (stamped into every frame header and
    /// authenticated by the frame tag).
    pub fn node(&self) -> NodeId {
        self.inner.node
    }

    /// Live view of the transport counters.
    pub fn stats(&self) -> &TransportStats {
        &self.inner.stats
    }

    /// Arms the sender to kill the next `n` outbound connections
    /// mid-frame (half the frame written, then a hard shutdown) — the
    /// chaos knob the fault-injection tests turn.
    pub fn inject_send_faults(&self, n: u64) {
        self.inner.fault_sends.fetch_add(n, Ordering::SeqCst);
    }

    /// Arms this host's receive side to die on the next `n` connections
    /// that deliver bytes: the worker discards what arrived (a mid-frame
    /// truncation from the peer's perspective) and hard-closes the
    /// connection — the receive-side mirror of [`inject_send_faults`].
    ///
    /// [`inject_send_faults`]: TcpHost::inject_send_faults
    pub fn inject_recv_faults(&self, n: u64) {
        self.inner.fault_recvs.fetch_add(n, Ordering::SeqCst);
    }

    /// Sends one message to `to`, reusing a pooled connection when one
    /// exists and retrying dial/write failures under exponential backoff.
    ///
    /// # Errors
    ///
    /// [`TransportError`] once `max_send_attempts` are exhausted (or
    /// immediately for an oversized message).
    pub fn send(&self, to: SocketAddr, msg: &M) -> Result<(), TransportError> {
        let inner = &*self.inner;
        let payload = inner.codec.encode(msg);
        if payload.len() > MAX_FRAME_PAYLOAD {
            TransportStats::bump(&inner.stats.send_failures);
            return Err(TransportError::Oversize {
                len: payload.len(),
                max: MAX_FRAME_PAYLOAD,
            });
        }
        let kind = inner.codec.kind_index(msg);
        let frame = encode_frame(
            &inner.cfg.auth_key,
            u64::from(inner.node.0),
            kind as u8,
            &payload,
        );

        let mut last_err = TransportError::Unreachable(format!("{to}: no attempt made"));
        for attempt in 0..inner.cfg.max_send_attempts {
            if attempt > 0 {
                TransportStats::bump(&inner.stats.retries);
                std::thread::sleep(inner.cfg.backoff(attempt - 1));
            }
            let pooled = inner.pool.lock().unwrap().remove(&to);
            let mut stream = match pooled {
                Some(stream) => {
                    TransportStats::bump(&inner.stats.pool_hits);
                    stream
                }
                None => {
                    TransportStats::bump(&inner.stats.pool_misses);
                    match self.dial(to) {
                        Ok(stream) => stream,
                        Err(e) => {
                            last_err = e;
                            continue;
                        }
                    }
                }
            };

            if self.take_fault() {
                // Tear the frame: half the bytes, then a hard close. The
                // receiver sees a truncated frame; we see a failed send.
                TransportStats::bump(&inner.stats.faults_send);
                let torn = frame.len() / 2;
                let _ = stream.write_all(&frame[..torn]);
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
                last_err =
                    TransportError::Io(format!("{to}: injected fault killed the connection"));
                continue;
            }

            match stream.write_all(&frame).and_then(|_| stream.flush()) {
                Ok(()) => {
                    TransportStats::bump_by(&inner.stats.bytes_sent, frame.len() as u64);
                    TransportStats::bump(TransportStats::kind_slot(&inner.stats.frames_sent, kind));
                    inner.pool.lock().unwrap().insert(to, stream);
                    return Ok(());
                }
                Err(e) => {
                    last_err = classify_io(&inner.stats, to, e);
                }
            }
        }
        TransportStats::bump(&inner.stats.send_failures);
        Err(last_err)
    }

    fn dial(&self, to: SocketAddr) -> Result<TcpStream, TransportError> {
        let inner = &*self.inner;
        TransportStats::bump(&inner.stats.dials);
        match TcpStream::connect_timeout(&to, inner.cfg.connect_timeout) {
            Ok(stream) => {
                let _ = stream.set_write_timeout(Some(inner.cfg.write_timeout));
                let _ = stream.set_nodelay(true);
                Ok(stream)
            }
            Err(e) => {
                TransportStats::bump(&inner.stats.dial_failures);
                if is_timeout(&e) {
                    TransportStats::bump(&inner.stats.timeouts);
                    Err(TransportError::Timeout(format!("dial {to}: {e}")))
                } else {
                    Err(TransportError::Unreachable(format!("dial {to}: {e}")))
                }
            }
        }
    }

    fn take_fault(&self) -> bool {
        take_one(&self.inner.fault_sends)
    }

    /// Drops every pooled outbound connection (peers relocated, test
    /// hygiene). Subsequent sends re-dial.
    pub fn drop_pool(&self) {
        self.inner.pool.lock().unwrap().clear();
    }

    /// Deregisters the listener and drops pooled connections. The
    /// runtime reaps this host's inbound connections on its next tick.
    pub fn shutdown(&self) {
        self.inner.running.store(false, Ordering::SeqCst);
        self.drop_pool();
    }

    /// Folds the transport counters into a metrics registry as
    /// `transport.*` rows (per-kind frame counters use the codec's
    /// labels), matching the workspace-wide `sim::metrics` snapshot
    /// convention.
    pub fn export_metrics(&self, reg: &mut Registry) {
        let stats = &self.inner.stats;
        let get = TransportStats::get;
        reg.set_counter("transport.bytes_sent_total", get(&stats.bytes_sent));
        reg.set_counter("transport.bytes_received_total", get(&stats.bytes_received));
        reg.set_counter("transport.dials_total", get(&stats.dials));
        reg.set_counter("transport.dial_failures_total", get(&stats.dial_failures));
        reg.set_counter("transport.retries_total", get(&stats.retries));
        reg.set_counter("transport.timeouts_total", get(&stats.timeouts));
        reg.set_counter("transport.pool_hits_total", get(&stats.pool_hits));
        reg.set_counter("transport.pool_misses_total", get(&stats.pool_misses));
        reg.set_counter("transport.conns_accepted_total", get(&stats.conns_accepted));
        reg.set_counter(
            "transport.frames_rejected_total",
            get(&stats.frames_rejected),
        );
        reg.set_counter("transport.auth.fail_total", get(&stats.auth_failures));
        reg.set_counter("transport.send_failures_total", get(&stats.send_failures));
        reg.set_counter("transport.fault.send_total", get(&stats.faults_send));
        reg.set_counter("transport.fault.recv_total", get(&stats.faults_recv));
        for i in 0..self.inner.codec.kind_count() {
            let label = self.inner.codec.kind_label(i);
            reg.set_counter(
                &format!("transport.frames_sent_{label}_total"),
                get(TransportStats::kind_slot(&stats.frames_sent, i)),
            );
            reg.set_counter(
                &format!("transport.frames_received_{label}_total"),
                get(TransportStats::kind_slot(&stats.frames_received, i)),
            );
        }
        reg.set_gauge(
            "transport.inbox_depth",
            self.inner.inbox_depth.load(Ordering::Relaxed) as f64,
        );
    }
}

impl<M: Send + 'static, C: Codec<M>> super::Transport<SocketAddr, M> for TcpHost<M, C> {
    fn send(&self, to: SocketAddr, msg: &M) -> Result<(), TransportError> {
        TcpHost::send(self, to, msg)
    }
}

/// Atomically consumes one unit from an injected-fault budget.
fn take_one(budget: &AtomicU64) -> bool {
    budget
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
        .is_ok()
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn classify_io(stats: &TransportStats, to: SocketAddr, e: io::Error) -> TransportError {
    if is_timeout(&e) {
        TransportStats::bump(&stats.timeouts);
        TransportError::Timeout(format!("write {to}: {e}"))
    } else {
        TransportError::Io(format!("write {to}: {e}"))
    }
}

/// The accept poller: sweeps every registered listener, hands fresh
/// connections round-robin to the workers, and reaps listeners whose
/// host shut down.
fn poller_loop<M: Send + 'static, C: Codec<M>>(
    listeners: Arc<Mutex<Vec<ListenerEntry<M, C>>>>,
    conn_txs: Vec<mpsc::Sender<ConnState<M, C>>>,
    shutdown: Arc<AtomicBool>,
) {
    let mut next_worker = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        let mut accepted_any = false;
        {
            let mut entries = listeners.lock().unwrap();
            entries.retain(|entry| entry.shared.running.load(Ordering::SeqCst));
            for entry in entries.iter() {
                loop {
                    match entry.listener.accept() {
                        Ok((stream, _)) => {
                            accepted_any = true;
                            TransportStats::bump(&entry.shared.stats.conns_accepted);
                            if stream.set_nonblocking(true).is_err() {
                                continue;
                            }
                            let conn = ConnState {
                                stream,
                                shared: Arc::clone(&entry.shared),
                                assembler: FrameAssembler::new(),
                                last_activity: Instant::now(),
                            };
                            // A dead worker channel only happens at
                            // shutdown; dropping the connection is fine.
                            let _ = conn_txs[next_worker % conn_txs.len()].send(conn);
                            next_worker = next_worker.wrapping_add(1);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                        Err(_) => break,
                    }
                }
            }
        }
        if !accepted_any {
            std::thread::sleep(IDLE_TICK);
        }
    }
}

/// One connection worker: adopts connections from the poller and
/// multiplexes non-blocking reads across all of them.
fn worker_loop<M, C: Codec<M>>(rx: mpsc::Receiver<ConnState<M, C>>, shutdown: Arc<AtomicBool>) {
    let mut conns: Vec<ConnState<M, C>> = Vec::new();
    let mut scratch = vec![0u8; READ_CHUNK];
    while !shutdown.load(Ordering::SeqCst) {
        while let Ok(conn) = rx.try_recv() {
            conns.push(conn);
        }
        let mut progressed = false;
        conns.retain_mut(|conn| match poll_conn(conn, &mut scratch) {
            Verdict::Progressed => {
                progressed = true;
                true
            }
            Verdict::Idle => true,
            Verdict::Close => false,
        });
        if !progressed {
            std::thread::sleep(IDLE_TICK);
        }
    }
}

enum Verdict {
    /// Bytes moved; poll again without sleeping.
    Progressed,
    /// Nothing ready; keep the connection.
    Idle,
    /// Drop the connection.
    Close,
}

/// Drains whatever one socket has ready through its assembler,
/// delivering complete frames to the host inbox.
fn poll_conn<M, C: Codec<M>>(conn: &mut ConnState<M, C>, scratch: &mut [u8]) -> Verdict {
    let shared = Arc::clone(&conn.shared);
    let stats = &shared.stats;
    if !shared.running.load(Ordering::SeqCst) {
        return Verdict::Close;
    }
    let mut progressed = false;
    loop {
        match conn.stream.read(scratch) {
            Ok(0) => {
                // Peer hung up. Mid-frame it's a torn frame; between
                // frames it's a clean goodbye.
                if !conn.assembler.is_empty() {
                    TransportStats::bump(&stats.frames_rejected);
                }
                return Verdict::Close;
            }
            Ok(n) => {
                progressed = true;
                conn.last_activity = Instant::now();
                if take_one(&shared.fault_recvs) {
                    // Injected receive fault: discard what arrived (a
                    // mid-frame truncation from the peer's point of
                    // view) and hard-close the connection.
                    TransportStats::bump(&stats.faults_recv);
                    let _ = conn.stream.shutdown(Shutdown::Both);
                    return Verdict::Close;
                }
                conn.assembler.extend(&scratch[..n]);
                loop {
                    match conn.assembler.next_frame(&shared.key) {
                        Ok(Some(frame)) => {
                            TransportStats::bump_by(&stats.bytes_received, frame.wire_len() as u64);
                            match shared.codec.decode(&frame.payload) {
                                Ok(msg) => {
                                    let kind = shared.codec.kind_index(&msg);
                                    TransportStats::bump(TransportStats::kind_slot(
                                        &stats.frames_received,
                                        kind,
                                    ));
                                    let envelope = Envelope {
                                        from: NodeId(frame.from as u32),
                                        msg,
                                    };
                                    if shared.sender.send(envelope).is_err() {
                                        return Verdict::Close; // inbox gone
                                    }
                                }
                                Err(_) => {
                                    // Framing is still aligned; skip the
                                    // bad payload but keep the stream.
                                    TransportStats::bump(&stats.frames_rejected);
                                }
                            }
                        }
                        Ok(None) => break,
                        Err(e) => {
                            // Desync, corruption, or forgery: the stream
                            // cannot be trusted past this point.
                            TransportStats::bump(&stats.frames_rejected);
                            if e.is_auth() {
                                TransportStats::bump(&stats.auth_failures);
                            }
                            let _ = conn.stream.shutdown(Shutdown::Both);
                            return Verdict::Close;
                        }
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if let Some(deadline) = shared.read_timeout {
                    if conn.last_activity.elapsed() >= deadline {
                        // Same accounting as the blocking reader's read
                        // timeout: the wait was abandoned, and any
                        // half-received frame with it.
                        TransportStats::bump(&stats.frames_rejected);
                        TransportStats::bump(&stats.timeouts);
                        return Verdict::Close;
                    }
                }
                return if progressed {
                    Verdict::Progressed
                } else {
                    Verdict::Idle
                };
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                if !conn.assembler.is_empty() {
                    TransportStats::bump(&stats.frames_rejected);
                }
                return Verdict::Close;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::CodecError;
    use std::sync::atomic::Ordering;

    /// Toy codec: u32 LE with a leading tag byte.
    struct U32Codec;

    impl Codec<u32> for U32Codec {
        fn encode(&self, msg: &u32) -> Vec<u8> {
            let mut out = vec![0xaa];
            out.extend_from_slice(&msg.to_le_bytes());
            out
        }

        fn decode(&self, bytes: &[u8]) -> Result<u32, CodecError> {
            if bytes.len() != 5 || bytes[0] != 0xaa {
                return Err(CodecError::new("want 5 tagged bytes"));
            }
            Ok(u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]))
        }

        fn kind_count(&self) -> usize {
            2
        }

        fn kind_index(&self, msg: &u32) -> usize {
            (*msg % 2) as usize
        }

        fn kind_label(&self, index: usize) -> &'static str {
            ["even", "odd"][index]
        }
    }

    fn loopback() -> SocketAddr {
        "127.0.0.1:0".parse().unwrap()
    }

    fn bind(node: u32) -> (TcpHost<u32, U32Codec>, Inbox<u32>) {
        TcpHost::bind(loopback(), NodeId(node), U32Codec, TcpConfig::fast_test()).expect("bind")
    }

    fn wait_for(mut cond: impl FnMut() -> bool) -> bool {
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !cond() {
            if std::time::Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        true
    }

    #[test]
    fn send_and_receive_over_loopback() {
        let (alice, _alice_inbox) = bind(1);
        let (bob, bob_inbox) = bind(2);
        alice.send(bob.local_addr(), &7).unwrap();
        alice.send(bob.local_addr(), &8).unwrap();
        let first = bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(first.from, NodeId(1));
        assert_eq!(first.msg, 7);
        assert_eq!(
            bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap().msg,
            8
        );
        // Second send reused the pooled connection.
        assert_eq!(TransportStats::get(&alice.stats().pool_hits), 1);
        assert_eq!(TransportStats::get(&alice.stats().dials), 1);
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn many_hosts_share_one_runtime() {
        // The fleet shape: N hosts, one poller, two workers — and a full
        // round-robin of messages still lands everywhere.
        const N: u32 = 8;
        let runtime = TcpRuntime::new(2).expect("runtime");
        let mut hosts = Vec::new();
        for node in 0..N {
            let pair = TcpHost::bind_with_runtime(
                &runtime,
                loopback(),
                NodeId(node),
                U32Codec,
                TcpConfig::fast_test(),
            )
            .expect("bind");
            hosts.push(pair);
        }
        for i in 0..N as usize {
            let to = hosts[(i + 1) % N as usize].0.local_addr();
            hosts[i].0.send(to, &(i as u32)).unwrap();
        }
        for (i, (_, inbox)) in hosts.iter().enumerate() {
            let env = inbox.recv_timeout(Duration::from_secs(10)).unwrap();
            let expected_from = (i as u32 + N - 1) % N;
            assert_eq!(env.from, NodeId(expected_from));
            assert_eq!(env.msg, expected_from);
        }
        for (host, _) in &hosts {
            host.shutdown();
        }
    }

    #[test]
    fn unreachable_peer_fails_after_retries() {
        let (host, _inbox) = bind(1);
        // Grab a loopback port with no listener behind it.
        let vacant = {
            let probe = TcpListener::bind(loopback()).unwrap();
            probe.local_addr().unwrap()
        };
        let err = host.send(vacant, &1).unwrap_err();
        assert!(matches!(
            err,
            TransportError::Unreachable(_) | TransportError::Timeout(_)
        ));
        let stats = host.stats();
        assert_eq!(
            TransportStats::get(&stats.dial_failures),
            u64::from(TcpConfig::fast_test().max_send_attempts)
        );
        assert!(TransportStats::get(&stats.retries) > 0);
        assert_eq!(TransportStats::get(&stats.send_failures), 1);
        host.shutdown();
    }

    #[test]
    fn injected_fault_recovers_via_retry() {
        let (alice, _alice_inbox) = bind(1);
        let (bob, bob_inbox) = bind(2);
        alice.inject_send_faults(2);
        alice.send(bob.local_addr(), &42).unwrap();
        assert_eq!(
            bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap().msg,
            42
        );
        assert!(TransportStats::get(&alice.stats().retries) >= 2);
        // Bob saw the torn frames and rejected them.
        assert!(wait_for(|| {
            TransportStats::get(&bob.stats().frames_rejected) >= 2
        }));
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn undecodable_payload_rejected_without_dropping_connection() {
        let (bob, bob_inbox) = bind(2);
        // Speak raw frames: a garbage payload, then a valid message on
        // the same connection.
        let key = FrameKey::dev();
        let mut stream = TcpStream::connect(bob.local_addr()).unwrap();
        stream
            .write_all(&encode_frame(&key, 9, 0, b"not a u32"))
            .unwrap();
        stream
            .write_all(&encode_frame(&key, 9, 0, &U32Codec.encode(&5)))
            .unwrap();
        stream.flush().unwrap();
        let env = bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(env.msg, 5);
        assert_eq!(env.from, NodeId(9));
        assert_eq!(TransportStats::get(&bob.stats().frames_rejected), 1);
        assert_eq!(TransportStats::get(&bob.stats().auth_failures), 0);
        bob.shutdown();
    }

    #[test]
    fn tampered_from_header_rejected_and_counted() {
        let (bob, bob_inbox) = bind(2);
        // Forge another gateway's identity by flipping a `from` byte
        // after signing: the CRC still passes, the tag must not.
        let key = FrameKey::dev();
        let mut forged = encode_frame(&key, 9, 0, &U32Codec.encode(&5));
        forged[6] ^= 0x01;
        let mut stream = TcpStream::connect(bob.local_addr()).unwrap();
        stream.write_all(&forged).unwrap();
        stream.flush().unwrap();
        assert!(wait_for(|| {
            TransportStats::get(&bob.stats().auth_failures) >= 1
        }));
        assert!(TransportStats::get(&bob.stats().frames_rejected) >= 1);
        assert!(bob_inbox.try_recv().message().is_none());
        bob.shutdown();
    }

    #[test]
    fn mismatched_keys_reject_everything_and_export_auth_counter() {
        // Alice holds a different federation's key; bob must reject her
        // frames wholesale and count them under transport.auth.fail.
        let mut rogue_cfg = TcpConfig::fast_test();
        rogue_cfg.auth_key = FrameKey::from_master(b"some-other-federation");
        let (alice, _ai) = TcpHost::bind(loopback(), NodeId(1), U32Codec, rogue_cfg).expect("bind");
        let (bob, bob_inbox) = bind(2);
        // The write itself succeeds — rejection happens on bob's side.
        alice.send(bob.local_addr(), &7).unwrap();
        assert!(wait_for(|| {
            TransportStats::get(&bob.stats().auth_failures) >= 1
        }));
        assert!(bob_inbox.try_recv().message().is_none());

        let mut reg = Registry::new();
        bob.export_metrics(&mut reg);
        let snap = reg.snapshot();
        let auth = snap
            .counters
            .iter()
            .find(|(n, _)| n == "transport.auth.fail_total")
            .map(|(_, v)| *v)
            .expect("auth counter exported");
        assert!(auth >= 1);
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn oversize_message_rejected_before_dialing() {
        struct BloatCodec;
        impl Codec<u32> for BloatCodec {
            fn encode(&self, _msg: &u32) -> Vec<u8> {
                vec![0; MAX_FRAME_PAYLOAD + 1]
            }
            fn decode(&self, _bytes: &[u8]) -> Result<u32, CodecError> {
                Err(CodecError::new("unused"))
            }
        }
        let (host, _inbox) =
            TcpHost::bind(loopback(), NodeId(1), BloatCodec, TcpConfig::fast_test()).unwrap();
        let err = host.send(host.local_addr(), &1).unwrap_err();
        assert!(matches!(err, TransportError::Oversize { .. }));
        assert_eq!(TransportStats::get(&host.stats().dials), 0);
        host.shutdown();
    }

    #[test]
    fn export_metrics_names_kinds() {
        let (alice, _ai) = bind(1);
        let (bob, bob_inbox) = bind(2);
        alice.send(bob.local_addr(), &2).unwrap(); // even
        alice.send(bob.local_addr(), &3).unwrap(); // odd
        bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap();
        bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap();

        let mut reg = Registry::new();
        alice.export_metrics(&mut reg);
        let snap = reg.snapshot();
        let counter = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(counter("transport.frames_sent_even_total"), 1);
        assert_eq!(counter("transport.frames_sent_odd_total"), 1);
        assert!(counter("transport.bytes_sent_total") > 0);
        assert_eq!(counter("transport.dials_total"), 1);
        assert_eq!(counter("transport.pool_hits_total"), 1);
        assert_eq!(counter("transport.auth.fail_total"), 0);

        let mut reg = Registry::new();
        bob.export_metrics(&mut reg);
        let snap = reg.snapshot();
        let received: u64 = snap
            .counters
            .iter()
            .filter(|(n, _)| n.starts_with("transport.frames_received_"))
            .map(|(_, v)| *v)
            .sum();
        assert_eq!(received, 2);
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn inbox_depth_gauge_reflects_backlog() {
        let (alice, _ai) = bind(1);
        let (bob, bob_inbox) = bind(2);
        for i in 0..4 {
            alice.send(bob.local_addr(), &i).unwrap();
        }
        // Wait until the worker has parked all four.
        assert!(wait_for(|| bob_inbox.depth() >= 4));
        assert_eq!(bob_inbox.depth(), 4);
        let mut reg = Registry::new();
        bob.export_metrics(&mut reg);
        let snap = reg.snapshot();
        let gauge = snap
            .gauges
            .iter()
            .find(|(n, _)| n == "transport.inbox_depth")
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(gauge, 4.0);
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn fault_counter_drains_to_zero() {
        let (host, _inbox) = bind(1);
        host.inject_send_faults(1);
        assert!(host.take_fault());
        assert!(!host.take_fault());
        assert_eq!(host.inner.fault_sends.load(Ordering::SeqCst), 0);
        host.shutdown();
    }

    #[test]
    fn injected_recv_fault_kills_reader_and_sender_recovers() {
        let (alice, _alice_inbox) = bind(1);
        let (bob, bob_inbox) = bind(2);
        // Arm bob's next data-bearing connection to die mid-frame.
        bob.inject_recv_faults(1);
        // This send may "succeed" from alice's perspective (the bytes
        // land in the socket buffer before bob tears the connection), but
        // bob must never deliver it.
        let _ = alice.send(bob.local_addr(), &13);
        assert!(wait_for(|| {
            TransportStats::get(&bob.stats().faults_recv) >= 1
        }));
        assert_eq!(
            TransportStats::get(&bob.stats().faults_recv),
            1,
            "worker consumed the injected fault"
        );
        // The pooled connection is now dead on bob's side. A fresh dial
        // (what the retry path does after the write error surfaces)
        // reaches a new, unarmed connection.
        alice.drop_pool();
        alice.send(bob.local_addr(), &14).unwrap();
        let env = bob_inbox.recv_timeout(Duration::from_secs(10)).unwrap();
        assert_eq!(env.msg, 14);
        // The torn first message was truncated, never delivered.
        assert!(bob_inbox.try_recv().message().is_none());
        alice.shutdown();
        bob.shutdown();
    }

    #[test]
    fn recv_fault_counters_exported() {
        let (alice, _ai) = bind(1);
        let (bob, bob_inbox) = bind(2);
        bob.inject_recv_faults(1);
        alice.inject_send_faults(1);
        let _ = alice.send(bob.local_addr(), &21);
        // The send-side fault burns the first attempt; the retry lands on
        // bob's armed connection; the next retry gets through.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while bob_inbox.try_recv().message().is_none() && std::time::Instant::now() < deadline {
            alice.drop_pool();
            let _ = alice.send(bob.local_addr(), &21);
            std::thread::sleep(Duration::from_millis(10));
        }
        let mut reg = Registry::new();
        alice.export_metrics(&mut reg);
        let snap = reg.snapshot();
        let counter = |snap: &bcwan_sim::Snapshot, name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("{name} missing"))
        };
        assert_eq!(counter(&snap, "transport.fault.send_total"), 1);
        assert_eq!(counter(&snap, "transport.fault.recv_total"), 0);
        let mut reg = Registry::new();
        bob.export_metrics(&mut reg);
        let snap = reg.snapshot();
        assert_eq!(counter(&snap, "transport.fault.send_total"), 0);
        assert_eq!(counter(&snap, "transport.fault.recv_total"), 1);
        alice.shutdown();
        bob.shutdown();
    }
}
