//! The overlay transport layer: how a host's messages actually move.
//!
//! The paper's gateways "open a direct TCP/IP connection" to the
//! recipient they looked up on chain (§4.3). This module tree makes that
//! a first-class, failure-prone subsystem instead of an in-process
//! stand-in:
//!
//! - [`frame`] — the versioned, checksummed, *authenticated*
//!   length-prefixed frame every byte stream carries (HMAC tag over
//!   header and payload under the federation's provisioned
//!   [`FrameKey`]),
//! - [`tcp`] — an event-driven runtime on `std::net`: one non-blocking
//!   accept poller plus a bounded worker pool multiplex *all* of a
//!   host's connections, so a fleet of hosts costs a handful of threads
//!   instead of one per connection; per-peer connection pooling,
//!   connect/write deadlines, and bounded exponential-backoff retry on
//!   the send side,
//! - [`bus`] — the in-process [`LiveBus`](crate::live::LiveBus) adapted
//!   to the same [`Transport`] trait, so protocol code is pluggable
//!   between the two.
//!
//! Serialization is delegated to a [`Codec`], keeping the transport
//! generic over the message vocabulary (the `bcwan` crate supplies the
//! `WanMessage` codec; tests use toy codecs).

pub mod bus;
pub mod frame;
pub mod tcp;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// Serializes and deserializes one message vocabulary for the wire.
pub trait Codec<M>: Send + Sync + 'static {
    /// Deterministically encodes `msg` into payload bytes.
    fn encode(&self, msg: &M) -> Vec<u8>;

    /// Decodes payload bytes; must reject garbage, never panic.
    ///
    /// # Errors
    ///
    /// [`CodecError`] describing why the bytes are not a valid message.
    fn decode(&self, bytes: &[u8]) -> Result<M, CodecError>;

    /// Number of distinct payload kinds (width of per-kind counters).
    fn kind_count(&self) -> usize {
        1
    }

    /// Dense kind index of `msg` (`< kind_count()`).
    fn kind_index(&self, _msg: &M) -> usize {
        0
    }

    /// Short metric label for a kind index.
    fn kind_label(&self, _index: usize) -> &'static str {
        "msg"
    }
}

/// A decode failure (the payload was framed correctly but is not a valid
/// message).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Human-readable reason.
    pub reason: String,
}

impl CodecError {
    /// Builds an error from any displayable reason.
    pub fn new(reason: impl fmt::Display) -> Self {
        CodecError {
            reason: reason.to_string(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "payload did not decode: {}", self.reason)
    }
}

impl std::error::Error for CodecError {}

/// Errors surfaced by [`Transport::send`] after retries are exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// The peer could not be reached (dial failures, unknown node).
    Unreachable(String),
    /// A connect/read/write deadline expired.
    Timeout(String),
    /// The connection died while writing and retries ran out.
    Io(String),
    /// The encoded message exceeds the frame ceiling.
    Oversize {
        /// Encoded payload length.
        len: usize,
        /// The ceiling ([`frame::MAX_FRAME_PAYLOAD`]).
        max: usize,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Unreachable(what) => write!(f, "peer unreachable: {what}"),
            TransportError::Timeout(what) => write!(f, "transport timeout: {what}"),
            TransportError::Io(what) => write!(f, "transport failure: {what}"),
            TransportError::Oversize { len, max } => {
                write!(f, "message of {len} bytes exceeds frame ceiling {max}")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// Anything that can carry an addressed message for the overlay.
///
/// `A` is the address vocabulary: [`NodeId`](crate::topology::NodeId)
/// for the in-process bus, `std::net::SocketAddr` for TCP. Protocol code
/// written against this trait runs unchanged over either.
pub trait Transport<A, M> {
    /// Sends one message, retrying per the implementation's policy.
    ///
    /// # Errors
    ///
    /// [`TransportError`] once the implementation gives up.
    fn send(&self, to: A, msg: &M) -> Result<(), TransportError>;
}

/// Atomic transport counters, shared across the sender, accept, and
/// reader threads of one host. Snapshot them into a
/// [`Registry`](bcwan_sim::Registry) with `TcpHost::export_metrics`.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Frame + payload bytes written (successful sends only).
    pub bytes_sent: AtomicU64,
    /// Frame + payload bytes of frames received intact.
    pub bytes_received: AtomicU64,
    /// Outbound connection attempts.
    pub dials: AtomicU64,
    /// Outbound connection attempts that failed.
    pub dial_failures: AtomicU64,
    /// Send attempts retried after a dial/write failure.
    pub retries: AtomicU64,
    /// Connect/read/write deadline expiries.
    pub timeouts: AtomicU64,
    /// Sends that reused a pooled connection.
    pub pool_hits: AtomicU64,
    /// Sends that had to dial a fresh connection.
    pub pool_misses: AtomicU64,
    /// Inbound connections accepted.
    pub conns_accepted: AtomicU64,
    /// Frames rejected by the reader (bad magic/version/checksum,
    /// truncation, undecodable payload, failed authentication).
    pub frames_rejected: AtomicU64,
    /// Frames whose authentication tag did not verify (forged `from`
    /// header, corrupted tag, or a peer holding a different
    /// [`FrameKey`]). Exported as
    /// `transport.auth.fail_total`; always a subset of
    /// `frames_rejected`.
    pub auth_failures: AtomicU64,
    /// Sends that ultimately failed after all retries.
    pub send_failures: AtomicU64,
    /// Injected send-side faults fired (frames torn mid-write).
    pub faults_send: AtomicU64,
    /// Injected receive-side faults fired (reader threads killed
    /// mid-frame).
    pub faults_recv: AtomicU64,
    /// Frames sent, by codec kind index.
    pub frames_sent: Vec<AtomicU64>,
    /// Frames received intact, by codec kind index.
    pub frames_received: Vec<AtomicU64>,
}

impl TransportStats {
    /// Zeroed stats sized for `kind_count` payload kinds.
    pub fn new(kind_count: usize) -> Self {
        let zeros = |n: usize| (0..n).map(|_| AtomicU64::new(0)).collect();
        TransportStats {
            frames_sent: zeros(kind_count.max(1)),
            frames_received: zeros(kind_count.max(1)),
            ..TransportStats::default()
        }
    }

    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn bump_by(counter: &AtomicU64, by: u64) {
        counter.fetch_add(by, Ordering::Relaxed);
    }

    pub(crate) fn kind_slot(slots: &[AtomicU64], kind: usize) -> &AtomicU64 {
        &slots[kind.min(slots.len() - 1)]
    }

    /// Current value of one counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

pub use bus::BusTransport;
pub use frame::FrameKey;
pub use tcp::{TcpConfig, TcpHost, TcpRuntime};
