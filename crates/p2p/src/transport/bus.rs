//! The in-process [`LiveBus`] adapted to the [`Transport`] trait.
//!
//! A [`BusTransport`] is a bus handle bound to one sender identity, so
//! `transport.send(to, &msg)` has the same shape as the TCP host's —
//! protocol code written against [`Transport`] runs unchanged over mpsc
//! channels in tests and real sockets in deployment.

use super::{Transport, TransportError};
use crate::live::LiveBus;
use crate::topology::NodeId;

/// A [`LiveBus`] handle bound to one sender identity.
#[derive(Debug)]
pub struct BusTransport<M> {
    bus: LiveBus<M>,
    from: NodeId,
}

impl<M> Clone for BusTransport<M> {
    fn clone(&self) -> Self {
        BusTransport {
            bus: self.bus.clone(),
            from: self.from,
        }
    }
}

impl<M> BusTransport<M> {
    /// Binds a bus handle to the sending node's identity.
    pub fn new(bus: LiveBus<M>, from: NodeId) -> Self {
        BusTransport { bus, from }
    }

    /// The identity stamped on every send.
    pub fn from(&self) -> NodeId {
        self.from
    }

    /// The underlying bus handle.
    pub fn bus(&self) -> &LiveBus<M> {
        &self.bus
    }
}

impl<M: Clone> Transport<NodeId, M> for BusTransport<M> {
    fn send(&self, to: NodeId, msg: &M) -> Result<(), TransportError> {
        self.bus
            .send(self.from, to, msg.clone())
            .map_err(|e| TransportError::Unreachable(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bus_transport_sends_with_bound_identity() {
        let bus: LiveBus<u32> = LiveBus::new();
        let inbox = bus.register(NodeId(1));
        let transport = BusTransport::new(bus, NodeId(0));
        Transport::send(&transport, NodeId(1), &11).unwrap();
        let env = inbox.recv().unwrap();
        assert_eq!(env.from, NodeId(0));
        assert_eq!(env.msg, 11);
    }

    #[test]
    fn unknown_node_maps_to_unreachable() {
        let bus: LiveBus<u32> = LiveBus::new();
        let transport = BusTransport::new(bus, NodeId(0));
        let err = Transport::send(&transport, NodeId(9), &1).unwrap_err();
        assert!(matches!(err, TransportError::Unreachable(_)));
    }
}
