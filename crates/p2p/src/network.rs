//! The simulated wide-area network: latency, loss, duplication, partitions.
//!
//! [`Network::transmit`] is *passive*: it computes the deliveries a send
//! produces (zero on loss, two on duplication) and hands back their
//! arrival delays; the caller owns the event queue and schedules them.
//! This keeps the network model independent of any particular event type.

use crate::topology::{NodeId, Topology};
use bcwan_sim::{LatencyModel, SimDuration, SimRng};
use std::cell::Cell;

/// An in-flight message headed to `to`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery<M> {
    /// Sender.
    pub from: NodeId,
    /// Receiver.
    pub to: NodeId,
    /// Payload.
    pub msg: M,
}

/// Link fault model.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultModel {
    /// Probability a message is silently dropped.
    pub drop_probability: f64,
    /// Probability a message is delivered twice.
    pub duplicate_probability: f64,
}

impl FaultModel {
    /// No faults.
    pub fn none() -> Self {
        FaultModel {
            drop_probability: 0.0,
            duplicate_probability: 0.0,
        }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

/// Lifetime traffic counters, read back into the metrics registry at the
/// end of a run (`net.*` rows in bench reports).
///
/// Kept in a [`Cell`] inside [`Network`] so the `&self` transmit methods
/// can count without forcing `&mut` through every call site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Unicast sends attempted (including reliable/TCP sends).
    pub sent: u64,
    /// Deliveries produced (≥ sent minus drops; duplicates add extras).
    pub delivered: u64,
    /// Sends swallowed by the loss fault model.
    pub dropped_fault: u64,
    /// Sends blocked by a partition / missing link.
    pub dropped_partition: u64,
    /// Extra deliveries from the duplication fault model.
    pub duplicated: u64,
}

/// The overlay network simulator.
#[derive(Debug, Clone)]
pub struct Network {
    topology: Topology,
    latency: LatencyModel,
    faults: FaultModel,
    stats: Cell<NetStats>,
}

impl Network {
    /// Builds a network over `topology` with one latency model for every
    /// link (the paper's PlanetLab sites are statistically exchangeable).
    pub fn new(topology: Topology, latency: LatencyModel) -> Self {
        Network {
            topology,
            latency,
            faults: FaultModel::none(),
            stats: Cell::new(NetStats::default()),
        }
    }

    /// Lifetime traffic counters.
    pub fn stats(&self) -> NetStats {
        self.stats.get()
    }

    fn count(&self, f: impl FnOnce(&mut NetStats)) {
        let mut s = self.stats.get();
        f(&mut s);
        self.stats.set(s);
    }

    /// Enables the fault model.
    pub fn with_faults(mut self, faults: FaultModel) -> Self {
        self.faults = faults;
        self
    }

    /// The topology (for partition injection, use
    /// [`Network::topology_mut`]).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable topology access.
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Computes the deliveries for a unicast send. Empty when the link is
    /// down/partitioned or the message is dropped; two entries on
    /// duplication.
    pub fn transmit<M: Clone>(
        &self,
        rng: &mut SimRng,
        from: NodeId,
        to: NodeId,
        msg: M,
    ) -> Vec<(SimDuration, Delivery<M>)> {
        self.count(|s| s.sent += 1);
        if !self.topology.linked(from, to) {
            self.count(|s| s.dropped_partition += 1);
            return Vec::new();
        }
        if rng.chance(self.faults.drop_probability) {
            self.count(|s| s.dropped_fault += 1);
            return Vec::new();
        }
        let mut out = Vec::with_capacity(2);
        let delay = self.latency.sample(rng);
        out.push((
            delay,
            Delivery {
                from,
                to,
                msg: msg.clone(),
            },
        ));
        if rng.chance(self.faults.duplicate_probability) {
            let delay2 = self.latency.sample(rng);
            out.push((delay2, Delivery { from, to, msg }));
            self.count(|s| s.duplicated += 1);
        }
        self.count(|s| s.delivered += out.len() as u64);
        out
    }

    /// Like [`Network::transmit`] but immune to the drop/duplicate fault
    /// model — models a TCP connection (the paper's gateway→recipient
    /// leg), which retransmits below our abstraction. Partitions still
    /// apply: TCP cannot cross a cut link.
    pub fn transmit_reliable<M>(
        &self,
        rng: &mut SimRng,
        from: NodeId,
        to: NodeId,
        msg: M,
    ) -> Option<(SimDuration, Delivery<M>)> {
        self.count(|s| s.sent += 1);
        if !self.topology.linked(from, to) {
            self.count(|s| s.dropped_partition += 1);
            return None;
        }
        let delay = self.latency.sample(rng);
        self.count(|s| s.delivered += 1);
        Some((delay, Delivery { from, to, msg }))
    }

    /// A directory-driven direct dial: like [`Network::transmit_reliable`]
    /// but independent of the static gossip adjacency — the sender
    /// looked the peer's IP up (on chain, §4.3) and opens a TCP
    /// connection straight to it, so the overlay graph that shapes
    /// flood fan-out does not constrain it. Chaos-level cuts are the
    /// caller's concern (they model live failures, not graph shape).
    pub fn dial<M>(
        &self,
        rng: &mut SimRng,
        from: NodeId,
        to: NodeId,
        msg: M,
    ) -> Option<(SimDuration, Delivery<M>)> {
        self.count(|s| s.sent += 1);
        let delay = self.latency.sample(rng);
        self.count(|s| s.delivered += 1);
        Some((delay, Delivery { from, to, msg }))
    }

    /// Computes deliveries for a broadcast to every peer of `from`.
    pub fn broadcast<M: Clone>(
        &self,
        rng: &mut SimRng,
        from: NodeId,
        msg: &M,
    ) -> Vec<(SimDuration, Delivery<M>)> {
        let mut out = Vec::new();
        for peer in self.topology.peers_of(from) {
            out.extend(self.transmit(rng, from, peer, msg.clone()));
        }
        out
    }
}

/// Gossip relay dedupe: tracks message ids a node has already seen so
/// flooded broadcasts terminate.
#[derive(Debug, Clone, Default)]
pub struct SeenFilter {
    seen: std::collections::HashSet<[u8; 32]>,
}

impl SeenFilter {
    /// A fresh filter.
    pub fn new() -> Self {
        SeenFilter::default()
    }

    /// Returns `true` the first time `id` is offered, `false` afterwards.
    pub fn first_sighting(&mut self, id: [u8; 32]) -> bool {
        self.seen.insert(id)
    }

    /// Forgets `id`, so its next sighting counts as the first again.
    /// Returns whether it was known. Used when a reorg orphans a
    /// transaction: the owner will re-broadcast it, and relays that
    /// remembered the txid would otherwise drop the recovery flood.
    pub fn forget(&mut self, id: &[u8; 32]) -> bool {
        self.seen.remove(id)
    }

    /// Number of distinct ids seen.
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    /// Whether nothing has been seen.
    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(drop: f64, dup: f64) -> Network {
        Network::new(
            Topology::full_mesh(4),
            LatencyModel::Constant(SimDuration::from_millis(10)),
        )
        .with_faults(FaultModel {
            drop_probability: drop,
            duplicate_probability: dup,
        })
    }

    #[test]
    fn transmit_delivers_with_latency() {
        let network = net(0.0, 0.0);
        let mut rng = SimRng::seed_from_u64(1);
        let deliveries = network.transmit(&mut rng, NodeId(0), NodeId(1), "hello");
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].0, SimDuration::from_millis(10));
        assert_eq!(deliveries[0].1.msg, "hello");
        assert_eq!(deliveries[0].1.to, NodeId(1));
    }

    #[test]
    fn unlinked_nodes_cannot_talk() {
        let mut network = net(0.0, 0.0);
        network.topology_mut().disconnect(NodeId(0), NodeId(1));
        let mut rng = SimRng::seed_from_u64(2);
        assert!(network
            .transmit(&mut rng, NodeId(0), NodeId(1), ())
            .is_empty());
        // Other links unaffected.
        assert_eq!(
            network.transmit(&mut rng, NodeId(0), NodeId(2), ()).len(),
            1
        );
    }

    #[test]
    fn drops_happen_at_configured_rate() {
        let network = net(0.5, 0.0);
        let mut rng = SimRng::seed_from_u64(3);
        let delivered = (0..1000)
            .map(|_| network.transmit(&mut rng, NodeId(0), NodeId(1), ()).len())
            .sum::<usize>();
        assert!((380..620).contains(&delivered), "{delivered}/1000");
    }

    #[test]
    fn duplicates_happen_at_configured_rate() {
        let network = net(0.0, 0.5);
        let mut rng = SimRng::seed_from_u64(4);
        let delivered = (0..1000)
            .map(|_| network.transmit(&mut rng, NodeId(0), NodeId(1), ()).len())
            .sum::<usize>();
        assert!((1380..1620).contains(&delivered), "{delivered}/1000");
    }

    #[test]
    fn broadcast_reaches_all_peers() {
        let network = net(0.0, 0.0);
        let mut rng = SimRng::seed_from_u64(5);
        let deliveries = network.broadcast(&mut rng, NodeId(2), &"block");
        assert_eq!(deliveries.len(), 3);
        let targets: Vec<_> = deliveries.iter().map(|(_, d)| d.to).collect();
        assert!(targets.contains(&NodeId(0)));
        assert!(targets.contains(&NodeId(1)));
        assert!(targets.contains(&NodeId(3)));
    }

    #[test]
    fn reliable_transmit_ignores_drops_not_partitions() {
        let mut network = net(1.0, 0.0); // every unreliable frame drops
        let mut rng = SimRng::seed_from_u64(6);
        assert!(network
            .transmit(&mut rng, NodeId(0), NodeId(1), ())
            .is_empty());
        assert!(network
            .transmit_reliable(&mut rng, NodeId(0), NodeId(1), ())
            .is_some());
        network.topology_mut().disconnect(NodeId(0), NodeId(1));
        assert!(network
            .transmit_reliable(&mut rng, NodeId(0), NodeId(1), ())
            .is_none());
    }

    #[test]
    fn stats_count_traffic() {
        let mut network = net(0.0, 0.0);
        let mut rng = SimRng::seed_from_u64(9);
        network.transmit(&mut rng, NodeId(0), NodeId(1), ());
        network.transmit_reliable(&mut rng, NodeId(0), NodeId(2), ());
        network.topology_mut().disconnect(NodeId(0), NodeId(3));
        network.transmit(&mut rng, NodeId(0), NodeId(3), ());
        let s = network.stats();
        assert_eq!(s.sent, 3);
        assert_eq!(s.delivered, 2);
        assert_eq!(s.dropped_partition, 1);
        assert_eq!(s.dropped_fault, 0);

        let lossy = net(1.0, 0.0);
        lossy.transmit(&mut rng, NodeId(0), NodeId(1), ());
        assert_eq!(lossy.stats().dropped_fault, 1);
    }

    #[test]
    fn seen_filter_dedupes() {
        let mut filter = SeenFilter::new();
        assert!(filter.first_sighting([1; 32]));
        assert!(!filter.first_sighting([1; 32]));
        assert!(filter.first_sighting([2; 32]));
        assert_eq!(filter.len(), 2);
    }
}
