// Raw 4×u64-limb arithmetic over the secp256k1 base field.
//
// The prime is pseudo-Mersenne: `p = 2^256 − 2^32 − 977`, so
// `2^256 ≡ C (mod p)` with `C = 2^32 + 977 = 0x1000003D1`. Reduction is a
// carry fold — multiply the high half by `C` and add it back in — with no
// division anywhere. Every function here is a `const fn` over little-endian
// `[u64; 4]` limbs so the same code path drives both the runtime
// `field::FieldElement` wrapper and the `build.rs` generator that
// const-bakes the fixed-window base-point table (which is why this file
// uses plain `//` comments: build.rs splices it in with `include!`).
//
// Representation invariant: inputs and outputs are fully reduced (`< p`).
// The fuzz suite (`tests/field_fuzz.rs`) checks every operation against the
// retained `bignum::BigUint` implementation as oracle.

/// The secp256k1 field prime `p = 2^256 − 2^32 − 977`, little-endian limbs.
pub const P: [u64; 4] = [
    0xFFFF_FFFE_FFFF_FC2F,
    0xFFFF_FFFF_FFFF_FFFF,
    0xFFFF_FFFF_FFFF_FFFF,
    0xFFFF_FFFF_FFFF_FFFF,
];

/// `2^256 mod p = 2^32 + 977`. Fits well inside one limb (33 bits), which is
/// what makes the two-stage carry fold in `reduce_wide` terminate.
pub const FOLD: u64 = 0x1_0000_03D1;

/// Add with carry: returns `(sum, carry_out)` for `a + b + carry`.
/// Shared with the Montgomery scalar layer in `crate::scalar`.
pub const fn adc(a: u64, b: u64, carry: u64) -> (u64, u64) {
    let t = a as u128 + b as u128 + carry as u128;
    (t as u64, (t >> 64) as u64)
}

/// Subtract with borrow: returns `(diff, borrow_out)` for `a − b − borrow`.
/// Shared with the Montgomery scalar layer in `crate::scalar`.
pub const fn sbb(a: u64, b: u64, borrow: u64) -> (u64, u64) {
    let (d, b1) = a.overflowing_sub(b);
    let (d, b2) = d.overflowing_sub(borrow);
    (d, (b1 | b2) as u64)
}

/// True iff all limbs are zero.
pub const fn fe_is_zero(a: &[u64; 4]) -> bool {
    a[0] | a[1] | a[2] | a[3] == 0
}

/// Subtract `p` once if the value is `≥ p` (the value must be `< 2p`).
///
/// Branchless: the final borrow is stretched into an all-ones/all-zeros
/// mask and the result is selected limb-by-limb with boolean algebra, so
/// normalization takes the same instruction sequence whether or not the
/// subtraction happened. This is what makes the field primitive
/// constant-time with respect to the value being reduced (no
/// secret-dependent branch for the pipeline to leak through).
pub const fn cond_sub_p(r: [u64; 4]) -> [u64; 4] {
    let (d0, borrow) = sbb(r[0], P[0], 0);
    let (d1, borrow) = sbb(r[1], P[1], borrow);
    let (d2, borrow) = sbb(r[2], P[2], borrow);
    let (d3, borrow) = sbb(r[3], P[3], borrow);
    // borrow ∈ {0, 1}; keep = 0…0 when the subtraction fit, 1…1 otherwise.
    let keep = borrow.wrapping_neg();
    [
        (r[0] & keep) | (d0 & !keep),
        (r[1] & keep) | (d1 & !keep),
        (r[2] & keep) | (d2 & !keep),
        (r[3] & keep) | (d3 & !keep),
    ]
}

/// Field addition: `(a + b) mod p` for reduced inputs.
pub const fn fe_add(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let (r0, carry) = adc(a[0], b[0], 0);
    let (r1, carry) = adc(a[1], b[1], carry);
    let (r2, carry) = adc(a[2], b[2], carry);
    let (r3, carry) = adc(a[3], b[3], carry);
    // a + b < 2p, so the 2^256 overflow bit folds to +FOLD and leaves the
    // value < p already (a + b − 2^256 + FOLD = a + b − p); no carry-out.
    let t = r0 as u128 + carry as u128 * FOLD as u128;
    let (r0, c) = (t as u64, (t >> 64) as u64);
    let (r1, c) = adc(r1, 0, c);
    let (r2, c) = adc(r2, 0, c);
    let (r3, _) = adc(r3, 0, c);
    cond_sub_p([r0, r1, r2, r3])
}

/// Field subtraction: `(a − b) mod p` for reduced inputs.
pub const fn fe_sub(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let (r0, borrow) = sbb(a[0], b[0], 0);
    let (r1, borrow) = sbb(a[1], b[1], borrow);
    let (r2, borrow) = sbb(a[2], b[2], borrow);
    let (r3, borrow) = sbb(a[3], b[3], borrow);
    // On underflow the wrapped value is a − b + 2^256; subtracting FOLD turns
    // it into a − b + p. Since a − b ≥ −(p − 1), the wrapped value is at
    // least FOLD + 1, so this never underflows again.
    let (r0, c) = sbb(r0, borrow * FOLD, 0);
    let (r1, c) = sbb(r1, 0, c);
    let (r2, c) = sbb(r2, 0, c);
    let (r3, _) = sbb(r3, 0, c);
    [r0, r1, r2, r3]
}

/// Field negation: `(p − a) mod p`, mapping zero to zero.
pub const fn fe_neg(a: &[u64; 4]) -> [u64; 4] {
    fe_sub(&[0, 0, 0, 0], a)
}

/// Schoolbook 4×4 multiply into a 512-bit product (8 limbs, little-endian).
/// Also used by the GLV lattice decomposition (`crate::glv`), which needs
/// the full product for its rounded high-half extraction.
pub const fn mul_wide(a: &[u64; 4], b: &[u64; 4]) -> [u64; 8] {
    let mut t = [0u64; 8];
    let mut i = 0;
    while i < 4 {
        let mut carry = 0u128;
        let mut j = 0;
        while j < 4 {
            let cur = t[i + j] as u128 + a[i] as u128 * b[j] as u128 + carry;
            t[i + j] = cur as u64;
            carry = cur >> 64;
            j += 1;
        }
        t[i + 4] = carry as u64;
        i += 1;
    }
    t
}

/// Squaring into a 512-bit product: off-diagonal products computed once and
/// doubled, diagonals added afterwards (≈40% fewer 64×64 multiplies).
const fn sqr_wide(a: &[u64; 4]) -> [u64; 8] {
    let mut t = [0u64; 8];
    // Off-diagonal terms a_i·a_j for i < j, accumulated at position i + j.
    let mut i = 0;
    while i < 4 {
        let mut carry = 0u128;
        let mut j = i + 1;
        while j < 4 {
            let cur = t[i + j] as u128 + a[i] as u128 * a[j] as u128 + carry;
            t[i + j] = cur as u64;
            carry = cur >> 64;
            j += 1;
        }
        if i < 3 {
            t[i + 4] = carry as u64;
        }
        i += 1;
    }
    // Double (top limb is still free: the cross sum fits 2^511).
    let mut carry = 0u64;
    let mut k = 0;
    while k < 8 {
        let cur = ((t[k] as u128) << 1) | carry as u128;
        t[k] = cur as u64;
        carry = (cur >> 64) as u64;
        k += 1;
    }
    // Add the diagonal squares a_k² at positions 2k, 2k+1.
    let mut carry = 0u64;
    let mut k = 0;
    while k < 4 {
        let sq = a[k] as u128 * a[k] as u128;
        let (d0, c) = adc(t[2 * k], sq as u64, carry);
        let (d1, c) = adc(t[2 * k + 1], (sq >> 64) as u64, c);
        t[2 * k] = d0;
        t[2 * k + 1] = d1;
        carry = c;
        k += 1;
    }
    t
}

/// Reduce a 512-bit product modulo `p` with the pseudo-Mersenne fold.
///
/// Stage 1 folds the high 256 bits down (`r = lo + hi·FOLD`, a 5-limb
/// value whose top limb is ≤ 2^33). Stage 2 folds that top limb the same
/// way, leaving at most a single overflow bit, which stage 3 folds once
/// more (it cannot carry again because stage 2 only overflows when the low
/// limbs wrapped to a tiny value). One conditional subtract finishes.
const fn reduce_wide(t: &[u64; 8]) -> [u64; 4] {
    // Stage 1: r = lo + hi·FOLD.
    let mut r = [0u64; 5];
    let mut carry = 0u128;
    let mut i = 0;
    while i < 4 {
        let cur = t[i] as u128 + t[i + 4] as u128 * FOLD as u128 + carry;
        r[i] = cur as u64;
        carry = cur >> 64;
        i += 1;
    }
    r[4] = carry as u64;
    // Stage 2: fold the 33-bit top limb.
    let cur = r[0] as u128 + r[4] as u128 * FOLD as u128;
    let (r0, c) = (cur as u64, (cur >> 64) as u64);
    let (r1, c) = adc(r[1], 0, c);
    let (r2, c) = adc(r[2], 0, c);
    let (r3, c) = adc(r[3], 0, c);
    // Stage 3: at most one overflow bit left.
    let cur = r0 as u128 + c as u128 * FOLD as u128;
    let (r0, c) = (cur as u64, (cur >> 64) as u64);
    let (r1, c) = adc(r1, 0, c);
    let (r2, c) = adc(r2, 0, c);
    let (r3, _) = adc(r3, 0, c);
    cond_sub_p([r0, r1, r2, r3])
}

/// Field multiplication: `(a · b) mod p`.
pub const fn fe_mul(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    reduce_wide(&mul_wide(a, b))
}

/// Field squaring: `a² mod p`.
pub const fn fe_sqr(a: &[u64; 4]) -> [u64; 4] {
    reduce_wide(&sqr_wide(a))
}

/// `n` squarings followed by a multiply — the building block of the
/// addition chains below.
const fn fe_sqrn_mul(a: &[u64; 4], n: u32, b: &[u64; 4]) -> [u64; 4] {
    let mut t = *a;
    let mut i = 0;
    while i < n {
        t = fe_sqr(&t);
        i += 1;
    }
    fe_mul(&t, b)
}

/// Shared prefix of the inversion and square-root addition chains:
/// returns `(x2, x3, x22, x223)` where `xk = a^(2^k − 1)`.
const fn fe_chain_prefix(a: &[u64; 4]) -> ([u64; 4], [u64; 4], [u64; 4], [u64; 4]) {
    let x2 = fe_sqrn_mul(a, 1, a);
    let x3 = fe_sqrn_mul(&x2, 1, a);
    let x6 = fe_sqrn_mul(&x3, 3, &x3);
    let x9 = fe_sqrn_mul(&x6, 3, &x3);
    let x11 = fe_sqrn_mul(&x9, 2, &x2);
    let x22 = fe_sqrn_mul(&x11, 11, &x11);
    let x44 = fe_sqrn_mul(&x22, 22, &x22);
    let x88 = fe_sqrn_mul(&x44, 44, &x44);
    let x176 = fe_sqrn_mul(&x88, 88, &x88);
    let x220 = fe_sqrn_mul(&x176, 44, &x44);
    let x223 = fe_sqrn_mul(&x220, 3, &x3);
    (x2, x3, x22, x223)
}

/// Field inversion by Fermat's little theorem: `a^(p−2) mod p` via the
/// 255-squaring/15-multiply addition chain from libsecp256k1. Maps zero
/// to zero (callers guard the projective `Z = 0` case explicitly).
pub const fn fe_inv(a: &[u64; 4]) -> [u64; 4] {
    let (x2, _x3, x22, x223) = fe_chain_prefix(a);
    // p − 2 = 2^256 − 2^32 − 979: tail bits 11111111 11111111 11111100 0010 1101.
    let t = fe_sqrn_mul(&x223, 23, &x22);
    let t = fe_sqrn_mul(&t, 5, a);
    let t = fe_sqrn_mul(&t, 3, &x2);
    fe_sqrn_mul(&t, 2, a)
}

/// Square-root candidate `a^((p+1)/4) mod p` (valid because `p ≡ 3 mod 4`).
/// The result only squares back to `a` when `a` is a quadratic residue —
/// callers must check `r² == a`.
pub const fn fe_sqrt_candidate(a: &[u64; 4]) -> [u64; 4] {
    let (x2, _x3, x22, x223) = fe_chain_prefix(a);
    // (p + 1) / 4 = 2^254 − 2^30 − 244: tail bits 111111 1111111111 1111110000 1100.
    let t = fe_sqrn_mul(&x223, 23, &x22);
    let t = fe_sqrn_mul(&t, 6, &x2);
    fe_sqr(&fe_sqr(&t))
}
