//! AES-256 block cipher and CBC mode with PKCS#7 padding (FIPS 197,
//! NIST SP 800-38A).
//!
//! This is the symmetric layer of BcWAN (paper §5.1): the node and the
//! recipient share an AES-256 key `K`; payloads are encrypted in CBC mode
//! with a random 16-byte IV, producing the 34-byte frame of paper Fig. 4
//! for plaintexts of at most 16 bytes.

/// AES block size in bytes.
pub const BLOCK_SIZE: usize = 16;
/// AES-256 key size in bytes.
pub const KEY_SIZE: usize = 32;

const NK: usize = 8; // 256-bit key words
const NR: usize = 14; // rounds for AES-256

static SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

static INV_SBOX: [u8; 256] = {
    let mut inv = [0u8; 256];
    let mut i = 0;
    while i < 256 {
        inv[SBOX[i] as usize] = i as u8;
        i += 1;
    }
    inv
};

const RCON: [u8; 15] = [
    0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d, 0x9a,
];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 == 1 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-256 key ready for block operations.
///
/// # Examples
///
/// ```
/// use bcwan_crypto::aes::Aes256;
///
/// let key = [0u8; 32];
/// let aes = Aes256::new(&key);
/// let block = [0u8; 16];
/// let ct = aes.encrypt_block(&block);
/// assert_eq!(aes.decrypt_block(&ct), block);
/// ```
#[derive(Clone)]
pub struct Aes256 {
    round_keys: [[u8; 16]; NR + 1],
}

impl std::fmt::Debug for Aes256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        f.write_str("Aes256 { .. }")
    }
}

impl Aes256 {
    /// Expands a 256-bit key.
    pub fn new(key: &[u8; KEY_SIZE]) -> Self {
        let mut w = [[0u8; 4]; 4 * (NR + 1)];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i] = [chunk[0], chunk[1], chunk[2], chunk[3]];
        }
        for i in NK..4 * (NR + 1) {
            let mut temp = w[i - 1];
            if i % NK == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / NK - 1];
            } else if i % NK == 4 {
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
            }
            for j in 0..4 {
                w[i][j] = w[i - NK][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; NR + 1];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
            }
        }
        Aes256 { round_keys }
    }

    /// Encrypts a single 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..NR {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[NR]);
        state
    }

    /// Decrypts a single 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; BLOCK_SIZE]) -> [u8; BLOCK_SIZE] {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[NR]);
        for round in (1..NR).rev() {
            inv_shift_rows(&mut state);
            inv_sub_bytes(&mut state);
            add_round_key(&mut state, &self.round_keys[round]);
            inv_mix_columns(&mut state);
        }
        inv_shift_rows(&mut state);
        inv_sub_bytes(&mut state);
        add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

// State is column-major: state[4*c + r] is row r, column c (FIPS 197 layout).
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

fn inv_sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = INV_SBOX[*s as usize];
    }
}

fn shift_rows(state: &mut [u8; 16]) {
    let copy = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[c * 4 + r] = copy[((c + r) % 4) * 4 + r];
        }
    }
}

fn inv_shift_rows(state: &mut [u8; 16]) {
    let copy = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[((c + r) % 4) * 4 + r] = copy[c * 4 + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[c * 4],
            state[c * 4 + 1],
            state[c * 4 + 2],
            state[c * 4 + 3],
        ];
        state[c * 4] = xtime(col[0]) ^ (xtime(col[1]) ^ col[1]) ^ col[2] ^ col[3];
        state[c * 4 + 1] = col[0] ^ xtime(col[1]) ^ (xtime(col[2]) ^ col[2]) ^ col[3];
        state[c * 4 + 2] = col[0] ^ col[1] ^ xtime(col[2]) ^ (xtime(col[3]) ^ col[3]);
        state[c * 4 + 3] = (xtime(col[0]) ^ col[0]) ^ col[1] ^ col[2] ^ xtime(col[3]);
    }
}

fn inv_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [
            state[c * 4],
            state[c * 4 + 1],
            state[c * 4 + 2],
            state[c * 4 + 3],
        ];
        state[c * 4] =
            gmul(col[0], 0x0e) ^ gmul(col[1], 0x0b) ^ gmul(col[2], 0x0d) ^ gmul(col[3], 0x09);
        state[c * 4 + 1] =
            gmul(col[0], 0x09) ^ gmul(col[1], 0x0e) ^ gmul(col[2], 0x0b) ^ gmul(col[3], 0x0d);
        state[c * 4 + 2] =
            gmul(col[0], 0x0d) ^ gmul(col[1], 0x09) ^ gmul(col[2], 0x0e) ^ gmul(col[3], 0x0b);
        state[c * 4 + 3] =
            gmul(col[0], 0x0b) ^ gmul(col[1], 0x0d) ^ gmul(col[2], 0x09) ^ gmul(col[3], 0x0e);
    }
}

/// Error returned by CBC decryption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CbcError {
    /// Ciphertext length is not a multiple of the block size (or empty).
    BadLength(usize),
    /// PKCS#7 padding was malformed after decryption.
    BadPadding,
}

impl std::fmt::Display for CbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CbcError::BadLength(n) => {
                write!(f, "ciphertext length {n} is not a positive multiple of 16")
            }
            CbcError::BadPadding => write!(f, "invalid pkcs#7 padding"),
        }
    }
}

impl std::error::Error for CbcError {}

/// Encrypts `plaintext` with AES-256-CBC and PKCS#7 padding.
///
/// The output length is `plaintext.len()` rounded up to the next multiple of
/// 16 (a full extra block when already aligned) — for the paper's ≤16-byte
/// sensor readings this is exactly one 16-byte ciphertext block (Fig. 4).
pub fn cbc_encrypt(key: &[u8; KEY_SIZE], iv: &[u8; BLOCK_SIZE], plaintext: &[u8]) -> Vec<u8> {
    let aes = Aes256::new(key);
    let pad = BLOCK_SIZE - plaintext.len() % BLOCK_SIZE;
    let mut data = plaintext.to_vec();
    data.extend(std::iter::repeat_n(pad as u8, pad));

    let mut out = Vec::with_capacity(data.len());
    let mut prev = *iv;
    for chunk in data.chunks_exact(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        for i in 0..BLOCK_SIZE {
            block[i] = chunk[i] ^ prev[i];
        }
        prev = aes.encrypt_block(&block);
        out.extend_from_slice(&prev);
    }
    out
}

/// Decrypts AES-256-CBC ciphertext and strips PKCS#7 padding.
///
/// # Errors
///
/// Returns [`CbcError`] when the length is not a positive multiple of 16 or
/// the padding is malformed (wrong key/IV typically surfaces this way).
pub fn cbc_decrypt(
    key: &[u8; KEY_SIZE],
    iv: &[u8; BLOCK_SIZE],
    ciphertext: &[u8],
) -> Result<Vec<u8>, CbcError> {
    if ciphertext.is_empty() || !ciphertext.len().is_multiple_of(BLOCK_SIZE) {
        return Err(CbcError::BadLength(ciphertext.len()));
    }
    let aes = Aes256::new(key);
    let mut out = Vec::with_capacity(ciphertext.len());
    let mut prev = *iv;
    for chunk in ciphertext.chunks_exact(BLOCK_SIZE) {
        let mut block = [0u8; BLOCK_SIZE];
        block.copy_from_slice(chunk);
        let decrypted = aes.decrypt_block(&block);
        for i in 0..BLOCK_SIZE {
            out.push(decrypted[i] ^ prev[i]);
        }
        prev = block;
    }
    let pad = *out.last().expect("non-empty") as usize;
    if pad == 0 || pad > BLOCK_SIZE || out.len() < pad {
        return Err(CbcError::BadPadding);
    }
    if out[out.len() - pad..].iter().any(|&b| b as usize != pad) {
        return Err(CbcError::BadPadding);
    }
    out.truncate(out.len() - pad);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // FIPS 197 Appendix C.3 known-answer test for AES-256.
    #[test]
    fn fips197_appendix_c3() {
        let key: [u8; 32] =
            hex::decode("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .unwrap()
                .try_into()
                .unwrap();
        let plain: [u8; 16] = hex::decode("00112233445566778899aabbccddeeff")
            .unwrap()
            .try_into()
            .unwrap();
        let aes = Aes256::new(&key);
        let ct = aes.encrypt_block(&plain);
        assert_eq!(hex::encode(&ct), "8ea2b7ca516745bfeafc49904b496089");
        assert_eq!(aes.decrypt_block(&ct), plain);
    }

    // NIST SP 800-38A F.2.5 (CBC-AES256.Encrypt), first block, no padding
    // interference because we check the raw first block only.
    #[test]
    fn sp800_38a_cbc_first_block() {
        let key: [u8; 32] =
            hex::decode("603deb1015ca71be2b73aef0857d77811f352c073b6108d72d9810a30914dff4")
                .unwrap()
                .try_into()
                .unwrap();
        let iv: [u8; 16] = hex::decode("000102030405060708090a0b0c0d0e0f")
            .unwrap()
            .try_into()
            .unwrap();
        let plaintext = hex::decode("6bc1bee22e409f96e93d7e117393172a").unwrap();
        let ct = cbc_encrypt(&key, &iv, &plaintext);
        assert_eq!(hex::encode(&ct[..16]), "f58c4c04d6e5f1ba779eabfb5f7bfbd6");
    }

    #[test]
    fn cbc_round_trip_various_lengths() {
        let key = [0x42u8; 32];
        let iv = [0x24u8; 16];
        for len in [0usize, 1, 15, 16, 17, 31, 32, 100] {
            let plaintext: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = cbc_encrypt(&key, &iv, &plaintext);
            assert_eq!(ct.len(), (len / 16 + 1) * 16);
            assert_eq!(cbc_decrypt(&key, &iv, &ct).unwrap(), plaintext, "len {len}");
        }
    }

    #[test]
    fn paper_fig4_sixteen_byte_reading_is_one_block() {
        // A <16-byte sensor reading (paper: "temperature, humidity level...")
        // yields exactly 16 ciphertext bytes: with the IV that is the 34-byte
        // frame of Fig. 4 (1 len + 16 IV + 1 len + 16 ct).
        let key = [7u8; 32];
        let iv = [9u8; 16];
        let ct = cbc_encrypt(&key, &iv, b"t=21.5C;h=40%");
        assert_eq!(ct.len(), 16);
    }

    #[test]
    fn cbc_decrypt_errors() {
        let key = [0u8; 32];
        let iv = [0u8; 16];
        assert_eq!(cbc_decrypt(&key, &iv, &[]), Err(CbcError::BadLength(0)));
        assert_eq!(
            cbc_decrypt(&key, &iv, &[0u8; 15]),
            Err(CbcError::BadLength(15))
        );
        // Random block: overwhelmingly likely to have bad padding.
        let garbage = [0xa5u8; 16];
        assert_eq!(cbc_decrypt(&key, &iv, &garbage), Err(CbcError::BadPadding));
    }

    #[test]
    fn wrong_key_fails_or_differs() {
        let key = [1u8; 32];
        let wrong = [2u8; 32];
        let iv = [3u8; 16];
        let ct = cbc_encrypt(&key, &iv, b"secret sensor data");
        match cbc_decrypt(&wrong, &iv, &ct) {
            Err(CbcError::BadPadding) => {}
            Ok(pt) => assert_ne!(pt, b"secret sensor data".to_vec()),
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn different_iv_different_ciphertext() {
        let key = [5u8; 32];
        let ct1 = cbc_encrypt(&key, &[0u8; 16], b"same message");
        let ct2 = cbc_encrypt(&key, &[1u8; 16], b"same message");
        assert_ne!(ct1, ct2);
    }

    #[test]
    fn debug_hides_key() {
        let aes = Aes256::new(&[0xaau8; 32]);
        assert_eq!(format!("{aes:?}"), "Aes256 { .. }");
    }
}
