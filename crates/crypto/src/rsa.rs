//! RSA with small moduli (512-bit by default), mirroring the paper's choice.
//!
//! BcWAN gateways generate an **ephemeral RSA-512 keypair** per message
//! (paper §4.4/§5.1): the public key `ePk` travels to the node over LoRa,
//! the node wraps its AES output under `ePk`, and the fair-exchange script
//! (`OP_CHECKRSA512PAIR`) pays whoever reveals the matching private key
//! `eSk`. Nodes also sign `(Em, ePk)` with a provisioned RSA key.
//!
//! The paper explicitly accepts RSA-512's weakness as a payload-size
//! trade-off (§6); [`RsaKeySize`] exposes 1024/2048 for the key-size
//! ablation bench.

use crate::bignum::BigUint;
use crate::sha256::sha256;
use rand::RngCore;
use std::fmt;

/// Supported modulus sizes.
///
/// RSA-512 is the paper's choice (64-byte blocks fit LoRa payload limits);
/// the larger sizes exist for the §6 key-size/airtime ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RsaKeySize {
    /// 512-bit modulus, 64-byte blocks — the paper's parameter.
    Rsa512,
    /// 1024-bit modulus, 128-byte blocks.
    Rsa1024,
    /// 2048-bit modulus, 256-byte blocks.
    Rsa2048,
}

impl RsaKeySize {
    /// Modulus size in bits.
    pub fn bits(self) -> usize {
        match self {
            RsaKeySize::Rsa512 => 512,
            RsaKeySize::Rsa1024 => 1024,
            RsaKeySize::Rsa2048 => 2048,
        }
    }

    /// Modulus (and ciphertext/signature block) size in bytes.
    pub fn block_len(self) -> usize {
        self.bits() / 8
    }
}

impl fmt::Display for RsaKeySize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RSA-{}", self.bits())
    }
}

/// An RSA public key `(n, e)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct RsaPublicKey {
    n: BigUint,
    e: BigUint,
}

/// An RSA private key; retains `n` and both exponents.
///
/// Keys produced by [`generate_keypair`] additionally carry CRT parameters
/// (`p`, `q`, `dP`, `dQ`, `qInv`) so the private operation runs as two
/// half-size exponentiations (~4× faster). The parameters are deliberately
/// **not serialized**: the claim transaction publishes only `n || e || d`,
/// so keys parsed back from the wire fall back to the plain `c^d mod n`
/// path, and equality compares `(n, e, d)` only.
#[derive(Clone)]
pub struct RsaPrivateKey {
    n: BigUint,
    e: BigUint,
    d: BigUint,
    crt: Option<CrtParams>,
}

impl PartialEq for RsaPrivateKey {
    fn eq(&self, other: &Self) -> bool {
        // CRT params are a derived accelerator, not part of key identity.
        self.n == other.n && self.e == other.e && self.d == other.d
    }
}

impl Eq for RsaPrivateKey {}

/// Chinese-remainder-theorem private-key parameters.
#[derive(Clone)]
struct CrtParams {
    p: BigUint,
    q: BigUint,
    /// `d mod (p-1)`.
    dp: BigUint,
    /// `d mod (q-1)`.
    dq: BigUint,
    /// `q^{-1} mod p`.
    qinv: BigUint,
}

/// Errors from RSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RsaError {
    /// Plaintext too long for the modulus (must leave padding room).
    MessageTooLong {
        /// Attempted message length.
        len: usize,
        /// Maximum allowed for this modulus.
        max: usize,
    },
    /// Ciphertext/signature block is not exactly the modulus size.
    BadBlockLength {
        /// Supplied block length.
        len: usize,
        /// Required block length.
        expected: usize,
    },
    /// Decrypted block had malformed padding.
    BadPadding,
    /// Serialized key bytes were malformed.
    MalformedKey,
}

impl fmt::Display for RsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsaError::MessageTooLong { len, max } => {
                write!(f, "message of {len} bytes exceeds maximum {max}")
            }
            RsaError::BadBlockLength { len, expected } => {
                write!(f, "block of {len} bytes, expected {expected}")
            }
            RsaError::BadPadding => write!(f, "invalid rsa padding"),
            RsaError::MalformedKey => write!(f, "malformed rsa key encoding"),
        }
    }
}

impl std::error::Error for RsaError {}

impl fmt::Debug for RsaPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "RsaPublicKey(n={}…, e={})",
            &self.n.to_hex()[..8.min(self.n.to_hex().len())],
            self.e
        )
    }
}

impl fmt::Debug for RsaPrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print d.
        write!(
            f,
            "RsaPrivateKey(n={}…)",
            &self.n.to_hex()[..8.min(self.n.to_hex().len())]
        )
    }
}

/// Generates an RSA keypair of the given size.
///
/// Primes come from Miller–Rabin with a small-prime sieve; `e = 65537`.
/// Determinism: pass a seeded RNG to get reproducible keys in simulations.
pub fn generate_keypair<R: RngCore>(
    rng: &mut R,
    size: RsaKeySize,
) -> (RsaPublicKey, RsaPrivateKey) {
    let half = size.bits() / 2;
    let e = BigUint::from_u64(65537);
    loop {
        let p = generate_prime(rng, half);
        let q = generate_prime(rng, half);
        if p == q {
            continue;
        }
        let n = p.mul(&q);
        if n.bit_len() != size.bits() {
            continue;
        }
        let one = BigUint::one();
        let phi = p.sub(&one).mul(&q.sub(&one));
        let Some(d) = e.mod_inverse(&phi) else {
            continue;
        };
        let crt = Some(CrtParams {
            dp: d.rem(&p.sub(&one)),
            dq: d.rem(&q.sub(&one)),
            qinv: q.mod_inverse(&p).expect("distinct primes are coprime"),
            p,
            q,
        });
        let public = RsaPublicKey {
            n: n.clone(),
            e: e.clone(),
        };
        let private = RsaPrivateKey { n, e, d, crt };
        return (public, private);
    }
}

impl RsaPublicKey {
    /// The modulus size in bytes (ciphertexts and signatures have this length).
    pub fn block_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// The modulus.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// The public exponent.
    pub fn exponent(&self) -> &BigUint {
        &self.e
    }

    /// Encrypts `plaintext` with PKCS#1-v1.5-style random padding
    /// (`00 02 <nonzero random> 00 <message>`).
    ///
    /// # Errors
    ///
    /// [`RsaError::MessageTooLong`] if the message exceeds `block_len - 11`.
    pub fn encrypt<R: RngCore>(&self, rng: &mut R, plaintext: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.block_len();
        if plaintext.len() + 11 > k {
            return Err(RsaError::MessageTooLong {
                len: plaintext.len(),
                max: k - 11,
            });
        }
        let mut block = Vec::with_capacity(k);
        block.push(0x00);
        block.push(0x02);
        for _ in 0..(k - 3 - plaintext.len()) {
            loop {
                let mut b = [0u8; 1];
                rng.fill_bytes(&mut b);
                if b[0] != 0 {
                    block.push(b[0]);
                    break;
                }
            }
        }
        block.push(0x00);
        block.extend_from_slice(plaintext);
        let m = BigUint::from_bytes_be(&block);
        let c = m.mod_pow(&self.e, &self.n);
        Ok(c.to_bytes_be_padded(k).expect("c < n fits"))
    }

    /// Verifies a signature over `message` (SHA-256 digest, type-1 padding).
    pub fn verify(&self, message: &[u8], signature: &[u8]) -> bool {
        let k = self.block_len();
        if signature.len() != k {
            return false;
        }
        let s = BigUint::from_bytes_be(signature);
        if s >= self.n {
            return false;
        }
        let m = s.mod_pow(&self.e, &self.n);
        let Some(block) = m.to_bytes_be_padded(k) else {
            return false;
        };
        let expected = signature_block(&sha256(message), k);
        // Length-constant comparison is irrelevant in a simulator, but cheap.
        block
            .iter()
            .zip(expected.iter())
            .fold(0u8, |acc, (a, b)| acc | (a ^ b))
            == 0
    }

    /// Checks that `private` is the private half of this public key —
    /// the semantic of the paper's `OP_CHECKRSA512PAIR` operator
    /// ("implemented using the VerifyPubKey method … from OpenSSL").
    ///
    /// Validates both the shared modulus and the exponent relation
    /// `e·d ≡ 1` by a random encrypt/decrypt probe, so a forged `d` for the
    /// right `n` is rejected.
    pub fn matches_private(&self, private: &RsaPrivateKey) -> bool {
        if self.n != private.n || self.e != private.e {
            return false;
        }
        // Probe with a fixed small value: (v^e)^d mod n == v.
        let v = BigUint::from_u64(0x42);
        let c = v.mod_pow(&self.e, &self.n);
        c.mod_pow(&private.d, &private.n) == v
    }

    /// Serializes as `len(n) (2 bytes BE) || n || len(e) (2 bytes BE) || e`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let mut out = Vec::with_capacity(4 + n.len() + e.len());
        out.extend_from_slice(&(n.len() as u16).to_be_bytes());
        out.extend_from_slice(&n);
        out.extend_from_slice(&(e.len() as u16).to_be_bytes());
        out.extend_from_slice(&e);
        out
    }

    /// Parses the [`RsaPublicKey::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// [`RsaError::MalformedKey`] on truncated or trailing data.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RsaError> {
        let (n, rest) = read_chunk(bytes)?;
        let (e, rest) = read_chunk(rest)?;
        if !rest.is_empty() {
            return Err(RsaError::MalformedKey);
        }
        Ok(RsaPublicKey {
            n: BigUint::from_bytes_be(n),
            e: BigUint::from_bytes_be(e),
        })
    }
}

impl RsaPrivateKey {
    /// The modulus size in bytes.
    pub fn block_len(&self) -> usize {
        self.n.bit_len().div_ceil(8)
    }

    /// The private operation `c^d mod n`, via CRT (Garner recombination)
    /// when the prime factorization is available.
    fn private_pow(&self, c: &BigUint) -> BigUint {
        match &self.crt {
            Some(crt) => {
                let m1 = c.mod_pow(&crt.dp, &crt.p);
                let m2 = c.mod_pow(&crt.dq, &crt.q);
                // h = qInv·(m1 − m2) mod p, m = m2 + h·q  (< n since h < p).
                let h = crt
                    .qinv
                    .mul_mod(&m1.sub_mod(&m2.rem(&crt.p), &crt.p), &crt.p);
                m2.add(&h.mul(&crt.q))
            }
            None => c.mod_pow(&self.d, &self.n),
        }
    }

    /// The corresponding public key.
    pub fn public_key(&self) -> RsaPublicKey {
        RsaPublicKey {
            n: self.n.clone(),
            e: self.e.clone(),
        }
    }

    /// Decrypts a ciphertext produced by [`RsaPublicKey::encrypt`].
    ///
    /// # Errors
    ///
    /// [`RsaError::BadBlockLength`] or [`RsaError::BadPadding`].
    pub fn decrypt(&self, ciphertext: &[u8]) -> Result<Vec<u8>, RsaError> {
        let k = self.block_len();
        if ciphertext.len() != k {
            return Err(RsaError::BadBlockLength {
                len: ciphertext.len(),
                expected: k,
            });
        }
        let c = BigUint::from_bytes_be(ciphertext);
        let m = self.private_pow(&c);
        let block = m.to_bytes_be_padded(k).ok_or(RsaError::BadPadding)?;
        if block[0] != 0x00 || block[1] != 0x02 {
            return Err(RsaError::BadPadding);
        }
        let sep = block[2..]
            .iter()
            .position(|&b| b == 0)
            .ok_or(RsaError::BadPadding)?;
        if sep < 8 {
            return Err(RsaError::BadPadding); // require ≥8 padding bytes
        }
        Ok(block[2 + sep + 1..].to_vec())
    }

    /// Signs `message` (SHA-256 digest under type-1 padding).
    pub fn sign(&self, message: &[u8]) -> Vec<u8> {
        let k = self.block_len();
        let block = signature_block(&sha256(message), k);
        let m = BigUint::from_bytes_be(&block);
        let s = self.private_pow(&m);
        s.to_bytes_be_padded(k).expect("s < n fits")
    }

    /// Serializes as three length-prefixed chunks `n || e || d`.
    ///
    /// The BcWAN claim transaction publishes exactly this encoding in its
    /// unlocking script to reveal the ephemeral private key.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.n.to_bytes_be();
        let e = self.e.to_bytes_be();
        let d = self.d.to_bytes_be();
        let mut out = Vec::with_capacity(6 + n.len() + e.len() + d.len());
        for chunk in [&n, &e, &d] {
            out.extend_from_slice(&(chunk.len() as u16).to_be_bytes());
            out.extend_from_slice(chunk);
        }
        out
    }

    /// Parses the [`RsaPrivateKey::to_bytes`] encoding.
    ///
    /// # Errors
    ///
    /// [`RsaError::MalformedKey`] on truncated or trailing data.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, RsaError> {
        let (n, rest) = read_chunk(bytes)?;
        let (e, rest) = read_chunk(rest)?;
        let (d, rest) = read_chunk(rest)?;
        if !rest.is_empty() {
            return Err(RsaError::MalformedKey);
        }
        Ok(RsaPrivateKey {
            n: BigUint::from_bytes_be(n),
            e: BigUint::from_bytes_be(e),
            d: BigUint::from_bytes_be(d),
            // The wire format carries no factorization; plain-d path.
            crt: None,
        })
    }
}

fn read_chunk(bytes: &[u8]) -> Result<(&[u8], &[u8]), RsaError> {
    if bytes.len() < 2 {
        return Err(RsaError::MalformedKey);
    }
    let len = u16::from_be_bytes([bytes[0], bytes[1]]) as usize;
    if bytes.len() < 2 + len {
        return Err(RsaError::MalformedKey);
    }
    Ok((&bytes[2..2 + len], &bytes[2 + len..]))
}

/// Deterministic type-1 block: `00 01 ff..ff 00 <sha256 digest>`.
fn signature_block(digest: &[u8; 32], k: usize) -> Vec<u8> {
    assert!(k >= 32 + 11, "modulus too small for signature block");
    let mut block = Vec::with_capacity(k);
    block.push(0x00);
    block.push(0x01);
    block.extend(std::iter::repeat_n(0xff, k - 3 - 32));
    block.push(0x00);
    block.extend_from_slice(digest);
    block
}

/// First few hundred odd primes for trial division before Miller–Rabin.
fn small_primes() -> &'static [u64] {
    const SMALL: [u64; 54] = [
        3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71, 73, 79, 83, 89,
        97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
        191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257,
    ];
    &SMALL
}

/// Miller–Rabin probabilistic primality test with `rounds` random bases.
pub fn is_probable_prime<R: RngCore>(rng: &mut R, n: &BigUint, rounds: usize) -> bool {
    if n.is_zero() || n.is_one() {
        return false;
    }
    let two = BigUint::from_u64(2);
    if *n == two {
        return true;
    }
    if n.is_even() {
        return false;
    }
    for &p in small_primes() {
        let sp = BigUint::from_u64(p);
        if *n == sp {
            return true;
        }
        if n.rem(&sp).is_zero() {
            return false;
        }
    }
    // Write n-1 = d * 2^s with d odd.
    let one = BigUint::one();
    let n_minus_1 = n.sub(&one);
    let mut d = n_minus_1.clone();
    let mut s = 0usize;
    while d.is_even() {
        d = d.shr(1);
        s += 1;
    }
    'witness: for _ in 0..rounds {
        // Random base in [2, n-2].
        let bound = n.sub(&BigUint::from_u64(3));
        let a = BigUint::random_below(rng, &bound).add(&two);
        let mut x = a.mod_pow(&d, n);
        if x.is_one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..s - 1 {
            x = x.mul_mod(&x, n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a random prime with exactly `bits` bits.
pub fn generate_prime<R: RngCore>(rng: &mut R, bits: usize) -> BigUint {
    assert!(bits >= 16, "prime size too small");
    loop {
        let mut candidate = BigUint::random_bits(rng, bits);
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        if is_probable_prime(rng, &candidate, 20) {
            return candidate;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xbc1a2018)
    }

    #[test]
    fn miller_rabin_known_primes_and_composites() {
        let mut r = rng();
        for p in [2u64, 3, 5, 65537, 1_000_000_007, 2_147_483_647] {
            assert!(is_probable_prime(&mut r, &BigUint::from_u64(p), 20), "{p}");
        }
        for c in [0u64, 1, 4, 9, 561, 41041, 1_000_000_008, 25326001] {
            // 561, 41041, 25326001 are Carmichael numbers.
            assert!(!is_probable_prime(&mut r, &BigUint::from_u64(c), 20), "{c}");
        }
    }

    #[test]
    fn generated_prime_has_requested_size() {
        let mut r = rng();
        let p = generate_prime(&mut r, 64);
        assert_eq!(p.bit_len(), 64);
        assert!(p.is_odd());
    }

    #[test]
    fn keypair_512_round_trip() {
        let mut r = rng();
        let (public, private) = generate_keypair(&mut r, RsaKeySize::Rsa512);
        assert_eq!(public.block_len(), 64);
        let msg = b"sensor reading 21.5C";
        let ct = public.encrypt(&mut r, msg).unwrap();
        assert_eq!(ct.len(), 64);
        assert_eq!(private.decrypt(&ct).unwrap(), msg);
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut r = rng();
        let (public, private) = generate_keypair(&mut r, RsaKeySize::Rsa512);
        let msg = b"Em || ePk as in paper step 4";
        let sig = private.sign(msg);
        assert_eq!(sig.len(), 64);
        assert!(public.verify(msg, &sig));
        assert!(!public.verify(b"tampered", &sig));
        let mut bad = sig.clone();
        bad[10] ^= 1;
        assert!(!public.verify(msg, &bad));
        assert!(!public.verify(msg, &sig[..63])); // wrong length
    }

    #[test]
    fn message_too_long_rejected() {
        let mut r = rng();
        let (public, _) = generate_keypair(&mut r, RsaKeySize::Rsa512);
        let too_long = vec![0u8; 64 - 10];
        assert!(matches!(
            public.encrypt(&mut r, &too_long),
            Err(RsaError::MessageTooLong { .. })
        ));
        // 53 bytes = 64 - 11 is the maximum.
        let max = vec![0u8; 53];
        assert!(public.encrypt(&mut r, &max).is_ok());
    }

    #[test]
    fn pair_check_detects_mismatch() {
        let mut r = rng();
        let (pub1, prv1) = generate_keypair(&mut r, RsaKeySize::Rsa512);
        let (pub2, prv2) = generate_keypair(&mut r, RsaKeySize::Rsa512);
        assert!(pub1.matches_private(&prv1));
        assert!(pub2.matches_private(&prv2));
        assert!(!pub1.matches_private(&prv2));
        assert!(!pub2.matches_private(&prv1));
    }

    #[test]
    fn key_serialization_round_trip() {
        let mut r = rng();
        let (public, private) = generate_keypair(&mut r, RsaKeySize::Rsa512);
        let p2 = RsaPublicKey::from_bytes(&public.to_bytes()).unwrap();
        assert_eq!(public, p2);
        let s2 = RsaPrivateKey::from_bytes(&private.to_bytes()).unwrap();
        assert_eq!(private, s2);
        assert!(p2.matches_private(&s2));
    }

    #[test]
    fn malformed_key_bytes_rejected() {
        assert!(matches!(
            RsaPublicKey::from_bytes(&[]),
            Err(RsaError::MalformedKey)
        ));
        assert!(matches!(
            RsaPublicKey::from_bytes(&[0, 5, 1]),
            Err(RsaError::MalformedKey)
        ));
        let mut r = rng();
        let (public, _) = generate_keypair(&mut r, RsaKeySize::Rsa512);
        let mut bytes = public.to_bytes();
        bytes.push(0); // trailing garbage
        assert!(matches!(
            RsaPublicKey::from_bytes(&bytes),
            Err(RsaError::MalformedKey)
        ));
    }

    #[test]
    fn corrupted_ciphertext_fails_cleanly() {
        let mut r = rng();
        let (public, private) = generate_keypair(&mut r, RsaKeySize::Rsa512);
        let mut ct = public.encrypt(&mut r, b"data").unwrap();
        ct[0] ^= 0xff;
        // Either padding fails or the plaintext differs; never the original.
        match private.decrypt(&ct) {
            Ok(pt) => assert_ne!(pt, b"data".to_vec()),
            Err(RsaError::BadPadding) | Err(RsaError::BadBlockLength { .. }) => {}
            Err(e) => panic!("unexpected {e:?}"),
        }
    }

    #[test]
    fn crt_and_plain_private_ops_agree() {
        let mut r = rng();
        let (public, private) = generate_keypair(&mut r, RsaKeySize::Rsa512);
        // Serialization drops the CRT params, leaving the plain-d path.
        let plain = RsaPrivateKey::from_bytes(&private.to_bytes()).unwrap();
        assert!(plain.crt.is_none() && private.crt.is_some());
        let ct = public.encrypt(&mut r, b"crt probe").unwrap();
        assert_eq!(private.decrypt(&ct).unwrap(), plain.decrypt(&ct).unwrap());
        assert_eq!(private.sign(b"same sig"), plain.sign(b"same sig"));
    }

    #[test]
    fn key_sizes_block_lengths() {
        assert_eq!(RsaKeySize::Rsa512.block_len(), 64);
        assert_eq!(RsaKeySize::Rsa1024.block_len(), 128);
        assert_eq!(RsaKeySize::Rsa2048.block_len(), 256);
        assert_eq!(RsaKeySize::Rsa512.to_string(), "RSA-512");
    }

    #[test]
    fn debug_never_reveals_private_exponent() {
        let mut r = rng();
        let (_, private) = generate_keypair(&mut r, RsaKeySize::Rsa512);
        let dbg = format!("{private:?}");
        assert!(dbg.starts_with("RsaPrivateKey("));
        assert!(dbg.len() < 40);
    }
}
