//! Multi-scalar multiplication: wNAF, Strauss joint loops, and the GLV
//! point multiply.
//!
//! Three layers of the verification fast path live here:
//!
//! - [`glv_mul`] — single `k·Q` via the GLV split ([`crate::glv`]): two
//!   half-width (≤129-bit) wNAF streams over `Q` and `φ(Q)` share one
//!   doubling chain, halving the ~256 doublings of a plain double-and-add.
//! - `strauss_affine` — the batch-verification workhorse: any number of
//!   signed wNAF terms with *affine* precomputed tables (batch-normalized
//!   via `normalize_batch`'s shared inversion) folded over a single
//!   doubling chain with mixed additions.
//! - `small_mul` — an individual product by a blinder-width scalar
//!   (≤ 64 bits), used for the per-signature `wᵢ·Rᵢ` terms that the batch
//!   equation cannot share.
//!
//! Negative wNAF digits cost nothing extra: point negation in Jacobian or
//! affine coordinates is a single field negation of `y`.

use crate::field::FieldElement;
use crate::glv::{split_lambda, BETA};
use crate::scalar::Scalar;
use crate::secp256k1::JacobianPoint;

/// wNAF window for half-width (≤129-bit) GLV coefficients: digits in
/// `{±1, ±3, …, ±15}`, 8-entry odd-multiple tables, ~1 non-zero digit
/// per 6 bits.
const W_HALF: u32 = 5;

/// wNAF window for blinder-width products: 4-entry tables keep the
/// per-signature precomputation small.
const W_SMALL: u32 = 4;

fn limbs_is_zero(k: &[u64; 4]) -> bool {
    k[0] | k[1] | k[2] | k[3] == 0
}

fn limbs_shr1(k: &[u64; 4]) -> [u64; 4] {
    [
        (k[0] >> 1) | (k[1] << 63),
        (k[1] >> 1) | (k[2] << 63),
        (k[2] >> 1) | (k[3] << 63),
        k[3] >> 1,
    ]
}

fn limbs_add_small(k: &[u64; 4], v: u64) -> [u64; 4] {
    let (r0, c) = k[0].overflowing_add(v);
    let (r1, c1) = k[1].overflowing_add(c as u64);
    let (r2, c2) = k[2].overflowing_add(c1 as u64);
    let r3 = k[3] + c2 as u64; // magnitudes stay < 2^130, never carries out
    [r0, r1, r2, r3]
}

fn limbs_sub_small(k: &[u64; 4], v: u64) -> [u64; 4] {
    let (r0, b) = k[0].overflowing_sub(v);
    let (r1, b1) = k[1].overflowing_sub(b as u64);
    let (r2, b2) = k[2].overflowing_sub(b1 as u64);
    let r3 = k[3] - b2 as u64; // k ≥ v here (k odd, v = k's low window)
    [r0, r1, r2, r3]
}

/// Width-`w` non-adjacent form of a non-negative magnitude, least
/// significant digit first. Digits are zero or odd with `|d| < 2^(w−1)`,
/// and after each non-zero digit the next `w−1` digits are zero.
pub(crate) fn wnaf_digits(k: &[u64; 4], w: u32) -> Vec<i32> {
    debug_assert!((2..=15).contains(&w));
    let mut k = *k;
    let mut out = Vec::with_capacity(132);
    let full = 1i64 << w;
    let half = 1i64 << (w - 1);
    let mask = (1u64 << w) - 1;
    while !limbs_is_zero(&k) {
        let d = if k[0] & 1 == 1 {
            let m = (k[0] & mask) as i64;
            let d = if m >= half { m - full } else { m };
            if d >= 0 {
                k = limbs_sub_small(&k, d as u64);
            } else {
                k = limbs_add_small(&k, (-d) as u64);
            }
            d as i32
        } else {
            0
        };
        out.push(d);
        k = limbs_shr1(&k);
    }
    out
}

/// Jacobian odd multiples `[P, 3P, 5P, …, (2·count−1)P]`.
pub(crate) fn odd_multiples(p: &JacobianPoint, count: usize) -> Vec<JacobianPoint> {
    let mut table = Vec::with_capacity(count);
    table.push(p.clone());
    let two_p = p.double();
    for i in 1..count {
        let next = table[i - 1].add(&two_p);
        table.push(next);
    }
    table
}

/// Normalizes a slice of Jacobian points to affine `(x, y)` pairs with a
/// single field inversion (Montgomery's trick: prefix-product the `Z`s,
/// invert once, unwind). Returns `None` if any point is the identity —
/// callers on the batch path fall back to per-item verification rather
/// than special-casing, since a prime-order curve only yields ∞ here for
/// degenerate inputs.
pub(crate) fn normalize_batch(pts: &[JacobianPoint]) -> Option<Vec<(FieldElement, FieldElement)>> {
    let mut prefix = Vec::with_capacity(pts.len());
    let mut acc = FieldElement::ONE;
    for p in pts {
        if p.is_infinity() {
            return None;
        }
        prefix.push(acc);
        acc = acc.mul(&p.z);
    }
    let mut inv = acc.invert();
    let mut out = vec![(FieldElement::ZERO, FieldElement::ZERO); pts.len()];
    for i in (0..pts.len()).rev() {
        let z_inv = prefix[i].mul(&inv); // z_i⁻¹
        inv = inv.mul(&pts[i].z);
        let z2 = z_inv.sqr();
        let z3 = z2.mul(&z_inv);
        out[i] = (pts[i].x.mul(&z2), pts[i].y.mul(&z3));
    }
    Some(out)
}

/// `k·Q` via GLV: split `k = k1 + λ·k2`, run the two half-width wNAF
/// streams over shared doublings with tables for `Q` and `φ(Q)` (the
/// endomorphism image is one field multiplication per table entry).
///
/// ~130 doublings + ~43 additions instead of the ~256 doublings of the
/// bitwise ladder — the single-verification hot path. Tables stay in
/// Jacobian form here: a normalizing inversion costs more than the ~43
/// general-vs-mixed addition deltas it would save on a single multiply
/// (the batch path amortizes one inversion across many tables instead).
pub fn glv_mul(k: &Scalar, q: &JacobianPoint) -> JacobianPoint {
    if q.is_infinity() || k.is_zero() {
        return JacobianPoint::infinity();
    }
    let (k1, k2) = split_lambda(k);
    let t1 = odd_multiples(q, 1 << (W_HALF - 2));
    // φ maps (X : Y : Z) ↦ (β·X : Y : Z) directly in Jacobian coordinates.
    let t2: Vec<JacobianPoint> = t1
        .iter()
        .map(|p| JacobianPoint {
            x: p.x.mul(&BETA),
            y: p.y,
            z: p.z,
        })
        .collect();
    let d1 = wnaf_digits(&k1.abs, W_HALF);
    let d2 = wnaf_digits(&k2.abs, W_HALF);
    let len = d1.len().max(d2.len());
    let mut acc = JacobianPoint::infinity();
    for i in (0..len).rev() {
        acc = acc.double();
        for (digits, table, neg) in [(&d1, &t1, k1.neg), (&d2, &t2, k2.neg)] {
            let d = digits.get(i).copied().unwrap_or(0);
            if d != 0 {
                let entry = &table[(d.unsigned_abs() as usize - 1) / 2];
                // Term sign × digit sign; negation is free.
                acc = if (d < 0) != neg {
                    acc.add(&entry.neg())
                } else {
                    acc.add(entry)
                };
            }
        }
    }
    acc
}

/// An individual `k·P` for a small magnitude `k` (≤ 64 bits): the
/// per-signature blinded-`R` products of batch verification, where the
/// doubling chain cannot be shared because each product is a distinct
/// output point.
pub(crate) fn small_mul(k: u64, p: &JacobianPoint) -> JacobianPoint {
    if k == 0 || p.is_infinity() {
        return JacobianPoint::infinity();
    }
    if k == 1 {
        // The first batch blinder is pinned to 1; skip the table build
        // and ladder entirely.
        return p.clone();
    }
    let digits = wnaf_digits(&[k, 0, 0, 0], W_SMALL);
    let table = odd_multiples(p, 1 << (W_SMALL - 2));
    let mut acc = JacobianPoint::infinity();
    for i in (0..digits.len()).rev() {
        acc = acc.double();
        let d = digits[i];
        if d != 0 {
            let entry = &table[(d.unsigned_abs() as usize - 1) / 2];
            acc = if d < 0 {
                acc.add(&entry.neg())
            } else {
                acc.add(entry)
            };
        }
    }
    acc
}

/// One signed wNAF term of a Strauss sum: `±(Σ digitsᵢ·2^i)` times the
/// point whose affine odd multiples `[P, 3P, 5P, …]` are in `table`.
pub(crate) struct AffineTerm {
    /// Whether the whole term is negated (GLV split sign).
    pub neg: bool,
    /// wNAF digits, least significant first.
    pub digits: Vec<i32>,
    /// Affine odd multiples of the base point.
    pub table: Vec<(FieldElement, FieldElement)>,
}

/// Strauss interleaving: evaluates `Σ termⱼ` over a single doubling chain
/// with one mixed addition per non-zero digit. All tables are affine, so
/// every addition is the cheap 7M+4S mixed form.
pub(crate) fn strauss_affine(terms: &[AffineTerm]) -> JacobianPoint {
    let len = terms.iter().map(|t| t.digits.len()).max().unwrap_or(0);
    let mut acc = JacobianPoint::infinity();
    for i in (0..len).rev() {
        acc = acc.double();
        for term in terms {
            let d = term.digits.get(i).copied().unwrap_or(0);
            if d != 0 {
                let (x, y) = &term.table[(d.unsigned_abs() as usize - 1) / 2];
                acc = if (d < 0) != term.neg {
                    acc.add_mixed(x, &y.negate())
                } else {
                    acc.add_mixed(x, y)
                };
            }
        }
    }
    acc
}

/// Table length used by [`glv_terms`] (odd multiples up to `2^(W_HALF−1)−1`).
pub(crate) const HALF_TABLE_LEN: usize = 1 << (W_HALF - 2);

/// Builds the two GLV half-width [`AffineTerm`]s for `coeff·Q` given `Q`'s
/// normalized odd-multiple table ([`HALF_TABLE_LEN`] entries). The φ-table
/// is derived entry-wise (`x ↦ β·x`), one multiplication per entry.
pub(crate) fn glv_terms(
    coeff: &Scalar,
    q_table: &[(FieldElement, FieldElement)],
    out: &mut Vec<AffineTerm>,
) {
    let (k1, k2) = split_lambda(coeff);
    let phi_table: Vec<(FieldElement, FieldElement)> =
        q_table.iter().map(|(x, y)| (x.mul(&BETA), *y)).collect();
    out.push(AffineTerm {
        neg: k1.neg,
        digits: wnaf_digits(&k1.abs, W_HALF),
        table: q_table.to_vec(),
    });
    out.push(AffineTerm {
        neg: k2.neg,
        digits: wnaf_digits(&k2.abs, W_HALF),
        table: phi_table,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secp256k1::{scalar_mul_base, GENERATOR};
    use rand::{RngCore, SeedableRng};

    fn random_scalar(rng: &mut impl RngCore) -> Scalar {
        let mut b = [0u8; 32];
        rng.fill_bytes(&mut b);
        Scalar::reduce_bytes_be(&b)
    }

    #[test]
    fn wnaf_digits_reconstruct_and_obey_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for w in [2u32, 4, 5] {
            for _ in 0..50 {
                let mut limbs = [0u64; 4];
                limbs[0] = rng.next_u64();
                limbs[1] = rng.next_u64();
                limbs[2] = rng.next_u64() & 1; // ≤129 bits, like a GLV half
                let digits = wnaf_digits(&limbs, w);
                // Reconstruct Σ dᵢ·2^i in scalar arithmetic (MSB first).
                let mut acc = Scalar::ZERO;
                for &d in digits.iter().rev() {
                    acc = acc.add(&acc);
                    if d > 0 {
                        acc = acc.add(&Scalar::from_u64(d as u64));
                    } else if d < 0 {
                        acc = acc.sub(&Scalar::from_u64((-d) as u64));
                    }
                    assert!(d == 0 || d % 2 != 0, "digits must be odd");
                    assert!((d.unsigned_abs() as i64) < (1i64 << (w - 1)));
                }
                assert_eq!(acc, Scalar::from_canonical_limbs(limbs), "w={w}");
            }
        }
    }

    #[test]
    fn glv_mul_matches_reference_ladder() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let g = JacobianPoint::from_affine(&GENERATOR);
        for _ in 0..25 {
            let k = random_scalar(&mut rng);
            let fast = glv_mul(&k, &g).to_affine();
            let slow = g.scalar_mul(&k).to_affine();
            assert_eq!(fast, slow);
        }
        // Edge scalars.
        assert!(glv_mul(&Scalar::ZERO, &g).is_infinity());
        assert_eq!(glv_mul(&Scalar::ONE, &g).to_affine(), GENERATOR);
        let n_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        assert_eq!(
            glv_mul(&n_minus_1, &g).to_affine(),
            g.scalar_mul(&n_minus_1).to_affine()
        );
    }

    #[test]
    fn glv_mul_on_non_generator_points() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        let q = JacobianPoint::from_affine(&scalar_mul_base(&Scalar::from_u64(0xabcdef)));
        for _ in 0..10 {
            let k = random_scalar(&mut rng);
            assert_eq!(glv_mul(&k, &q).to_affine(), q.scalar_mul(&k).to_affine());
        }
    }

    #[test]
    fn small_mul_matches_reference() {
        let g = JacobianPoint::from_affine(&GENERATOR);
        for k in [0u64, 1, 2, 3, 7, 0xdead, 0xffff_ffff_ffff] {
            assert_eq!(
                small_mul(k, &g).to_affine(),
                g.scalar_mul(&Scalar::from_u64(k)).to_affine(),
                "k={k}"
            );
        }
    }

    #[test]
    fn normalize_batch_matches_to_affine() {
        let g = JacobianPoint::from_affine(&GENERATOR);
        let pts: Vec<JacobianPoint> = (1..6)
            .map(|i| {
                let mut p = g.clone();
                for _ in 0..i {
                    p = p.double();
                }
                p
            })
            .collect();
        let norm = normalize_batch(&pts).expect("no infinities");
        for (p, (x, y)) in pts.iter().zip(&norm) {
            match p.to_affine() {
                crate::secp256k1::AffinePoint::Coords { x: ax, y: ay } => {
                    assert_eq!((ax, ay), (*x, *y));
                }
                _ => panic!("unexpected infinity"),
            }
        }
        // A batch containing ∞ is refused.
        let with_inf = vec![g.clone(), JacobianPoint::infinity()];
        assert!(normalize_batch(&with_inf).is_none());
    }

    #[test]
    fn strauss_affine_sums_terms() {
        // 3·G + 5·Q − 2·G (as a negated term) against direct arithmetic.
        let g = JacobianPoint::from_affine(&GENERATOR);
        let q = JacobianPoint::from_affine(&scalar_mul_base(&Scalar::from_u64(99)));
        let g_table = normalize_batch(&odd_multiples(&g, 4)).unwrap();
        let q_table = normalize_batch(&odd_multiples(&q, 4)).unwrap();
        let terms = vec![
            AffineTerm {
                neg: false,
                digits: wnaf_digits(&[3, 0, 0, 0], W_SMALL),
                table: g_table.clone(),
            },
            AffineTerm {
                neg: false,
                digits: wnaf_digits(&[5, 0, 0, 0], W_SMALL),
                table: q_table,
            },
            AffineTerm {
                neg: true,
                digits: wnaf_digits(&[2, 0, 0, 0], W_SMALL),
                table: g_table,
            },
        ];
        let got = strauss_affine(&terms).to_affine();
        // 3G − 2G + 5Q = G + 5·99·G = (1 + 495)·G
        let want = scalar_mul_base(&Scalar::from_u64(496));
        assert_eq!(got, want);
    }

    #[test]
    fn glv_terms_evaluate_to_coeff_times_q() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let q = JacobianPoint::from_affine(&scalar_mul_base(&Scalar::from_u64(0x1234)));
        let q_table = normalize_batch(&odd_multiples(&q, HALF_TABLE_LEN)).unwrap();
        for _ in 0..10 {
            let coeff = random_scalar(&mut rng);
            let mut terms = Vec::new();
            glv_terms(&coeff, &q_table, &mut terms);
            assert_eq!(terms.len(), 2);
            let got = strauss_affine(&terms).to_affine();
            assert_eq!(got, q.scalar_mul(&coeff).to_affine());
        }
    }
}
