//! # bcwan-crypto
//!
//! From-scratch cryptographic primitives backing the BcWAN reproduction
//! (Bezahaf et al., Middleware '18). The paper's proof of concept leaned on
//! OpenSSL and Multichain's bundled crypto; this crate reimplements exactly
//! the primitives the protocol needs:
//!
//! - [`bignum`] — arbitrary-precision unsigned integers (the base layer),
//! - [`mod@sha256`] / [`mod@ripemd160`] / [`hmac`] — hash functions for transaction
//!   ids, `HASH160` addresses and RFC 6979,
//! - [`aes`] — AES-256-CBC with PKCS#7, the node↔recipient symmetric layer,
//! - [`rsa`] — RSA-512 ephemeral keypairs, encryption and signatures, plus
//!   the pair-check that powers the `OP_CHECKRSA512PAIR` script operator,
//! - [`secp256k1`] / [`ecdsa`] — the blockchain signature scheme.
//!
//! Everything is deterministic given a seeded RNG, which the simulator
//! relies on for reproducible experiments.
//!
//! ## Example: the paper's double encryption (§4.4 step 3)
//!
//! ```
//! use bcwan_crypto::{aes, rsa};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! // Gateway's ephemeral keypair (paper step 1).
//! let (e_pk, e_sk) = rsa::generate_keypair(&mut rng, rsa::RsaKeySize::Rsa512);
//! // Node encrypts under the shared AES key, then under ePk.
//! let shared_key = [7u8; 32];
//! let iv = [9u8; 16];
//! let inner = aes::cbc_encrypt(&shared_key, &iv, b"t=21.5C");
//! let em = e_pk.encrypt(&mut rng, &inner)?;
//! // Recipient later recovers the inner ciphertext with the revealed eSk.
//! assert_eq!(e_sk.decrypt(&em)?, inner);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod aes;
pub mod bignum;
pub mod ecdsa;
pub mod field;
/// Raw 4×u64-limb `const fn` arithmetic over the secp256k1 field prime
/// `p = 2^256 − 2^32 − 977` (pseudo-Mersenne carry-fold reduction, Fermat
/// inversion/sqrt chains). Shared with `build.rs`, which `include!`s the
/// same file to const-bake the fixed-window base-point table. Prefer the
/// [`field::FieldElement`] wrapper unless you are operating on raw limbs.
pub mod field_core;
pub mod glv;
pub mod hex;
pub mod hmac;
pub mod msm;
pub mod ripemd160;
pub mod rsa;
pub mod scalar;
pub mod secp256k1;
pub mod sha256;

pub use aes::{cbc_decrypt, cbc_encrypt, Aes256};
pub use bignum::{BigUint, MontgomeryCtx};
pub use ecdsa::{batch_verify, EcdsaPrivateKey, EcdsaPublicKey, Signature};
pub use ripemd160::{hash160, ripemd160};
pub use rsa::{generate_keypair, RsaKeySize, RsaPrivateKey, RsaPublicKey};
pub use scalar::Scalar;
pub use sha256::{sha256, sha256d, Sha256};
