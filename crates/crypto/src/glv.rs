//! GLV endomorphism for secp256k1 (Gallant–Lambert–Vanstone).
//!
//! secp256k1 has `j`-invariant 0, so it admits an efficiently computable
//! endomorphism `φ(x, y) = (β·x, y)` where `β` is a primitive cube root of
//! unity in the base field. On the scalar side `φ` acts as multiplication
//! by `λ`, a cube root of unity mod `n`: `φ(P) = λ·P` for every point `P`.
//!
//! [`split_lambda`] decomposes a full-width scalar `k` into
//! `k ≡ k1 + λ·k2 (mod n)` with `|k1|, |k2| ≲ √n` (≤ 129 bits), using the
//! standard precomputed lattice basis `(a1, b1), (a2, b2)` for the kernel
//! of `(k1, k2) ↦ k1 + λ·k2`. A double-scalar multiply over two half-width
//! scalars halves the doubling count of `k·P`, which is where the GLV
//! speedup comes from (see [`crate::msm`]).
//!
//! The constants below are the canonical secp256k1 lattice values; they
//! are not trusted as transcribed — the unit tests pin `λ³ ≡ 1 (mod n)`,
//! `β³ ≡ 1 (mod p)`, `φ(G) = λ·G`, and the decomposition identity and
//! width bound over random scalars.

use crate::field::FieldElement;
use crate::field_core::{adc, mul_wide};
use crate::scalar::Scalar;

/// `λ`: cube root of unity mod `n`, acting as `φ` on the curve group.
pub const LAMBDA: Scalar = Scalar::from_canonical_limbs([
    0xDF02_967C_1B23_BD72,
    0x122E_22EA_2081_6678,
    0xA526_1C02_8812_645A,
    0x5363_AD4C_C05C_30E0,
]);

/// `β`: cube root of unity mod `p`; `φ(x, y) = (β·x, y)`.
pub const BETA: FieldElement = FieldElement::from_raw_limbs([
    0xC139_6C28_7195_01EE,
    0x9CF0_4975_12F5_8995,
    0x6E64_479E_AC34_34E9,
    0x7AE9_6A2B_657C_0710,
]);

/// `−b1` from the GLV lattice basis (128 bits).
const MINUS_B1: Scalar =
    Scalar::from_canonical_limbs([0x6F54_7FA9_0ABF_E4C3, 0xE443_7ED6_010E_8828, 0, 0]);

/// `−b2 mod n` from the GLV lattice basis.
const MINUS_B2: Scalar = Scalar::from_canonical_limbs([
    0xD765_CDA8_3DB1_562C,
    0x8A28_0AC5_0774_346D,
    0xFFFF_FFFF_FFFF_FFFE,
    0xFFFF_FFFF_FFFF_FFFF,
]);

/// `g1 = round(2^384 · b2 / n)` — rounding multiplier for `c1`.
const G1: [u64; 4] = [
    0xE893_209A_45DB_B031,
    0x3DAA_8A14_71E8_CA7F,
    0xE86C_90E4_9284_EB15,
    0x3086_D221_A7D4_6BCD,
];

/// `g2 = round(2^384 · (−b1) / n)` — rounding multiplier for `c2`.
const G2: [u64; 4] = [
    0x1571_B4AE_8AC4_7F71,
    0x2212_08AC_9DF5_06C6,
    0x6F54_7FA9_0ABF_E4C4,
    0xE443_7ED6_010E_8828,
];

/// A signed half-width scalar produced by [`split_lambda`].
///
/// The magnitude fits in 129 bits (limb `[2]` ≤ 1, limb `[3]` = 0), so a
/// multiplication loop over it needs at most 129 doublings. The sign is
/// applied by negating the *point* (free in Jacobian coordinates), never
/// the scalar.
#[derive(Clone, Copy, Debug)]
pub struct SplitScalar {
    /// Whether the signed value is negative (magnitude is `abs` either way).
    pub neg: bool,
    /// Little-endian limbs of the magnitude, `< 2^129`.
    pub abs: [u64; 4],
}

impl SplitScalar {
    /// Number of significant bits in the magnitude.
    pub fn bit_len(&self) -> u32 {
        for i in (0..4).rev() {
            if self.abs[i] != 0 {
                return 64 * i as u32 + 64 - self.abs[i].leading_zeros();
            }
        }
        0
    }

    /// The represented value as a [`Scalar`] (sign applied mod `n`).
    pub fn to_scalar(&self) -> Scalar {
        let s = Scalar::from_canonical_limbs(self.abs);
        if self.neg {
            s.negate()
        } else {
            s
        }
    }
}

/// `round(k · g / 2^384)` for canonical limbs `k` and multiplier `g`:
/// take limbs 6..8 of the 512-bit product and round by bit 383. The
/// result is < 2^127, returned as canonical limbs.
fn mul_shift_384(k: &[u64; 4], g: &[u64; 4]) -> [u64; 4] {
    let t = mul_wide(k, g);
    let round = t[5] >> 63;
    let (lo, carry) = adc(t[6], round, 0);
    let (hi, carry) = adc(t[7], 0, carry);
    debug_assert_eq!(carry, 0);
    [lo, hi, 0, 0]
}

/// Decompose `k ≡ k1 + λ·k2 (mod n)` with `|k1|, |k2| ≤ 2^129`.
///
/// Babai rounding on the precomputed lattice: `c1 = round(g1·k / 2^384)`,
/// `c2 = round(g2·k / 2^384)`, then `k2 = c1·(−b1) + c2·(−b2)` and
/// `k1 = k − k2·λ`, all mod `n`. Signs are extracted through
/// [`Scalar::is_high`], which is exact here because the magnitudes are
/// far below `n/2`.
pub fn split_lambda(k: &Scalar) -> (SplitScalar, SplitScalar) {
    let kl = k.to_canonical_limbs();
    let c1 = Scalar::from_canonical_limbs(mul_shift_384(&kl, &G1));
    let c2 = Scalar::from_canonical_limbs(mul_shift_384(&kl, &G2));
    let k2 = c1.mul(&MINUS_B1).add(&c2.mul(&MINUS_B2));
    let k1 = k.sub(&k2.mul(&LAMBDA));
    (to_split(&k1), to_split(&k2))
}

fn to_split(s: &Scalar) -> SplitScalar {
    if s.is_high() {
        SplitScalar {
            neg: true,
            abs: s.negate().to_canonical_limbs(),
        }
    } else {
        SplitScalar {
            neg: false,
            abs: s.to_canonical_limbs(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::secp256k1::{scalar_mul_base, AffinePoint, GEN_X, GEN_Y};
    use rand::{RngCore, SeedableRng};

    #[test]
    fn lambda_is_a_nontrivial_cube_root_of_unity_mod_n() {
        assert_ne!(LAMBDA, Scalar::ONE);
        assert_ne!(LAMBDA.sqr(), Scalar::ONE);
        assert_eq!(LAMBDA.sqr().mul(&LAMBDA), Scalar::ONE);
    }

    #[test]
    fn beta_is_a_nontrivial_cube_root_of_unity_mod_p() {
        let one = FieldElement::from_u64(1);
        assert_ne!(BETA, one);
        assert_eq!(BETA.sqr().mul(&BETA), one);
    }

    #[test]
    fn endomorphism_matches_lambda_mul_on_generator() {
        // λ·G computed by plain scalar multiplication must equal φ(G) =
        // (β·Gx, Gy) — this ties λ and β to the same endomorphism.
        let lam_g = scalar_mul_base(&LAMBDA);
        let phi_g = AffinePoint::Coords {
            x: BETA.mul(&GEN_X),
            y: GEN_Y,
        };
        assert_eq!(lam_g, phi_g);
        assert!(phi_g.is_on_curve());
    }

    #[test]
    fn split_reconstructs_and_is_half_width() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0x617c);
        for i in 0..200 {
            let mut bytes = [0u8; 32];
            rng.fill_bytes(&mut bytes);
            let k = Scalar::reduce_bytes_be(&bytes);
            let (k1, k2) = split_lambda(&k);
            // k ≡ k1 + λ·k2 (mod n)
            let recon = k1.to_scalar().add(&LAMBDA.mul(&k2.to_scalar()));
            assert_eq!(recon, k, "iteration {i}");
            // Half-width bound from the lattice basis.
            assert!(k1.bit_len() <= 129, "k1 too wide: {}", k1.bit_len());
            assert!(k2.bit_len() <= 129, "k2 too wide: {}", k2.bit_len());
        }
    }

    #[test]
    fn split_edge_scalars() {
        for k in [
            Scalar::ZERO,
            Scalar::ONE,
            Scalar::ZERO.sub(&Scalar::ONE), // n − 1
            LAMBDA,
            LAMBDA.negate(),
        ] {
            let (k1, k2) = split_lambda(&k);
            assert_eq!(k1.to_scalar().add(&LAMBDA.mul(&k2.to_scalar())), k);
            assert!(k1.bit_len() <= 129 && k2.bit_len() <= 129);
        }
    }

    #[test]
    fn bit_len_counts_magnitude_bits() {
        let s = SplitScalar {
            neg: false,
            abs: [0, 0, 1, 0],
        };
        assert_eq!(s.bit_len(), 129);
        let z = SplitScalar {
            neg: true,
            abs: [0, 0, 0, 0],
        };
        assert_eq!(z.bit_len(), 0);
        assert!(z.to_scalar().is_zero());
    }
}
