//! HMAC-SHA256 (RFC 2104), needed for RFC 6979 deterministic ECDSA nonces
//! and for the provisioning key-derivation helper.

use crate::sha256::Sha256;

/// Computes `HMAC-SHA256(key, message)`.
///
/// # Examples
///
/// ```
/// use bcwan_crypto::hmac::hmac_sha256;
///
/// let tag = hmac_sha256(b"key", b"The quick brown fox jumps over the lazy dog");
/// assert_eq!(
///     bcwan_crypto::hex::encode(&tag),
///     "f7bc83f430538424b13298e6aa6fb143ef4d59a14946175997479dbc2d1a3cd8"
/// );
/// ```
pub fn hmac_sha256(key: &[u8], message: &[u8]) -> [u8; 32] {
    const BLOCK: usize = 64;
    let mut key_block = [0u8; BLOCK];
    if key.len() > BLOCK {
        key_block[..32].copy_from_slice(&crate::sha256::sha256(key));
    } else {
        key_block[..key.len()].copy_from_slice(key);
    }

    let mut inner = Sha256::new();
    let ipad: Vec<u8> = key_block.iter().map(|b| b ^ 0x36).collect();
    inner.update(&ipad);
    inner.update(message);
    let inner_digest = inner.finalize();

    let mut outer = Sha256::new();
    let opad: Vec<u8> = key_block.iter().map(|b| b ^ 0x5c).collect();
    outer.update(&opad);
    outer.update(&inner_digest);
    outer.finalize()
}

/// Simple HKDF-style expansion used to derive per-device keys from an
/// actor's master secret during provisioning (`info` disambiguates usage).
pub fn derive_key(master: &[u8], info: &[u8], out_len: usize) -> Vec<u8> {
    assert!(out_len <= 255 * 32, "derive_key output too long");
    let mut out = Vec::with_capacity(out_len);
    let mut previous: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    while out.len() < out_len {
        let mut msg = previous.clone();
        msg.extend_from_slice(info);
        msg.push(counter);
        let block = hmac_sha256(master, &msg);
        previous = block.to_vec();
        out.extend_from_slice(&block);
        counter = counter.wrapping_add(1);
    }
    out.truncate(out_len);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex;

    // RFC 4231 test vectors.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0b; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex::encode(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex::encode(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case3() {
        let key = [0xaa; 20];
        let data = [0xdd; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex::encode(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaa; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex::encode(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn derive_key_lengths_and_determinism() {
        let a = derive_key(b"master", b"aes", 32);
        let b = derive_key(b"master", b"aes", 32);
        assert_eq!(a, b);
        assert_eq!(a.len(), 32);
        let c = derive_key(b"master", b"sig", 32);
        assert_ne!(a, c, "different info must give different keys");
        let long = derive_key(b"master", b"x", 100);
        assert_eq!(long.len(), 100);
        assert_eq!(&long[..32], &derive_key(b"master", b"x", 32)[..]);
    }
}
