//! Arbitrary-precision unsigned integer arithmetic.
//!
//! [`BigUint`] backs every public-key primitive in this crate (RSA-512 key
//! generation and the secp256k1 field/scalar arithmetic). It stores
//! little-endian `u64` limbs with `u128` intermediates, is always kept
//! normalized (no trailing zero limbs), and implements the handful of
//! number-theoretic operations the crate needs: modular exponentiation,
//! modular inverse, and gcd.
//!
//! The implementation favours clarity and testability over raw speed;
//! schoolbook multiplication and binary long division are entirely adequate
//! for 256–2048-bit operands at the call rates of the BcWAN simulator.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer.
///
/// # Examples
///
/// ```
/// use bcwan_crypto::bignum::BigUint;
///
/// let a = BigUint::from_u64(1 << 40);
/// let b = &a * &a;
/// assert_eq!(b, BigUint::from_hex("100000000000000000000").unwrap());
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    /// Little-endian limbs; invariant: no trailing zero limbs (zero == empty).
    limbs: Vec<u64>,
}

/// Error returned when parsing a [`BigUint`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigUintError {
    offending: char,
}

impl fmt::Display for ParseBigUintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid digit {:?} in big integer literal",
            self.offending
        )
    }
}

impl std::error::Error for ParseBigUintError {}

impl BigUint {
    /// The value `0`.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value `1`.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds a value from a single `u64`.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// Builds a value from big-endian bytes (the natural wire order for
    /// cryptographic material). Leading zero bytes are accepted.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        let mut chunk_iter = bytes.rchunks(8);
        for chunk in &mut chunk_iter {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | u64::from(b);
            }
            limbs.push(limb);
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Serializes to big-endian bytes with no leading zeros (empty for `0`).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 8);
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            let bytes = limb.to_be_bytes();
            if i == self.limbs.len() - 1 {
                // Skip leading zeros of the most significant limb.
                let first = bytes.iter().position(|&b| b != 0).unwrap_or(7);
                out.extend_from_slice(&bytes[first..]);
            } else {
                out.extend_from_slice(&bytes);
            }
        }
        out
    }

    /// Serializes to exactly `len` big-endian bytes, left-padding with zeros.
    ///
    /// # Errors
    ///
    /// Returns `None` if the value does not fit in `len` bytes.
    pub fn to_bytes_be_padded(&self, len: usize) -> Option<Vec<u8>> {
        let raw = self.to_bytes_be();
        if raw.len() > len {
            return None;
        }
        let mut out = vec![0u8; len - raw.len()];
        out.extend_from_slice(&raw);
        Some(out)
    }

    /// Parses a hexadecimal string (no `0x` prefix, case-insensitive).
    ///
    /// # Errors
    ///
    /// Returns [`ParseBigUintError`] on any non-hex character.
    pub fn from_hex(s: &str) -> Result<Self, ParseBigUintError> {
        let mut nibbles = Vec::with_capacity(s.len());
        for c in s.chars() {
            let v = c.to_digit(16).ok_or(ParseBigUintError { offending: c })?;
            nibbles.push(v as u8);
        }
        // Pack big-endian nibbles into bytes.
        if nibbles.len() % 2 == 1 {
            nibbles.insert(0, 0);
        }
        let bytes: Vec<u8> = nibbles.chunks(2).map(|p| (p[0] << 4) | p[1]).collect();
        Ok(Self::from_bytes_be(&bytes))
    }

    /// Formats as lowercase hex with no leading zeros (`"0"` for zero).
    pub fn to_hex(&self) -> String {
        if self.is_zero() {
            return "0".to_string();
        }
        let mut s = String::new();
        for (i, limb) in self.limbs.iter().enumerate().rev() {
            if i == self.limbs.len() - 1 {
                s.push_str(&format!("{limb:x}"));
            } else {
                s.push_str(&format!("{limb:016x}"));
            }
        }
        s
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Whether the value is one.
    pub fn is_one(&self) -> bool {
        self.limbs.len() == 1 && self.limbs[0] == 1
    }

    /// Whether the low bit is set.
    pub fn is_odd(&self) -> bool {
        self.limbs.first().is_some_and(|l| l & 1 == 1)
    }

    /// Whether the value is even (zero counts as even).
    pub fn is_even(&self) -> bool {
        !self.is_odd()
    }

    /// Number of significant bits (`0` for zero).
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (zero-indexed from the least significant bit).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 64, i % 64);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    /// Value of the `i`-th 4-bit group (zero-indexed from the least
    /// significant nibble) — the digit consumed per window by the
    /// fixed-window exponentiation and EC scalar-multiplication paths.
    pub fn nibble(&self, i: usize) -> u8 {
        let (limb, off) = (i / 16, (i % 16) * 4);
        self.limbs.get(limb).map_or(0, |l| ((l >> off) & 0xf) as u8)
    }

    /// Sets bit `i` to one, growing as needed.
    pub fn set_bit(&mut self, i: usize) {
        let (limb, off) = (i / 64, i % 64);
        if self.limbs.len() <= limb {
            self.limbs.resize(limb + 1, 0);
        }
        self.limbs[limb] |= 1 << off;
    }

    /// Returns the value as `u64` if it fits.
    pub fn to_u64(&self) -> Option<u64> {
        match self.limbs.len() {
            0 => Some(0),
            1 => Some(self.limbs[0]),
            _ => None,
        }
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    fn add_assign(&mut self, other: &Self) {
        let n = self.limbs.len().max(other.limbs.len());
        self.limbs.resize(n, 0);
        let mut carry = 0u64;
        for i in 0..n {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = self.limbs[i].overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            self.limbs[i] = s2;
            carry = u64::from(c1) + u64::from(c2);
        }
        if carry > 0 {
            self.limbs.push(carry);
        }
    }

    /// `self - other`.
    ///
    /// # Panics
    ///
    /// Panics if `other > self`; use [`BigUint::checked_sub`] when underflow
    /// is a legal outcome.
    pub fn sub(&self, other: &Self) -> Self {
        self.checked_sub(other)
            .expect("BigUint subtraction underflow")
    }

    /// `self - other`, or `None` on underflow.
    pub fn checked_sub(&self, other: &Self) -> Option<Self> {
        if self < other {
            return None;
        }
        let mut limbs = self.limbs.clone();
        let mut borrow = 0u64;
        for (i, limb) in limbs.iter_mut().enumerate() {
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = limb.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            *limb = d2;
            borrow = u64::from(b1) + u64::from(b2);
        }
        debug_assert_eq!(borrow, 0);
        let mut out = BigUint { limbs };
        out.normalize();
        Some(out)
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut limbs = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = u128::from(limbs[i + j]) + u128::from(a) * u128::from(b) + carry;
                limbs[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = u128::from(limbs[k]) + carry;
                limbs[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Left shift by `n` bits.
    pub fn shl(&self, n: usize) -> Self {
        if self.is_zero() {
            return Self::zero();
        }
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        let mut limbs = vec![0u64; limb_shift];
        if bit_shift == 0 {
            limbs.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                limbs.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                limbs.push(carry);
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Right shift by `n` bits.
    pub fn shr(&self, n: usize) -> Self {
        let (limb_shift, bit_shift) = (n / 64, n % 64);
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let mut limbs: Vec<u64> = self.limbs[limb_shift..].to_vec();
        if bit_shift > 0 {
            let mut carry = 0u64;
            for l in limbs.iter_mut().rev() {
                let new = (*l >> bit_shift) | carry;
                carry = *l << (64 - bit_shift);
                *l = new;
            }
        }
        let mut out = BigUint { limbs };
        out.normalize();
        out
    }

    /// Quotient and remainder of `self / divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        match self.cmp(divisor) {
            Ordering::Less => return (Self::zero(), self.clone()),
            Ordering::Equal => return (Self::one(), Self::zero()),
            Ordering::Greater => {}
        }
        // Fast path for single-limb divisors.
        if divisor.limbs.len() == 1 {
            let d = u128::from(divisor.limbs[0]);
            let mut rem = 0u128;
            let mut q = vec![0u64; self.limbs.len()];
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 64) | u128::from(self.limbs[i]);
                q[i] = (cur / d) as u64;
                rem = cur % d;
            }
            let mut quot = BigUint { limbs: q };
            quot.normalize();
            return (quot, Self::from_u64(rem as u64));
        }
        // Knuth Algorithm D (TAOCP vol. 2, 4.3.1) on u64 limbs.
        let n = divisor.limbs.len();
        let m = self.limbs.len() - n;

        // D1: normalize so the divisor's top limb has its high bit set.
        let shift = divisor.limbs[n - 1].leading_zeros() as usize;
        let v = divisor.shl(shift).limbs;
        let mut u = self.shl(shift).limbs;
        u.resize(self.limbs.len() + 1, 0); // room for the extra high limb

        let b = 1u128 << 64;
        let mut q = vec![0u64; m + 1];

        // D2–D7: compute one quotient limb per iteration, high to low.
        for j in (0..=m).rev() {
            // D3: estimate qhat from the top two dividend limbs.
            let top = (u128::from(u[j + n]) << 64) | u128::from(u[j + n - 1]);
            let mut qhat = top / u128::from(v[n - 1]);
            let mut rhat = top % u128::from(v[n - 1]);
            while qhat >= b || qhat * u128::from(v[n - 2]) > (rhat << 64) + u128::from(u[j + n - 2])
            {
                qhat -= 1;
                rhat += u128::from(v[n - 1]);
                if rhat >= b {
                    break;
                }
            }

            // D4: multiply-and-subtract qhat * v from u[j..=j+n].
            let mut borrow = 0i128;
            let mut carry = 0u128;
            for i in 0..n {
                let product = qhat * u128::from(v[i]) + carry;
                carry = product >> 64;
                let sub = i128::from(u[j + i]) - (product as u64 as i128) + borrow;
                u[j + i] = sub as u64; // wraps mod 2^64
                borrow = sub >> 64; // arithmetic shift: 0 or -1
            }
            let sub = i128::from(u[j + n]) - (carry as i128) + borrow;
            u[j + n] = sub as u64;
            borrow = sub >> 64;

            // D5/D6: if we subtracted too much (rare), add one v back.
            if borrow < 0 {
                qhat -= 1;
                let mut carry = 0u128;
                for i in 0..n {
                    let sum = u128::from(u[j + i]) + u128::from(v[i]) + carry;
                    u[j + i] = sum as u64;
                    carry = sum >> 64;
                }
                u[j + n] = u[j + n].wrapping_add(carry as u64);
            }
            q[j] = qhat as u64;
        }

        // D8: denormalize the remainder.
        let mut quotient = BigUint { limbs: q };
        quotient.normalize();
        let mut rem = BigUint {
            limbs: u[..n].to_vec(),
        };
        rem.normalize();
        (quotient, rem.shr(shift))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Self) -> Self {
        self.div_rem(m).1
    }

    /// `(self * other) mod m`.
    pub fn mul_mod(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }

    /// `(self + other) mod m`; operands must already be `< m`.
    pub fn add_mod(&self, other: &Self, m: &Self) -> Self {
        let s = self.add(other);
        if s >= *m {
            s.sub(m)
        } else {
            s
        }
    }

    /// `(self - other) mod m`; operands must already be `< m`.
    pub fn sub_mod(&self, other: &Self, m: &Self) -> Self {
        if self >= other {
            self.sub(other)
        } else {
            self.add(m).sub(other)
        }
    }

    /// `self^exp mod m`.
    ///
    /// Odd moduli (every RSA modulus and the secp256k1 field prime) are
    /// routed through a [`MontgomeryCtx`] fixed-window ladder; even moduli
    /// fall back to [`BigUint::mod_pow_schoolbook`], since Montgomery
    /// reduction requires `gcd(m, 2^64) = 1`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if let Some(ctx) = MontgomeryCtx::new(m) {
            return ctx.mod_pow(self, exp);
        }
        self.mod_pow_schoolbook(exp, m)
    }

    /// `self^exp mod m` by plain square-and-multiply with full division
    /// at every step.
    ///
    /// Kept as the reference implementation: the Montgomery fast path is
    /// fuzz-tested for bit-identical results against this routine, and even
    /// moduli (where Montgomery reduction is undefined) still use it.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow_schoolbook(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "modulus must be non-zero");
        if m.is_one() {
            return Self::zero();
        }
        let mut base = self.rem(m);
        let mut result = Self::one();
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul_mod(&base, m);
            }
            base = base.mul_mod(&base, m);
        }
        result
    }

    /// Greatest common divisor (binary-free Euclid; divisions dominate but
    /// operand sizes here are small).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        while !b.is_zero() {
            let r = a.rem(&b);
            a = b;
            b = r;
        }
        a
    }

    /// Modular multiplicative inverse: `self^-1 mod m`, if it exists.
    ///
    /// Uses the extended Euclidean algorithm over signed cofactors.
    pub fn mod_inverse(&self, m: &Self) -> Option<Self> {
        if m.is_zero() || m.is_one() {
            return None;
        }
        let a = self.rem(m);
        if a.is_zero() {
            return None;
        }
        // Track (old_r, r) and the coefficient of `a` as (sign, magnitude).
        let mut old_r = a;
        let mut r = m.clone();
        let mut old_s = (false, Self::one()); // (negative?, |s|)
        let mut s = (false, Self::zero());
        while !r.is_zero() {
            let (q, rem) = old_r.div_rem(&r);
            old_r = std::mem::replace(&mut r, rem);
            // new_s = old_s - q * s  (signed arithmetic on magnitudes)
            let qs = q.mul(&s.1);
            let new_s = signed_sub(&old_s, &(s.0, qs));
            old_s = std::mem::replace(&mut s, new_s);
        }
        if !old_r.is_one() {
            return None; // not coprime
        }
        let (neg, mag) = old_s;
        let mag = mag.rem(m);
        Some(if neg && !mag.is_zero() {
            m.sub(&mag)
        } else {
            mag
        })
    }

    /// Uniform random value in `[0, bound)` using the supplied RNG.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: rand::RngCore>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero(), "bound must be positive");
        let bytes = bound.bit_len().div_ceil(8);
        loop {
            let mut buf = vec![0u8; bytes];
            rng.fill_bytes(&mut buf);
            // Mask excess high bits so rejection is cheap.
            let excess = bytes * 8 - bound.bit_len();
            if excess > 0 {
                buf[0] &= 0xff >> excess;
            }
            let candidate = Self::from_bytes_be(&buf);
            if candidate < *bound {
                return candidate;
            }
        }
    }

    /// Random value with exactly `bits` significant bits (top bit set).
    pub fn random_bits<R: rand::RngCore>(rng: &mut R, bits: usize) -> Self {
        assert!(bits > 0, "bit count must be positive");
        let bytes = bits.div_ceil(8);
        let mut buf = vec![0u8; bytes];
        rng.fill_bytes(&mut buf);
        let excess = bytes * 8 - bits;
        buf[0] &= 0xff >> excess;
        let mut v = Self::from_bytes_be(&buf);
        v.set_bit(bits - 1);
        v
    }
}

/// Computes `a - b` over sign-magnitude pairs.
fn signed_sub(a: &(bool, BigUint), b: &(bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - (-b) = a + b ; (-a) - b = -(a + b)
        (false, true) => (false, a.1.add(&b.1)),
        (true, false) => (true, a.1.add(&b.1)),
        // same sign: magnitude subtraction with possible sign flip
        (sa, _) => {
            if a.1 >= b.1 {
                (sa, a.1.sub(&b.1))
            } else {
                (!sa, b.1.sub(&a.1))
            }
        }
    }
}

/// Precomputed Montgomery-reduction context for a fixed odd modulus.
///
/// Montgomery arithmetic replaces the full division after every modular
/// multiplication with shifts and adds against `R = 2^(64·k)` (where `k` is
/// the limb count of the modulus). It requires `gcd(n, R) = 1`, which for a
/// power-of-two `R` means `n` must be odd — true for every RSA modulus
/// (product of odd primes) and for the secp256k1 field prime and group
/// order. [`MontgomeryCtx::new`] returns `None` for even or trivial moduli
/// so callers can fall back to schoolbook reduction.
#[derive(Debug, Clone)]
pub struct MontgomeryCtx {
    /// The (odd, > 1) modulus.
    n: BigUint,
    /// Limb count of `n`; all Montgomery residues use this width.
    k: usize,
    /// `-n^{-1} mod 2^64`, the per-word reduction factor `n'`.
    n0inv: u64,
    /// `R^2 mod n`, used to convert into Montgomery form.
    r2: BigUint,
    /// `R mod n`, i.e. `1` in Montgomery form.
    r1: BigUint,
}

impl MontgomeryCtx {
    /// Builds a context for `n`, or `None` if `n` is even or `<= 1`
    /// (Montgomery reduction needs `gcd(n, 2^64) = 1`).
    pub fn new(n: &BigUint) -> Option<Self> {
        if !n.is_odd() || n.is_one() {
            return None;
        }
        let k = n.limbs.len();
        // Newton iteration for the inverse of n[0] mod 2^64: each step
        // doubles the number of correct low bits, and the odd seed is
        // already correct mod 8 (x*x ≡ 1 mod 8 for odd x), so five steps
        // reach 96 ≥ 64 bits.
        let n0 = n.limbs[0];
        let mut inv = n0;
        for _ in 0..5 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(n0.wrapping_mul(inv)));
        }
        debug_assert_eq!(n0.wrapping_mul(inv), 1);
        let n0inv = inv.wrapping_neg();
        let r1 = BigUint::one().shl(64 * k).rem(n);
        let r2 = r1.mul_mod(&r1, n);
        Some(MontgomeryCtx {
            n: n.clone(),
            k,
            n0inv,
            r2,
            r1,
        })
    }

    /// The modulus this context reduces by.
    pub fn modulus(&self) -> &BigUint {
        &self.n
    }

    /// CIOS (coarsely integrated operand scanning) Montgomery product:
    /// returns `a · b · R^{-1} mod n` for residues `a, b < n`.
    fn mont_mul(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let k = self.k;
        let n = &self.n.limbs;
        debug_assert!(a.limbs.len() <= k && b.limbs.len() <= k);
        let mut t = vec![0u64; k + 2];
        for i in 0..k {
            let ai = a.limbs.get(i).copied().unwrap_or(0);
            // t += ai * b
            let mut carry = 0u128;
            for (tj, bj) in t[..k]
                .iter_mut()
                .zip(b.limbs.iter().chain(std::iter::repeat(&0)))
            {
                let cur = u128::from(*tj) + u128::from(ai) * u128::from(*bj) + carry;
                *tj = cur as u64;
                carry = cur >> 64;
            }
            let cur = u128::from(t[k]) + carry;
            t[k] = cur as u64;
            t[k + 1] = (cur >> 64) as u64;
            // m = t[0] · n' mod 2^64, then t = (t + m·n) / 2^64: adding m·n
            // makes the low word vanish, so the divide is a word shift.
            let m = t[0].wrapping_mul(self.n0inv);
            let cur = u128::from(t[0]) + u128::from(m) * u128::from(n[0]);
            let mut carry = cur >> 64;
            for j in 1..k {
                let cur = u128::from(t[j]) + u128::from(m) * u128::from(n[j]) + carry;
                t[j - 1] = cur as u64;
                carry = cur >> 64;
            }
            let cur = u128::from(t[k]) + carry;
            t[k - 1] = cur as u64;
            // Running value stays < 2n < 2^(64k+1), so this sum fits a word.
            t[k] = t[k + 1].wrapping_add((cur >> 64) as u64);
            t[k + 1] = 0;
        }
        let mut out = BigUint {
            limbs: t[..=k].to_vec(),
        };
        out.normalize();
        if out >= self.n {
            out = out.sub(&self.n);
        }
        out
    }

    /// Converts `x < n` into Montgomery form (`x · R mod n`).
    fn to_mont(&self, x: &BigUint) -> BigUint {
        self.mont_mul(x, &self.r2)
    }

    /// Converts a Montgomery residue back to ordinary form.
    fn demont(&self, x: &BigUint) -> BigUint {
        self.mont_mul(x, &BigUint::one())
    }

    /// `(a · b) mod n` through one Montgomery round trip.
    pub fn mul_mod(&self, a: &BigUint, b: &BigUint) -> BigUint {
        let am = self.to_mont(&a.rem(&self.n));
        let bm = self.to_mont(&b.rem(&self.n));
        self.demont(&self.mont_mul(&am, &bm))
    }

    /// `base^exp mod n` by a fixed 4-bit-window Montgomery ladder: a
    /// 16-entry table of small powers, then four squarings plus at most one
    /// table multiply per exponent nibble.
    pub fn mod_pow(&self, base: &BigUint, exp: &BigUint) -> BigUint {
        if exp.is_zero() {
            // n > 1, so 1 mod n = 1.
            return BigUint::one();
        }
        let base_m = self.to_mont(&base.rem(&self.n));
        // table[d] = base^d in Montgomery form, d in 0..16.
        let mut table = Vec::with_capacity(16);
        table.push(self.r1.clone());
        for d in 1..16 {
            table.push(self.mont_mul(&table[d - 1], &base_m));
        }
        let windows = exp.bit_len().div_ceil(4);
        // The top window is non-zero by construction (it holds the highest
        // set bit), so the accumulator starts from it directly.
        let mut acc = table[exp.nibble(windows - 1) as usize].clone();
        for w in (0..windows - 1).rev() {
            for _ in 0..4 {
                acc = self.mont_mul(&acc, &acc);
            }
            let d = exp.nibble(w) as usize;
            if d != 0 {
                acc = self.mont_mul(&acc, &table[d]);
            }
        }
        self.demont(&acc)
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        if self.limbs.len() != other.limbs.len() {
            return self.limbs.len().cmp(&other.limbs.len());
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl fmt::Debug for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigUint(0x{})", self.to_hex())
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", self.to_hex())
    }
}

impl fmt::LowerHex for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        Self::from_u64(v)
    }
}

impl From<u32> for BigUint {
    fn from(v: u32) -> Self {
        Self::from_u64(u64::from(v))
    }
}

impl std::ops::Add for &BigUint {
    type Output = BigUint;
    fn add(self, rhs: &BigUint) -> BigUint {
        BigUint::add(self, rhs)
    }
}

impl std::ops::Sub for &BigUint {
    type Output = BigUint;
    fn sub(self, rhs: &BigUint) -> BigUint {
        BigUint::sub(self, rhs)
    }
}

impl std::ops::Mul for &BigUint {
    type Output = BigUint;
    fn mul(self, rhs: &BigUint) -> BigUint {
        BigUint::mul(self, rhs)
    }
}

impl std::ops::Rem for &BigUint {
    type Output = BigUint;
    fn rem(self, rhs: &BigUint) -> BigUint {
        BigUint::rem(self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_and_one_basics() {
        assert!(BigUint::zero().is_zero());
        assert!(BigUint::one().is_one());
        assert!(BigUint::zero().is_even());
        assert!(BigUint::one().is_odd());
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(BigUint::one().bit_len(), 1);
        assert_eq!(BigUint::default(), BigUint::zero());
    }

    #[test]
    fn bytes_round_trip() {
        let v = BigUint::from_bytes_be(&[0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(v.to_bytes_be(), vec![1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_eq!(
            v.to_bytes_be_padded(11).unwrap(),
            vec![0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9]
        );
        assert!(v.to_bytes_be_padded(3).is_none());
    }

    #[test]
    fn hex_round_trip() {
        let cases = [
            "0",
            "1",
            "ff",
            "deadbeef",
            "123456789abcdef0123456789abcdef",
        ];
        for c in cases {
            assert_eq!(BigUint::from_hex(c).unwrap().to_hex(), c);
        }
        // Leading zeros and uppercase are accepted on parse, normalized on print.
        assert_eq!(BigUint::from_hex("00FF").unwrap().to_hex(), "ff");
        assert!(BigUint::from_hex("xyz").is_err());
    }

    #[test]
    fn add_sub_round_trip() {
        let a = BigUint::from_hex("ffffffffffffffffffffffffffffffff").unwrap();
        let b = BigUint::from_hex("1").unwrap();
        let s = a.add(&b);
        assert_eq!(s.to_hex(), "100000000000000000000000000000000");
        assert_eq!(s.sub(&b), a);
        assert_eq!(b.checked_sub(&a), None);
    }

    #[test]
    fn mul_known_values() {
        let a = BigUint::from_hex("ffffffffffffffff").unwrap();
        let sq = a.mul(&a);
        assert_eq!(sq.to_hex(), "fffffffffffffffe0000000000000001");
        assert_eq!(BigUint::zero().mul(&a), BigUint::zero());
        assert_eq!(BigUint::one().mul(&a), a);
    }

    #[test]
    fn div_rem_known_values() {
        let a = BigUint::from_hex("deadbeefdeadbeefdeadbeef").unwrap();
        let b = BigUint::from_hex("12345").unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(q.mul(&b).add(&r), a);
        assert!(r < b);

        // Single-limb fast path.
        let (q2, r2) = a.div_rem(&BigUint::from_u64(7));
        assert_eq!(q2.mul(&BigUint::from_u64(7)).add(&r2), a);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = BigUint::one().div_rem(&BigUint::zero());
    }

    #[test]
    fn shifts() {
        let a = BigUint::from_hex("1f").unwrap();
        assert_eq!(a.shl(4).to_hex(), "1f0");
        assert_eq!(a.shl(64).to_hex(), "1f0000000000000000");
        assert_eq!(a.shl(64).shr(64), a);
        assert_eq!(a.shr(5).to_hex(), "0");
        assert_eq!(BigUint::zero().shl(100), BigUint::zero());
    }

    #[test]
    fn mod_pow_small() {
        // 3^4 mod 5 = 1
        let r = BigUint::from_u64(3).mod_pow(&BigUint::from_u64(4), &BigUint::from_u64(5));
        assert_eq!(r, BigUint::one());
        // Fermat: 2^(p-1) mod p = 1 for prime p
        let p = BigUint::from_u64(1_000_000_007);
        let r = BigUint::from_u64(2).mod_pow(&p.sub(&BigUint::one()), &p);
        assert_eq!(r, BigUint::one());
        // mod 1 is always 0
        assert_eq!(
            BigUint::from_u64(5).mod_pow(&BigUint::from_u64(5), &BigUint::one()),
            BigUint::zero()
        );
    }

    #[test]
    fn mod_inverse_known() {
        // 3 * 4 = 12 = 1 mod 11
        let inv = BigUint::from_u64(3)
            .mod_inverse(&BigUint::from_u64(11))
            .unwrap();
        assert_eq!(inv, BigUint::from_u64(4));
        // Not coprime -> None
        assert!(BigUint::from_u64(6)
            .mod_inverse(&BigUint::from_u64(9))
            .is_none());
        // Zero has no inverse
        assert!(BigUint::zero().mod_inverse(&BigUint::from_u64(7)).is_none());
    }

    #[test]
    fn gcd_known() {
        let a = BigUint::from_u64(48);
        let b = BigUint::from_u64(36);
        assert_eq!(a.gcd(&b), BigUint::from_u64(12));
        assert_eq!(a.gcd(&BigUint::zero()), a);
    }

    #[test]
    fn ordering() {
        let a = BigUint::from_hex("100000000000000000").unwrap();
        let b = BigUint::from_hex("ff").unwrap();
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn random_below_respects_bound() {
        let mut rng = StdRng::seed_from_u64(42);
        let bound = BigUint::from_hex("10000000000000001").unwrap();
        for _ in 0..50 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v < bound);
        }
    }

    #[test]
    fn random_bits_has_exact_length() {
        let mut rng = StdRng::seed_from_u64(7);
        for bits in [1, 8, 63, 64, 65, 256] {
            let v = BigUint::random_bits(&mut rng, bits);
            assert_eq!(v.bit_len(), bits);
        }
    }

    #[test]
    fn display_and_debug_nonempty() {
        assert_eq!(format!("{}", BigUint::zero()), "0x0");
        assert_eq!(format!("{:?}", BigUint::from_u64(255)), "BigUint(0xff)");
        assert_eq!(format!("{:x}", BigUint::from_u64(255)), "ff");
    }

    #[test]
    fn set_and_get_bits() {
        let mut v = BigUint::zero();
        v.set_bit(100);
        assert!(v.bit(100));
        assert!(!v.bit(99));
        assert_eq!(v.bit_len(), 101);
    }
}
