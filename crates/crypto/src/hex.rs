//! Minimal hex encode/decode helpers (the workspace avoids pulling a hex
//! crate for two ten-line functions).

use std::fmt;

/// Error returned by [`decode`] on malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeHexError {
    /// Input length was odd.
    OddLength,
    /// A character was not a hexadecimal digit.
    InvalidDigit(char),
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeHexError::OddLength => write!(f, "hex string has odd length"),
            DecodeHexError::InvalidDigit(c) => write!(f, "invalid hex digit {c:?}"),
        }
    }
}

impl std::error::Error for DecodeHexError {}

/// Encodes bytes as lowercase hex.
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

/// Decodes a hex string (case-insensitive) into bytes.
///
/// # Errors
///
/// Returns [`DecodeHexError`] for odd-length input or non-hex characters.
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError::OddLength);
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let chars: Vec<char> = s.chars().collect();
    for pair in chars.chunks(2) {
        let hi = pair[0]
            .to_digit(16)
            .ok_or(DecodeHexError::InvalidDigit(pair[0]))?;
        let lo = pair[1]
            .to_digit(16)
            .ok_or(DecodeHexError::InvalidDigit(pair[1]))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = [0u8, 1, 0x7f, 0x80, 0xff];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(decode("DeadBEEF").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn errors() {
        assert_eq!(decode("abc"), Err(DecodeHexError::OddLength));
        assert_eq!(decode("zz"), Err(DecodeHexError::InvalidDigit('z')));
    }
}
