//! Dedicated secp256k1 field element: fixed 4×u64 limbs, pseudo-Mersenne
//! reduction, no heap.
//!
//! [`FieldElement`] wraps the raw-limb `const fn` core in
//! [`crate::field_core`] with an ergonomic, always-reduced value type. It
//! replaces [`BigUint`] inside the elliptic-curve hot paths
//! ([`crate::secp256k1`]): point doubling/addition and affine normalization
//! run entirely on these limbs, converting to/from `BigUint` only at the
//! ECDSA scalar layer (scalar arithmetic mod `n` stays on the Montgomery
//! path in [`crate::bignum`]).
//!
//! `BigUint` is deliberately retained as the *oracle*: every operation here
//! is fuzz-checked against the generic implementation in
//! `tests/field_fuzz.rs`, the same pattern `fastpath_fuzz.rs` uses for the
//! Montgomery layer.

use crate::bignum::BigUint;
use crate::field_core as fc;

/// An element of the secp256k1 base field, always fully reduced modulo
/// `p = 2^256 − 2^32 − 977`.
///
/// Limbs are little-endian `u64`s. The type is `Copy` and heap-free; all
/// arithmetic lowers to the `const fn` core shared with the build-time
/// base-point table generator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FieldElement([u64; 4]);

impl FieldElement {
    /// The additive identity.
    pub const ZERO: FieldElement = FieldElement([0, 0, 0, 0]);
    /// The multiplicative identity.
    pub const ONE: FieldElement = FieldElement([1, 0, 0, 0]);

    /// Wrap raw little-endian limbs. The caller must guarantee the value is
    /// already reduced (`< p`); the const-baked base table and curve
    /// constants are the intended users.
    pub const fn from_raw_limbs(limbs: [u64; 4]) -> Self {
        FieldElement(limbs)
    }

    /// A small scalar as a field element.
    pub const fn from_u64(v: u64) -> Self {
        FieldElement([v, 0, 0, 0])
    }

    /// Parse a 32-byte big-endian encoding. Returns `None` when the value
    /// is not reduced (`≥ p`), matching the strictness of compressed-point
    /// parsing.
    pub fn from_bytes_be(bytes: &[u8; 32]) -> Option<Self> {
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[3 - i] = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if ge_p(&limbs) {
            return None;
        }
        Some(FieldElement(limbs))
    }

    /// The canonical 32-byte big-endian encoding.
    pub fn to_bytes_be(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&self.0[3 - i].to_be_bytes());
        }
        out
    }

    /// Convert from the generic big integer. Returns `None` when `v ≥ p`.
    pub fn from_biguint(v: &BigUint) -> Option<Self> {
        if v.bit_len() > 256 {
            return None;
        }
        let bytes = v.to_bytes_be_padded(32).expect("≤256 bits fits 32 bytes");
        let arr: [u8; 32] = bytes.as_slice().try_into().expect("padded to 32 bytes");
        Self::from_bytes_be(&arr)
    }

    /// Convert to the generic big integer (the oracle type).
    pub fn to_biguint(&self) -> BigUint {
        BigUint::from_bytes_be(&self.to_bytes_be())
    }

    /// True iff this is the additive identity.
    pub fn is_zero(&self) -> bool {
        fc::fe_is_zero(&self.0)
    }

    /// True iff the canonical representative is odd (used for compressed
    /// point parity).
    pub fn is_odd(&self) -> bool {
        self.0[0] & 1 == 1
    }

    /// Field addition.
    #[must_use]
    pub fn add(&self, rhs: &FieldElement) -> FieldElement {
        FieldElement(fc::fe_add(&self.0, &rhs.0))
    }

    /// Field subtraction.
    #[must_use]
    pub fn sub(&self, rhs: &FieldElement) -> FieldElement {
        FieldElement(fc::fe_sub(&self.0, &rhs.0))
    }

    /// Field multiplication.
    #[must_use]
    pub fn mul(&self, rhs: &FieldElement) -> FieldElement {
        FieldElement(fc::fe_mul(&self.0, &rhs.0))
    }

    /// Field squaring (cheaper than `self.mul(self)`).
    #[must_use]
    pub fn sqr(&self) -> FieldElement {
        FieldElement(fc::fe_sqr(&self.0))
    }

    /// Doubling, `2·self`.
    #[must_use]
    pub fn double(&self) -> FieldElement {
        FieldElement(fc::fe_add(&self.0, &self.0))
    }

    /// Additive inverse, `p − self` (zero maps to zero).
    #[must_use]
    pub fn negate(&self) -> FieldElement {
        FieldElement(fc::fe_neg(&self.0))
    }

    /// Multiplicative inverse by Fermat's little theorem (`a^(p−2)`), via a
    /// fixed 255-squaring addition chain. Zero maps to zero; callers guard
    /// the projective point-at-infinity case before inverting `Z`.
    #[must_use]
    pub fn invert(&self) -> FieldElement {
        FieldElement(fc::fe_inv(&self.0))
    }

    /// Modular square root: `Some(r)` with `r² = self` when `self` is a
    /// quadratic residue (via the `(p+1)/4` exponent chain, `p ≡ 3 mod 4`),
    /// `None` otherwise.
    pub fn sqrt(&self) -> Option<FieldElement> {
        let r = FieldElement(fc::fe_sqrt_candidate(&self.0));
        if r.sqr() == *self {
            Some(r)
        } else {
            None
        }
    }
}

/// True iff `limbs ≥ p` (big-endian limb comparison).
fn ge_p(limbs: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if limbs[i] > fc::P[i] {
            return true;
        }
        if limbs[i] < fc::P[i] {
            return false;
        }
    }
    true // equal to p
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> BigUint {
        BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap()
    }

    #[test]
    fn constants_round_trip() {
        assert_eq!(FieldElement::ZERO.to_biguint(), BigUint::zero());
        assert_eq!(FieldElement::ONE.to_biguint(), BigUint::one());
        assert!(FieldElement::ZERO.is_zero());
        assert!(!FieldElement::ONE.is_zero());
        assert!(FieldElement::ONE.is_odd());
    }

    #[test]
    fn p_is_rejected_and_p_minus_one_accepted() {
        assert!(FieldElement::from_biguint(&p()).is_none());
        let pm1 = p().sub(&BigUint::one());
        let fe = FieldElement::from_biguint(&pm1).unwrap();
        assert_eq!(fe.to_biguint(), pm1);
        // (p−1) + 1 ≡ 0
        assert!(fe.add(&FieldElement::ONE).is_zero());
        // (p−1)² ≡ 1
        assert_eq!(fe.sqr(), FieldElement::ONE);
    }

    #[test]
    fn invert_matches_oracle() {
        let fe = FieldElement::from_u64(0xdead_beef);
        let inv = fe.invert();
        assert_eq!(fe.mul(&inv), FieldElement::ONE);
        let oracle = BigUint::from_u64(0xdead_beef).mod_inverse(&p()).unwrap();
        assert_eq!(inv.to_biguint(), oracle);
    }

    #[test]
    fn sqrt_of_four_is_two_up_to_sign() {
        let r = FieldElement::from_u64(4).sqrt().expect("4 is a QR");
        assert_eq!(r.sqr(), FieldElement::from_u64(4));
    }

    #[test]
    fn bytes_round_trip() {
        let v =
            BigUint::from_hex("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5")
                .unwrap();
        let fe = FieldElement::from_biguint(&v).unwrap();
        assert_eq!(FieldElement::from_bytes_be(&fe.to_bytes_be()), Some(fe));
        assert_eq!(fe.to_biguint(), v);
    }
}
