//! secp256k1 elliptic-curve group arithmetic (`y² = x³ + 7` over F_p).
//!
//! The blockchain substrate signs transactions with ECDSA over this curve,
//! exactly as Bitcoin (and therefore Multichain, the paper's blockchain)
//! does. Points use Jacobian projective coordinates internally so scalar
//! multiplication needs a single field inversion at the end.

use crate::bignum::BigUint;
use std::fmt;
use std::sync::OnceLock;

/// Curve parameters, computed once.
pub struct CurveParams {
    /// Field prime `p = 2^256 - 2^32 - 977`.
    pub p: BigUint,
    /// Group order `n`.
    pub n: BigUint,
    /// Generator point.
    pub g: AffinePoint,
}

static PARAMS: OnceLock<CurveParams> = OnceLock::new();

/// Returns the shared curve parameters.
pub fn curve() -> &'static CurveParams {
    PARAMS.get_or_init(|| {
        let p =
            BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
                .expect("const");
        let n =
            BigUint::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
                .expect("const");
        let gx =
            BigUint::from_hex("79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798")
                .expect("const");
        let gy =
            BigUint::from_hex("483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8")
                .expect("const");
        CurveParams {
            p,
            n,
            g: AffinePoint::Coords { x: gx, y: gy },
        }
    })
}

/// A point in affine coordinates, or the point at infinity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AffinePoint {
    /// The identity element.
    Infinity,
    /// A finite point `(x, y)`.
    Coords {
        /// x-coordinate.
        x: BigUint,
        /// y-coordinate.
        y: BigUint,
    },
}

impl AffinePoint {
    /// Whether the point satisfies the curve equation (or is infinity).
    pub fn is_on_curve(&self) -> bool {
        match self {
            AffinePoint::Infinity => true,
            AffinePoint::Coords { x, y } => {
                let p = &curve().p;
                let y2 = y.mul_mod(y, p);
                let x3 = x.mul_mod(x, p).mul_mod(x, p);
                let rhs = x3.add_mod(&BigUint::from_u64(7), p);
                y2 == rhs
            }
        }
    }

    /// SEC1 compressed encoding: `02/03 || x` (33 bytes).
    ///
    /// # Panics
    ///
    /// Panics on the point at infinity, which has no SEC1 encoding here.
    pub fn to_compressed(&self) -> [u8; 33] {
        match self {
            AffinePoint::Infinity => panic!("cannot encode point at infinity"),
            AffinePoint::Coords { x, y } => {
                let mut out = [0u8; 33];
                out[0] = if y.is_odd() { 0x03 } else { 0x02 };
                let xb = x.to_bytes_be_padded(32).expect("x < p fits 32 bytes");
                out[1..].copy_from_slice(&xb);
                out
            }
        }
    }

    /// Parses a SEC1 compressed encoding, checking curve membership.
    pub fn from_compressed(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 33 || (bytes[0] != 0x02 && bytes[0] != 0x03) {
            return None;
        }
        let p = &curve().p;
        let x = BigUint::from_bytes_be(&bytes[1..]);
        if x >= *p {
            return None;
        }
        // y² = x³ + 7; sqrt via exponent (p+1)/4 since p ≡ 3 (mod 4).
        let rhs = x
            .mul_mod(&x, p)
            .mul_mod(&x, p)
            .add_mod(&BigUint::from_u64(7), p);
        let exp = p.add(&BigUint::one()).shr(2);
        let mut y = rhs.mod_pow(&exp, p);
        if y.mul_mod(&y, p) != rhs {
            return None; // x not on curve
        }
        let want_odd = bytes[0] == 0x03;
        if y.is_odd() != want_odd {
            y = p.sub(&y);
        }
        let point = AffinePoint::Coords { x, y };
        debug_assert!(point.is_on_curve());
        Some(point)
    }
}

/// Jacobian-coordinate point: `(X, Y, Z)` with `x = X/Z²`, `y = Y/Z³`.
#[derive(Debug, Clone)]
pub struct JacobianPoint {
    x: BigUint,
    y: BigUint,
    z: BigUint,
}

impl JacobianPoint {
    /// The identity element.
    pub fn infinity() -> Self {
        JacobianPoint {
            x: BigUint::one(),
            y: BigUint::one(),
            z: BigUint::zero(),
        }
    }

    /// Whether this is the identity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Lifts an affine point.
    pub fn from_affine(p: &AffinePoint) -> Self {
        match p {
            AffinePoint::Infinity => Self::infinity(),
            AffinePoint::Coords { x, y } => JacobianPoint {
                x: x.clone(),
                y: y.clone(),
                z: BigUint::one(),
            },
        }
    }

    /// Projects back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> AffinePoint {
        if self.is_infinity() {
            return AffinePoint::Infinity;
        }
        let p = &curve().p;
        let z_inv = self.z.mod_inverse(p).expect("z != 0 invertible mod prime");
        let z2 = z_inv.mul_mod(&z_inv, p);
        let z3 = z2.mul_mod(&z_inv, p);
        AffinePoint::Coords {
            x: self.x.mul_mod(&z2, p),
            y: self.y.mul_mod(&z3, p),
        }
    }

    /// Point doubling (handles the identity and 2-torsion edge cases).
    pub fn double(&self) -> Self {
        let p = &curve().p;
        if self.is_infinity() || self.y.is_zero() {
            return Self::infinity();
        }
        // Standard dbl-2007-bl-style formulas for a = 0.
        let xx = self.x.mul_mod(&self.x, p); // X²
        let yy = self.y.mul_mod(&self.y, p); // Y²
        let yyyy = yy.mul_mod(&yy, p); // Y⁴
                                       // S = 4·X·Y²
        let s = self.x.mul_mod(&yy, p).mul_mod(&BigUint::from_u64(4), p);
        // M = 3·X²
        let m = xx.mul_mod(&BigUint::from_u64(3), p);
        // X' = M² − 2·S
        let two_s = s.add_mod(&s, p);
        let x3 = m.mul_mod(&m, p).sub_mod(&two_s, p);
        // Y' = M·(S − X') − 8·Y⁴
        let eight_yyyy = yyyy.mul_mod(&BigUint::from_u64(8), p);
        let y3 = m.mul_mod(&s.sub_mod(&x3, p), p).sub_mod(&eight_yyyy, p);
        // Z' = 2·Y·Z
        let z3 = self.y.mul_mod(&self.z, p).mul_mod(&BigUint::from_u64(2), p);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Point addition.
    pub fn add(&self, other: &Self) -> Self {
        let p = &curve().p;
        if self.is_infinity() {
            return other.clone();
        }
        if other.is_infinity() {
            return self.clone();
        }
        // add-2007-bl
        let z1z1 = self.z.mul_mod(&self.z, p);
        let z2z2 = other.z.mul_mod(&other.z, p);
        let u1 = self.x.mul_mod(&z2z2, p);
        let u2 = other.x.mul_mod(&z1z1, p);
        let s1 = self.y.mul_mod(&other.z, p).mul_mod(&z2z2, p);
        let s2 = other.y.mul_mod(&self.z, p).mul_mod(&z1z1, p);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::infinity(); // P + (−P)
        }
        let h = u2.sub_mod(&u1, p);
        let i = h.add_mod(&h, p);
        let i = i.mul_mod(&i, p);
        let j = h.mul_mod(&i, p);
        let r = s2.sub_mod(&s1, p);
        let r = r.add_mod(&r, p);
        let v = u1.mul_mod(&i, p);
        // X3 = r² − J − 2·V
        let x3 = r
            .mul_mod(&r, p)
            .sub_mod(&j, p)
            .sub_mod(&v.add_mod(&v, p), p);
        // Y3 = r·(V − X3) − 2·S1·J
        let s1j = s1.mul_mod(&j, p);
        let y3 = r
            .mul_mod(&v.sub_mod(&x3, p), p)
            .sub_mod(&s1j.add_mod(&s1j, p), p);
        // Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H
        let z_sum = self.z.add_mod(&other.z, p);
        let z3 = z_sum
            .mul_mod(&z_sum, p)
            .sub_mod(&z1z1, p)
            .sub_mod(&z2z2, p)
            .mul_mod(&h, p);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication by double-and-add (MSB first).
    pub fn scalar_mul(&self, k: &BigUint) -> Self {
        let mut acc = Self::infinity();
        for i in (0..k.bit_len()).rev() {
            acc = acc.double();
            if k.bit(i) {
                acc = acc.add(self);
            }
        }
        acc
    }
}

impl fmt::Display for AffinePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffinePoint::Infinity => write!(f, "∞"),
            AffinePoint::Coords { x, .. } => write!(f, "({x}…)"),
        }
    }
}

/// Precomputed odd multiples per 4-bit window of the scalar:
/// `BASE_TABLE[w][d-1] = (d · 16^w) · G` for `w ∈ 0..64`, `d ∈ 1..=15`.
///
/// With the table in hand, `k·G` is just one point addition per non-zero
/// nibble of `k` (≤ 64 additions, no doublings at all) instead of 256
/// doublings plus ~128 additions for plain double-and-add. Built lazily on
/// first use — the simulator's deterministic runs never pay for it unless
/// they sign or verify.
static BASE_TABLE: OnceLock<Vec<[JacobianPoint; 15]>> = OnceLock::new();

fn base_table() -> &'static [[JacobianPoint; 15]] {
    BASE_TABLE.get_or_init(|| {
        let mut window_base = JacobianPoint::from_affine(&curve().g);
        let mut table = Vec::with_capacity(64);
        for _ in 0..64 {
            let mut multiples = Vec::with_capacity(15);
            let mut acc = window_base.clone();
            for _ in 0..15 {
                multiples.push(acc.clone());
                acc = acc.add(&window_base);
            }
            // After the loop `acc = 16·window_base`, the next window's base.
            let row: [JacobianPoint; 15] = multiples.try_into().expect("exactly 15 entries");
            table.push(row);
            window_base = acc;
        }
        table
    })
}

/// `k·G` for the curve generator, via the fixed-window [`BASE_TABLE`].
///
/// Scalars wider than 256 bits (wider than the table) fall back to generic
/// double-and-add; callers normally reduce mod `n` first anyway.
pub fn scalar_mul_base(k: &BigUint) -> AffinePoint {
    if k.is_zero() {
        return AffinePoint::Infinity;
    }
    if k.bit_len() > 256 {
        return JacobianPoint::from_affine(&curve().g)
            .scalar_mul(k)
            .to_affine();
    }
    let table = base_table();
    let mut acc = JacobianPoint::infinity();
    for (w, row) in table.iter().enumerate().take(k.bit_len().div_ceil(4)) {
        let d = k.nibble(w) as usize;
        if d != 0 {
            acc = acc.add(&row[d - 1]);
        }
    }
    acc.to_affine()
}

/// Shamir's trick: `k1·P1 + k2·P2` with one shared doubling chain.
///
/// Precomputes `P1 + P2` and walks both scalars' bits together — 256
/// doublings plus at most one addition per bit, versus two full scalar
/// multiplications and a final add. This is the ECDSA-verify hot path
/// (`u1·G + u2·Q`).
pub fn double_scalar_mul(
    k1: &BigUint,
    p1: &JacobianPoint,
    k2: &BigUint,
    p2: &JacobianPoint,
) -> JacobianPoint {
    let sum = p1.add(p2);
    let bits = k1.bit_len().max(k2.bit_len());
    let mut acc = JacobianPoint::infinity();
    for i in (0..bits).rev() {
        acc = acc.double();
        match (k1.bit(i), k2.bit(i)) {
            (true, true) => acc = acc.add(&sum),
            (true, false) => acc = acc.add(p1),
            (false, true) => acc = acc.add(p2),
            (false, false) => {}
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_on_curve() {
        assert!(curve().g.is_on_curve());
    }

    #[test]
    fn generator_has_order_n() {
        let n = curve().n.clone();
        let ng = scalar_mul_base(&n);
        assert_eq!(ng, AffinePoint::Infinity);
        // (n-1)·G = −G (same x, opposite y).
        let n1g = scalar_mul_base(&n.sub(&BigUint::one()));
        match (&curve().g, &n1g) {
            (AffinePoint::Coords { x: gx, y: gy }, AffinePoint::Coords { x, y }) => {
                assert_eq!(gx, x);
                assert_eq!(curve().p.sub(gy), *y);
            }
            _ => panic!("unexpected infinity"),
        }
    }

    #[test]
    fn small_multiples_known_values() {
        // 2G — standard test vector.
        let two_g = scalar_mul_base(&BigUint::from_u64(2));
        match two_g {
            AffinePoint::Coords { x, .. } => assert_eq!(
                x.to_hex(),
                "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"
            ),
            _ => panic!("infinity"),
        }
        // 1G = G
        assert_eq!(scalar_mul_base(&BigUint::one()), curve().g);
        // 0G = infinity
        assert_eq!(scalar_mul_base(&BigUint::zero()), AffinePoint::Infinity);
    }

    #[test]
    fn add_matches_scalar_mul() {
        let g = JacobianPoint::from_affine(&curve().g);
        let three_by_add = g.add(&g).add(&g).to_affine();
        let three_by_mul = scalar_mul_base(&BigUint::from_u64(3));
        assert_eq!(three_by_add, three_by_mul);
    }

    #[test]
    fn addition_with_infinity() {
        let g = JacobianPoint::from_affine(&curve().g);
        let inf = JacobianPoint::infinity();
        assert_eq!(inf.add(&g).to_affine(), curve().g);
        assert_eq!(g.add(&inf).to_affine(), curve().g);
        assert_eq!(inf.add(&inf).to_affine(), AffinePoint::Infinity);
        assert_eq!(inf.double().to_affine(), AffinePoint::Infinity);
    }

    #[test]
    fn p_plus_minus_p_is_infinity() {
        let g = JacobianPoint::from_affine(&curve().g);
        let neg = match curve().g.clone() {
            AffinePoint::Coords { x, y } => JacobianPoint::from_affine(&AffinePoint::Coords {
                x,
                y: curve().p.sub(&y),
            }),
            _ => unreachable!(),
        };
        assert_eq!(g.add(&neg).to_affine(), AffinePoint::Infinity);
    }

    #[test]
    fn compressed_round_trip() {
        for k in [1u64, 2, 3, 12345, 0xffff_ffff] {
            let p = scalar_mul_base(&BigUint::from_u64(k));
            let enc = p.to_compressed();
            let dec = AffinePoint::from_compressed(&enc).unwrap();
            assert_eq!(p, dec, "k={k}");
        }
    }

    #[test]
    fn compressed_generator_known_bytes() {
        let enc = curve().g.to_compressed();
        assert_eq!(
            crate::hex::encode(&enc),
            "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"
        );
    }

    #[test]
    fn from_compressed_rejects_garbage() {
        assert!(AffinePoint::from_compressed(&[0u8; 33]).is_none());
        assert!(AffinePoint::from_compressed(&[2u8; 10]).is_none());
        // x >= p
        let mut bytes = [0xffu8; 33];
        bytes[0] = 0x02;
        assert!(AffinePoint::from_compressed(&bytes).is_none());
    }

    #[test]
    fn scalar_mul_distributes() {
        // (a+b)G == aG + bG
        let a = BigUint::from_u64(0xdead_beef);
        let b = BigUint::from_u64(0x1234_5678);
        let lhs = scalar_mul_base(&a.add(&b));
        let rhs = JacobianPoint::from_affine(&scalar_mul_base(&a))
            .add(&JacobianPoint::from_affine(&scalar_mul_base(&b)))
            .to_affine();
        assert_eq!(lhs, rhs);
    }
}
