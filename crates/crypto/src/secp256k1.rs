//! secp256k1 elliptic-curve group arithmetic (`y² = x³ + 7` over F_p).
//!
//! The blockchain substrate signs transactions with ECDSA over this curve,
//! exactly as Bitcoin (and therefore Multichain, the paper's blockchain)
//! does. Points use Jacobian projective coordinates internally so scalar
//! multiplication needs a single field inversion at the end.
//!
//! Everything here is fixed-limb: coordinates are
//! [`FieldElement`]s (pseudo-Mersenne reduction) and scalars are
//! Montgomery [`Scalar`]s modulo the group order — `BigUint` does not
//! appear on this path at all (it survives only as the fuzz oracle, bridged
//! through the byte encodings). The fixed-window base-point table is
//! const-baked by `build.rs` into `.rodata`, so processes pay nothing to
//! build it and `k·G` uses mixed addition against affine entries.

use crate::field::FieldElement;
use crate::scalar::Scalar;
use std::fmt;

// `BASE_TABLE[w][d-1] = (d · 16^w) · G` as affine (x, y) pairs, generated
// at build time from the same `field_core` limb arithmetic (see build.rs).
include!(concat!(env!("OUT_DIR"), "/base_table.rs"));

/// The curve coefficient `b = 7` in `y² = x³ + 7`.
const CURVE_B: FieldElement = FieldElement::from_u64(7);

/// Generator x-coordinate.
pub const GEN_X: FieldElement = FieldElement::from_raw_limbs([
    0x59F2_815B_16F8_1798,
    0x029B_FCDB_2DCE_28D9,
    0x55A0_6295_CE87_0B07,
    0x79BE_667E_F9DC_BBAC,
]);

/// Generator y-coordinate.
pub const GEN_Y: FieldElement = FieldElement::from_raw_limbs([
    0x9C47_D08F_FB10_D4B8,
    0xFD17_B448_A685_5419,
    0x5DA4_FBFC_0E11_08A8,
    0x483A_DA77_26A3_C465,
]);

/// The generator point `G`.
pub const GENERATOR: AffinePoint = AffinePoint::Coords { x: GEN_X, y: GEN_Y };

/// A point in affine coordinates, or the point at infinity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AffinePoint {
    /// The identity element.
    Infinity,
    /// A finite point `(x, y)` with fully reduced field coordinates.
    Coords {
        /// x-coordinate.
        x: FieldElement,
        /// y-coordinate.
        y: FieldElement,
    },
}

impl AffinePoint {
    /// Whether the point satisfies the curve equation (or is infinity).
    pub fn is_on_curve(&self) -> bool {
        match self {
            AffinePoint::Infinity => true,
            AffinePoint::Coords { x, y } => y.sqr() == x.sqr().mul(x).add(&CURVE_B),
        }
    }

    /// SEC1 compressed encoding: `02/03 || x` (33 bytes).
    ///
    /// # Panics
    ///
    /// Panics on the point at infinity, which has no SEC1 encoding here.
    pub fn to_compressed(&self) -> [u8; 33] {
        match self {
            AffinePoint::Infinity => panic!("cannot encode point at infinity"),
            AffinePoint::Coords { x, y } => {
                let mut out = [0u8; 33];
                out[0] = if y.is_odd() { 0x03 } else { 0x02 };
                out[1..].copy_from_slice(&x.to_bytes_be());
                out
            }
        }
    }

    /// Parses a SEC1 compressed encoding, checking curve membership.
    pub fn from_compressed(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != 33 || (bytes[0] != 0x02 && bytes[0] != 0x03) {
            return None;
        }
        let xb: [u8; 32] = bytes[1..].try_into().expect("33-byte input");
        // Rejects x ≥ p.
        let x = FieldElement::from_bytes_be(&xb)?;
        // y² = x³ + 7; sqrt via exponent (p+1)/4 since p ≡ 3 (mod 4).
        let rhs = x.sqr().mul(&x).add(&CURVE_B);
        let mut y = rhs.sqrt()?; // None when x is not on the curve
        let want_odd = bytes[0] == 0x03;
        if y.is_odd() != want_odd {
            y = y.negate();
        }
        let point = AffinePoint::Coords { x, y };
        debug_assert!(point.is_on_curve());
        Some(point)
    }

    /// Lifts an x-coordinate to the curve point with *even* y, if one
    /// exists. This is the `R` recovery step of batch verification: an
    /// ECDSA `(r, s)` pair determines `R` only up to sign, so the batch
    /// equation fixes the even-y representative and searches signs.
    pub fn lift_x_even_y(x: FieldElement) -> Option<Self> {
        let rhs = x.sqr().mul(&x).add(&CURVE_B);
        let mut y = rhs.sqrt()?;
        if y.is_odd() {
            y = y.negate();
        }
        Some(AffinePoint::Coords { x, y })
    }
}

/// Jacobian-coordinate point: `(X, Y, Z)` with `x = X/Z²`, `y = Y/Z³`.
///
/// Coordinates are fixed-limb [`FieldElement`]s; the point-at-infinity is
/// encoded as `Z = 0`.
#[derive(Debug, Clone)]
pub struct JacobianPoint {
    pub(crate) x: FieldElement,
    pub(crate) y: FieldElement,
    pub(crate) z: FieldElement,
}

impl JacobianPoint {
    /// The identity element.
    pub fn infinity() -> Self {
        JacobianPoint {
            x: FieldElement::ONE,
            y: FieldElement::ONE,
            z: FieldElement::ZERO,
        }
    }

    /// Whether this is the identity.
    pub fn is_infinity(&self) -> bool {
        self.z.is_zero()
    }

    /// Lifts an affine point.
    pub fn from_affine(p: &AffinePoint) -> Self {
        match p {
            AffinePoint::Infinity => Self::infinity(),
            AffinePoint::Coords { x, y } => JacobianPoint {
                x: *x,
                y: *y,
                z: FieldElement::ONE,
            },
        }
    }

    /// Projects back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> AffinePoint {
        if self.is_infinity() {
            return AffinePoint::Infinity;
        }
        let z_inv = self.z.invert();
        let z2 = z_inv.sqr();
        let z3 = z2.mul(&z_inv);
        AffinePoint::Coords {
            x: self.x.mul(&z2),
            y: self.y.mul(&z3),
        }
    }

    /// The negation `(X, −Y, Z)` — one field negation, no multiplies.
    /// Signed-digit multiplication (wNAF, GLV) leans on this being free.
    #[must_use]
    pub fn neg(&self) -> Self {
        JacobianPoint {
            x: self.x,
            y: self.y.negate(),
            z: self.z,
        }
    }

    /// Point doubling (handles the identity and 2-torsion edge cases).
    pub fn double(&self) -> Self {
        if self.is_infinity() || self.y.is_zero() {
            return Self::infinity();
        }
        // Standard dbl-2007-bl-style formulas for a = 0.
        let xx = self.x.sqr(); // X²
        let yy = self.y.sqr(); // Y²
        let yyyy = yy.sqr(); // Y⁴
        let s = self.x.mul(&yy).double().double(); // S = 4·X·Y²
        let m = xx.double().add(&xx); // M = 3·X²
        let x3 = m.sqr().sub(&s.double()); // X' = M² − 2·S
        let eight_yyyy = yyyy.double().double().double();
        let y3 = m.mul(&s.sub(&x3)).sub(&eight_yyyy); // Y' = M·(S − X') − 8·Y⁴
        let z3 = self.y.mul(&self.z).double(); // Z' = 2·Y·Z
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Point addition.
    pub fn add(&self, other: &Self) -> Self {
        if self.is_infinity() {
            return other.clone();
        }
        if other.is_infinity() {
            return self.clone();
        }
        // add-2007-bl
        let z1z1 = self.z.sqr();
        let z2z2 = other.z.sqr();
        let u1 = self.x.mul(&z2z2);
        let u2 = other.x.mul(&z1z1);
        let s1 = self.y.mul(&other.z).mul(&z2z2);
        let s2 = other.y.mul(&self.z).mul(&z1z1);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::infinity(); // P + (−P)
        }
        let h = u2.sub(&u1);
        let i = h.double().sqr();
        let j = h.mul(&i);
        let r = s2.sub(&s1).double();
        let v = u1.mul(&i);
        // X3 = r² − J − 2·V
        let x3 = r.sqr().sub(&j).sub(&v.double());
        // Y3 = r·(V − X3) − 2·S1·J
        let y3 = r.mul(&v.sub(&x3)).sub(&s1.mul(&j).double());
        // Z3 = ((Z1+Z2)² − Z1Z1 − Z2Z2)·H
        let z3 = self.z.add(&other.z).sqr().sub(&z1z1).sub(&z2z2).mul(&h);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (`Z2 = 1`): 7M + 4S instead of
    /// the 11M + 5S of the general formula. Used for the const-baked
    /// affine [`BASE_TABLE`] and for the batch-normalized tables in
    /// [`crate::msm`].
    pub(crate) fn add_mixed(&self, x2: &FieldElement, y2: &FieldElement) -> Self {
        if self.is_infinity() {
            return JacobianPoint {
                x: *x2,
                y: *y2,
                z: FieldElement::ONE,
            };
        }
        // madd-2007-bl
        let z1z1 = self.z.sqr();
        let u2 = x2.mul(&z1z1);
        let s2 = y2.mul(&self.z).mul(&z1z1);
        if u2 == self.x {
            if s2 == self.y {
                return self.double();
            }
            return Self::infinity(); // P + (−P)
        }
        let h = u2.sub(&self.x);
        let hh = h.sqr();
        let i = hh.double().double();
        let j = h.mul(&i);
        let r = s2.sub(&self.y).double();
        let v = self.x.mul(&i);
        let x3 = r.sqr().sub(&j).sub(&v.double());
        let y3 = r.mul(&v.sub(&x3)).sub(&self.y.mul(&j).double());
        let z3 = self.z.add(&h).sqr().sub(&z1z1).sub(&hh);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication by double-and-add (MSB first) over the
    /// canonical bits of `k`. Kept as the simple reference path; the hot
    /// paths use the windowed base table and the GLV/wNAF routines in
    /// [`crate::msm`].
    pub fn scalar_mul(&self, k: &Scalar) -> Self {
        let limbs = k.to_canonical_limbs();
        let mut acc = Self::infinity();
        for i in (0..256).rev() {
            acc = acc.double();
            if (limbs[i / 64] >> (i % 64)) & 1 == 1 {
                acc = acc.add(self);
            }
        }
        acc
    }
}

impl fmt::Display for AffinePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AffinePoint::Infinity => write!(f, "∞"),
            AffinePoint::Coords { x, .. } => {
                write!(f, "({}…)", crate::hex::encode(&x.to_bytes_be()[..8]))
            }
        }
    }
}

/// `k·G` accumulated in Jacobian coordinates via the const-baked
/// fixed-window `BASE_TABLE`: one mixed addition per non-zero nibble of
/// `k` (≤ 64 additions, no doublings, no table build at runtime).
///
/// Exposed within the crate so ECDSA verification and the batch MSM can
/// fold the base-point term into a larger sum without paying the affine
/// normalization per call.
pub(crate) fn scalar_mul_base_jacobian(k: &Scalar) -> JacobianPoint {
    let limbs = k.to_canonical_limbs();
    let mut acc = JacobianPoint::infinity();
    for w in 0..64 {
        let d = ((limbs[w / 16] >> (4 * (w % 16))) & 0xf) as usize;
        if d != 0 {
            let (x, y) = &BASE_TABLE[w][d - 1];
            acc = acc.add_mixed(x, y);
        }
    }
    acc
}

/// `k·G` for the curve generator via the const-baked fixed-window table.
pub fn scalar_mul_base(k: &Scalar) -> AffinePoint {
    scalar_mul_base_jacobian(k).to_affine()
}

/// Shamir's trick: `k1·P1 + k2·P2` with one shared doubling chain.
///
/// Precomputes `P1 + P2` and walks both scalars' bits together — 256
/// doublings plus at most one addition per bit. Retained as the reference
/// double-multiplication (the verify hot path now uses GLV + wNAF via
/// [`crate::msm`], which the fuzz suite pins against this).
pub fn double_scalar_mul(
    k1: &Scalar,
    p1: &JacobianPoint,
    k2: &Scalar,
    p2: &JacobianPoint,
) -> JacobianPoint {
    let sum = p1.add(p2);
    let l1 = k1.to_canonical_limbs();
    let l2 = k2.to_canonical_limbs();
    let mut acc = JacobianPoint::infinity();
    for i in (0..256).rev() {
        acc = acc.double();
        let b1 = (l1[i / 64] >> (i % 64)) & 1 == 1;
        let b2 = (l2[i / 64] >> (i % 64)) & 1 == 1;
        match (b1, b2) {
            (true, true) => acc = acc.add(&sum),
            (true, false) => acc = acc.add(p1),
            (false, true) => acc = acc.add(p2),
            (false, false) => {}
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bignum::BigUint;

    fn scalar(v: u64) -> Scalar {
        Scalar::from_u64(v)
    }

    #[test]
    fn generator_is_on_curve() {
        assert!(GENERATOR.is_on_curve());
    }

    #[test]
    fn generator_has_order_n() {
        // (n−1)·G = −G (same x, opposite y); n itself is not representable
        // as a Scalar (it reduces to zero), which pins n·G = ∞ trivially.
        let n_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
        let n1g = scalar_mul_base(&n_minus_1);
        match (&GENERATOR, &n1g) {
            (AffinePoint::Coords { x: gx, y: gy }, AffinePoint::Coords { x, y }) => {
                assert_eq!(gx, x);
                assert_eq!(gy.negate(), *y);
            }
            _ => panic!("unexpected infinity"),
        }
        assert_eq!(scalar_mul_base(&Scalar::ZERO), AffinePoint::Infinity);
    }

    #[test]
    fn small_multiples_known_values() {
        // 2G — standard test vector.
        let two_g = scalar_mul_base(&scalar(2));
        match two_g {
            AffinePoint::Coords { x, .. } => assert_eq!(
                crate::hex::encode(&x.to_bytes_be()),
                "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5"
            ),
            _ => panic!("infinity"),
        }
        // 1G = G
        assert_eq!(scalar_mul_base(&Scalar::ONE), GENERATOR);
    }

    #[test]
    fn const_table_matches_runtime() {
        // The build-script table must agree with runtime point arithmetic:
        // BASE_TABLE[w][d-1] == (d · 16^w) · G. Sample windows across the
        // whole range (including both ends) rather than all 960 entries.
        let g = JacobianPoint::from_affine(&GENERATOR);
        for w in [0usize, 1, 7, 31, 63] {
            for d in [1u64, 2, 15] {
                // k = d · 16^w as a scalar (always < n for sampled w).
                let k_big = BigUint::from_u64(d).shl(4 * w);
                let kb: [u8; 32] = k_big
                    .to_bytes_be_padded(32)
                    .unwrap()
                    .try_into()
                    .expect("fits");
                let k = Scalar::from_bytes_be(&kb).expect("< n");
                let want = g.scalar_mul(&k).to_affine();
                let (x, y) = BASE_TABLE[w][d as usize - 1];
                let got = AffinePoint::Coords { x, y };
                assert_eq!(got, want, "window {w}, digit {d}");
                assert!(got.is_on_curve(), "window {w}, digit {d} off-curve");
            }
        }
    }

    #[test]
    fn add_matches_scalar_mul() {
        let g = JacobianPoint::from_affine(&GENERATOR);
        let three_by_add = g.add(&g).add(&g).to_affine();
        let three_by_mul = scalar_mul_base(&scalar(3));
        assert_eq!(three_by_add, three_by_mul);
    }

    #[test]
    fn mixed_add_matches_general_add() {
        let g = JacobianPoint::from_affine(&GENERATOR);
        let q = g.double().add(&g); // 3G, Z ≠ 1
        assert_eq!(
            q.add_mixed(&GEN_X, &GEN_Y).to_affine(),
            q.add(&g).to_affine()
        );
        // Identity and inverse edge cases.
        assert_eq!(
            JacobianPoint::infinity()
                .add_mixed(&GEN_X, &GEN_Y)
                .to_affine(),
            GENERATOR
        );
        assert_eq!(
            g.add_mixed(&GEN_X, &GEN_Y.negate()).to_affine(),
            AffinePoint::Infinity
        );
        assert_eq!(
            g.add_mixed(&GEN_X, &GEN_Y).to_affine(),
            scalar_mul_base(&scalar(2))
        );
    }

    #[test]
    fn addition_with_infinity() {
        let g = JacobianPoint::from_affine(&GENERATOR);
        let inf = JacobianPoint::infinity();
        assert_eq!(inf.add(&g).to_affine(), GENERATOR);
        assert_eq!(g.add(&inf).to_affine(), GENERATOR);
        assert_eq!(inf.add(&inf).to_affine(), AffinePoint::Infinity);
        assert_eq!(inf.double().to_affine(), AffinePoint::Infinity);
    }

    #[test]
    fn p_plus_minus_p_is_infinity() {
        let g = JacobianPoint::from_affine(&GENERATOR);
        assert_eq!(g.add(&g.neg()).to_affine(), AffinePoint::Infinity);
    }

    #[test]
    fn compressed_round_trip() {
        for k in [1u64, 2, 3, 12345, 0xffff_ffff] {
            let p = scalar_mul_base(&scalar(k));
            let enc = p.to_compressed();
            let dec = AffinePoint::from_compressed(&enc).unwrap();
            assert_eq!(p, dec, "k={k}");
        }
    }

    #[test]
    fn compressed_generator_known_bytes() {
        let enc = GENERATOR.to_compressed();
        assert_eq!(
            crate::hex::encode(&enc),
            "0279be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798"
        );
    }

    #[test]
    fn from_compressed_rejects_garbage() {
        assert!(AffinePoint::from_compressed(&[0u8; 33]).is_none());
        assert!(AffinePoint::from_compressed(&[2u8; 10]).is_none());
        // x >= p
        let mut bytes = [0xffu8; 33];
        bytes[0] = 0x02;
        assert!(AffinePoint::from_compressed(&bytes).is_none());
    }

    #[test]
    fn lift_x_even_y_matches_compressed_parse() {
        let p = scalar_mul_base(&scalar(7));
        let AffinePoint::Coords { x, .. } = p else {
            panic!("finite")
        };
        let lifted = AffinePoint::lift_x_even_y(x).expect("on curve");
        let AffinePoint::Coords { y, .. } = lifted else {
            panic!("finite")
        };
        assert!(!y.is_odd());
        assert!(lifted.is_on_curve());
        // x = 5 is not on the curve (5³+7 = 132 is a non-residue mod p).
        assert!(AffinePoint::lift_x_even_y(FieldElement::from_u64(5)).is_none());
    }

    #[test]
    fn scalar_mul_distributes() {
        // (a+b)G == aG + bG
        let a = scalar(0xdead_beef);
        let b = scalar(0x1234_5678);
        let lhs = scalar_mul_base(&a.add(&b));
        let rhs = JacobianPoint::from_affine(&scalar_mul_base(&a))
            .add(&JacobianPoint::from_affine(&scalar_mul_base(&b)))
            .to_affine();
        assert_eq!(lhs, rhs);
    }
}
