//! Fixed-limb arithmetic modulo the secp256k1 group order `n`.
//!
//! [`Scalar`] is the mod-`n` counterpart of [`crate::field::FieldElement`]:
//! four little-endian `u64` limbs, no heap, no `BigUint` anywhere on the
//! signing/verification path. Unlike the base field, `n` is not
//! pseudo-Mersenne, so reduction uses Montgomery multiplication (a fixed
//! 4-limb CIOS loop, the same algorithm as the generic
//! [`crate::bignum::MontgomeryCtx`] but fully unrolled and allocation-free)
//! and inversion uses Fermat's little theorem (`a^(n−2)`) with a 4-bit
//! window.
//!
//! Values are kept in Montgomery form (`a·R mod n`, `R = 2^256`)
//! internally; conversion happens only at the byte boundary
//! ([`Scalar::from_bytes_be`] / [`Scalar::to_bytes_be`]). Because both the
//! Montgomery and the canonical representative are fully reduced, derived
//! equality on the limbs is value equality.
//!
//! All constants below (`R`, `R²`, `−n⁻¹ mod 2^64`) are *computed* by
//! `const fn`s from the limbs of `n` rather than transcribed, so a typo'd
//! digit cannot survive: `tests/scalar_fuzz.rs` checks every operation
//! against the `BigUint` oracle.

use crate::field_core::{adc, sbb};

/// The group order `n`, little-endian limbs.
pub const N: [u64; 4] = [
    0xBFD2_5E8C_D036_4141,
    0xBAAE_DCE6_AF48_A03B,
    0xFFFF_FFFF_FFFF_FFFE,
    0xFFFF_FFFF_FFFF_FFFF,
];

/// `(n − 1) / 2`: the low-S threshold (a signature's `s` is "high" when
/// its canonical value exceeds this).
const HALF_N: [u64; 4] = [
    0xDFE9_2F46_681B_20A0,
    0x5D57_6E73_57A4_501D,
    0xFFFF_FFFF_FFFF_FFFF,
    0x7FFF_FFFF_FFFF_FFFF,
];

/// `2^256 − n`: the additive fold used when a carry escapes limb 3
/// (`2^256 ≡ DELTA (mod n)`). About 2^129, so one fold never carries
/// twice.
const DELTA: [u64; 4] = sub_256(&[0, 0, 0, 0], &N).0;

/// `R mod n = 2^256 − n` (since `n > 2^255`): the Montgomery form of 1.
const R_MOD_N: [u64; 4] = DELTA;

/// `R² mod n`, computed by doubling `R mod n` 256 times.
const R2_MOD_N: [u64; 4] = compute_r2();

/// `−n⁻¹ mod 2^64`, by Newton iteration (each step doubles the number of
/// correct low bits; 6 steps cover 64).
const N0_INV: u64 = compute_n0_inv();

const fn compute_n0_inv() -> u64 {
    let mut inv = 1u64;
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(N[0].wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// 256-bit add: returns `(sum, carry)`.
const fn add_256(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let (r0, c) = adc(a[0], b[0], 0);
    let (r1, c) = adc(a[1], b[1], c);
    let (r2, c) = adc(a[2], b[2], c);
    let (r3, c) = adc(a[3], b[3], c);
    ([r0, r1, r2, r3], c)
}

/// 256-bit subtract: returns `(diff, borrow)`.
const fn sub_256(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let (r0, bw) = sbb(a[0], b[0], 0);
    let (r1, bw) = sbb(a[1], b[1], bw);
    let (r2, bw) = sbb(a[2], b[2], bw);
    let (r3, bw) = sbb(a[3], b[3], bw);
    ([r0, r1, r2, r3], bw)
}

/// Subtract `n` once if the value is `≥ n` (value must be `< 2n`).
/// Branchless mask select, mirroring `field_core::cond_sub_p`.
const fn cond_sub_n(r: [u64; 4]) -> [u64; 4] {
    let (d, borrow) = sub_256(&r, &N);
    let keep = borrow.wrapping_neg();
    [
        (r[0] & keep) | (d[0] & !keep),
        (r[1] & keep) | (d[1] & !keep),
        (r[2] & keep) | (d[2] & !keep),
        (r[3] & keep) | (d[3] & !keep),
    ]
}

/// `(a + b) mod n` for reduced inputs.
const fn add_mod(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let (r, carry) = add_256(a, b);
    // a + b < 2n < 2^257. On carry the true value is r + 2^256 ≡ r + DELTA;
    // r = a + b − 2^256 < 2n − 2^256 and DELTA = 2^256 − n, so r + DELTA < n
    // and the fold cannot carry again.
    let folded = if carry == 1 { add_256(&r, &DELTA).0 } else { r };
    cond_sub_n(folded)
}

/// `(a − b) mod n` for reduced inputs.
const fn sub_mod(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let (r, borrow) = sub_256(a, b);
    if borrow == 1 {
        add_256(&r, &N).0
    } else {
        r
    }
}

const fn compute_r2() -> [u64; 4] {
    let mut acc = R_MOD_N;
    let mut i = 0;
    while i < 256 {
        acc = add_mod(&acc, &acc);
        i += 1;
    }
    acc
}

/// Montgomery product `a·b·R⁻¹ mod n` by the CIOS method, fixed to 4
/// limbs: interleave one row of the schoolbook product with one reduction
/// step (`m = t0·n' mod 2^64`, add `m·n`, shift one limb).
const fn mont_mul(a: &[u64; 4], b: &[u64; 4]) -> [u64; 4] {
    let mut t = [0u64; 5];
    let mut i = 0;
    while i < 4 {
        // t += a[i] · b
        let mut carry = 0u64;
        let mut j = 0;
        while j < 4 {
            let cur = t[j] as u128 + a[i] as u128 * b[j] as u128 + carry as u128;
            t[j] = cur as u64;
            carry = (cur >> 64) as u64;
            j += 1;
        }
        let (t4, overflow) = adc(t[4], carry, 0);
        t[4] = t4;
        // m chosen so t + m·n ≡ 0 (mod 2^64); then shift right one limb.
        let m = t[0].wrapping_mul(N0_INV);
        let cur = t[0] as u128 + m as u128 * N[0] as u128;
        let mut carry = (cur >> 64) as u64;
        let mut j = 1;
        while j < 4 {
            let cur = t[j] as u128 + m as u128 * N[j] as u128 + carry as u128;
            t[j - 1] = cur as u64;
            carry = (cur >> 64) as u64;
            j += 1;
        }
        let (t3, c) = adc(t[4], carry, 0);
        t[3] = t3;
        // `overflow` from the product row and `c` here cannot both be set;
        // their sum is the next iteration's 5th limb.
        t[4] = overflow + c;
        i += 1;
    }
    // Result < 2n (standard CIOS bound for n < 2^256): if the 5th limb is
    // set the value is ≥ 2^256 ≥ n, fold it, then one conditional subtract.
    let r = [t[0], t[1], t[2], t[3]];
    let folded = if t[4] != 0 { add_256(&r, &DELTA).0 } else { r };
    cond_sub_n(folded)
}

/// A scalar modulo the secp256k1 group order, held in Montgomery form.
///
/// Always fully reduced; construct via [`Scalar::from_bytes_be`] (strict,
/// rejects `≥ n`) or [`Scalar::reduce_bytes_be`] (wrapping). `Copy`,
/// heap-free, and `BigUint`-free — the ECDSA hot path runs entirely on
/// this type.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scalar([u64; 4]);

impl Scalar {
    /// The additive identity.
    pub const ZERO: Scalar = Scalar([0, 0, 0, 0]);
    /// The multiplicative identity (`R mod n` internally).
    pub const ONE: Scalar = Scalar(R_MOD_N);

    /// A small scalar.
    pub fn from_u64(v: u64) -> Scalar {
        Scalar(mont_mul(&[v, 0, 0, 0], &R2_MOD_N))
    }

    /// A scalar from a 128-bit value (always `< n`).
    pub fn from_u128(v: u128) -> Scalar {
        Scalar(mont_mul(&[v as u64, (v >> 64) as u64, 0, 0], &R2_MOD_N))
    }

    /// A scalar from canonical (non-Montgomery) little-endian limbs that
    /// are already `< n`. Internal bridge for the GLV decomposition, which
    /// produces half-width limb values directly.
    pub(crate) const fn from_canonical_limbs(limbs: [u64; 4]) -> Scalar {
        assert!(!ge_n(&limbs));
        Scalar(mont_mul(&limbs, &R2_MOD_N))
    }

    /// Parse a 32-byte big-endian encoding. Returns `None` when the value
    /// is not reduced (`≥ n`) — the strict check ECDSA needs for `r`, `s`
    /// and private keys.
    pub fn from_bytes_be(bytes: &[u8; 32]) -> Option<Scalar> {
        let limbs = limbs_from_bytes(bytes);
        if ge_n(&limbs) {
            return None;
        }
        Some(Scalar(mont_mul(&limbs, &R2_MOD_N)))
    }

    /// Parse 32 big-endian bytes, reducing modulo `n`. Because
    /// `n > 2^255`, any 256-bit value is `< 2n` and a single conditional
    /// subtract fully reduces it — this is the digest-to-scalar step of
    /// ECDSA (`z = e mod n`) and of RFC 6979.
    pub fn reduce_bytes_be(bytes: &[u8; 32]) -> Scalar {
        let limbs = cond_sub_n(limbs_from_bytes(bytes));
        Scalar(mont_mul(&limbs, &R2_MOD_N))
    }

    /// The canonical (non-Montgomery) little-endian limbs. Used by the
    /// point-multiplication layers, which window over canonical bits.
    pub fn to_canonical_limbs(&self) -> [u64; 4] {
        mont_mul(&self.0, &[1, 0, 0, 0])
    }

    /// The canonical 32-byte big-endian encoding.
    pub fn to_bytes_be(&self) -> [u8; 32] {
        let limbs = self.to_canonical_limbs();
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&limbs[3 - i].to_be_bytes());
        }
        out
    }

    /// True iff this is zero.
    pub fn is_zero(&self) -> bool {
        self.0 == [0, 0, 0, 0]
    }

    /// True iff the canonical value exceeds `(n − 1)/2` — the "high-S"
    /// test behind Bitcoin-style low-S normalization.
    pub fn is_high(&self) -> bool {
        let limbs = self.to_canonical_limbs();
        gt(&limbs, &HALF_N)
    }

    /// Modular addition.
    #[must_use]
    pub fn add(&self, rhs: &Scalar) -> Scalar {
        Scalar(add_mod(&self.0, &rhs.0))
    }

    /// Modular subtraction.
    #[must_use]
    pub fn sub(&self, rhs: &Scalar) -> Scalar {
        Scalar(sub_mod(&self.0, &rhs.0))
    }

    /// Additive inverse (`n − self`; zero maps to zero).
    #[must_use]
    pub fn negate(&self) -> Scalar {
        Scalar(sub_mod(&[0, 0, 0, 0], &self.0))
    }

    /// Modular multiplication (one Montgomery product).
    #[must_use]
    pub fn mul(&self, rhs: &Scalar) -> Scalar {
        Scalar(mont_mul(&self.0, &rhs.0))
    }

    /// Modular squaring.
    #[must_use]
    pub fn sqr(&self) -> Scalar {
        Scalar(mont_mul(&self.0, &self.0))
    }

    /// Multiplicative inverse by Fermat's little theorem: `a^(n−2) mod n`
    /// with a 4-bit fixed window over the constant exponent (≈256
    /// squarings plus 78 multiplies). Zero maps to zero; ECDSA guards
    /// `s ≠ 0` and `k ≠ 0` before inverting.
    #[must_use]
    pub fn invert(&self) -> Scalar {
        // table[d] = a^d in Montgomery form, d = 0..15.
        let mut table = [R_MOD_N; 16];
        table[1] = self.0;
        let mut d = 2;
        while d < 16 {
            table[d] = mont_mul(&table[d - 1], &self.0);
            d += 1;
        }
        let (exp, _) = sub_256(&N, &[2, 0, 0, 0]);
        let mut acc = R_MOD_N; // 1 in Montgomery form
        let mut first = true;
        // Walk the 64 nibbles of n−2 from most significant down.
        for limb_idx in (0..4).rev() {
            for nib_idx in (0..16).rev() {
                if !first {
                    for _ in 0..4 {
                        acc = mont_mul(&acc, &acc);
                    }
                }
                let d = ((exp[limb_idx] >> (4 * nib_idx)) & 0xf) as usize;
                if d != 0 {
                    acc = mont_mul(&acc, &table[d]);
                    first = false;
                }
            }
        }
        Scalar(acc)
    }
}

/// Big-endian bytes → little-endian limbs (no reduction).
fn limbs_from_bytes(bytes: &[u8; 32]) -> [u64; 4] {
    let mut limbs = [0u64; 4];
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        limbs[3 - i] = u64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    limbs
}

/// True iff `a ≥ n`.
const fn ge_n(a: &[u64; 4]) -> bool {
    let (_, borrow) = sub_256(a, &N);
    borrow == 0
}

/// True iff `a > b` (little-endian limb compare).
fn gt(a: &[u64; 4], b: &[u64; 4]) -> bool {
    for i in (0..4).rev() {
        if a[i] != b[i] {
            return a[i] > b[i];
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bignum::BigUint;

    fn n() -> BigUint {
        BigUint::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
            .unwrap()
    }

    fn to_big(s: &Scalar) -> BigUint {
        BigUint::from_bytes_be(&s.to_bytes_be())
    }

    #[test]
    fn derived_constants_match_oracle() {
        let n = n();
        let r = BigUint::one().shl(256).rem(&n);
        assert_eq!(to_big(&Scalar::ONE), BigUint::one());
        assert_eq!(BigUint::from_bytes_be(&bytes_of(&R_MOD_N)), r);
        assert_eq!(
            BigUint::from_bytes_be(&bytes_of(&R2_MOD_N)),
            r.mul_mod(&r, &n)
        );
        assert_eq!(
            BigUint::from_bytes_be(&bytes_of(&HALF_N)),
            n.sub(&BigUint::one()).shr(1)
        );
        // n · (−n⁻¹) ≡ −1 (mod 2^64)
        assert_eq!(N[0].wrapping_mul(N0_INV), u64::MAX);
    }

    fn bytes_of(limbs: &[u64; 4]) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * i..8 * i + 8].copy_from_slice(&limbs[3 - i].to_be_bytes());
        }
        out
    }

    #[test]
    fn strict_parse_rejects_n_and_above() {
        let n = n();
        let nb: [u8; 32] = n.to_bytes_be_padded(32).unwrap().try_into().unwrap();
        assert!(Scalar::from_bytes_be(&nb).is_none());
        assert!(Scalar::from_bytes_be(&[0xff; 32]).is_none());
        let nm1: [u8; 32] = n
            .sub(&BigUint::one())
            .to_bytes_be_padded(32)
            .unwrap()
            .try_into()
            .unwrap();
        let s = Scalar::from_bytes_be(&nm1).unwrap();
        assert_eq!(s.to_bytes_be(), nm1);
        // n − 1 ≡ −1: squaring gives 1.
        assert_eq!(s.sqr(), Scalar::ONE);
    }

    #[test]
    fn reduce_wraps_mod_n() {
        let n = n();
        let nb: [u8; 32] = n.to_bytes_be_padded(32).unwrap().try_into().unwrap();
        assert!(Scalar::reduce_bytes_be(&nb).is_zero());
        let all_ff = [0xffu8; 32];
        let want = BigUint::from_bytes_be(&all_ff).rem(&n);
        assert_eq!(to_big(&Scalar::reduce_bytes_be(&all_ff)), want);
    }

    #[test]
    fn invert_round_trips() {
        for v in [1u64, 2, 3, 977, 0xdead_beef, u64::MAX] {
            let s = Scalar::from_u64(v);
            assert_eq!(s.mul(&s.invert()), Scalar::ONE, "v={v}");
            let oracle = BigUint::from_u64(v).mod_inverse(&n()).unwrap();
            assert_eq!(to_big(&s.invert()), oracle, "v={v}");
        }
        assert!(Scalar::ZERO.invert().is_zero());
    }

    #[test]
    fn is_high_at_the_boundary() {
        let half = n().sub(&BigUint::one()).shr(1);
        let at: [u8; 32] = half.to_bytes_be_padded(32).unwrap().try_into().unwrap();
        assert!(!Scalar::from_bytes_be(&at).unwrap().is_high());
        let above: [u8; 32] = half
            .add(&BigUint::one())
            .to_bytes_be_padded(32)
            .unwrap()
            .try_into()
            .unwrap();
        assert!(Scalar::from_bytes_be(&above).unwrap().is_high());
        assert!(!Scalar::ZERO.is_high());
    }
}
