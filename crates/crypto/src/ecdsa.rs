//! ECDSA over secp256k1 with RFC 6979 deterministic nonces.
//!
//! Every blockchain actor (gateway, recipient, miner wallet) holds an ECDSA
//! keypair; transactions are authorized by `OP_CHECKSIG` over these
//! signatures, as in Bitcoin/Multichain.

use crate::bignum::BigUint;
use crate::hmac::hmac_sha256;
use crate::secp256k1::{curve, double_scalar_mul, scalar_mul_base, AffinePoint, JacobianPoint};
use crate::sha256::sha256;
use rand::RngCore;
use std::fmt;

/// A secp256k1 private key (a scalar in `[1, n-1]`).
#[derive(Clone, PartialEq, Eq)]
pub struct EcdsaPrivateKey {
    d: BigUint,
}

/// A secp256k1 public key (a curve point).
#[derive(Clone, PartialEq, Eq)]
pub struct EcdsaPublicKey {
    point: AffinePoint,
}

/// An ECDSA signature `(r, s)`, serialized as 64 bytes `r || s`.
#[derive(Clone, PartialEq, Eq)]
pub struct Signature {
    r: BigUint,
    s: BigUint,
}

/// Errors from ECDSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcdsaError {
    /// Key bytes were out of range or malformed.
    InvalidKey,
    /// Signature bytes were malformed.
    InvalidSignature,
}

impl fmt::Display for EcdsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcdsaError::InvalidKey => write!(f, "invalid ecdsa key encoding"),
            EcdsaError::InvalidSignature => write!(f, "invalid ecdsa signature encoding"),
        }
    }
}

impl std::error::Error for EcdsaError {}

impl fmt::Debug for EcdsaPrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("EcdsaPrivateKey { .. }")
    }
}

impl fmt::Debug for EcdsaPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EcdsaPublicKey({})",
            crate::hex::encode(&self.to_bytes())
        )
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Signature(r={:x}…, s={:x}…)", self.r, self.s)
    }
}

impl EcdsaPrivateKey {
    /// Generates a random private key.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let n = &curve().n;
        loop {
            let d = BigUint::random_below(rng, n);
            if !d.is_zero() {
                return EcdsaPrivateKey { d };
            }
        }
    }

    /// Builds a key from 32 big-endian bytes.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidKey`] if out of `[1, n-1]` or not 32 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EcdsaError> {
        if bytes.len() != 32 {
            return Err(EcdsaError::InvalidKey);
        }
        let d = BigUint::from_bytes_be(bytes);
        if d.is_zero() || d >= curve().n {
            return Err(EcdsaError::InvalidKey);
        }
        Ok(EcdsaPrivateKey { d })
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.d
            .to_bytes_be_padded(32)
            .expect("d < n fits")
            .try_into()
            .expect("exactly 32")
    }

    /// Derives the public key `d·G`.
    pub fn public_key(&self) -> EcdsaPublicKey {
        EcdsaPublicKey {
            point: scalar_mul_base(&self.d),
        }
    }

    /// Signs `message` (hashed with SHA-256 internally) using an RFC 6979
    /// deterministic nonce. The low-S normalization matches Bitcoin.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let digest = sha256(message);
        self.sign_digest(&digest)
    }

    /// Signs a precomputed 32-byte digest.
    pub fn sign_digest(&self, digest: &[u8; 32]) -> Signature {
        let n = &curve().n;
        let z = BigUint::from_bytes_be(digest).rem(n);
        let mut extra: u32 = 0;
        loop {
            let k = rfc6979_nonce(&self.d, digest, extra);
            extra = extra.wrapping_add(1);
            if k.is_zero() || k >= *n {
                continue;
            }
            let point = scalar_mul_base(&k);
            let AffinePoint::Coords { x, .. } = point else {
                continue;
            };
            let r = x.rem(n);
            if r.is_zero() {
                continue;
            }
            let k_inv = k.mod_inverse(n).expect("k in [1,n-1]");
            // s = k⁻¹ (z + r·d) mod n
            let s = k_inv.mul_mod(&z.add_mod(&r.mul_mod(&self.d, n), n), n);
            if s.is_zero() {
                continue;
            }
            // Low-S normalization.
            let half_n = n.shr(1);
            let s = if s > half_n { n.sub(&s) } else { s };
            return Signature { r, s };
        }
    }
}

impl EcdsaPublicKey {
    /// SEC1 compressed bytes (33).
    pub fn to_bytes(&self) -> [u8; 33] {
        self.point.to_compressed()
    }

    /// Parses SEC1 compressed bytes.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidKey`] if not a valid curve point.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EcdsaError> {
        AffinePoint::from_compressed(bytes)
            .map(|point| EcdsaPublicKey { point })
            .ok_or(EcdsaError::InvalidKey)
    }

    /// Verifies a signature over `message` (SHA-256 applied internally).
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        self.verify_digest(&sha256(message), sig)
    }

    /// Verifies a signature over a precomputed digest.
    pub fn verify_digest(&self, digest: &[u8; 32], sig: &Signature) -> bool {
        let n = &curve().n;
        if sig.r.is_zero() || sig.r >= *n || sig.s.is_zero() || sig.s >= *n {
            return false;
        }
        let z = BigUint::from_bytes_be(digest).rem(n);
        let Some(s_inv) = sig.s.mod_inverse(n) else {
            return false;
        };
        let u1 = z.mul_mod(&s_inv, n);
        let u2 = sig.r.mul_mod(&s_inv, n);
        // Shamir's trick: one shared doubling chain for u1·G + u2·Q, and a
        // single field inversion at the end instead of one per summand.
        let point = double_scalar_mul(
            &u1,
            &JacobianPoint::from_affine(&curve().g),
            &u2,
            &JacobianPoint::from_affine(&self.point),
        )
        .to_affine();
        match point {
            AffinePoint::Infinity => false,
            AffinePoint::Coords { x, .. } => x.rem(n) == sig.r,
        }
    }
}

impl Signature {
    /// Serializes as 64 bytes `r || s` (compact form).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_bytes_be_padded(32).expect("r < n"));
        out[32..].copy_from_slice(&self.s.to_bytes_be_padded(32).expect("s < n"));
        out
    }

    /// Parses the 64-byte compact form.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidSignature`] on bad length or out-of-range values.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EcdsaError> {
        if bytes.len() != 64 {
            return Err(EcdsaError::InvalidSignature);
        }
        let r = BigUint::from_bytes_be(&bytes[..32]);
        let s = BigUint::from_bytes_be(&bytes[32..]);
        let n = &curve().n;
        if r.is_zero() || r >= *n || s.is_zero() || s >= *n {
            return Err(EcdsaError::InvalidSignature);
        }
        Ok(Signature { r, s })
    }
}

/// RFC 6979 §3.2 nonce derivation (HMAC-SHA256), with an extra counter so
/// the rare rejected candidates advance deterministically.
fn rfc6979_nonce(d: &BigUint, digest: &[u8; 32], extra: u32) -> BigUint {
    let n = &curve().n;
    let x = d.to_bytes_be_padded(32).expect("d < n");
    let h1 = BigUint::from_bytes_be(digest).rem(n);
    let h1_bytes = h1.to_bytes_be_padded(32).expect("reduced digest");

    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];

    // K = HMAC_K(V || 0x00 || x || h1 [|| extra])
    let mut msg = Vec::with_capacity(32 + 1 + 32 + 32 + 4);
    msg.extend_from_slice(&v);
    msg.push(0x00);
    msg.extend_from_slice(&x);
    msg.extend_from_slice(&h1_bytes);
    if extra > 0 {
        msg.extend_from_slice(&extra.to_be_bytes());
    }
    k = hmac_sha256(&k, &msg);
    v = hmac_sha256(&k, &v);

    // K = HMAC_K(V || 0x01 || x || h1 [|| extra])
    let mut msg = Vec::with_capacity(32 + 1 + 32 + 32 + 4);
    msg.extend_from_slice(&v);
    msg.push(0x01);
    msg.extend_from_slice(&x);
    msg.extend_from_slice(&h1_bytes);
    if extra > 0 {
        msg.extend_from_slice(&extra.to_be_bytes());
    }
    k = hmac_sha256(&k, &msg);
    v = hmac_sha256(&k, &v);

    loop {
        v = hmac_sha256(&k, &v);
        let candidate = BigUint::from_bytes_be(&v);
        if !candidate.is_zero() && candidate < *n {
            return candidate;
        }
        let mut msg = v.to_vec();
        msg.push(0x00);
        k = hmac_sha256(&k, &msg);
        v = hmac_sha256(&k, &v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2018)
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        let public = private.public_key();
        let msg = b"pay 10 units to gateway";
        let sig = private.sign(msg);
        assert!(public.verify(msg, &sig));
        assert!(!public.verify(b"pay 1000 units to gateway", &sig));
    }

    #[test]
    fn deterministic_signatures() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        let sig1 = private.sign(b"same message");
        let sig2 = private.sign(b"same message");
        assert_eq!(
            sig1.to_bytes(),
            sig2.to_bytes(),
            "RFC 6979 is deterministic"
        );
    }

    #[test]
    fn rfc6979_test_vector() {
        // RFC 6979 A.2.5-style vector for secp256k1 (community standard):
        // key = 1, message "Satoshi Nakamoto".
        let private = EcdsaPrivateKey::from_bytes(
            &crate::hex::decode("0000000000000000000000000000000000000000000000000000000000000001")
                .unwrap(),
        )
        .unwrap();
        let sig = private.sign(b"Satoshi Nakamoto");
        let bytes = sig.to_bytes();
        assert_eq!(
            crate::hex::encode(&bytes[..32]),
            "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8"
        );
        assert_eq!(
            crate::hex::encode(&bytes[32..]),
            "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5"
        );
    }

    #[test]
    fn wrong_public_key_rejects() {
        let mut r = rng();
        let alice = EcdsaPrivateKey::generate(&mut r);
        let eve = EcdsaPrivateKey::generate(&mut r);
        let sig = alice.sign(b"message");
        assert!(!eve.public_key().verify(b"message", &sig));
    }

    #[test]
    fn signature_serialization_round_trip() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        let sig = private.sign(b"serialize me");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(sig, parsed);
        assert!(Signature::from_bytes(&[0u8; 64]).is_err()); // r = s = 0
        assert!(Signature::from_bytes(&[1u8; 63]).is_err()); // bad length
    }

    #[test]
    fn key_serialization_round_trip() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        let restored = EcdsaPrivateKey::from_bytes(&private.to_bytes()).unwrap();
        assert_eq!(private, restored);
        let public = private.public_key();
        let restored_pub = EcdsaPublicKey::from_bytes(&public.to_bytes()).unwrap();
        assert_eq!(public, restored_pub);
    }

    #[test]
    fn invalid_keys_rejected() {
        assert!(EcdsaPrivateKey::from_bytes(&[0u8; 32]).is_err()); // zero
        assert!(EcdsaPrivateKey::from_bytes(&[0xffu8; 32]).is_err()); // >= n
        assert!(EcdsaPrivateKey::from_bytes(&[1u8; 31]).is_err()); // short
        assert!(EcdsaPublicKey::from_bytes(&[0u8; 33]).is_err());
    }

    #[test]
    fn low_s_normalization() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        let half_n = curve().n.shr(1);
        for i in 0..8u8 {
            let sig = private.sign(&[i]);
            assert!(sig.s <= half_n, "signature must be low-S");
        }
    }

    #[test]
    fn debug_hides_private_scalar() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        assert_eq!(format!("{private:?}"), "EcdsaPrivateKey { .. }");
    }
}
