//! ECDSA over secp256k1 with RFC 6979 deterministic nonces.
//!
//! Every blockchain actor (gateway, recipient, miner wallet) holds an ECDSA
//! keypair; transactions are authorized by `OP_CHECKSIG` over these
//! signatures, as in Bitcoin/Multichain.
//!
//! The entire module runs on fixed-limb arithmetic: scalars mod `n` are
//! Montgomery [`Scalar`]s and points use [`crate::field::FieldElement`]
//! coordinates — no `BigUint` anywhere on this path. Verification takes
//! the GLV fast path ([`crate::msm::glv_mul`]) and skips the final field
//! inversion by comparing `x(R')` against `r` projectively.
//!
//! [`batch_verify`] amortizes further across many signatures: sub-batches
//! share one Strauss multi-scalar multiplication and one scalar batch
//! inversion, with a deterministic blinded linear combination guarding
//! against cross-signature cancellation. Any doubt — a mismatch, a
//! non-canonical `R` lift, a degenerate input — falls back to per-signature
//! [`EcdsaPublicKey::verify_digest`], so the batch path is semantically
//! identical to the sequential one (same accept/reject per signature, and
//! the first failing index is reported exactly).

use crate::field::FieldElement;
use crate::hmac::hmac_sha256;
use crate::msm::{
    glv_mul, glv_terms, normalize_batch, odd_multiples, small_mul, strauss_affine, AffineTerm,
    HALF_TABLE_LEN,
};
use crate::scalar::{Scalar, N};
use crate::secp256k1::{scalar_mul_base, scalar_mul_base_jacobian, AffinePoint, JacobianPoint};
use crate::sha256::{sha256, Sha256};
use rand::RngCore;
use std::fmt;

/// A secp256k1 private key (a scalar in `[1, n-1]`).
#[derive(Clone, PartialEq, Eq)]
pub struct EcdsaPrivateKey {
    d: Scalar,
}

/// A secp256k1 public key (a curve point).
#[derive(Clone, PartialEq, Eq)]
pub struct EcdsaPublicKey {
    point: AffinePoint,
}

/// An ECDSA signature `(r, s)`, serialized as 64 bytes `r || s`.
///
/// Invariant: both components are in `[1, n−1]` — enforced at signing and
/// by [`Signature::from_bytes`].
#[derive(Clone, PartialEq, Eq)]
pub struct Signature {
    r: Scalar,
    s: Scalar,
}

/// Errors from ECDSA operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EcdsaError {
    /// Key bytes were out of range or malformed.
    InvalidKey,
    /// Signature bytes were malformed.
    InvalidSignature,
}

impl fmt::Display for EcdsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcdsaError::InvalidKey => write!(f, "invalid ecdsa key encoding"),
            EcdsaError::InvalidSignature => write!(f, "invalid ecdsa signature encoding"),
        }
    }
}

impl std::error::Error for EcdsaError {}

impl fmt::Debug for EcdsaPrivateKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("EcdsaPrivateKey { .. }")
    }
}

impl fmt::Debug for EcdsaPublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "EcdsaPublicKey({})",
            crate::hex::encode(&self.to_bytes())
        )
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.to_bytes();
        write!(
            f,
            "Signature(r={}…, s={}…)",
            crate::hex::encode(&b[..4]),
            crate::hex::encode(&b[32..36])
        )
    }
}

impl EcdsaPrivateKey {
    /// Generates a random private key.
    ///
    /// Draws 32-byte candidates and rejects values outside `[1, n−1]` —
    /// byte-for-byte the same RNG consumption as the previous
    /// `BigUint::random_below` implementation, so seeded simulations keep
    /// their key material.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        loop {
            let mut bytes = [0u8; 32];
            rng.fill_bytes(&mut bytes);
            match Scalar::from_bytes_be(&bytes) {
                Some(d) if !d.is_zero() => return EcdsaPrivateKey { d },
                _ => continue,
            }
        }
    }

    /// Builds a key from 32 big-endian bytes.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidKey`] if out of `[1, n-1]` or not 32 bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EcdsaError> {
        let arr: [u8; 32] = bytes.try_into().map_err(|_| EcdsaError::InvalidKey)?;
        match Scalar::from_bytes_be(&arr) {
            Some(d) if !d.is_zero() => Ok(EcdsaPrivateKey { d }),
            _ => Err(EcdsaError::InvalidKey),
        }
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.d.to_bytes_be()
    }

    /// Derives the public key `d·G`.
    pub fn public_key(&self) -> EcdsaPublicKey {
        EcdsaPublicKey {
            point: scalar_mul_base(&self.d),
        }
    }

    /// Signs `message` (hashed with SHA-256 internally) using an RFC 6979
    /// deterministic nonce. The low-S normalization matches Bitcoin.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let digest = sha256(message);
        self.sign_digest(&digest)
    }

    /// Signs a precomputed 32-byte digest.
    pub fn sign_digest(&self, digest: &[u8; 32]) -> Signature {
        let z = Scalar::reduce_bytes_be(digest);
        let mut extra: u32 = 0;
        loop {
            let k = rfc6979_nonce(&self.d, digest, extra);
            extra = extra.wrapping_add(1);
            let AffinePoint::Coords { x, .. } = scalar_mul_base(&k) else {
                continue;
            };
            // r = x mod n (any 256-bit value is < 2n, one conditional
            // subtract).
            let r = Scalar::reduce_bytes_be(&x.to_bytes_be());
            if r.is_zero() {
                continue;
            }
            // s = k⁻¹ (z + r·d) mod n
            let s = k.invert().mul(&z.add(&r.mul(&self.d)));
            if s.is_zero() {
                continue;
            }
            // Low-S normalization.
            let s = if s.is_high() { s.negate() } else { s };
            return Signature { r, s };
        }
    }
}

impl EcdsaPublicKey {
    /// SEC1 compressed bytes (33).
    pub fn to_bytes(&self) -> [u8; 33] {
        self.point.to_compressed()
    }

    /// Parses SEC1 compressed bytes.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidKey`] if not a valid curve point.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EcdsaError> {
        AffinePoint::from_compressed(bytes)
            .map(|point| EcdsaPublicKey { point })
            .ok_or(EcdsaError::InvalidKey)
    }

    /// Verifies a signature over `message` (SHA-256 applied internally).
    pub fn verify(&self, message: &[u8], sig: &Signature) -> bool {
        self.verify_digest(&sha256(message), sig)
    }

    /// Verifies a signature over a precomputed digest.
    ///
    /// `u1·G` walks the const-baked base-point table (mixed additions
    /// only); `u2·Q` takes the GLV half-width path; and the final check
    /// compares `x(R')` with `r` projectively, saving the affine
    /// normalization inversion.
    pub fn verify_digest(&self, digest: &[u8; 32], sig: &Signature) -> bool {
        if sig.r.is_zero() || sig.s.is_zero() {
            return false;
        }
        let z = Scalar::reduce_bytes_be(digest);
        let s_inv = sig.s.invert();
        let u1 = z.mul(&s_inv);
        let u2 = sig.r.mul(&s_inv);
        let acc = scalar_mul_base_jacobian(&u1)
            .add(&glv_mul(&u2, &JacobianPoint::from_affine(&self.point)));
        x_equals_r(&acc, &sig.r)
    }
}

impl Signature {
    /// Serializes as 64 bytes `r || s` (compact form).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_bytes_be());
        out[32..].copy_from_slice(&self.s.to_bytes_be());
        out
    }

    /// Parses the 64-byte compact form.
    ///
    /// # Errors
    ///
    /// [`EcdsaError::InvalidSignature`] on bad length or out-of-range values.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, EcdsaError> {
        if bytes.len() != 64 {
            return Err(EcdsaError::InvalidSignature);
        }
        let rb: [u8; 32] = bytes[..32].try_into().expect("32 bytes");
        let sb: [u8; 32] = bytes[32..].try_into().expect("32 bytes");
        match (Scalar::from_bytes_be(&rb), Scalar::from_bytes_be(&sb)) {
            (Some(r), Some(s)) if !r.is_zero() && !s.is_zero() => Ok(Signature { r, s }),
            _ => Err(EcdsaError::InvalidSignature),
        }
    }
}

/// `n` as a base-field element (`n < p`, so the limbs carry over).
const N_AS_FE: FieldElement = FieldElement::from_raw_limbs(N);

/// Canonical limbs of `p − n` (≈ 1.58·2^128): `x = r + n` is a valid
/// second x-candidate only when `r` is below this.
const P_MINUS_N: [u64; 4] = [0x402D_A172_2FC9_BAEE, 0x4551_2319_50B7_5FC4, 1, 0];

/// Does the Jacobian point's affine x-coordinate reduce to `r` mod `n`?
///
/// Checked projectively: `x(A) = X/Z²`, so `x(A) = c` iff `X = c·Z²`.
/// Candidates are `c = r` and — in the astronomically rare case
/// `r < p − n` *and* the true x overflowed `n` — `c = r + n`.
fn x_equals_r(a: &JacobianPoint, r: &Scalar) -> bool {
    if a.is_infinity() {
        return false;
    }
    let r_fe = FieldElement::from_bytes_be(&r.to_bytes_be()).expect("r < n < p");
    let z2 = a.z.sqr();
    if a.x == r_fe.mul(&z2) {
        return true;
    }
    let rl = r.to_canonical_limbs();
    let mut below = false;
    for i in (0..4).rev() {
        if rl[i] != P_MINUS_N[i] {
            below = rl[i] < P_MINUS_N[i];
            break;
        }
    }
    below && a.x == r_fe.add(&N_AS_FE).mul(&z2)
}

/// Sub-batch width for [`batch_verify`]: the ε-sign search below is
/// exponential in this, and 8 balances shared-work amortization against
/// the worst-case 2⁷ candidate patterns.
const SUB_BATCH: usize = 8;

/// Chunks smaller than this verify individually — the fixed batch
/// overhead (R lifts, base-point fold, table normalization) only pays for
/// itself from a few signatures up.
const MIN_BATCH: usize = 4;

/// Bits per deterministic blinder. Soundness: a batch that is not
/// signature-wise valid survives the blinded equation with probability
/// ~2^−32 per transcript; the blinders are bound to the full batch
/// content (Fiat–Shamir over SHA-256), so an adversary must grind ~2^32
/// *distinct* batches — recomputing the transcript hash each time — to
/// fish for a single false accept, and a false accept admits one invalid
/// spend rather than forging a key. 32 bits keeps the per-item `wᵢ·Rᵢ`
/// ladder (the one per-signature cost that cannot share the Strauss
/// doubling chain) to 32 doublings; 48-bit blinders were measured to
/// spend ~30% more time there for soundness this chain does not need.
const BLIND_BITS: u32 = 32;

/// Verifies a batch of `(digest, signature, public key)` triples.
///
/// Returns `Ok(())` when every signature verifies, or `Err(i)` with the
/// index of the **first** triple whose individual
/// [`EcdsaPublicKey::verify_digest`] fails — the same accept/reject and
/// error-selection semantics as a sequential loop, which the chain's
/// deterministic validation relies on.
///
/// Internally the items are processed in fixed sub-batches of
/// `SUB_BATCH` (8). Each sub-batch checks one blinded equation
/// `Σ wᵢ·(uᵢG + vᵢQᵢ) = Σ wᵢεᵢRᵢ` via a shared Strauss MSM (GLV-split
/// coefficients, pubkey-coalesced tables, one batched field inversion and
/// one batched scalar inversion), where `Rᵢ` is the even-y lift of `rᵢ`
/// and the sign pattern `ε` is searched Gray-code-incrementally (ECDSA
/// does not transmit `R`'s parity). Any failure or degenerate case falls
/// back to per-signature verification of that sub-batch.
pub fn batch_verify(items: &[(&[u8; 32], &Signature, &EcdsaPublicKey)]) -> Result<(), usize> {
    for (chunk_idx, chunk) in items.chunks(SUB_BATCH).enumerate() {
        let ok = chunk.len() >= MIN_BATCH && sub_batch_holds(chunk);
        if !ok {
            let base = chunk_idx * SUB_BATCH;
            for (i, (digest, sig, pk)) in chunk.iter().enumerate() {
                if !pk.verify_digest(digest, sig) {
                    return Err(base + i);
                }
            }
        }
    }
    Ok(())
}

/// Deterministic per-item blinders: `w₀ = 1`, the rest are the low
/// [`BLIND_BITS`] of `SHA-256(seed ‖ i)` where `seed` hashes the whole
/// sub-batch transcript (domain-separated). Zero is remapped to 1 so no
/// item ever drops out of the equation.
fn blinders(chunk: &[(&[u8; 32], &Signature, &EcdsaPublicKey)]) -> Vec<u64> {
    let mut h = Sha256::new();
    h.update(b"bcwan/batch-verify/v1");
    for (digest, sig, pk) in chunk {
        h.update(*digest);
        h.update(&sig.to_bytes());
        h.update(&pk.to_bytes());
    }
    let seed = h.finalize();
    let mask = (1u64 << BLIND_BITS) - 1;
    let mut ws = Vec::with_capacity(chunk.len());
    ws.push(1u64);
    for i in 1..chunk.len() {
        let mut hi = Sha256::new();
        hi.update(&seed);
        hi.update(&(i as u32).to_be_bytes());
        let b = hi.finalize();
        let w = u64::from_be_bytes(b[..8].try_into().expect("8 bytes")) & mask;
        ws.push(if w == 0 { 1 } else { w });
    }
    ws
}

/// Batched modular inversion (Montgomery's trick): one [`Scalar::invert`]
/// plus 3 multiplications per element. All inputs must be non-zero (the
/// `Signature` invariant guarantees it for `s`).
fn batch_invert(vals: &[Scalar]) -> Vec<Scalar> {
    let mut prefix = Vec::with_capacity(vals.len());
    let mut acc = Scalar::ONE;
    for v in vals {
        prefix.push(acc);
        acc = acc.mul(v);
    }
    let mut inv = acc.invert();
    let mut out = vec![Scalar::ZERO; vals.len()];
    for i in (0..vals.len()).rev() {
        out[i] = prefix[i].mul(&inv);
        inv = inv.mul(&vals[i]);
    }
    out
}

/// Checks the blinded batch equation for one sub-batch. `false` means
/// "could not confirm" (invalid signature, unusual encoding, or any
/// degenerate intermediate) — the caller falls back to per-item verifies.
fn sub_batch_holds(chunk: &[(&[u8; 32], &Signature, &EcdsaPublicKey)]) -> bool {
    let t = chunk.len();
    let ws = blinders(chunk);

    // Scalar phase: uᵢ = zᵢ/sᵢ, vᵢ = rᵢ/sᵢ; fold e = Σ wᵢuᵢ and coalesce
    // Q-coefficients bᵢ = wᵢvᵢ by public key (blocks from the same wallet
    // share Q, collapsing the point-side work).
    let s_invs = batch_invert(&chunk.iter().map(|(_, sig, _)| sig.s).collect::<Vec<_>>());
    let mut e = Scalar::ZERO;
    let mut unique_q: Vec<(&AffinePoint, Scalar)> = Vec::with_capacity(t);
    for (i, (digest, sig, pk)) in chunk.iter().enumerate() {
        if sig.r.is_zero() || sig.s.is_zero() {
            return false;
        }
        let w = Scalar::from_u64(ws[i]);
        let u = Scalar::reduce_bytes_be(digest).mul(&s_invs[i]);
        let v = sig.r.mul(&s_invs[i]);
        e = e.add(&w.mul(&u));
        let b = w.mul(&v);
        match unique_q.iter_mut().find(|(q, _)| **q == pk.point) {
            Some((_, coeff)) => *coeff = coeff.add(&b),
            None => unique_q.push((&pk.point, b)),
        }
    }

    // Point phase: lift each Rᵢ (even y) and form the per-item blinded
    // products Pᵢ = wᵢ·Rᵢ; these cannot share a doubling chain, but their
    // doubles Dᵢ (the Gray-search increments) are normalized together with
    // all Q tables below in a single field inversion.
    let mut p_pts = Vec::with_capacity(t);
    for (i, (_, sig, _)) in chunk.iter().enumerate() {
        let r_fe = FieldElement::from_bytes_be(&sig.r.to_bytes_be()).expect("r < n < p");
        let Some(r_point) = AffinePoint::lift_x_even_y(r_fe) else {
            // x(R) not on the curve, or the true x was r + n: the per-item
            // fallback settles it.
            return false;
        };
        let p_i = small_mul(ws[i], &JacobianPoint::from_affine(&r_point));
        if p_i.is_infinity() {
            return false;
        }
        p_pts.push(p_i);
    }

    // One shared normalization: every unique-Q odd-multiple table plus all
    // Dᵢ = 2Pᵢ, then A = Σ bQ·Q (Strauss over GLV halves) + e·G.
    let mut to_norm: Vec<JacobianPoint> = Vec::with_capacity(unique_q.len() * HALF_TABLE_LEN + t);
    for (q, _) in &unique_q {
        to_norm.extend(odd_multiples(
            &JacobianPoint::from_affine(q),
            HALF_TABLE_LEN,
        ));
    }
    for p in &p_pts {
        to_norm.push(p.double());
    }
    let Some(normalized) = normalize_batch(&to_norm) else {
        return false;
    };
    let (q_tables, d_pts) = normalized.split_at(unique_q.len() * HALF_TABLE_LEN);
    let mut terms: Vec<AffineTerm> = Vec::with_capacity(unique_q.len() * 2);
    for (qi, (_, coeff)) in unique_q.iter().enumerate() {
        glv_terms(
            coeff,
            &q_tables[qi * HALF_TABLE_LEN..(qi + 1) * HALF_TABLE_LEN],
            &mut terms,
        );
    }
    let a = strauss_affine(&terms).add(&scalar_mul_base_jacobian(&e));

    // Sign search: S(ε) = Σ εᵢPᵢ must hit ±A for some pattern ε with
    // ε₀ = +1 (the global sign is absorbed by comparing x only: if
    // x(S) = x(A) then A = ±S, and −S corresponds to the complementary
    // pattern). Gray-code enumeration flips one εᵢ per candidate — a
    // single mixed addition of ∓Dᵢ.
    let mut s_acc = JacobianPoint::infinity();
    for p in &p_pts {
        s_acc = s_acc.add(p);
    }
    let x_matches = |s: &JacobianPoint| -> bool {
        if s.is_infinity() || a.is_infinity() {
            return s.is_infinity() && a.is_infinity();
        }
        s.x.mul(&a.z.sqr()) == a.x.mul(&s.z.sqr())
    };
    if x_matches(&s_acc) {
        return true;
    }
    let mut eps = [1i8; SUB_BATCH];
    for g in 1u32..(1u32 << (t - 1)) {
        // Reflected Gray code: candidate g flips item (trailing zeros + 1);
        // item 0 stays +1.
        let i = g.trailing_zeros() as usize + 1;
        let (dx, dy) = &d_pts[i];
        s_acc = if eps[i] == 1 {
            s_acc.add_mixed(dx, &dy.negate())
        } else {
            s_acc.add_mixed(dx, dy)
        };
        eps[i] = -eps[i];
        if x_matches(&s_acc) {
            return true;
        }
    }
    false
}

/// RFC 6979 §3.2 nonce derivation (HMAC-SHA256), with an extra counter so
/// the rare rejected candidates advance deterministically. Always returns
/// a value in `[1, n−1]`.
fn rfc6979_nonce(d: &Scalar, digest: &[u8; 32], extra: u32) -> Scalar {
    let x = d.to_bytes_be();
    let h1_bytes = Scalar::reduce_bytes_be(digest).to_bytes_be();

    let mut v = [0x01u8; 32];
    let mut k = [0x00u8; 32];

    // K = HMAC_K(V || 0x00 || x || h1 [|| extra])
    let mut msg = Vec::with_capacity(32 + 1 + 32 + 32 + 4);
    msg.extend_from_slice(&v);
    msg.push(0x00);
    msg.extend_from_slice(&x);
    msg.extend_from_slice(&h1_bytes);
    if extra > 0 {
        msg.extend_from_slice(&extra.to_be_bytes());
    }
    k = hmac_sha256(&k, &msg);
    v = hmac_sha256(&k, &v);

    // K = HMAC_K(V || 0x01 || x || h1 [|| extra])
    let mut msg = Vec::with_capacity(32 + 1 + 32 + 32 + 4);
    msg.extend_from_slice(&v);
    msg.push(0x01);
    msg.extend_from_slice(&x);
    msg.extend_from_slice(&h1_bytes);
    if extra > 0 {
        msg.extend_from_slice(&extra.to_be_bytes());
    }
    k = hmac_sha256(&k, &msg);
    v = hmac_sha256(&k, &v);

    loop {
        v = hmac_sha256(&k, &v);
        // Same acceptance as the generic candidate < n check: strict parse
        // plus non-zero.
        if let Some(candidate) = Scalar::from_bytes_be(&v) {
            if !candidate.is_zero() {
                return candidate;
            }
        }
        let mut msg = v.to_vec();
        msg.push(0x00);
        k = hmac_sha256(&k, &msg);
        v = hmac_sha256(&k, &v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bignum::BigUint;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2018)
    }

    #[test]
    fn sign_verify_round_trip() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        let public = private.public_key();
        let msg = b"pay 10 units to gateway";
        let sig = private.sign(msg);
        assert!(public.verify(msg, &sig));
        assert!(!public.verify(b"pay 1000 units to gateway", &sig));
    }

    #[test]
    fn deterministic_signatures() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        let sig1 = private.sign(b"same message");
        let sig2 = private.sign(b"same message");
        assert_eq!(
            sig1.to_bytes(),
            sig2.to_bytes(),
            "RFC 6979 is deterministic"
        );
    }

    #[test]
    fn rfc6979_test_vector() {
        // RFC 6979 A.2.5-style vector for secp256k1 (community standard):
        // key = 1, message "Satoshi Nakamoto".
        let private = EcdsaPrivateKey::from_bytes(
            &crate::hex::decode("0000000000000000000000000000000000000000000000000000000000000001")
                .unwrap(),
        )
        .unwrap();
        let sig = private.sign(b"Satoshi Nakamoto");
        let bytes = sig.to_bytes();
        assert_eq!(
            crate::hex::encode(&bytes[..32]),
            "934b1ea10a4b3c1757e2b0c017d0b6143ce3c9a7e6a4a49860d7a6ab210ee3d8"
        );
        assert_eq!(
            crate::hex::encode(&bytes[32..]),
            "2442ce9d2b916064108014783e923ec36b49743e2ffa1c4496f01a512aafd9e5"
        );
    }

    #[test]
    fn wrong_public_key_rejects() {
        let mut r = rng();
        let alice = EcdsaPrivateKey::generate(&mut r);
        let eve = EcdsaPrivateKey::generate(&mut r);
        let sig = alice.sign(b"message");
        assert!(!eve.public_key().verify(b"message", &sig));
    }

    #[test]
    fn signature_serialization_round_trip() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        let sig = private.sign(b"serialize me");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(sig, parsed);
        assert!(Signature::from_bytes(&[0u8; 64]).is_err()); // r = s = 0
        assert!(Signature::from_bytes(&[1u8; 63]).is_err()); // bad length
        assert!(Signature::from_bytes(&[0xffu8; 64]).is_err()); // r, s >= n
    }

    #[test]
    fn key_serialization_round_trip() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        let restored = EcdsaPrivateKey::from_bytes(&private.to_bytes()).unwrap();
        assert_eq!(private, restored);
        let public = private.public_key();
        let restored_pub = EcdsaPublicKey::from_bytes(&public.to_bytes()).unwrap();
        assert_eq!(public, restored_pub);
    }

    #[test]
    fn invalid_keys_rejected() {
        assert!(EcdsaPrivateKey::from_bytes(&[0u8; 32]).is_err()); // zero
        assert!(EcdsaPrivateKey::from_bytes(&[0xffu8; 32]).is_err()); // >= n
        assert!(EcdsaPrivateKey::from_bytes(&[1u8; 31]).is_err()); // short
        assert!(EcdsaPublicKey::from_bytes(&[0u8; 33]).is_err());
    }

    #[test]
    fn low_s_normalization() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        for i in 0..8u8 {
            let sig = private.sign(&[i]);
            assert!(!sig.s.is_high(), "signature must be low-S");
        }
    }

    #[test]
    fn key_generation_preserves_rng_stream() {
        // The Scalar-based rejection sampler must consume the RNG exactly
        // like BigUint::random_below did, so every seeded wallet in the
        // simulator keeps its key. Pin against the oracle reimplementation.
        let n =
            BigUint::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
                .unwrap();
        for seed in [0u64, 1, 2018, 0xdead] {
            let mut r1 = StdRng::seed_from_u64(seed);
            let got = EcdsaPrivateKey::generate(&mut r1);
            let mut r2 = StdRng::seed_from_u64(seed);
            let want = loop {
                let d = BigUint::random_below(&mut r2, &n);
                if !d.is_zero() {
                    break d;
                }
            };
            assert_eq!(BigUint::from_bytes_be(&got.to_bytes()), want, "seed {seed}");
        }
    }

    #[test]
    fn p_minus_n_constant_matches_oracle() {
        let p =
            BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
                .unwrap();
        let n =
            BigUint::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141")
                .unwrap();
        let diff = p.sub(&n);
        let bytes = diff.to_bytes_be_padded(32).unwrap();
        let mut limbs = [0u64; 4];
        for (i, chunk) in bytes.chunks_exact(8).enumerate() {
            limbs[3 - i] = u64::from_be_bytes(chunk.try_into().unwrap());
        }
        assert_eq!(limbs, P_MINUS_N);
    }

    #[test]
    fn batch_accepts_valid_signatures() {
        let mut r = rng();
        let keys: Vec<EcdsaPrivateKey> =
            (0..3).map(|_| EcdsaPrivateKey::generate(&mut r)).collect();
        let pubs: Vec<EcdsaPublicKey> = keys.iter().map(|k| k.public_key()).collect();
        let mut digests = Vec::new();
        let mut sigs = Vec::new();
        for i in 0..20usize {
            let digest = sha256(&i.to_le_bytes());
            sigs.push(keys[i % 3].sign_digest(&digest));
            digests.push(digest);
        }
        let items: Vec<(&[u8; 32], &Signature, &EcdsaPublicKey)> = (0..20)
            .map(|i| (&digests[i], &sigs[i], &pubs[i % 3]))
            .collect();
        assert_eq!(batch_verify(&items), Ok(()));
    }

    #[test]
    fn batch_names_first_bad_index() {
        let mut r = rng();
        let key = EcdsaPrivateKey::generate(&mut r);
        let public = key.public_key();
        let mut digests = Vec::new();
        let mut sigs = Vec::new();
        for i in 0..12usize {
            let digest = sha256(&i.to_le_bytes());
            sigs.push(key.sign_digest(&digest));
            digests.push(digest);
        }
        // Corrupt index 5 (valid encoding, wrong digest) and index 9.
        sigs[5] = key.sign_digest(&sha256(b"other"));
        sigs[9] = key.sign_digest(&sha256(b"another"));
        let items: Vec<(&[u8; 32], &Signature, &EcdsaPublicKey)> =
            (0..12).map(|i| (&digests[i], &sigs[i], &public)).collect();
        assert_eq!(batch_verify(&items), Err(5));
    }

    #[test]
    fn batch_empty_and_tiny() {
        assert_eq!(batch_verify(&[]), Ok(()));
        let mut r = rng();
        let key = EcdsaPrivateKey::generate(&mut r);
        let public = key.public_key();
        let digest = sha256(b"solo");
        let sig = key.sign_digest(&digest);
        assert_eq!(batch_verify(&[(&digest, &sig, &public)]), Ok(()));
        let bad = key.sign_digest(&sha256(b"not solo"));
        assert_eq!(batch_verify(&[(&digest, &bad, &public)]), Err(0));
    }

    #[test]
    fn debug_hides_private_scalar() {
        let mut r = rng();
        let private = EcdsaPrivateKey::generate(&mut r);
        assert_eq!(format!("{private:?}"), "EcdsaPrivateKey { .. }");
    }
}
