//! Randomized equivalence tests for the validation fast path.
//!
//! The Montgomery modexp and the windowed / Shamir scalar multiplication
//! are pure speedups: for every input they must produce bit-identical
//! results to the schoolbook routines they replaced. These tests pin that
//! equivalence over seeded random inputs plus the edge cases that tend to
//! break fixed-window ladders (zero, one, exponent zero, scalars at and
//! past the group order).

use bcwan_crypto::secp256k1::{double_scalar_mul, scalar_mul_base, JacobianPoint, GENERATOR};
use bcwan_crypto::{BigUint, MontgomeryCtx, Scalar};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn random_biguint(rng: &mut StdRng, bits: usize) -> BigUint {
    let bytes = bits.div_ceil(8);
    let mut buf = vec![0u8; bytes];
    rng.fill_bytes(&mut buf);
    // Mask the top byte so the value has at most `bits` bits.
    let extra = bytes * 8 - bits;
    if extra > 0 {
        buf[0] &= 0xff >> extra;
    }
    BigUint::from_bytes_be(&buf)
}

fn random_odd_modulus(rng: &mut StdRng, bits: usize) -> BigUint {
    let mut m = random_biguint(rng, bits);
    if m.is_zero() || m == BigUint::one() {
        m = BigUint::from_u64(3);
    }
    if m.bit(0) {
        m
    } else {
        m.add(&BigUint::one())
    }
}

#[test]
fn montgomery_mul_mod_matches_schoolbook() {
    let mut rng = StdRng::seed_from_u64(0xb1ff);
    for round in 0..200 {
        let bits = 64 + (round % 8) * 64; // 64..512 bit moduli
        let m = random_odd_modulus(&mut rng, bits);
        let ctx = MontgomeryCtx::new(&m).expect("odd modulus > 1");
        // Operands deliberately allowed to exceed the modulus.
        let a = random_biguint(&mut rng, bits + 32);
        let b = random_biguint(&mut rng, bits + 32);
        assert_eq!(
            ctx.mul_mod(&a, &b),
            a.mul_mod(&b, &m),
            "round {round}: mul_mod diverged for {bits}-bit modulus"
        );
    }
}

#[test]
fn montgomery_mod_pow_matches_schoolbook() {
    let mut rng = StdRng::seed_from_u64(0xf00d);
    for round in 0..60 {
        let bits = 64 + (round % 8) * 64;
        let m = random_odd_modulus(&mut rng, bits);
        let base = random_biguint(&mut rng, bits + 16);
        let exp = random_biguint(&mut rng, 1 + round % 192);
        assert_eq!(
            base.mod_pow(&exp, &m),
            base.mod_pow_schoolbook(&exp, &m),
            "round {round}: mod_pow diverged for {bits}-bit modulus"
        );
    }
}

#[test]
fn montgomery_mod_pow_edge_cases() {
    let m = BigUint::from_u64(0xffff_ffff_ffff_ffc5); // odd 64-bit value
    let cases = [
        (BigUint::zero(), BigUint::from_u64(17)),
        (BigUint::one(), BigUint::from_u64(12345)),
        (BigUint::from_u64(2), BigUint::zero()), // x^0 == 1
        (BigUint::zero(), BigUint::zero()),      // 0^0 == 1 by convention
        (m.clone(), BigUint::from_u64(3)),       // base ≡ 0 mod m
    ];
    for (base, exp) in &cases {
        assert_eq!(base.mod_pow(exp, &m), base.mod_pow_schoolbook(exp, &m));
    }
    // Smallest supported modulus.
    let three = BigUint::from_u64(3);
    for b in 0..6u64 {
        let base = BigUint::from_u64(b);
        let exp = BigUint::from_u64(b + 1);
        assert_eq!(
            base.mod_pow(&exp, &three),
            base.mod_pow_schoolbook(&exp, &three)
        );
    }
    // Even moduli must still work (schoolbook fallback path).
    let even = BigUint::from_u64(1 << 20);
    let base = BigUint::from_u64(0xdead_beef);
    let exp = BigUint::from_u64(77);
    assert_eq!(
        base.mod_pow(&exp, &even),
        base.mod_pow_schoolbook(&exp, &even)
    );
    assert!(MontgomeryCtx::new(&even).is_none());
}

/// Reference scalar multiplication: plain MSB-first double-and-add over
/// the canonical bits, independent of the windowed base table, the GLV
/// path, and Shamir's trick.
fn scalar_mul_reference(k: &Scalar, p: &JacobianPoint) -> JacobianPoint {
    let limbs = k.to_canonical_limbs();
    let mut acc = JacobianPoint::infinity();
    for i in (0..256).rev() {
        acc = acc.double();
        if (limbs[i / 64] >> (i % 64)) & 1 == 1 {
            acc = acc.add(p);
        }
    }
    acc
}

/// A scalar with roughly `bits` random bits (reduced mod `n`).
fn random_scalar(rng: &mut StdRng, bits: usize) -> Scalar {
    let mut buf = [0u8; 32];
    let bytes = bits.div_ceil(8);
    rng.fill_bytes(&mut buf[32 - bytes..]);
    let extra = bytes * 8 - bits;
    if extra > 0 {
        buf[32 - bytes] &= 0xff >> extra;
    }
    Scalar::reduce_bytes_be(&buf)
}

#[test]
fn windowed_base_mul_matches_double_and_add() {
    let g = JacobianPoint::from_affine(&GENERATOR);
    let mut rng = StdRng::seed_from_u64(0xecc);

    let n_minus_1 = Scalar::ZERO.sub(&Scalar::ONE);
    let mut cases: Vec<Scalar> = vec![
        Scalar::ZERO,
        Scalar::ONE,
        Scalar::from_u64(2),
        Scalar::from_u64(15),
        Scalar::from_u64(16),
        n_minus_1,
        n_minus_1.sub(&Scalar::from_u64(16)),
    ];
    for bits in [1, 4, 5, 63, 64, 65, 128, 255, 256] {
        cases.push(random_scalar(&mut rng, bits));
    }
    for k in &cases {
        let fast = scalar_mul_base(k);
        let slow = scalar_mul_reference(k, &g).to_affine();
        assert_eq!(fast, slow, "scalar_mul_base diverged for k={k:?}");
    }
}

#[test]
fn shamir_double_mul_matches_separate_muls() {
    let g = JacobianPoint::from_affine(&GENERATOR);
    let mut rng = StdRng::seed_from_u64(0x54a3);

    for round in 0..24 {
        // A random second point: q = d·G for random d.
        let d = random_scalar(&mut rng, 256);
        let q = g.scalar_mul(&d);
        let k1 = match round % 4 {
            0 => Scalar::ZERO,
            1 => random_scalar(&mut rng, 1 + (round % 25) * 10),
            _ => random_scalar(&mut rng, 256),
        };
        let k2 = match round % 3 {
            0 => Scalar::ZERO,
            _ => random_scalar(&mut rng, 256),
        };
        let fast = double_scalar_mul(&k1, &g, &k2, &q).to_affine();
        let slow = scalar_mul_reference(&k1, &g)
            .add(&scalar_mul_reference(&k2, &q))
            .to_affine();
        assert_eq!(fast, slow, "round {round}: double_scalar_mul diverged");
    }
}

#[test]
fn glv_mul_matches_reference_across_widths() {
    let g = JacobianPoint::from_affine(&GENERATOR);
    let mut rng = StdRng::seed_from_u64(0x61f);
    for round in 0..16 {
        let d = random_scalar(&mut rng, 256);
        let q = g.scalar_mul(&d);
        let k = random_scalar(&mut rng, 1 + (round * 16) % 256);
        let fast = bcwan_crypto::msm::glv_mul(&k, &q).to_affine();
        let slow = scalar_mul_reference(&k, &q).to_affine();
        assert_eq!(fast, slow, "round {round}: glv_mul diverged");
    }
}
