//! Randomized equivalence tests for the Montgomery `Scalar` type and for
//! batch signature verification.
//!
//! `Scalar` replaced `BigUint` arithmetic mod `n` on the ECDSA hot path;
//! like the field layer it is a pure speedup, so every operation must be
//! bit-identical to the generic big-integer oracle — including at the
//! awkward spots: values adjacent to `n`, to `n/2` (the low-S boundary)
//! and around limb carries. Batch verification likewise must agree with
//! the per-signature verdicts on every input, and name the first bad
//! index when it rejects.

use bcwan_crypto::ecdsa::{batch_verify, EcdsaPrivateKey, EcdsaPublicKey, Signature};
use bcwan_crypto::sha256::sha256;
use bcwan_crypto::{BigUint, Scalar};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

fn n() -> BigUint {
    BigUint::from_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141").unwrap()
}

fn to_big(s: &Scalar) -> BigUint {
    BigUint::from_bytes_be(&s.to_bytes_be())
}

fn from_big(v: &BigUint) -> Scalar {
    let bytes: [u8; 32] = v
        .to_bytes_be_padded(32)
        .expect("256-bit value")
        .try_into()
        .expect("32 bytes");
    Scalar::reduce_bytes_be(&bytes)
}

/// Random 256-bit values, biased toward the interesting boundaries: near
/// `n`, near `n/2`, near powers of two (limb carries), tiny, and huge.
fn interesting_values(rng: &mut StdRng, rounds: usize) -> Vec<BigUint> {
    let n = n();
    let half = n.shr(1);
    let mut out = vec![
        BigUint::zero(),
        BigUint::one(),
        n.sub(&BigUint::one()),
        n.clone(),
        n.add(&BigUint::one()),
        half.clone(),
        half.add(&BigUint::one()),
    ];
    // Limb boundaries: 2^64k ± small.
    for k in 1..4usize {
        let pow = BigUint::one().shl(64 * k);
        out.push(pow.sub(&BigUint::one()));
        out.push(pow.clone());
        out.push(pow.add(&BigUint::one()));
    }
    for _ in 0..rounds {
        let mut buf = [0u8; 32];
        rng.fill_bytes(&mut buf);
        let v = BigUint::from_bytes_be(&buf);
        // Half the time, squeeze the value into a ±4 window around n.
        if rng.gen_bool(0.5) {
            let delta = BigUint::from_u64(rng.gen_range(0..8));
            let near = if rng.gen_bool(0.5) {
                n.add(&delta)
            } else {
                n.sub(&delta)
            };
            out.push(near);
        }
        out.push(v);
    }
    out
}

#[test]
fn add_sub_mul_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0x5ca1a);
    let n = n();
    let values = interesting_values(&mut rng, 60);
    for (i, a_big) in values.iter().enumerate() {
        let b_big = &values[(i * 7 + 3) % values.len()];
        let a_red = a_big.rem(&n);
        let b_red = b_big.rem(&n);
        let a = from_big(a_big);
        let b = from_big(b_big);
        assert_eq!(to_big(&a), a_red, "reduce diverged for case {i}");
        assert_eq!(to_big(&a.add(&b)), a_red.add_mod(&b_red, &n), "add {i}");
        assert_eq!(to_big(&a.sub(&b)), a_red.sub_mod(&b_red, &n), "sub {i}");
        assert_eq!(to_big(&a.mul(&b)), a_red.mul_mod(&b_red, &n), "mul {i}");
        assert_eq!(to_big(&a.sqr()), a_red.mul_mod(&a_red, &n), "sqr {i}");
        assert_eq!(
            to_big(&a.negate()),
            BigUint::zero().sub_mod(&a_red, &n),
            "negate {i}"
        );
    }
}

#[test]
fn invert_matches_oracle() {
    let mut rng = StdRng::seed_from_u64(0x1d1d);
    let n = n();
    for (i, v) in interesting_values(&mut rng, 30).iter().enumerate() {
        let red = v.rem(&n);
        let s = from_big(v);
        if red.is_zero() {
            assert!(s.invert().is_zero(), "0⁻¹ convention, case {i}");
            continue;
        }
        let oracle = red.mod_inverse(&n).expect("n prime, value non-zero");
        assert_eq!(to_big(&s.invert()), oracle, "invert {i}");
        assert_eq!(s.mul(&s.invert()), Scalar::ONE, "invert round-trip {i}");
    }
}

#[test]
fn strict_parse_and_is_high_match_oracle() {
    let mut rng = StdRng::seed_from_u64(0xb0b);
    let n = n();
    let half = n.sub(&BigUint::one()).shr(1);
    for (i, v) in interesting_values(&mut rng, 40).iter().enumerate() {
        let bytes: [u8; 32] = match v.to_bytes_be_padded(32) {
            Some(b) => b.try_into().unwrap(),
            None => continue, // > 256 bits cannot occur here
        };
        let parsed = Scalar::from_bytes_be(&bytes);
        assert_eq!(parsed.is_some(), *v < n, "strict parse {i}");
        if let Some(s) = parsed {
            assert_eq!(s.is_high(), *v > half, "is_high {i} ({v:?})");
            assert_eq!(s.to_bytes_be(), bytes, "round trip {i}");
        }
    }
}

/// Builds `count` valid `(digest, signature, pubkey)` triples from a few
/// wallets (repeated keys exercise the batch path's pubkey coalescing).
fn valid_batch(
    rng: &mut StdRng,
    count: usize,
    wallets: usize,
) -> (Vec<[u8; 32]>, Vec<Signature>, Vec<EcdsaPublicKey>) {
    let keys: Vec<EcdsaPrivateKey> = (0..wallets)
        .map(|_| EcdsaPrivateKey::generate(rng))
        .collect();
    let mut digests = Vec::with_capacity(count);
    let mut sigs = Vec::with_capacity(count);
    let mut pubs = Vec::with_capacity(count);
    for i in 0..count {
        let mut msg = [0u8; 16];
        rng.fill_bytes(&mut msg);
        let digest = sha256(&msg);
        let key = &keys[i % wallets];
        sigs.push(key.sign_digest(&digest));
        pubs.push(key.public_key());
        digests.push(digest);
    }
    (digests, sigs, pubs)
}

#[test]
fn batch_agrees_with_sequential_verdicts() {
    let mut rng = StdRng::seed_from_u64(0xba7c);
    for round in 0..12 {
        let count = 1 + (round * 5) % 23; // 1..23, crosses sub-batch sizes
        let wallets = 1 + round % 4;
        let (digests, mut sigs, pubs) = valid_batch(&mut rng, count, wallets);

        // Corrupt 0–3 signatures: replace with a signature over a different
        // digest (valid encoding, invalid for its slot).
        let corruptions = round % 4;
        let mut corrupted = Vec::new();
        for c in 0..corruptions {
            let idx = rng.gen_range(0..count);
            if !corrupted.contains(&idx) {
                let other = EcdsaPrivateKey::generate(&mut rng);
                sigs[idx] = other.sign_digest(&sha256(&[c as u8, 0xfe]));
                corrupted.push(idx);
            }
        }
        corrupted.sort_unstable();

        let items: Vec<(&[u8; 32], &Signature, &EcdsaPublicKey)> = (0..count)
            .map(|i| (&digests[i], &sigs[i], &pubs[i]))
            .collect();

        // The reference verdict: sequential per-signature verification.
        let first_bad = items.iter().position(|(d, s, p)| !p.verify_digest(d, s));

        let got = batch_verify(&items);
        match first_bad {
            None => assert_eq!(got, Ok(()), "round {round}: all valid"),
            Some(i) => assert_eq!(
                got,
                Err(i),
                "round {round}: first bad index (corrupted {corrupted:?})"
            ),
        }
    }
}

#[test]
fn batch_rejects_swapped_digests() {
    // Two valid signatures with their digests exchanged: each signature is
    // individually valid for the *other* slot, so naive (unblinded)
    // cancellation is the classic attack shape. The first slot must fail.
    let mut rng = StdRng::seed_from_u64(0x5a5a);
    let (digests, mut sigs, pubs) = valid_batch(&mut rng, 8, 1);
    sigs.swap(2, 3);
    let items: Vec<(&[u8; 32], &Signature, &EcdsaPublicKey)> =
        (0..8).map(|i| (&digests[i], &sigs[i], &pubs[i])).collect();
    assert_eq!(batch_verify(&items), Err(2));
}
