//! Property-based tests for the cryptographic primitives.

// QUARANTINED (see ROADMAP "Open items"): the proptest crate cannot be
// fetched in the offline build environment, so this suite only compiles
// with `--features proptest-tests` after restoring the proptest
// dev-dependency in Cargo.toml. The properties themselves are still the
// reference spec for this crate's invariants.
#![cfg(feature = "proptest-tests")]

use bcwan_crypto::aes::{cbc_decrypt, cbc_encrypt};
use bcwan_crypto::bignum::BigUint;
use bcwan_crypto::ecdsa::EcdsaPrivateKey;
use bcwan_crypto::hex;
use bcwan_crypto::secp256k1::{scalar_mul_base, JacobianPoint, GENERATOR};
use bcwan_crypto::Scalar;
use proptest::prelude::*;

fn arb_biguint(max_bytes: usize) -> impl Strategy<Value = BigUint> {
    proptest::collection::vec(any::<u8>(), 0..=max_bytes)
        .prop_map(|bytes| BigUint::from_bytes_be(&bytes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bignum_bytes_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        let v = BigUint::from_bytes_be(&bytes);
        let round = BigUint::from_bytes_be(&v.to_bytes_be());
        prop_assert_eq!(v, round);
    }

    #[test]
    fn bignum_hex_round_trip(a in arb_biguint(48)) {
        prop_assert_eq!(BigUint::from_hex(&a.to_hex()).unwrap(), a);
    }

    #[test]
    fn bignum_add_commutes(a in arb_biguint(40), b in arb_biguint(40)) {
        prop_assert_eq!(a.add(&b), b.add(&a));
    }

    #[test]
    fn bignum_add_sub_inverse(a in arb_biguint(40), b in arb_biguint(40)) {
        prop_assert_eq!(a.add(&b).sub(&b), a);
    }

    #[test]
    fn bignum_mul_commutes(a in arb_biguint(32), b in arb_biguint(32)) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
    }

    #[test]
    fn bignum_mul_distributes(a in arb_biguint(24), b in arb_biguint(24), c in arb_biguint(24)) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn bignum_div_rem_identity(a in arb_biguint(64), b in arb_biguint(32)) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert!(r < b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
    }

    #[test]
    fn bignum_shift_round_trip(a in arb_biguint(32), n in 0usize..200) {
        prop_assert_eq!(a.shl(n).shr(n), a);
    }

    #[test]
    fn bignum_mod_pow_matches_naive(base in 0u64..1000, exp in 0u64..24, m in 2u64..10_000) {
        let naive = (0..exp).fold(1u128, |acc, _| acc * u128::from(base) % u128::from(m)) as u64;
        let got = BigUint::from_u64(base)
            .mod_pow(&BigUint::from_u64(exp), &BigUint::from_u64(m));
        prop_assert_eq!(got, BigUint::from_u64(naive));
    }

    #[test]
    fn bignum_mod_inverse_is_inverse(a in arb_biguint(24), m in arb_biguint(24)) {
        prop_assume!(m > BigUint::one());
        if let Some(inv) = a.mod_inverse(&m) {
            prop_assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
            prop_assert!(inv < m);
        }
    }

    #[test]
    fn sha256_is_deterministic_and_injective_in_practice(
        a in proptest::collection::vec(any::<u8>(), 0..128),
        b in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        let ha = bcwan_crypto::sha256(&a);
        prop_assert_eq!(ha, bcwan_crypto::sha256(&a));
        if a != b {
            prop_assert_ne!(ha, bcwan_crypto::sha256(&b));
        }
    }

    #[test]
    fn cbc_round_trip(
        key in proptest::array::uniform32(any::<u8>()),
        iv in proptest::array::uniform16(any::<u8>()),
        plaintext in proptest::collection::vec(any::<u8>(), 0..200),
    ) {
        let ct = cbc_encrypt(&key, &iv, &plaintext);
        prop_assert_eq!(ct.len() % 16, 0);
        prop_assert!(ct.len() > plaintext.len());
        prop_assert_eq!(cbc_decrypt(&key, &iv, &ct).unwrap(), plaintext);
    }

    #[test]
    fn hex_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(hex::decode(&hex::encode(&bytes)).unwrap(), bytes);
    }

    #[test]
    fn ecdsa_sign_verify(seed in any::<[u8; 32]>(), msg in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Reject out-of-range seeds instead of looping.
        if let Ok(private) = EcdsaPrivateKey::from_bytes(&seed) {
            let public = private.public_key();
            let sig = private.sign(&msg);
            prop_assert!(public.verify(&msg, &sig));
            let mut tampered = msg.clone();
            tampered.push(0x55);
            prop_assert!(!public.verify(&tampered, &sig));
        }
    }

    #[test]
    fn ec_group_associativity(a in 1u64..u64::MAX, b in 1u64..u64::MAX) {
        let pa = JacobianPoint::from_affine(&scalar_mul_base(&Scalar::from_u64(a)));
        let pb = JacobianPoint::from_affine(&scalar_mul_base(&Scalar::from_u64(b)));
        let g = JacobianPoint::from_affine(&GENERATOR);
        let left = pa.add(&pb).add(&g).to_affine();
        let right = pa.add(&pb.add(&g)).to_affine();
        prop_assert_eq!(left, right);
    }
}

proptest! {
    // RSA keygen is expensive; use a handful of cases with shared key reuse.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn rsa_encrypt_decrypt_round_trip(
        seed in any::<u64>(),
        msg in proptest::collection::vec(any::<u8>(), 0..53),
    ) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (public, private) =
            bcwan_crypto::generate_keypair(&mut rng, bcwan_crypto::RsaKeySize::Rsa512);
        let ct = public.encrypt(&mut rng, &msg).unwrap();
        prop_assert_eq!(private.decrypt(&ct).unwrap(), msg.clone());
        let sig = private.sign(&msg);
        prop_assert!(public.verify(&msg, &sig));
        prop_assert!(public.matches_private(&private));
    }
}
