//! Randomized equivalence tests for the fixed-limb secp256k1 field.
//!
//! [`FieldElement`] is a pure speedup over the generic `BigUint` modular
//! arithmetic it replaced inside point operations: for every input, every
//! operation must produce bit-identical results to the schoolbook oracle.
//! These tests drive add/sub/mul/sqr/invert/sqrt over seeded random
//! elements plus the edge cases that break carry-fold reductions — 0, 1,
//! `p−1`, values just below `p`, and limb-boundary patterns like
//! `2^64 − 1` / `2^192` — mirroring the `fastpath_fuzz.rs` pattern used
//! for the Montgomery layer. A fixed-vector test pins known secp256k1
//! points (G, 2G, 3G) through the new arithmetic end to end.

use bcwan_crypto::field::FieldElement;
use bcwan_crypto::secp256k1::{scalar_mul_base, AffinePoint};
use bcwan_crypto::{BigUint, Scalar};
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

fn p() -> BigUint {
    BigUint::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f").unwrap()
}

fn random_element(rng: &mut StdRng) -> BigUint {
    let mut buf = [0u8; 32];
    rng.fill_bytes(&mut buf);
    // Reduce into the field; the explicit edge list covers values near p.
    BigUint::from_bytes_be(&buf).add_mod(&BigUint::zero(), &p())
}

/// Edge values that stress the reduction: identities, the top of the
/// field, and every limb boundary (the carry fold crosses 64-bit lanes).
fn edge_elements() -> Vec<BigUint> {
    let p = p();
    let mut edges = vec![
        BigUint::zero(),
        BigUint::one(),
        BigUint::from_u64(2),
        p.sub(&BigUint::one()),           // p − 1
        p.sub(&BigUint::from_u64(2)),     // p − 2
        p.sub(&BigUint::from_u64(0x3d1)), // p − 977: folds to ±2^32 territory
        BigUint::from_u64(u64::MAX),      // limb 0 saturated
        BigUint::from_u64(0x1_0000_03D1), // the fold constant itself
    ];
    for limb in 1..4usize {
        edges.push(BigUint::one().shl(64 * limb)); // 2^64, 2^128, 2^192
        edges.push(BigUint::one().shl(64 * limb).sub(&BigUint::one()));
    }
    edges
}

fn fe(v: &BigUint) -> FieldElement {
    FieldElement::from_biguint(v).expect("value < p")
}

/// Pairs to fuzz: random ⨯ random, plus every edge against randoms and
/// every edge against every edge.
fn operand_pairs(rng: &mut StdRng, rounds: usize) -> Vec<(BigUint, BigUint)> {
    let mut pairs = Vec::new();
    for _ in 0..rounds {
        pairs.push((random_element(rng), random_element(rng)));
    }
    let edges = edge_elements();
    for a in &edges {
        pairs.push((a.clone(), random_element(rng)));
        for b in &edges {
            pairs.push((a.clone(), b.clone()));
        }
    }
    pairs
}

#[test]
fn add_sub_mul_match_oracle() {
    let p = p();
    let mut rng = StdRng::seed_from_u64(0xf1e1d);
    for (i, (a, b)) in operand_pairs(&mut rng, 300).into_iter().enumerate() {
        let (fa, fb) = (fe(&a), fe(&b));
        assert_eq!(
            fa.add(&fb).to_biguint(),
            a.add_mod(&b, &p),
            "case {i}: add diverged for a={} b={}",
            a.to_hex(),
            b.to_hex()
        );
        assert_eq!(
            fa.sub(&fb).to_biguint(),
            a.sub_mod(&b, &p),
            "case {i}: sub diverged for a={} b={}",
            a.to_hex(),
            b.to_hex()
        );
        assert_eq!(
            fa.mul(&fb).to_biguint(),
            a.mul_mod(&b, &p),
            "case {i}: mul diverged for a={} b={}",
            a.to_hex(),
            b.to_hex()
        );
    }
}

#[test]
fn sqr_double_negate_match_oracle() {
    let p = p();
    let mut rng = StdRng::seed_from_u64(0x5c0a);
    let mut cases = edge_elements();
    for _ in 0..300 {
        cases.push(random_element(&mut rng));
    }
    for a in cases {
        let fa = fe(&a);
        assert_eq!(
            fa.sqr().to_biguint(),
            a.mul_mod(&a, &p),
            "sqr diverged for {}",
            a.to_hex()
        );
        assert_eq!(
            fa.double().to_biguint(),
            a.add_mod(&a, &p),
            "double diverged for {}",
            a.to_hex()
        );
        assert_eq!(
            fa.negate().to_biguint(),
            BigUint::zero().sub_mod(&a, &p),
            "negate diverged for {}",
            a.to_hex()
        );
    }
}

#[test]
fn invert_matches_oracle() {
    let p = p();
    let mut rng = StdRng::seed_from_u64(0x1af);
    let mut cases = edge_elements();
    for _ in 0..60 {
        cases.push(random_element(&mut rng));
    }
    for a in cases {
        let fa = fe(&a);
        let inv = fa.invert();
        match a.mod_inverse(&p) {
            Some(oracle) => {
                assert_eq!(
                    inv.to_biguint(),
                    oracle,
                    "invert diverged for {}",
                    a.to_hex()
                );
                assert_eq!(fa.mul(&inv), FieldElement::ONE);
            }
            // Only zero is non-invertible mod a prime; the chain maps it to
            // zero and callers guard it.
            None => {
                assert!(a.is_zero());
                assert!(inv.is_zero());
            }
        }
    }
}

#[test]
fn sqrt_matches_oracle() {
    let p = p();
    // (p + 1) / 4 — the oracle exponent.
    let exp = p.add(&BigUint::one()).shr(2);
    let mut rng = StdRng::seed_from_u64(0x5a11);
    let mut cases = edge_elements();
    for _ in 0..60 {
        cases.push(random_element(&mut rng));
    }
    for a in cases {
        let candidate = a.mod_pow(&exp, &p);
        let is_qr = candidate.mul_mod(&candidate, &p) == a;
        match fe(&a).sqrt() {
            Some(r) => {
                assert!(
                    is_qr,
                    "sqrt returned a root for a non-residue {}",
                    a.to_hex()
                );
                assert_eq!(
                    r.to_biguint(),
                    candidate,
                    "sqrt diverged for {}",
                    a.to_hex()
                );
                assert_eq!(r.sqr(), fe(&a));
            }
            None => assert!(!is_qr, "sqrt missed a residue {}", a.to_hex()),
        }
    }
}

#[test]
fn mixed_expression_matches_oracle() {
    // A composite expression exercising carry interactions between ops:
    // r = (a·b + a² − b)⁻¹ · a, checked against the oracle step by step.
    let p = p();
    let mut rng = StdRng::seed_from_u64(0xc0ffee);
    for round in 0..80 {
        let a = random_element(&mut rng);
        let b = random_element(&mut rng);
        let (fa, fb) = (fe(&a), fe(&b));
        let t = fa.mul(&fb).add(&fa.sqr()).sub(&fb);
        let t_oracle = a
            .mul_mod(&b, &p)
            .add_mod(&a.mul_mod(&a, &p), &p)
            .sub_mod(&b, &p);
        assert_eq!(
            t.to_biguint(),
            t_oracle,
            "round {round}: expression diverged"
        );
        if let Some(inv_oracle) = t_oracle.mod_inverse(&p) {
            assert_eq!(
                t.invert().mul(&fa).to_biguint(),
                inv_oracle.mul_mod(&a, &p),
                "round {round}: inverse expression diverged"
            );
        }
    }
}

#[test]
fn byte_round_trip_rejects_unreduced() {
    // p itself and p + k must be rejected by the strict parser.
    let p = p();
    for k in [0u64, 1, 977] {
        let v = p.add(&BigUint::from_u64(k));
        if let Some(bytes) = v.to_bytes_be_padded(32) {
            let arr: [u8; 32] = bytes.as_slice().try_into().unwrap();
            assert!(
                FieldElement::from_bytes_be(&arr).is_none(),
                "accepted unreduced value p+{k}"
            );
        }
    }
    // Canonical values round-trip bit-identically.
    let mut rng = StdRng::seed_from_u64(0xbe5);
    for _ in 0..50 {
        let a = random_element(&mut rng);
        let fa = fe(&a);
        assert_eq!(FieldElement::from_bytes_be(&fa.to_bytes_be()), Some(fa));
    }
}

#[test]
fn branchless_cond_sub_matches_branchy_reference() {
    use bcwan_crypto::field_core::{cond_sub_p, sbb, P};

    // The obvious branchy normalization the constant-time mask-select
    // version replaced. Valid for any input < 2p.
    fn branchy(r: [u64; 4]) -> [u64; 4] {
        let (d0, borrow) = sbb(r[0], P[0], 0);
        let (d1, borrow) = sbb(r[1], P[1], borrow);
        let (d2, borrow) = sbb(r[2], P[2], borrow);
        let (d3, borrow) = sbb(r[3], P[3], borrow);
        if borrow == 0 {
            [d0, d1, d2, d3]
        } else {
            r
        }
    }

    // Limb patterns straddling every decision boundary: p − 1 (keep), p
    // (subtract to zero), p + k (subtract), values that differ from p only
    // in one limb, and saturated limbs that force borrows to ripple the
    // whole width.
    let mut cases: Vec<[u64; 4]> = vec![
        [0, 0, 0, 0],
        [1, 0, 0, 0],
        P,
        [P[0] - 1, P[1], P[2], P[3]], // p − 1: borrow decided by limb 0
        [P[0] + 1, P[1], P[2], P[3]], // p + 1
        [P[0], P[1] - 1, P[2], P[3]], // below p via limb 1
        [P[0], P[1], P[2], P[3] - 1], // below p via the top limb
        [u64::MAX; 4],                // 2^256 − 1 ≈ p + 2^32 + 976
        [0, u64::MAX, u64::MAX, u64::MAX],
        [u64::MAX, 0, u64::MAX, u64::MAX],
        [u64::MAX, u64::MAX, 0, u64::MAX],
    ];
    let mut rng = StdRng::seed_from_u64(0xcd5);
    for _ in 0..500 {
        let mut limbs = [0u64; 4];
        for l in &mut limbs {
            let mut b = [0u8; 8];
            rng.fill_bytes(&mut b);
            *l = u64::from_le_bytes(b);
        }
        cases.push(limbs);
        // Bias toward the boundary: same value with the top limbs pinned
        // to p's (all-ones), so only the low limbs decide.
        cases.push([limbs[0], limbs[1], P[2], P[3]]);
        cases.push([limbs[0], P[1], P[2], P[3]]);
    }
    for r in cases {
        assert_eq!(
            cond_sub_p(r),
            branchy(r),
            "cond_sub_p diverged for limbs {r:x?}"
        );
    }
}

#[test]
fn fixed_vectors_pin_known_points() {
    // Standard secp256k1 small multiples, as published in the curve's
    // reference test vectors. These pin the whole pipeline — const-baked
    // table, mixed addition, field inversion at normalization.
    let vectors = [
        (
            1u64,
            "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798",
            "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8",
        ),
        (
            2,
            "c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5",
            "1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a",
        ),
        (
            3,
            "f9308a019258c31049344f85f89d5229b531c845836f99b08601f113bce036f9",
            "388f7b0f632de8140fe337e62a37f3566500a99934c2231b6cb9fd7584b8e672",
        ),
    ];
    for (k, want_x, want_y) in vectors {
        match scalar_mul_base(&Scalar::from_u64(k)) {
            AffinePoint::Coords { x, y } => {
                assert_eq!(
                    bcwan_crypto::hex::encode(&x.to_bytes_be()),
                    want_x,
                    "{k}G x"
                );
                assert_eq!(
                    bcwan_crypto::hex::encode(&y.to_bytes_be()),
                    want_y,
                    "{k}G y"
                );
            }
            AffinePoint::Infinity => panic!("{k}G must be finite"),
        }
    }
}
