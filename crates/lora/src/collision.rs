//! ALOHA-style collision model for the shared radio channel, keyed by
//! `(channel, spreading factor)`.
//!
//! LoRaWAN uplinks are unslotted ALOHA: two frames overlapping in time on
//! the same channel **and** the same spreading factor destroy each other
//! (ignoring capture). Different spreading factors are quasi-orthogonal —
//! an SF7 frame and an SF12 frame on the same channel demodulate
//! independently — so the offered load that matters for any one frame is
//! the load on *its* `(channel, SF)` key, not the aggregate over the
//! band. The §5.2 workload — 150 sensors pushing towards their duty limit
//! through 5 gateways — makes channel contention a real effect the
//! paper's small testbed glosses over; this module supplies the standard
//! analytic model, a per-key offered-load table, and a sampling helper
//! for the simulator.

use crate::airtime::time_on_air;
use crate::params::{RadioConfig, SpreadingFactor};
use bcwan_sim::SimRng;

/// The collision domain of one frame: uplink channel index plus
/// spreading factor. Frames collide only with frames sharing their key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LoadKey {
    /// Uplink channel index (EU868 mandates 3, gateways commonly run 8).
    pub channel: u8,
    /// Spreading factor (quasi-orthogonal between factors).
    pub sf: SpreadingFactor,
}

impl LoadKey {
    /// Builds a key.
    pub fn new(channel: u8, sf: SpreadingFactor) -> Self {
        LoadKey { channel, sf }
    }
}

/// Normalized offered load `G` per collision-domain key.
///
/// `G` for a key is the mean number of frame-airtimes' worth of traffic
/// offered per airtime on that `(channel, SF)`. The table is built by
/// accumulating each frame's contribution (`airtime / window`) in frame
/// order, which keeps the floating-point sum identical between the
/// scalar and columnar simulation paths.
///
/// Backed by a small sorted vector rather than a map: the sharded
/// simulator clears and refills one table per tick, and a vector's
/// capacity survives [`clear`](OfferedLoads::clear), so the steady-state
/// tick loop allocates nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OfferedLoads {
    /// `(key, G)` pairs, sorted by key.
    loads: Vec<(LoadKey, f64)>,
}

impl OfferedLoads {
    /// An empty (zero-load) table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `g` frame-airtimes of offered load to `key`.
    pub fn add(&mut self, key: LoadKey, g: f64) {
        assert!(g >= 0.0, "negative load contribution");
        match self.loads.binary_search_by_key(&key, |&(k, _)| k) {
            Ok(i) => self.loads[i].1 += g,
            Err(i) => self.loads.insert(i, (key, g)),
        }
    }

    /// Convenience: the §5.2-style population load — `senders` nodes each
    /// sending `rate_per_s` frames of `frame_len` PHY bytes at `key`'s
    /// spreading factor under `config`'s bandwidth/coding parameters.
    pub fn add_population(
        &mut self,
        key: LoadKey,
        config: &RadioConfig,
        frame_len: usize,
        senders: u32,
        rate_per_s: f64,
    ) {
        let cfg = RadioConfig {
            spreading_factor: key.sf,
            ..*config
        };
        let airtime = time_on_air(&cfg, frame_len).as_secs_f64();
        self.add(key, offered_load(senders, rate_per_s, airtime));
    }

    /// Total offered load `G` on `key`.
    pub fn g(&self, key: LoadKey) -> f64 {
        self.loads
            .binary_search_by_key(&key, |&(k, _)| k)
            .map_or(0.0, |i| self.loads[i].1)
    }

    /// Offered load on `key` seen by one frame that itself contributes
    /// `own_g` — i.e. the *competing* load (clamped at zero).
    pub fn g_excluding(&self, key: LoadKey, own_g: f64) -> f64 {
        (self.g(key) - own_g).max(0.0)
    }

    /// Clears all keys, keeping the allocation (reused tick-to-tick by
    /// the sharded simulator).
    pub fn clear(&mut self) {
        self.loads.clear();
    }

    /// Iterates `(key, G)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (LoadKey, f64)> + '_ {
        self.loads.iter().copied()
    }
}

/// Normalized offered load `G`: mean number of frame-airtimes' worth of
/// traffic offered per airtime, for `senders` nodes each sending
/// `rate_per_s` frames of `airtime_s` seconds.
pub fn offered_load(senders: u32, rate_per_s: f64, airtime_s: f64) -> f64 {
    assert!(
        rate_per_s >= 0.0 && airtime_s >= 0.0,
        "negative load inputs"
    );
    f64::from(senders) * rate_per_s * airtime_s
}

/// Pure-ALOHA success probability for offered load `G`: `e^(−2G)`
/// (a frame survives if no other frame starts within ±1 airtime).
pub fn aloha_success_probability(g: f64) -> f64 {
    assert!(g >= 0.0, "offered load must be non-negative");
    (-2.0 * g).exp()
}

/// Goodput (successful frame-airtimes per airtime): `G · e^(−2G)`,
/// maximized at `G = 0.5` with ≈ 0.184.
pub fn aloha_goodput(g: f64) -> f64 {
    g * aloha_success_probability(g)
}

/// Success probability for a frame on `key` given the per-key load
/// table: `e^(−2·G(key))`. Loads on other channels or spreading factors
/// do not interfere.
pub fn workload_success_probability(loads: &OfferedLoads, key: LoadKey) -> f64 {
    aloha_success_probability(loads.g(key))
}

/// Samples whether a single frame on `key`, itself contributing `own_g`
/// to the table, survives contention from the *other* traffic on its
/// collision domain. Always consumes exactly one draw.
pub fn frame_survives(loads: &OfferedLoads, key: LoadKey, own_g: f64, rng: &mut SimRng) -> bool {
    rng.chance(aloha_success_probability(loads.g_excluding(key, own_g)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sf7_key() -> LoadKey {
        LoadKey::new(0, SpreadingFactor::Sf7)
    }

    #[test]
    fn zero_load_always_succeeds() {
        assert_eq!(aloha_success_probability(0.0), 1.0);
        let mut rng = SimRng::seed_from_u64(1);
        let loads = OfferedLoads::new();
        assert!(frame_survives(&loads, sf7_key(), 0.0, &mut rng));
    }

    #[test]
    fn goodput_peaks_at_half() {
        let peak = aloha_goodput(0.5);
        assert!((peak - 0.5 * (-1.0f64).exp()).abs() < 1e-12);
        for g in [0.1, 0.3, 0.7, 1.0, 2.0] {
            assert!(aloha_goodput(g) <= peak + 1e-12, "g={g}");
        }
    }

    #[test]
    fn success_decreases_with_load() {
        let mut prev = 1.1;
        for g in [0.0, 0.1, 0.5, 1.0, 2.0, 5.0] {
            let p = aloha_success_probability(g);
            assert!(p < prev);
            prev = p;
        }
    }

    #[test]
    fn paper_workload_is_collision_tolerant_per_gateway() {
        // 30 sensors per gateway sending the 160 B data frame at the
        // (throttled) Fig. 5 rate of ~1 frame/50 s each.
        let cfg = RadioConfig::paper_sf7();
        let mut per_gw = OfferedLoads::new();
        per_gw.add_population(sf7_key(), &cfg, 160, 30, 1.0 / 50.0);
        let p = workload_success_probability(&per_gw, sf7_key());
        assert!(p > 0.6, "per-gateway success {p:.3}");
        // All 150 sensors sharing ONE channel/gateway would hurt badly.
        let mut all = OfferedLoads::new();
        all.add_population(sf7_key(), &cfg, 160, 150, 1.0 / 50.0);
        let p_all = workload_success_probability(&all, sf7_key());
        assert!(p_all < p - 0.2, "{p_all} vs {p}");
    }

    #[test]
    fn spreading_factors_are_orthogonal() {
        // Saturate SF12 on channel 0; SF7 frames on the same channel are
        // untouched, as are SF12 frames on another channel.
        let cfg = RadioConfig::paper_sf7();
        let sf12 = LoadKey::new(0, SpreadingFactor::Sf12);
        let mut loads = OfferedLoads::new();
        loads.add_population(sf12, &cfg, 51, 500, 1.0 / 20.0);
        assert!(workload_success_probability(&loads, sf12) < 0.01);
        assert_eq!(workload_success_probability(&loads, sf7_key()), 1.0);
        let sf12_ch1 = LoadKey::new(1, SpreadingFactor::Sf12);
        assert_eq!(workload_success_probability(&loads, sf12_ch1), 1.0);
    }

    #[test]
    fn own_contribution_excluded_from_competing_load() {
        let mut loads = OfferedLoads::new();
        let key = sf7_key();
        loads.add(key, 0.3);
        // A frame that IS the whole 0.3 load competes against nothing.
        assert_eq!(loads.g_excluding(key, 0.3), 0.0);
        assert!((loads.g_excluding(key, 0.1) - 0.2).abs() < 1e-15);
        // Rounding can't push the competing load negative.
        assert_eq!(loads.g_excluding(key, 0.4), 0.0);
        let mut rng = SimRng::seed_from_u64(5);
        assert!(frame_survives(&loads, key, 0.3, &mut rng));
    }

    #[test]
    fn sampling_matches_analytic_rate() {
        let mut rng = SimRng::seed_from_u64(2);
        let g = 0.35;
        let mut loads = OfferedLoads::new();
        loads.add(sf7_key(), g);
        let n = 20_000;
        let survived = (0..n)
            .filter(|_| frame_survives(&loads, sf7_key(), 0.0, &mut rng))
            .count();
        let rate = survived as f64 / n as f64;
        let expect = aloha_success_probability(g);
        assert!((rate - expect).abs() < 0.02, "{rate} vs {expect}");
    }

    #[test]
    fn offered_load_math() {
        assert_eq!(offered_load(10, 0.1, 0.25), 0.25);
        assert_eq!(offered_load(0, 1.0, 1.0), 0.0);
    }

    #[test]
    fn table_clear_and_iter() {
        let mut loads = OfferedLoads::new();
        loads.add(LoadKey::new(1, SpreadingFactor::Sf8), 0.25);
        loads.add(sf7_key(), 0.5);
        let pairs: Vec<_> = loads.iter().collect();
        assert_eq!(pairs.len(), 2);
        // Key-sorted iteration: channel 0 before channel 1.
        assert_eq!(pairs[0].0, sf7_key());
        loads.clear();
        assert_eq!(loads.g(sf7_key()), 0.0);
    }
}
