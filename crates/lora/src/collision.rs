//! ALOHA-style collision model for the shared radio channel.
//!
//! LoRaWAN uplinks are unslotted ALOHA: two frames overlapping in time on
//! the same channel and spreading factor destroy each other (ignoring
//! capture). The §5.2 workload — 150 sensors pushing towards their duty
//! limit through 5 gateways — makes channel contention a real effect the
//! paper's small testbed glosses over; this module supplies the standard
//! analytic model and a sampling helper for the simulator.

use crate::airtime::time_on_air;
use crate::params::RadioConfig;
use bcwan_sim::SimRng;

/// Normalized offered load `G`: mean number of frame-airtimes' worth of
/// traffic offered per airtime, for `senders` nodes each sending
/// `rate_per_s` frames of `airtime_s` seconds.
pub fn offered_load(senders: u32, rate_per_s: f64, airtime_s: f64) -> f64 {
    assert!(
        rate_per_s >= 0.0 && airtime_s >= 0.0,
        "negative load inputs"
    );
    f64::from(senders) * rate_per_s * airtime_s
}

/// Pure-ALOHA success probability for offered load `G`: `e^(−2G)`
/// (a frame survives if no other frame starts within ±1 airtime).
pub fn aloha_success_probability(g: f64) -> f64 {
    assert!(g >= 0.0, "offered load must be non-negative");
    (-2.0 * g).exp()
}

/// Goodput (successful frame-airtimes per airtime): `G · e^(−2G)`,
/// maximized at `G = 0.5` with ≈ 0.184.
pub fn aloha_goodput(g: f64) -> f64 {
    g * aloha_success_probability(g)
}

/// Convenience: success probability for the §5.2-style workload.
pub fn workload_success_probability(
    config: &RadioConfig,
    frame_len: usize,
    senders: u32,
    per_sender_rate_per_s: f64,
) -> f64 {
    let airtime = time_on_air(config, frame_len).as_secs_f64();
    aloha_success_probability(offered_load(senders, per_sender_rate_per_s, airtime))
}

/// Samples whether a single frame survives contention at load `g`.
pub fn frame_survives(g: f64, rng: &mut SimRng) -> bool {
    rng.chance(aloha_success_probability(g))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_load_always_succeeds() {
        assert_eq!(aloha_success_probability(0.0), 1.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert!(frame_survives(0.0, &mut rng));
    }

    #[test]
    fn goodput_peaks_at_half() {
        let peak = aloha_goodput(0.5);
        assert!((peak - 0.5 * (-1.0f64).exp()).abs() < 1e-12);
        for g in [0.1, 0.3, 0.7, 1.0, 2.0] {
            assert!(aloha_goodput(g) <= peak + 1e-12, "g={g}");
        }
    }

    #[test]
    fn success_decreases_with_load() {
        let mut prev = 1.1;
        for g in [0.0, 0.1, 0.5, 1.0, 2.0, 5.0] {
            let p = aloha_success_probability(g);
            assert!(p < prev);
            prev = p;
        }
    }

    #[test]
    fn paper_workload_is_collision_tolerant_per_gateway() {
        // 30 sensors per gateway sending the 160 B data frame at the
        // (throttled) Fig. 5 rate of ~1 frame/50 s each.
        let cfg = RadioConfig::paper_sf7();
        let p = workload_success_probability(&cfg, 160, 30, 1.0 / 50.0);
        assert!(p > 0.6, "per-gateway success {p:.3}");
        // All 150 sensors sharing ONE channel/gateway would hurt badly.
        let p_all = workload_success_probability(&cfg, 160, 150, 1.0 / 50.0);
        assert!(p_all < p - 0.2, "{p_all} vs {p}");
    }

    #[test]
    fn sampling_matches_analytic_rate() {
        let mut rng = SimRng::seed_from_u64(2);
        let g = 0.35;
        let n = 20_000;
        let survived = (0..n).filter(|_| frame_survives(g, &mut rng)).count();
        let rate = survived as f64 / n as f64;
        let expect = aloha_success_probability(g);
        assert!((rate - expect).abs() < 0.02, "{rate} vs {expect}");
    }

    #[test]
    fn offered_load_math() {
        assert_eq!(offered_load(10, 0.1, 0.25), 0.25);
        assert_eq!(offered_load(0, 1.0, 1.0), 0.0);
    }
}
