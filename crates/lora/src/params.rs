//! LoRa modulation parameters.

use std::fmt;

/// LoRa spreading factor (chirp length exponent). Higher factors trade
/// data rate for range and receiver sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpreadingFactor {
    /// SF7 — the paper's evaluation setting (fastest, shortest range).
    Sf7,
    /// SF8.
    Sf8,
    /// SF9.
    Sf9,
    /// SF10.
    Sf10,
    /// SF11 (low-data-rate optimization kicks in at 125 kHz).
    Sf11,
    /// SF12 (slowest, longest range).
    Sf12,
}

impl SpreadingFactor {
    /// All factors, ascending.
    pub const ALL: [SpreadingFactor; 6] = [
        SpreadingFactor::Sf7,
        SpreadingFactor::Sf8,
        SpreadingFactor::Sf9,
        SpreadingFactor::Sf10,
        SpreadingFactor::Sf11,
        SpreadingFactor::Sf12,
    ];

    /// The numeric spreading factor (7–12).
    pub fn value(self) -> u32 {
        match self {
            SpreadingFactor::Sf7 => 7,
            SpreadingFactor::Sf8 => 8,
            SpreadingFactor::Sf9 => 9,
            SpreadingFactor::Sf10 => 10,
            SpreadingFactor::Sf11 => 11,
            SpreadingFactor::Sf12 => 12,
        }
    }

    /// Parses a numeric factor.
    pub fn from_value(v: u32) -> Option<Self> {
        Self::ALL.into_iter().find(|sf| sf.value() == v)
    }

    /// Receiver sensitivity in dBm at 125 kHz (SX1276 datasheet values).
    pub fn sensitivity_dbm(self) -> f64 {
        match self {
            SpreadingFactor::Sf7 => -123.0,
            SpreadingFactor::Sf8 => -126.0,
            SpreadingFactor::Sf9 => -129.0,
            SpreadingFactor::Sf10 => -132.0,
            SpreadingFactor::Sf11 => -134.5,
            SpreadingFactor::Sf12 => -137.0,
        }
    }

    /// Maximum application payload in bytes (EU868 LoRaWAN 1.1 regional
    /// parameters, dwell-time off).
    pub fn max_payload(self) -> usize {
        match self {
            SpreadingFactor::Sf7 | SpreadingFactor::Sf8 => 222,
            SpreadingFactor::Sf9 => 115,
            _ => 51,
        }
    }
}

impl fmt::Display for SpreadingFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SF{}", self.value())
    }
}

/// Channel bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bandwidth {
    /// 125 kHz — the EU868 default and the paper's setting.
    Khz125,
    /// 250 kHz.
    Khz250,
    /// 500 kHz.
    Khz500,
}

impl Bandwidth {
    /// Bandwidth in hertz.
    pub fn hz(self) -> u32 {
        match self {
            Bandwidth::Khz125 => 125_000,
            Bandwidth::Khz250 => 250_000,
            Bandwidth::Khz500 => 500_000,
        }
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}kHz", self.hz() / 1000)
    }
}

/// Forward-error-correction coding rate `4/(4+n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodingRate {
    /// 4/5 — LoRaWAN default.
    Cr4_5,
    /// 4/6.
    Cr4_6,
    /// 4/7.
    Cr4_7,
    /// 4/8.
    Cr4_8,
}

impl CodingRate {
    /// The `n` in `4/(4+n)` (1–4).
    pub fn denominator_offset(self) -> u32 {
        match self {
            CodingRate::Cr4_5 => 1,
            CodingRate::Cr4_6 => 2,
            CodingRate::Cr4_7 => 3,
            CodingRate::Cr4_8 => 4,
        }
    }
}

impl fmt::Display for CodingRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "4/{}", 4 + self.denominator_offset())
    }
}

/// A complete radio configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RadioConfig {
    /// Spreading factor.
    pub spreading_factor: SpreadingFactor,
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
    /// Coding rate.
    pub coding_rate: CodingRate,
    /// Preamble symbol count (LoRaWAN uses 8).
    pub preamble_symbols: u32,
    /// Whether the explicit PHY header is present.
    pub explicit_header: bool,
    /// Whether the payload CRC is appended.
    pub crc_enabled: bool,
}

impl RadioConfig {
    /// The paper's evaluation configuration: SF7, 125 kHz, CR 4/5,
    /// 8-symbol preamble, explicit header + CRC.
    pub fn paper_sf7() -> Self {
        RadioConfig {
            spreading_factor: SpreadingFactor::Sf7,
            bandwidth: Bandwidth::Khz125,
            coding_rate: CodingRate::Cr4_5,
            preamble_symbols: 8,
            explicit_header: true,
            crc_enabled: true,
        }
    }

    /// Same as [`RadioConfig::paper_sf7`] but with another spreading factor.
    pub fn with_sf(sf: SpreadingFactor) -> Self {
        RadioConfig {
            spreading_factor: sf,
            ..Self::paper_sf7()
        }
    }

    /// Whether low-data-rate optimization applies (SF11/SF12 at 125 kHz).
    pub fn low_data_rate_optimization(&self) -> bool {
        self.bandwidth == Bandwidth::Khz125 && self.spreading_factor.value() >= 11
    }
}

impl Default for RadioConfig {
    fn default() -> Self {
        Self::paper_sf7()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sf_values_and_parse() {
        for sf in SpreadingFactor::ALL {
            assert_eq!(SpreadingFactor::from_value(sf.value()), Some(sf));
        }
        assert_eq!(SpreadingFactor::from_value(6), None);
        assert_eq!(SpreadingFactor::Sf7.to_string(), "SF7");
    }

    #[test]
    fn sensitivity_monotonically_improves() {
        let mut prev = f64::INFINITY;
        for sf in SpreadingFactor::ALL {
            assert!(sf.sensitivity_dbm() < prev);
            prev = sf.sensitivity_dbm();
        }
    }

    #[test]
    fn payload_caps() {
        assert_eq!(SpreadingFactor::Sf7.max_payload(), 222);
        assert_eq!(SpreadingFactor::Sf12.max_payload(), 51);
    }

    #[test]
    fn ldro_only_sf11_up_at_125khz() {
        assert!(!RadioConfig::paper_sf7().low_data_rate_optimization());
        assert!(RadioConfig::with_sf(SpreadingFactor::Sf11).low_data_rate_optimization());
        let mut cfg = RadioConfig::with_sf(SpreadingFactor::Sf12);
        assert!(cfg.low_data_rate_optimization());
        cfg.bandwidth = Bandwidth::Khz250;
        assert!(!cfg.low_data_rate_optimization());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Bandwidth::Khz125.to_string(), "125kHz");
        assert_eq!(CodingRate::Cr4_5.to_string(), "4/5");
    }
}
