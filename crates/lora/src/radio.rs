//! A simulated LoRa radio front-end combining airtime, duty cycle, link
//! budget and frame size limits into a single `transmit` decision.

use crate::airtime::time_on_air;
use crate::duty_cycle::DutyCycleGovernor;
use crate::frame::{FrameError, LoraFrame};
use crate::link::{LinkModel, Position};
use crate::params::RadioConfig;
use bcwan_sim::{SimDuration, SimRng, SimTime};
use std::fmt;

/// Why a transmission could not be made (or was not received).
#[derive(Debug, Clone, PartialEq)]
pub enum RadioError {
    /// Frame exceeds the spreading factor's payload cap.
    Oversized {
        /// PHY bytes of the attempted frame.
        len: usize,
        /// Regional cap for the spreading factor.
        max: usize,
    },
    /// The duty-cycle governor refuses until the given instant.
    DutyCycle {
        /// Earliest legal transmit time.
        next_allowed: SimTime,
    },
    /// Receiver out of range / fade (only reported by `try_deliver`).
    LinkLost {
        /// Distance of the failed link in metres.
        distance_m: f64,
    },
    /// The frame bytes did not parse.
    Malformed(FrameError),
}

impl fmt::Display for RadioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RadioError::Oversized { len, max } => {
                write!(f, "frame of {len} bytes exceeds SF cap of {max}")
            }
            RadioError::DutyCycle { next_allowed } => {
                write!(f, "duty cycle exhausted until {next_allowed}")
            }
            RadioError::LinkLost { distance_m } => {
                write!(f, "link lost at {distance_m:.0} m")
            }
            RadioError::Malformed(e) => write!(f, "malformed frame: {e}"),
        }
    }
}

impl std::error::Error for RadioError {}

impl From<FrameError> for RadioError {
    fn from(e: FrameError) -> Self {
        RadioError::Malformed(e)
    }
}

/// A granted transmission: the frame, its airtime, and when it completes.
#[derive(Debug, Clone, PartialEq)]
pub struct Transmission {
    /// The frame being sent.
    pub frame: LoraFrame,
    /// Time on air.
    pub airtime: SimDuration,
    /// Instant the last symbol leaves the antenna.
    pub completes_at: SimTime,
}

/// A simulated radio attached to one device or gateway.
#[derive(Debug, Clone)]
pub struct Radio {
    config: RadioConfig,
    governor: DutyCycleGovernor,
    position: Position,
}

impl Radio {
    /// Creates a radio with the given configuration, duty fraction and
    /// physical position.
    pub fn new(config: RadioConfig, duty: f64, position: Position) -> Self {
        Radio {
            config,
            governor: DutyCycleGovernor::new(duty),
            position,
        }
    }

    /// The radio configuration.
    pub fn config(&self) -> &RadioConfig {
        &self.config
    }

    /// The radio's position.
    pub fn position(&self) -> Position {
        self.position
    }

    /// Moves the radio (gateway relocation scenario, §4.3).
    pub fn set_position(&mut self, position: Position) {
        self.position = position;
    }

    /// Read access to the duty-cycle governor.
    pub fn governor(&self) -> &DutyCycleGovernor {
        &self.governor
    }

    /// Attempts to put `frame` on the air at `now`.
    ///
    /// # Errors
    ///
    /// [`RadioError::Oversized`] if the PHY payload exceeds the SF cap, or
    /// [`RadioError::DutyCycle`] if the off-time has not elapsed.
    pub fn transmit(&mut self, now: SimTime, frame: LoraFrame) -> Result<Transmission, RadioError> {
        let len = frame.phy_len();
        let max = self.config.spreading_factor.max_payload() + crate::frame::HEADER_LEN;
        if len > max {
            return Err(RadioError::Oversized { len, max });
        }
        let airtime = time_on_air(&self.config, len);
        self.governor
            .try_transmit(now, airtime)
            .map_err(|next_allowed| RadioError::DutyCycle { next_allowed })?;
        Ok(Transmission {
            frame,
            airtime,
            completes_at: now + airtime,
        })
    }

    /// Whether a frame transmitted from `self` reaches a receiver at
    /// `receiver_pos` under `link`, sampling shadowing from `rng`.
    ///
    /// # Errors
    ///
    /// [`RadioError::LinkLost`] when the sampled RSSI is under sensitivity.
    pub fn try_deliver(
        &self,
        receiver_pos: Position,
        link: &LinkModel,
        rng: &mut SimRng,
    ) -> Result<(), RadioError> {
        self.try_deliver_rssi(receiver_pos, link, rng).map(|_| ())
    }

    /// Like [`Radio::try_deliver`], but reports the sampled RSSI (dBm) on
    /// success so callers can apply capture-effect logic: a frame that
    /// later loses an ALOHA collision still survives if its margin over
    /// sensitivity exceeds the capture threshold.
    ///
    /// # Errors
    ///
    /// [`RadioError::LinkLost`] when the sampled RSSI is under sensitivity.
    pub fn try_deliver_rssi(
        &self,
        receiver_pos: Position,
        link: &LinkModel,
        rng: &mut SimRng,
    ) -> Result<f64, RadioError> {
        let distance_m = self.position.distance_to(&receiver_pos);
        let rssi = link.sample_rssi_dbm(distance_m, rng);
        if rssi >= self.config.spreading_factor.sensitivity_dbm() {
            Ok(rssi)
        } else {
            Err(RadioError::LinkLost { distance_m })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ADDRESS_LEN;
    use crate::params::SpreadingFactor;

    fn data_frame() -> LoraFrame {
        LoraFrame::DataUplink {
            device_id: 1,
            recipient: [0; ADDRESS_LEN],
            em: vec![0; 64],
            sig: vec![0; 64],
        }
    }

    #[test]
    fn transmit_produces_airtime() {
        let mut radio = Radio::new(RadioConfig::paper_sf7(), 0.01, Position::default());
        let tx = radio.transmit(SimTime::ZERO, data_frame()).unwrap();
        // 160-byte PHY frame at SF7 ≈ 260 ms.
        let t = tx.airtime.as_secs_f64();
        assert!((0.2..0.32).contains(&t), "airtime {t}");
        assert_eq!(tx.completes_at, SimTime::ZERO + tx.airtime);
    }

    #[test]
    fn duty_cycle_enforced_between_frames() {
        let mut radio = Radio::new(RadioConfig::paper_sf7(), 0.01, Position::default());
        radio.transmit(SimTime::ZERO, data_frame()).unwrap();
        let err = radio
            .transmit(SimTime::from_micros(1000), data_frame())
            .unwrap_err();
        match err {
            RadioError::DutyCycle { next_allowed } => {
                // ~100x the airtime.
                assert!(next_allowed.as_secs_f64() > 20.0);
            }
            other => panic!("expected duty cycle error, got {other}"),
        }
    }

    #[test]
    fn oversized_frame_rejected_at_high_sf() {
        // 160-byte frame exceeds the 51-byte SF12 cap.
        let mut radio = Radio::new(
            RadioConfig::with_sf(SpreadingFactor::Sf12),
            0.01,
            Position::default(),
        );
        assert!(matches!(
            radio.transmit(SimTime::ZERO, data_frame()),
            Err(RadioError::Oversized { .. })
        ));
    }

    #[test]
    fn delivery_depends_on_distance() {
        let link = LinkModel::free_space();
        let mut rng = SimRng::seed_from_u64(3);
        let radio = Radio::new(RadioConfig::paper_sf7(), 0.01, Position::new(0.0, 0.0));
        let near = Position::new(100.0, 0.0);
        let far = Position::new(1e9, 0.0);
        assert!(radio.try_deliver(near, &link, &mut rng).is_ok());
        assert!(matches!(
            radio.try_deliver(far, &link, &mut rng),
            Err(RadioError::LinkLost { .. })
        ));
    }

    #[test]
    fn position_updates() {
        let mut radio = Radio::new(RadioConfig::paper_sf7(), 0.01, Position::default());
        radio.set_position(Position::new(5.0, 5.0));
        assert_eq!(radio.position(), Position::new(5.0, 5.0));
    }

    #[test]
    fn error_display() {
        let e = RadioError::Oversized { len: 200, max: 55 };
        assert!(e.to_string().contains("200"));
    }
}
