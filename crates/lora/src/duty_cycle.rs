//! ETSI-style duty-cycle enforcement.
//!
//! EU868 sub-bands cap a device at (typically) 1 % airtime: after
//! transmitting for `T`, the device must stay silent for `T·(1/d − 1)`.
//! The paper's workload ("30 sensors per node at a 1 % duty cycle") is
//! generated under exactly this governor.

use bcwan_sim::{SimDuration, SimTime};

/// Per-device duty-cycle governor.
///
/// # Examples
///
/// ```
/// use bcwan_lora::duty_cycle::DutyCycleGovernor;
/// use bcwan_sim::{SimDuration, SimTime};
///
/// let mut gov = DutyCycleGovernor::new(0.01);
/// let t0 = SimTime::ZERO;
/// assert!(gov.try_transmit(t0, SimDuration::from_millis(100)).is_ok());
/// // 100 ms on air at 1 % ⇒ 9.9 s off-time.
/// let retry = t0 + SimDuration::from_secs(5);
/// assert!(gov.try_transmit(retry, SimDuration::from_millis(100)).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct DutyCycleGovernor {
    duty: f64,
    next_allowed: SimTime,
    total_airtime: SimDuration,
    transmissions: u64,
}

impl DutyCycleGovernor {
    /// Creates a governor for duty fraction `duty` (e.g. `0.01`).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < duty <= 1`.
    pub fn new(duty: f64) -> Self {
        assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
        DutyCycleGovernor {
            duty,
            next_allowed: SimTime::ZERO,
            total_airtime: SimDuration::ZERO,
            transmissions: 0,
        }
    }

    /// The configured duty fraction.
    pub fn duty(&self) -> f64 {
        self.duty
    }

    /// Earliest instant the next transmission may start.
    pub fn next_allowed(&self) -> SimTime {
        self.next_allowed
    }

    /// Cumulative on-air time granted so far.
    pub fn total_airtime(&self) -> SimDuration {
        self.total_airtime
    }

    /// Number of granted transmissions.
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Requests a transmission of length `airtime` starting at `now`.
    ///
    /// # Errors
    ///
    /// If the off-time from the previous transmission has not elapsed,
    /// returns the instant at which transmission becomes legal.
    pub fn try_transmit(&mut self, now: SimTime, airtime: SimDuration) -> Result<(), SimTime> {
        if now < self.next_allowed {
            return Err(self.next_allowed);
        }
        let off_time = SimDuration::from_secs_f64(airtime.as_secs_f64() * (1.0 / self.duty - 1.0));
        self.next_allowed = now + airtime + off_time;
        self.total_airtime += airtime;
        self.transmissions += 1;
        Ok(())
    }

    /// Verifies the long-run invariant: granted airtime never exceeds the
    /// duty fraction of elapsed time (plus one transmission of slack for
    /// the in-flight window).
    pub fn within_budget(&self, now: SimTime, max_single_airtime: SimDuration) -> bool {
        let elapsed = now.saturating_duration_since(SimTime::ZERO).as_secs_f64();
        let budget = elapsed * self.duty + max_single_airtime.as_secs_f64();
        self.total_airtime.as_secs_f64() <= budget + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_transmission_always_allowed() {
        let mut gov = DutyCycleGovernor::new(0.01);
        assert!(gov
            .try_transmit(SimTime::ZERO, SimDuration::from_millis(200))
            .is_ok());
        assert_eq!(gov.transmissions(), 1);
    }

    #[test]
    fn off_time_is_99x_at_one_percent() {
        let mut gov = DutyCycleGovernor::new(0.01);
        gov.try_transmit(SimTime::ZERO, SimDuration::from_millis(100))
            .unwrap();
        // next allowed = 100ms airtime + 9900ms off = 10s
        assert_eq!(gov.next_allowed().as_micros(), 10_000_000);
    }

    #[test]
    fn premature_retry_rejected_with_deadline() {
        let mut gov = DutyCycleGovernor::new(0.1);
        gov.try_transmit(SimTime::ZERO, SimDuration::from_secs(1))
            .unwrap();
        let deadline = gov.next_allowed();
        let err = gov
            .try_transmit(SimTime::from_micros(1), SimDuration::from_secs(1))
            .unwrap_err();
        assert_eq!(err, deadline);
        // At the deadline it succeeds.
        assert!(gov
            .try_transmit(deadline, SimDuration::from_secs(1))
            .is_ok());
    }

    #[test]
    fn full_duty_never_blocks_back_to_back() {
        let mut gov = DutyCycleGovernor::new(1.0);
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            gov.try_transmit(now, SimDuration::from_secs(1)).unwrap();
            now = gov.next_allowed();
        }
        assert_eq!(gov.transmissions(), 10);
        assert_eq!(now.as_secs(), 10);
    }

    #[test]
    fn budget_invariant_holds_under_greedy_sender() {
        let mut gov = DutyCycleGovernor::new(0.01);
        let airtime = SimDuration::from_millis(220); // ≈ paper frame at SF7
        let mut now = SimTime::ZERO;
        for _ in 0..50 {
            gov.try_transmit(now, airtime).unwrap();
            now = gov.next_allowed();
            assert!(gov.within_budget(now, airtime));
        }
        // Greedy sender at 1 %: each message occupies airtime/duty = 22 s,
        // so 50 messages take 1100 s (≈ 164 msg/h, the paper-scale ceiling).
        assert!((now.as_secs_f64() - 1100.0).abs() < 0.5, "{now}");
    }

    #[test]
    #[should_panic(expected = "duty must be in")]
    fn zero_duty_rejected() {
        DutyCycleGovernor::new(0.0);
    }
}
