//! LoRa time-on-air computation (Semtech AN1200.13).
//!
//! Airtime drives everything the paper's workload model depends on: the
//! 1 % duty cycle yields "a theoretical maximum of 183 messages per sensor
//! per hour" at SF7 for the 128-byte BcWAN payload + 4-byte length header
//! (§5.2), and the key-size ablation (§6) trades RSA modulus bits against
//! exactly this quantity.

use crate::params::RadioConfig;
use bcwan_sim::SimDuration;

/// Symbol duration for the configuration, in seconds.
pub fn symbol_time_s(config: &RadioConfig) -> f64 {
    let sf = config.spreading_factor.value();
    (1u64 << sf) as f64 / config.bandwidth.hz() as f64
}

/// Number of payload symbols for a PHY payload of `payload_len` bytes.
pub fn payload_symbols(config: &RadioConfig, payload_len: usize) -> u32 {
    let sf = config.spreading_factor.value() as i64;
    let pl = payload_len as i64;
    let ih = if config.explicit_header { 0 } else { 1 };
    let crc = if config.crc_enabled { 1 } else { 0 };
    let de = if config.low_data_rate_optimization() {
        1
    } else {
        0
    };
    let cr = config.coding_rate.denominator_offset() as i64;

    let numerator = 8 * pl - 4 * sf + 28 + 16 * crc - 20 * ih;
    let denominator = 4 * (sf - 2 * de);
    let ceil = if numerator <= 0 {
        0
    } else {
        (numerator + denominator - 1) / denominator
    };
    8 + (ceil.max(0) * (cr + 4)) as u32
}

/// Time on air for a PHY payload of `payload_len` bytes.
pub fn time_on_air(config: &RadioConfig, payload_len: usize) -> SimDuration {
    let t_sym = symbol_time_s(config);
    let preamble = (config.preamble_symbols as f64 + 4.25) * t_sym;
    let payload = payload_symbols(config, payload_len) as f64 * t_sym;
    SimDuration::from_secs_f64(preamble + payload)
}

/// Maximum messages per hour a single device may send under a duty-cycle
/// fraction (e.g. `0.01` for the EU868 1 % sub-band): the off-time rule
/// allows one transmission per `airtime / duty` window.
pub fn max_messages_per_hour(config: &RadioConfig, payload_len: usize, duty: f64) -> f64 {
    assert!(duty > 0.0 && duty <= 1.0, "duty must be in (0, 1]");
    let airtime = time_on_air(config, payload_len).as_secs_f64();
    3600.0 * duty / airtime
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Bandwidth, CodingRate, RadioConfig, SpreadingFactor};

    #[test]
    fn symbol_time_sf7_125khz() {
        let t = symbol_time_s(&RadioConfig::paper_sf7());
        assert!((t - 0.001024).abs() < 1e-9, "{t}");
    }

    // Cross-checked against the Semtech LoRa airtime calculator.
    #[test]
    fn airtime_sf7_51_bytes() {
        let cfg = RadioConfig::paper_sf7();
        // 51-byte payload, SF7/125kHz/CR4-5, preamble 8, CRC on, explicit header:
        // payloadSymbNb = 8 + ceil((408-28+28+16)/28)*5 = 8 + 16*5 = 88... recompute:
        // 8*51 = 408; 408 - 4*7 + 28 + 16 = 424; ceil(424/28) = 16; 8 + 80 = 88 symbols.
        assert_eq!(payload_symbols(&cfg, 51), 88);
        let t = time_on_air(&cfg, 51).as_secs_f64();
        // (12.25 + 88) * 1.024 ms = 102.656 ms
        assert!((t - 0.102656).abs() < 1e-6, "{t}");
    }

    #[test]
    fn airtime_sf12_with_ldro() {
        let cfg = RadioConfig::with_sf(SpreadingFactor::Sf12);
        assert!(cfg.low_data_rate_optimization());
        // 51 bytes at SF12/125: numerator = 408-48+28+16 = 404,
        // denominator = 4*(12-2) = 40, ceil = 11, symbols = 8+55 = 63.
        assert_eq!(payload_symbols(&cfg, 51), 63);
        let t = time_on_air(&cfg, 51).as_secs_f64();
        // t_sym = 4096/125000 = 32.768 ms; (12.25+63)*32.768 = 2465.8 ms
        assert!((t - 2.46580).abs() < 1e-4, "{t}");
    }

    #[test]
    fn paper_payload_sf7_airtime_and_rate() {
        // The paper's frame: 128-byte payload + 4-byte length header.
        let cfg = RadioConfig::paper_sf7();
        let t = time_on_air(&cfg, 132).as_secs_f64();
        // 8*132-28+28+16 = 1072; ceil(1072/28) = 39; 8+195 = 203 symbols;
        // (12.25+203)*1.024ms = 220.416 ms.
        assert!((t - 0.220416).abs() < 1e-6, "{t}");
        let rate = max_messages_per_hour(&cfg, 132, 0.01);
        // 163 msg/h with the full AN1200.13 model; the paper's quoted 183
        // uses the nominal-bitrate approximation — same order, see
        // EXPERIMENTS.md (T-SF).
        assert!((rate - 163.3).abs() < 1.0, "{rate}");
    }

    #[test]
    fn airtime_monotone_in_sf() {
        let mut prev = 0.0;
        for sf in SpreadingFactor::ALL {
            let t = time_on_air(&RadioConfig::with_sf(sf), 32).as_secs_f64();
            assert!(t > prev, "{sf}: {t} <= {prev}");
            prev = t;
        }
    }

    #[test]
    fn airtime_monotone_in_payload() {
        let cfg = RadioConfig::paper_sf7();
        let mut prev = SimDuration::ZERO;
        for len in (0..=222).step_by(16) {
            let t = time_on_air(&cfg, len);
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn zero_payload_is_preamble_plus_min_symbols() {
        let cfg = RadioConfig {
            spreading_factor: SpreadingFactor::Sf7,
            bandwidth: Bandwidth::Khz125,
            coding_rate: CodingRate::Cr4_5,
            preamble_symbols: 8,
            explicit_header: false,
            crc_enabled: false,
        };
        // numerator = 0 - 28 + 0 - 20 < 0 → ceil term 0 → 8 symbols.
        assert_eq!(payload_symbols(&cfg, 0), 8);
    }

    #[test]
    fn higher_bandwidth_cuts_airtime() {
        let base = RadioConfig::paper_sf7();
        let mut fast = base;
        fast.bandwidth = Bandwidth::Khz250;
        assert!(time_on_air(&fast, 64) < time_on_air(&base, 64));
    }

    #[test]
    #[should_panic(expected = "duty must be in")]
    fn bad_duty_rejected() {
        max_messages_per_hour(&RadioConfig::paper_sf7(), 10, 0.0);
    }
}
