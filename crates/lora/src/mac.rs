//! Contention-MAC knobs layered on top of the ALOHA collision model.
//!
//! The paper's testbed runs pure unslotted ALOHA (the stock LoRaWAN
//! uplink), but real dense deployments layer three effects on top, all of
//! which this module parameterizes for the sharded world simulator:
//!
//! - **CSMA-style clear-channel assessment**: before transmitting, a node
//!   listens; if its `(channel, SF)` looked busy in the previous tick it
//!   defers for a uniformly drawn backoff instead of transmitting. This
//!   is the listen-before-talk variant several LoRa stacks implement in
//!   firmware (cf. `rust-lpwan`'s CSMA MAC).
//! - **Capture effect**: LoRa demodulators lock onto the stronger of two
//!   colliding same-key frames when the power gap exceeds a threshold
//!   (~6 dB in published measurements), so a collision is not always a
//!   double loss — the loud frame survives.
//! - **Demodulator saturation**: a gateway chip (e.g. the SX1301) has a
//!   fixed number of concurrent demodulation paths. Frames above that
//!   concurrency are dropped at the antenna even if they survived the
//!   air, bounding gateway goodput no matter how many channels are run.

/// MAC behaviour for one shard (gateway region).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacConfig {
    /// Enable clear-channel assessment before each transmit attempt.
    pub cca: bool,
    /// Mean of the uniform `[0, 2·backoff_base)` deferral drawn when CCA
    /// reports the channel busy, in seconds.
    pub backoff_base_s: f64,
    /// Power margin over sensitivity at which a frame survives a
    /// same-key collision anyway (dB). `0` disables capture.
    pub capture_threshold_db: f64,
    /// Concurrent demodulator paths at the gateway. Per tick, at most
    /// `demod_slots × tick` seconds of airtime can be demodulated;
    /// surplus frames are dropped. `0` disables the bound.
    pub demod_slots: u32,
}

impl MacConfig {
    /// Stock LoRaWAN behaviour: pure ALOHA, no CCA, no capture, unbounded
    /// gateway. This is the configuration whose goodput-vs-load curve
    /// must reproduce the `G·e^(−2G)` analytic optimum at `G = 0.5`.
    pub fn pure_aloha() -> Self {
        MacConfig {
            cca: false,
            backoff_base_s: 0.0,
            capture_threshold_db: 0.0,
            demod_slots: 0,
        }
    }

    /// Realistic dense-deployment MAC: CSMA with a 1 s mean backoff,
    /// 6 dB capture, and an SX1301-style 8-path demodulator.
    pub fn csma() -> Self {
        MacConfig {
            cca: true,
            backoff_base_s: 1.0,
            capture_threshold_db: 6.0,
            demod_slots: 8,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on negative backoff or capture threshold, or a zero
    /// backoff base with CCA enabled (a busy CCA would spin in place).
    pub fn validate(&self) {
        assert!(self.backoff_base_s >= 0.0, "negative backoff");
        assert!(self.capture_threshold_db >= 0.0, "negative capture margin");
        if self.cca {
            assert!(self.backoff_base_s > 0.0, "CCA requires a backoff window");
        }
    }
}

impl Default for MacConfig {
    fn default() -> Self {
        Self::pure_aloha()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MacConfig::pure_aloha().validate();
        MacConfig::csma().validate();
        assert!(!MacConfig::default().cca);
    }

    #[test]
    #[should_panic(expected = "CCA requires a backoff window")]
    fn cca_without_backoff_rejected() {
        MacConfig {
            cca: true,
            backoff_base_s: 0.0,
            ..MacConfig::pure_aloha()
        }
        .validate();
    }
}
