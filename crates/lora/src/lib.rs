//! # bcwan-lora
//!
//! A LoRa PHY/MAC simulator: everything the BcWAN reproduction needs from
//! the radio layer the paper ran on real hardware (Nucleo-144 node,
//! Raspberry Pi + RFM95 gateway, C. Pham's gateway stack).
//!
//! - [`params`] — spreading factors, bandwidths, coding rates, regional
//!   payload caps and receiver sensitivities,
//! - [`airtime`] — the Semtech AN1200.13 time-on-air formula, from which
//!   the paper's "183 messages per sensor per hour" workload cap derives,
//! - [`duty_cycle`] — ETSI 1 % duty-cycle enforcement,
//! - [`frame`] — the paper's frames: Fig. 4's 34-byte encrypted reading
//!   and the request / ephemeral-key / data-uplink exchange of Fig. 3,
//! - [`link`] — log-distance path loss with shadowing, for roaming
//!   scenarios with physical gateway placement,
//! - [`radio`] — a per-device front-end tying it all together,
//! - [`collision`] — unslotted-ALOHA contention per `(channel, SF)` key,
//! - [`mac`] — CSMA backoff, capture effect and demodulator saturation,
//! - [`shard`] — the sharded, columnar million-sensor world (plus the
//!   per-`Radio` scalar reference it is benchmarked against),
//! - [`energy`] — node energy costs and coin-cell battery projections.
//!
//! ## Example
//!
//! ```
//! use bcwan_lora::airtime::max_messages_per_hour;
//! use bcwan_lora::params::RadioConfig;
//!
//! // The paper's workload: 128-byte payload + 4-byte header, SF7, 1% duty.
//! let per_hour = max_messages_per_hour(&RadioConfig::paper_sf7(), 132, 0.01);
//! assert!(per_hour > 150.0 && per_hour < 200.0);
//! ```

#![warn(missing_docs)]

pub mod airtime;
pub mod collision;
pub mod duty_cycle;
pub mod energy;
pub mod frame;
pub mod link;
pub mod mac;
pub mod params;
pub mod radio;
pub mod shard;

pub use airtime::{max_messages_per_hour, time_on_air};
pub use collision::{LoadKey, OfferedLoads};
pub use duty_cycle::DutyCycleGovernor;
pub use frame::{EncryptedReading, FrameError, LoraFrame, ADDRESS_LEN};
pub use link::{LinkModel, Position};
pub use mac::MacConfig;
pub use params::{Bandwidth, CodingRate, RadioConfig, SpreadingFactor};
pub use radio::{Radio, RadioError, Transmission};
pub use shard::{ScalarFleet, Shard, ShardConfig, ShardCounters, ShardedLora};
