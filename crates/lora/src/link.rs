//! Radio link model: log-distance path loss, receiver sensitivity, and a
//! shadowing term.
//!
//! The paper's §6 notes that in a real deployment "a sensor has higher
//! chances to communicate with a Gateway that is geolocated closer";
//! this model gives the simulator a physical notion of "within radio
//! range" so roaming scenarios can place sensors and gateways on a map.

use crate::params::SpreadingFactor;
use bcwan_sim::SimRng;

/// A 2-D position in metres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Position {
    /// East coordinate (m).
    pub x: f64,
    /// North coordinate (m).
    pub y: f64,
}

impl Position {
    /// Builds a position.
    pub fn new(x: f64, y: f64) -> Self {
        Position { x, y }
    }

    /// Euclidean distance to `other` in metres.
    pub fn distance_to(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Log-distance path-loss link model with optional log-normal shadowing.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// Transmit power in dBm (EU868 limit is +14 dBm ERP).
    pub tx_power_dbm: f64,
    /// Path loss at the reference distance (1 m), dB. ~40 dB at 868 MHz.
    pub pl0_db: f64,
    /// Path-loss exponent (2 free space, 2.7–3.5 suburban).
    pub exponent: f64,
    /// Shadowing standard deviation, dB (0 disables shadowing).
    pub shadowing_db: f64,
}

impl LinkModel {
    /// Suburban preset matching published LoRa range studies
    /// (Petäjäjärvi et al., cited by the paper as reference 6).
    pub fn suburban() -> Self {
        LinkModel {
            tx_power_dbm: 14.0,
            pl0_db: 40.0,
            exponent: 2.9,
            shadowing_db: 4.0,
        }
    }

    /// Deterministic free-space preset for unit tests.
    pub fn free_space() -> Self {
        LinkModel {
            tx_power_dbm: 14.0,
            pl0_db: 40.0,
            exponent: 2.0,
            shadowing_db: 0.0,
        }
    }

    /// Mean received power at `distance_m` (no shadowing draw).
    pub fn mean_rssi_dbm(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(1.0);
        self.tx_power_dbm - (self.pl0_db + 10.0 * self.exponent * d.log10())
    }

    /// Received power with a shadowing draw.
    pub fn sample_rssi_dbm(&self, distance_m: f64, rng: &mut SimRng) -> f64 {
        let shadow = if self.shadowing_db > 0.0 {
            rng.normal(0.0, self.shadowing_db)
        } else {
            0.0
        };
        self.mean_rssi_dbm(distance_m) + shadow
    }

    /// Whether a frame at `distance_m` is received at spreading factor
    /// `sf`, sampling shadowing.
    pub fn frame_received(&self, distance_m: f64, sf: SpreadingFactor, rng: &mut SimRng) -> bool {
        self.sample_rssi_dbm(distance_m, rng) >= sf.sensitivity_dbm()
    }

    /// Deterministic maximum range (mean RSSI = sensitivity) in metres.
    pub fn max_range_m(&self, sf: SpreadingFactor) -> f64 {
        let budget = self.tx_power_dbm - sf.sensitivity_dbm() - self.pl0_db;
        10f64.powf(budget / (10.0 * self.exponent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_math() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert_eq!(a.distance_to(&b), 5.0);
        assert_eq!(a.distance_to(&a), 0.0);
    }

    #[test]
    fn rssi_decreases_with_distance() {
        let link = LinkModel::free_space();
        let mut prev = f64::INFINITY;
        for d in [1.0, 10.0, 100.0, 1000.0, 10_000.0] {
            let rssi = link.mean_rssi_dbm(d);
            assert!(rssi < prev);
            prev = rssi;
        }
    }

    #[test]
    fn sub_metre_clamps_to_reference() {
        let link = LinkModel::free_space();
        assert_eq!(link.mean_rssi_dbm(0.0), link.mean_rssi_dbm(1.0));
    }

    #[test]
    fn higher_sf_reaches_further() {
        let link = LinkModel::suburban();
        let r7 = link.max_range_m(SpreadingFactor::Sf7);
        let r12 = link.max_range_m(SpreadingFactor::Sf12);
        assert!(r12 > r7 * 2.0, "SF12 {r12} m vs SF7 {r7} m");
    }

    #[test]
    fn suburban_sf7_range_plausible_km_scale() {
        // The paper's intro: "a LoRa gateway can cover a large Km-area".
        let r = LinkModel::suburban().max_range_m(SpreadingFactor::Sf7);
        assert!((500.0..10_000.0).contains(&r), "range {r} m");
    }

    #[test]
    fn reception_deterministic_without_shadowing() {
        let link = LinkModel::free_space();
        let mut rng = SimRng::seed_from_u64(1);
        let range = link.max_range_m(SpreadingFactor::Sf7);
        assert!(link.frame_received(range * 0.9, SpreadingFactor::Sf7, &mut rng));
        assert!(!link.frame_received(range * 1.1, SpreadingFactor::Sf7, &mut rng));
    }

    #[test]
    fn shadowing_flips_marginal_links_sometimes() {
        let link = LinkModel::suburban();
        let mut rng = SimRng::seed_from_u64(2);
        let range = link.max_range_m(SpreadingFactor::Sf7);
        let received = (0..500)
            .filter(|_| link.frame_received(range, SpreadingFactor::Sf7, &mut rng))
            .count();
        // At exactly the mean-RSSI threshold, shadowing gives ≈50 %.
        assert!((150..350).contains(&received), "{received}/500");
    }
}
