//! Sharded, struct-of-arrays LoRa world for simulating 10⁶-sensor
//! populations at wall-clock speed.
//!
//! The original radio path steps one [`Radio`] object per frame — fine at
//! the paper's 150-sensor scale, hopeless at the millions-of-end-devices
//! target. This module restructures the radio layer around:
//!
//! - **Shards**: one shard per gateway region. Sensors only contend with
//!   sensors on the same gateway's `(channel, SF)` keys, so shards are
//!   fully independent and step concurrently via [`std::thread::scope`].
//! - **Columnar node state**: per-node fields live in parallel arrays
//!   (`wake`, `next_fire`, `next_allowed`, `backoff_until`, `pending`,
//!   `sf`, `channel`, `mean_rssi`) instead of one ~140-byte struct per
//!   node, so the per-tick scan touches one u64 per idle node — and a
//!   wake-heap over the `wake` column skips idle nodes entirely.
//! - **Batched contention math**: per tick, transmissions accumulate into
//!   a per-`(channel, SF)` [`OfferedLoads`] table and the ALOHA / capture
//!   / demodulator decisions run over that batch, instead of a
//!   per-frame `Radio::transmit` + `try_deliver` call pair.
//! - **Deterministic RNG streams**: shard `k` draws from
//!   [`SimRng::stream`]`(seed, k)`, a pure function of the experiment
//!   seed — results are identical at 1, 4 or 8 worker threads.
//!
//! [`ScalarFleet`] is the per-[`Radio`] reference implementation: same
//! configuration, same per-node draw order, one heap-allocated frame and
//! one `Radio::transmit` per transmission. The equivalence test pins the
//! two paths to bit-identical aggregate counters; the `lora_scale` bench
//! measures the step-throughput gap between them.
//!
//! # Draw-order discipline
//!
//! Both paths must consume randomness in exactly this order, per shard:
//!
//! 1. **Init** (node order): position angle, position radius, first
//!    arrival exponential.
//! 2. **Per tick, pass 1** (node order): arrival exponential (if the
//!    node fires); CCA busy Bernoulli (if MAC has CCA and the node is
//!    ready); backoff uniform (if CCA reported busy).
//! 3. **Per tick, pass 2** (transmission order = node order): shadowing
//!    normal (if the link model has shadowing); ALOHA survival Bernoulli
//!    (only when the frame cleared the link budget).
//!
//! Capture and demodulator-saturation decisions are deterministic (no
//! draws), so they cannot perturb the stream.

use crate::airtime::time_on_air;
use crate::collision::{frame_survives, LoadKey, OfferedLoads};
use crate::energy::EnergyModel;
use crate::frame::{LoraFrame, ADDRESS_LEN, HEADER_LEN};
use crate::link::{LinkModel, Position};
use crate::mac::MacConfig;
use crate::params::{RadioConfig, SpreadingFactor};
use crate::radio::Radio;
use bcwan_sim::{SimDuration, SimRng, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Configuration for a sharded LoRa population.
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Number of shards (= gateway regions). Shards are independent
    /// collision domains.
    pub shards: u32,
    /// Sensors per shard.
    pub nodes_per_shard: u32,
    /// Uplink channels per gateway (EU868 mandates 3, typical is 8).
    pub channels: u8,
    /// Base radio parameters; the spreading factor is assigned per node.
    pub radio: RadioConfig,
    /// Force every node onto one spreading factor (used by the
    /// goodput-curve experiment); `None` assigns the lowest SF whose
    /// deterministic range covers the node's distance.
    pub sf_fixed: Option<SpreadingFactor>,
    /// PHY frame length in bytes for every uplink (≥ 32; ≤ the payload
    /// cap of every spreading factor in use).
    pub frame_len: usize,
    /// Duty-cycle fraction (ETSI EU868: 0.01).
    pub duty: f64,
    /// Mean of the exponential inter-arrival time per sensor.
    pub mean_interval: SimDuration,
    /// Gateway region radius; nodes are placed uniformly in the disc.
    pub region_radius_m: f64,
    /// Path-loss / shadowing model.
    pub link: LinkModel,
    /// Per-transmission energy model.
    pub energy: EnergyModel,
    /// Contention-MAC behaviour.
    pub mac: MacConfig,
    /// Simulation tick. Contention is resolved per tick, so the tick is
    /// also the ALOHA vulnerability window normalization.
    pub tick: SimDuration,
    /// Experiment seed; shard `k` uses `SimRng::stream(seed, k)`.
    pub seed: u64,
}

impl ShardConfig {
    /// A realistic dense-deployment default: suburban link model, CSMA
    /// MAC with capture and an 8-path demodulator, 1 % duty, 55-byte
    /// frames (fits every SF), one reading every 3 minutes.
    pub fn dense(shards: u32, nodes_per_shard: u32, seed: u64) -> Self {
        ShardConfig {
            shards,
            nodes_per_shard,
            channels: 8,
            radio: RadioConfig::paper_sf7(),
            sf_fixed: None,
            frame_len: 55,
            duty: 0.01,
            mean_interval: SimDuration::from_secs(180),
            region_radius_m: 4_000.0,
            link: LinkModel::suburban(),
            energy: EnergyModel::sx1276_coin_cell(),
            mac: MacConfig::csma(),
            tick: SimDuration::from_secs(1),
            seed,
        }
    }

    /// Total sensor count across all shards.
    pub fn total_nodes(&self) -> u64 {
        u64::from(self.shards) * u64::from(self.nodes_per_shard)
    }

    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on an empty population, a frame that cannot be encoded or
    /// that exceeds a usable spreading factor's payload cap, a
    /// non-positive tick or mean interval, or an invalid MAC config.
    pub fn validate(&self) {
        assert!(self.shards > 0 && self.nodes_per_shard > 0, "empty world");
        assert!(self.channels > 0, "need at least one channel");
        assert!(self.frame_len >= 32, "frame too short to encode");
        let min_cap = match self.sf_fixed {
            Some(sf) => sf.max_payload(),
            None => SpreadingFactor::ALL
                .iter()
                .map(|sf| sf.max_payload())
                .min()
                .unwrap(),
        };
        assert!(
            self.frame_len <= min_cap + HEADER_LEN,
            "frame_len {} exceeds SF payload cap {}",
            self.frame_len,
            min_cap + HEADER_LEN
        );
        assert!(self.tick > SimDuration::ZERO, "tick must be positive");
        assert!(
            self.mean_interval > SimDuration::ZERO,
            "mean_interval must be positive"
        );
        assert!(self.duty > 0.0 && self.duty <= 1.0, "duty out of range");
        self.mac.validate();
    }
}

/// Aggregate per-shard (and, merged, per-world) outcome counters.
///
/// Float fields accumulate in node/transmission order within a shard and
/// merge in shard order, so the scalar and columnar paths produce
/// bit-identical values for the same seed.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardCounters {
    /// Application frames generated (arrival process).
    pub fired: u64,
    /// Transmissions granted by the duty-cycle governor.
    pub attempted: u64,
    /// Frames demodulated successfully at the gateway.
    pub delivered: u64,
    /// Frames lost to the link budget (RSSI under sensitivity).
    pub lost_link: u64,
    /// Frames lost to same-key ALOHA collisions.
    pub lost_collision: u64,
    /// Frames that lost a collision but survived via capture.
    pub captured: u64,
    /// Frames dropped by gateway demodulator saturation.
    pub demod_dropped: u64,
    /// Transmit attempts deferred by CCA.
    pub cca_busy: u64,
    /// Total granted airtime, seconds.
    pub airtime_s: f64,
    /// Airtime of delivered frames, seconds (goodput numerator).
    pub delivered_airtime_s: f64,
    /// Transmit energy spent, joules.
    pub energy_j: f64,
}

impl ShardCounters {
    /// Accumulates `other` into `self` (field-wise sum).
    pub fn merge(&mut self, other: &ShardCounters) {
        self.fired += other.fired;
        self.attempted += other.attempted;
        self.delivered += other.delivered;
        self.lost_link += other.lost_link;
        self.lost_collision += other.lost_collision;
        self.captured += other.captured;
        self.demod_dropped += other.demod_dropped;
        self.cca_busy += other.cca_busy;
        self.airtime_s += other.airtime_s;
        self.delivered_airtime_s += other.delivered_airtime_s;
        self.energy_j += other.energy_j;
    }
}

/// Six spreading factors, indexable.
const SF_COUNT: usize = 6;

fn sf_index(sf: SpreadingFactor) -> usize {
    sf.value() as usize - 7
}

/// Lowest spreading factor whose deterministic (mean-RSSI) range covers
/// `distance_m`, falling back to SF12 for out-of-range placements, and
/// never exceeding the largest factor whose payload cap fits `frame_len`.
fn assign_sf(link: &LinkModel, distance_m: f64, frame_len: usize) -> SpreadingFactor {
    let mut chosen = SpreadingFactor::Sf12;
    for sf in SpreadingFactor::ALL {
        if link.max_range_m(sf) >= distance_m {
            chosen = sf;
            break;
        }
    }
    // Step down if the frame exceeds this factor's payload cap (only
    // possible when callers validate a fixed-SF config; kept for safety).
    while frame_len > chosen.max_payload() + HEADER_LEN {
        chosen = SpreadingFactor::from_value(chosen.value() - 1).expect("validated frame_len");
    }
    chosen
}

/// Draws one node placement + traffic start. Shared verbatim by the
/// columnar and scalar paths so their streams stay aligned.
fn draw_node(cfg: &ShardConfig, rng: &mut SimRng) -> (Position, SimTime) {
    let angle = rng.uniform_range(0.0, std::f64::consts::TAU);
    let radius = cfg.region_radius_m * rng.uniform().sqrt();
    let pos = Position::new(radius * angle.cos(), radius * angle.sin());
    let first = SimTime::ZERO
        + SimDuration::from_secs_f64(rng.exponential(cfg.mean_interval.as_secs_f64()));
    (pos, first)
}

/// The uplink every sensor sends: a data frame padded to
/// `cfg.frame_len` PHY bytes (Fig. 4-style encrypted reading, no
/// signature block at the 55-byte default).
fn build_frame(device_id: u32, frame_len: usize) -> LoraFrame {
    LoraFrame::DataUplink {
        device_id,
        recipient: [0; ADDRESS_LEN],
        em: vec![0; frame_len - 32],
        sig: Vec::new(),
    }
}

/// One gateway region holding columnar per-node state.
pub struct Shard {
    cfg: ShardConfig,
    now: SimTime,
    rng: SimRng,
    // --- columns, indexed by node ---
    /// Next instant (µs) at which the node can possibly act: the minimum
    /// of its next arrival and, if it has queued frames, the instant its
    /// duty-cycle and backoff windows both clear. Nodes with `wake > now`
    /// are skipped without touching any other column.
    wake: Vec<u64>,
    next_fire: Vec<u64>,
    next_allowed: Vec<u64>,
    backoff_until: Vec<u64>,
    pending: Vec<u16>,
    sf: Vec<u8>,
    channel: Vec<u8>,
    mean_rssi: Vec<f64>,
    // --- per-SF precomputed tables ---
    airtime_by_sf: [SimDuration; SF_COUNT],
    airtime_s_by_sf: [f64; SF_COUNT],
    energy_by_sf: [f64; SF_COUNT],
    own_g_by_sf: [f64; SF_COUNT],
    // --- wake index + per-tick scratch ---
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    due: Vec<u32>,
    txs: Vec<u32>,
    demod: Vec<(u32, SimDuration)>,
    loads: OfferedLoads,
    util_prev: OfferedLoads,
    counters: ShardCounters,
}

impl Shard {
    /// Builds shard `shard_id` of the configured world.
    pub fn new(cfg: &ShardConfig, shard_id: u32) -> Self {
        cfg.validate();
        let mut rng = SimRng::stream(cfg.seed, u64::from(shard_id));
        let n = cfg.nodes_per_shard as usize;
        let mut wake = Vec::with_capacity(n);
        let mut next_fire = Vec::with_capacity(n);
        let mut sf = Vec::with_capacity(n);
        let mut channel = Vec::with_capacity(n);
        let mut mean_rssi = Vec::with_capacity(n);
        let origin = Position::default();
        for i in 0..n {
            let (pos, first) = draw_node(cfg, &mut rng);
            let distance = pos.distance_to(&origin);
            let node_sf = cfg
                .sf_fixed
                .unwrap_or_else(|| assign_sf(&cfg.link, distance, cfg.frame_len));
            wake.push(first.as_micros());
            next_fire.push(first.as_micros());
            sf.push(sf_index(node_sf) as u8);
            channel.push((i % cfg.channels as usize) as u8);
            mean_rssi.push(cfg.link.mean_rssi_dbm(distance));
        }
        let mut airtime_by_sf = [SimDuration::ZERO; SF_COUNT];
        let mut airtime_s_by_sf = [0.0; SF_COUNT];
        let mut energy_by_sf = [0.0; SF_COUNT];
        let mut own_g_by_sf = [0.0; SF_COUNT];
        let tick_s = cfg.tick.as_secs_f64();
        for (i, factor) in SpreadingFactor::ALL.into_iter().enumerate() {
            let rc = RadioConfig {
                spreading_factor: factor,
                ..cfg.radio
            };
            let airtime = time_on_air(&rc, cfg.frame_len);
            airtime_by_sf[i] = airtime;
            airtime_s_by_sf[i] = airtime.as_secs_f64();
            energy_by_sf[i] = cfg.energy.tx_energy(airtime);
            own_g_by_sf[i] = airtime.as_secs_f64() / tick_s;
        }
        let heap = wake
            .iter()
            .enumerate()
            .map(|(i, &w)| Reverse((w, i as u32)))
            .collect();
        Shard {
            cfg: cfg.clone(),
            now: SimTime::ZERO,
            rng,
            wake,
            next_fire,
            next_allowed: vec![0; n],
            backoff_until: vec![0; n],
            pending: vec![0; n],
            sf,
            channel,
            mean_rssi,
            airtime_by_sf,
            airtime_s_by_sf,
            energy_by_sf,
            own_g_by_sf,
            heap,
            due: Vec::new(),
            txs: Vec::new(),
            demod: Vec::new(),
            loads: OfferedLoads::new(),
            util_prev: OfferedLoads::new(),
            counters: ShardCounters::default(),
        }
    }

    /// Current shard time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This shard's outcome counters.
    pub fn counters(&self) -> ShardCounters {
        self.counters
    }

    /// Steps the shard up to (at least) `until`, fast-forwarding over
    /// tick boundaries at which no node can act. An idle boundary draws
    /// no randomness and transmits nothing in either implementation, so
    /// skipping it leaves the RNG stream and every counter exactly as a
    /// tick-by-tick walk (or the scalar reference) would — only the
    /// `util_prev` table must be emptied, as an idle tick offers no load
    /// for the next tick's CCA to observe.
    pub fn step_until(&mut self, until: SimTime) {
        let tick_us = self.cfg.tick.as_micros();
        while self.now < until {
            let wake = self.heap.peek().map_or(u64::MAX, |&Reverse((w, _))| w);
            let now_us = self.now.as_micros();
            if wake > now_us + tick_us {
                // Jump to one tick before the boundary the earliest wake
                // lands on (clamped so the window's final boundary is
                // still processed, exactly as the scalar loop does).
                let target = wake.min(until.as_micros());
                let ticks = (target - now_us).div_ceil(tick_us);
                if ticks > 1 {
                    self.now = SimTime::from_micros(now_us + (ticks - 1) * tick_us);
                    self.util_prev.clear();
                }
            }
            self.step_tick();
        }
    }

    fn recompute_wake(&mut self, i: usize) -> u64 {
        let ready = if self.pending[i] > 0 {
            self.next_allowed[i].max(self.backoff_until[i])
        } else {
            u64::MAX
        };
        let w = self.next_fire[i].min(ready);
        self.wake[i] = w;
        w
    }

    /// Advances the shard by one tick.
    pub fn step_tick(&mut self) {
        self.now += self.cfg.tick;
        let now_us = self.now.as_micros();
        let mean_s = self.cfg.mean_interval.as_secs_f64();
        let duty_factor = 1.0 / self.cfg.duty - 1.0;

        // Pass 1 — arrivals and transmit attempts, in node order. The
        // wake heap yields exactly the nodes a full column scan would
        // touch; sorting restores node order for draw alignment.
        self.due.clear();
        while let Some(&Reverse((w, i))) = self.heap.peek() {
            if w > now_us {
                break;
            }
            self.heap.pop();
            self.due.push(i);
        }
        self.due.sort_unstable();
        let due = std::mem::take(&mut self.due);
        for &i in &due {
            let i = i as usize;
            if self.next_fire[i] <= now_us {
                self.counters.fired += 1;
                self.pending[i] = self.pending[i].saturating_add(1);
                let gap = SimDuration::from_secs_f64(self.rng.exponential(mean_s));
                self.next_fire[i] = (self.now + gap).as_micros();
            }
            if self.pending[i] > 0
                && self.next_allowed[i] <= now_us
                && self.backoff_until[i] <= now_us
            {
                let sf_i = self.sf[i] as usize;
                let key = LoadKey::new(self.channel[i], SpreadingFactor::ALL[sf_i]);
                let mut deferred = false;
                // Short-circuit keeps the draw order: no CCA Bernoulli is
                // consumed unless the MAC actually listens before talk.
                if self.cfg.mac.cca && self.rng.chance(self.util_prev.g(key)) {
                    let backoff = SimDuration::from_secs_f64(
                        self.rng
                            .uniform_range(0.0, 2.0 * self.cfg.mac.backoff_base_s),
                    );
                    self.backoff_until[i] = (self.now + backoff).as_micros();
                    self.counters.cca_busy += 1;
                    deferred = true;
                }
                if !deferred {
                    let airtime = self.airtime_by_sf[sf_i];
                    let off = SimDuration::from_secs_f64(airtime.as_secs_f64() * duty_factor);
                    self.next_allowed[i] = (self.now + airtime + off).as_micros();
                    self.pending[i] -= 1;
                    self.counters.attempted += 1;
                    self.counters.airtime_s += self.airtime_s_by_sf[sf_i];
                    self.counters.energy_j += self.energy_by_sf[sf_i];
                    self.loads.add(key, self.own_g_by_sf[sf_i]);
                    self.txs.push(i as u32);
                }
            }
        }
        self.due = due;

        // Pass 2 — link budget, per-key ALOHA survival, capture.
        let shadowing = self.cfg.link.shadowing_db;
        let capture_db = self.cfg.mac.capture_threshold_db;
        for t in 0..self.txs.len() {
            let i = self.txs[t] as usize;
            let sf_i = self.sf[i] as usize;
            let factor = SpreadingFactor::ALL[sf_i];
            let shadow = if shadowing > 0.0 {
                self.rng.normal(0.0, shadowing)
            } else {
                0.0
            };
            let rssi = self.mean_rssi[i] + shadow;
            if rssi < factor.sensitivity_dbm() {
                self.counters.lost_link += 1;
                continue;
            }
            let key = LoadKey::new(self.channel[i], factor);
            let survives = frame_survives(&self.loads, key, self.own_g_by_sf[sf_i], &mut self.rng);
            if !survives {
                if capture_db > 0.0 && rssi - factor.sensitivity_dbm() >= capture_db {
                    self.counters.captured += 1;
                } else {
                    self.counters.lost_collision += 1;
                    continue;
                }
            }
            self.demod.push((i as u32, self.airtime_by_sf[sf_i]));
        }

        // Pass 3 — gateway demodulator saturation (deterministic).
        let budget_us = if self.cfg.mac.demod_slots == 0 {
            u64::MAX
        } else {
            u64::from(self.cfg.mac.demod_slots) * self.cfg.tick.as_micros()
        };
        let mut used_us = 0u64;
        for d in 0..self.demod.len() {
            let (i, airtime) = self.demod[d];
            if used_us.saturating_add(airtime.as_micros()) <= budget_us {
                used_us += airtime.as_micros();
                self.counters.delivered += 1;
                self.counters.delivered_airtime_s +=
                    self.airtime_s_by_sf[self.sf[i as usize] as usize];
            } else {
                self.counters.demod_dropped += 1;
            }
        }

        // Bookkeeping: re-index touched nodes, roll the utilization table.
        let due = std::mem::take(&mut self.due);
        for &i in &due {
            let w = self.recompute_wake(i as usize);
            self.heap.push(Reverse((w, i)));
        }
        self.due = due;
        self.txs.clear();
        self.demod.clear();
        std::mem::swap(&mut self.util_prev, &mut self.loads);
        self.loads.clear();
    }
}

/// The full sharded world: one [`Shard`] per gateway region, stepped
/// concurrently with deterministic per-shard RNG streams.
pub struct ShardedLora {
    shards: Vec<Shard>,
    cfg: ShardConfig,
}

impl ShardedLora {
    /// Builds the world.
    pub fn new(cfg: &ShardConfig) -> Self {
        cfg.validate();
        let shards = (0..cfg.shards).map(|k| Shard::new(cfg, k)).collect();
        ShardedLora {
            shards,
            cfg: cfg.clone(),
        }
    }

    /// The configuration the world was built from.
    pub fn config(&self) -> &ShardConfig {
        &self.cfg
    }

    /// Current simulation time (all shards advance in lock-step between
    /// `step_until` calls).
    pub fn now(&self) -> SimTime {
        self.shards.first().map_or(SimTime::ZERO, |s| s.now)
    }

    /// Steps every shard up to (at least) `until`, using up to `threads`
    /// worker threads. Shards are independent, so each worker runs its
    /// chunk through the whole interval without synchronization; results
    /// are identical for any thread count.
    pub fn step_until(&mut self, until: SimTime, threads: usize) {
        let threads = threads.max(1).min(self.shards.len().max(1));
        if threads <= 1 {
            for shard in &mut self.shards {
                shard.step_until(until);
            }
            return;
        }
        let chunk = self.shards.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for shard_chunk in self.shards.chunks_mut(chunk) {
                scope.spawn(move || {
                    for shard in shard_chunk {
                        shard.step_until(until);
                    }
                });
            }
        });
    }

    /// Aggregate counters, merged in shard order.
    pub fn counters(&self) -> ShardCounters {
        let mut total = ShardCounters::default();
        for shard in &self.shards {
            total.merge(&shard.counters);
        }
        total
    }

    /// Per-shard (per-gateway) counters, in shard order.
    pub fn shard_counters(&self) -> Vec<ShardCounters> {
        self.shards.iter().map(|s| s.counters).collect()
    }
}

/// One sensor in the scalar reference path: a real [`Radio`] object plus
/// queue state, stepped per node per tick.
struct ScalarNode {
    radio: Radio,
    channel: u8,
    sf: SpreadingFactor,
    next_fire: SimTime,
    backoff_until: SimTime,
    pending: u16,
}

struct ScalarShard {
    now: SimTime,
    rng: SimRng,
    nodes: Vec<ScalarNode>,
    loads: OfferedLoads,
    util_prev: OfferedLoads,
    txs: Vec<(u32, SimDuration)>,
    demod: Vec<(u32, SimDuration)>,
    counters: ShardCounters,
}

impl ScalarShard {
    fn new(cfg: &ShardConfig, shard_id: u32) -> Self {
        let mut rng = SimRng::stream(cfg.seed, u64::from(shard_id));
        let origin = Position::default();
        let nodes = (0..cfg.nodes_per_shard as usize)
            .map(|i| {
                let (pos, first) = draw_node(cfg, &mut rng);
                let distance = pos.distance_to(&origin);
                let sf = cfg
                    .sf_fixed
                    .unwrap_or_else(|| assign_sf(&cfg.link, distance, cfg.frame_len));
                ScalarNode {
                    radio: Radio::new(
                        RadioConfig {
                            spreading_factor: sf,
                            ..cfg.radio
                        },
                        cfg.duty,
                        pos,
                    ),
                    channel: (i % cfg.channels as usize) as u8,
                    sf,
                    next_fire: first,
                    backoff_until: SimTime::ZERO,
                    pending: 0,
                }
            })
            .collect();
        ScalarShard {
            now: SimTime::ZERO,
            rng,
            nodes,
            loads: OfferedLoads::new(),
            util_prev: OfferedLoads::new(),
            txs: Vec::new(),
            demod: Vec::new(),
            counters: ShardCounters::default(),
        }
    }

    fn step_tick(&mut self, cfg: &ShardConfig) {
        self.now += cfg.tick;
        let now = self.now;
        let mean_s = cfg.mean_interval.as_secs_f64();
        let tick_s = cfg.tick.as_secs_f64();
        let origin = Position::default();

        // Pass 1 — every node, every tick: the per-object hot path this
        // module's columnar layout exists to avoid.
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            if node.next_fire <= now {
                self.counters.fired += 1;
                node.pending = node.pending.saturating_add(1);
                let gap = SimDuration::from_secs_f64(self.rng.exponential(mean_s));
                node.next_fire = now + gap;
            }
            if node.pending == 0
                || node.radio.governor().next_allowed() > now
                || node.backoff_until > now
            {
                continue;
            }
            let key = LoadKey::new(node.channel, node.sf);
            if cfg.mac.cca && self.rng.chance(self.util_prev.g(key)) {
                let backoff = SimDuration::from_secs_f64(
                    self.rng.uniform_range(0.0, 2.0 * cfg.mac.backoff_base_s),
                );
                node.backoff_until = now + backoff;
                self.counters.cca_busy += 1;
                continue;
            }
            let frame = build_frame(idx as u32, cfg.frame_len);
            let tx = node
                .radio
                .transmit(now, frame)
                .expect("scalar transmit pre-checked against duty and size");
            node.pending -= 1;
            self.counters.attempted += 1;
            self.counters.airtime_s += tx.airtime.as_secs_f64();
            self.counters.energy_j += cfg.energy.tx_energy(tx.airtime);
            self.loads.add(key, tx.airtime.as_secs_f64() / tick_s);
            self.txs.push((idx as u32, tx.airtime));
        }

        // Pass 2 — per-frame delivery via the Radio front-end.
        let txs = std::mem::take(&mut self.txs);
        for &(idx, airtime) in &txs {
            let node = &self.nodes[idx as usize];
            let key = LoadKey::new(node.channel, node.sf);
            match node
                .radio
                .try_deliver_rssi(origin, &cfg.link, &mut self.rng)
            {
                Ok(rssi) => {
                    let own_g = airtime.as_secs_f64() / tick_s;
                    let survives = frame_survives(&self.loads, key, own_g, &mut self.rng);
                    if !survives {
                        let margin = rssi - node.sf.sensitivity_dbm();
                        if cfg.mac.capture_threshold_db > 0.0
                            && margin >= cfg.mac.capture_threshold_db
                        {
                            self.counters.captured += 1;
                        } else {
                            self.counters.lost_collision += 1;
                            continue;
                        }
                    }
                    self.demod.push((idx, airtime));
                }
                Err(_) => self.counters.lost_link += 1,
            }
        }
        self.txs = txs;
        self.txs.clear();

        // Pass 3 — demodulator saturation.
        let budget_us = if cfg.mac.demod_slots == 0 {
            u64::MAX
        } else {
            u64::from(cfg.mac.demod_slots) * cfg.tick.as_micros()
        };
        let mut used_us = 0u64;
        for &(_, airtime) in &self.demod {
            if used_us.saturating_add(airtime.as_micros()) <= budget_us {
                used_us += airtime.as_micros();
                self.counters.delivered += 1;
                self.counters.delivered_airtime_s += airtime.as_secs_f64();
            } else {
                self.counters.demod_dropped += 1;
            }
        }
        self.demod.clear();
        std::mem::swap(&mut self.util_prev, &mut self.loads);
        self.loads.clear();
    }
}

/// The per-[`Radio`] reference world: same configuration and draw order
/// as [`ShardedLora`], stepped one object at a time. Exists as the
/// equivalence oracle and the bench baseline; always single-threaded.
pub struct ScalarFleet {
    cfg: ShardConfig,
    shards: Vec<ScalarShard>,
}

impl ScalarFleet {
    /// Builds the reference world.
    pub fn new(cfg: &ShardConfig) -> Self {
        cfg.validate();
        let shards = (0..cfg.shards).map(|k| ScalarShard::new(cfg, k)).collect();
        ScalarFleet {
            cfg: cfg.clone(),
            shards,
        }
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.shards.first().map_or(SimTime::ZERO, |s| s.now)
    }

    /// Steps every shard up to (at least) `until`.
    pub fn step_until(&mut self, until: SimTime) {
        for shard in &mut self.shards {
            while shard.now < until {
                shard.step_tick(&self.cfg);
            }
        }
    }

    /// Aggregate counters, merged in shard order.
    pub fn counters(&self) -> ShardCounters {
        let mut total = ShardCounters::default();
        for shard in &self.shards {
            total.merge(&shard.counters);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(mac: MacConfig, sf_fixed: Option<SpreadingFactor>) -> ShardConfig {
        ShardConfig {
            mac,
            sf_fixed,
            mean_interval: SimDuration::from_secs(30),
            ..ShardConfig::dense(2, 100, 7)
        }
    }

    #[test]
    fn columnar_runs_and_delivers() {
        let cfg = tiny(MacConfig::csma(), None);
        let mut world = ShardedLora::new(&cfg);
        world.step_until(SimTime::from_micros(120_000_000), 1);
        let c = world.counters();
        assert!(c.fired > 0);
        assert!(c.delivered > 0);
        assert_eq!(
            c.attempted,
            c.delivered + c.lost_link + c.lost_collision + c.demod_dropped,
            "every granted transmission is accounted for: {c:?}"
        );
        assert!(c.airtime_s > 0.0 && c.energy_j > 0.0);
    }

    #[test]
    fn duty_ceiling_respected_in_aggregate() {
        // Saturating arrival rate: every node always has a frame queued,
        // so aggregate airtime must track the duty budget.
        let cfg = ShardConfig {
            mean_interval: SimDuration::from_secs(1),
            mac: MacConfig::pure_aloha(),
            ..ShardConfig::dense(1, 50, 11)
        };
        let mut world = ShardedLora::new(&cfg);
        let horizon = 600.0;
        world.step_until(SimTime::from_micros((horizon * 1e6) as u64), 1);
        let c = world.counters();
        let budget = cfg.duty * horizon * cfg.total_nodes() as f64;
        // One in-flight frame of slack per node.
        let airtime_sf12 = time_on_air(
            &RadioConfig {
                spreading_factor: SpreadingFactor::Sf12,
                ..cfg.radio
            },
            cfg.frame_len,
        )
        .as_secs_f64();
        let slack = cfg.total_nodes() as f64 * airtime_sf12;
        assert!(
            c.airtime_s <= budget + slack,
            "airtime {} exceeds duty budget {budget}",
            c.airtime_s
        );
        // And the saturated sender actually uses most of it.
        assert!(
            c.airtime_s > 0.5 * budget,
            "airtime {} too low",
            c.airtime_s
        );
    }

    #[test]
    fn demod_saturation_bounds_delivery() {
        // A single demod slot with heavy traffic drops frames at the
        // antenna even though they survived the air.
        let cfg = ShardConfig {
            mean_interval: SimDuration::from_secs(2),
            mac: MacConfig {
                cca: false,
                backoff_base_s: 0.0,
                capture_threshold_db: 0.0,
                demod_slots: 1,
            },
            channels: 8,
            ..ShardConfig::dense(1, 400, 3)
        };
        let mut world = ShardedLora::new(&cfg);
        world.step_until(SimTime::from_micros(300_000_000), 1);
        assert!(world.counters().demod_dropped > 0);
    }

    #[test]
    fn cca_defers_under_load() {
        let cfg = ShardConfig {
            mean_interval: SimDuration::from_secs(2),
            channels: 1,
            sf_fixed: Some(SpreadingFactor::Sf7),
            ..ShardConfig::dense(1, 400, 3)
        };
        let mut world = ShardedLora::new(&cfg);
        world.step_until(SimTime::from_micros(300_000_000), 1);
        assert!(world.counters().cca_busy > 0);
    }

    #[test]
    fn capture_rescues_loud_frames() {
        let cfg = ShardConfig {
            mean_interval: SimDuration::from_secs(2),
            channels: 1,
            sf_fixed: Some(SpreadingFactor::Sf7),
            region_radius_m: 2_000.0,
            mac: MacConfig {
                cca: false,
                backoff_base_s: 0.0,
                capture_threshold_db: 6.0,
                demod_slots: 0,
            },
            ..ShardConfig::dense(1, 400, 3)
        };
        let mut world = ShardedLora::new(&cfg);
        world.step_until(SimTime::from_micros(300_000_000), 1);
        let c = world.counters();
        assert!(c.captured > 0, "{c:?}");
    }

    #[test]
    fn validate_rejects_oversized_multi_sf_frame() {
        let cfg = ShardConfig {
            frame_len: 100,
            ..ShardConfig::dense(1, 10, 1)
        };
        assert!(std::panic::catch_unwind(|| cfg.validate()).is_err());
        // …but a fixed-SF7 world takes the paper's 160-byte data frame.
        let cfg = ShardConfig {
            frame_len: 160,
            sf_fixed: Some(SpreadingFactor::Sf7),
            ..ShardConfig::dense(1, 10, 1)
        };
        cfg.validate();
    }

    #[test]
    fn frame_padding_matches_config() {
        assert_eq!(build_frame(9, 55).phy_len(), 55);
        assert_eq!(build_frame(9, 160).phy_len(), 160);
    }
}
