//! BcWAN LoRa frame formats.
//!
//! Three frames cross the radio in the paper's exchange (Fig. 3):
//!
//! 1. [`LoraFrame::UplinkRequest`] — the node's initial request (step "0",
//!    mentioned but not illustrated in the paper) carrying the recipient's
//!    blockchain address `@R` and the device id,
//! 2. [`LoraFrame::DownlinkEphemeralKey`] — the gateway's ephemeral RSA
//!    public key `ePk` (step 2),
//! 3. [`LoraFrame::DataUplink`] — the double-encrypted message `Em` and the
//!    node's signature `Sig` (step 5). With RSA-512 this is the paper's
//!    "predefined minimum payload of 128 bytes, 64 bytes for the double
//!    data encryption and 64 bytes for the signature", preceded by the
//!    4-byte length header of §5.2.
//!
//! [`EncryptedReading`] is the *inner* 34-byte structure of paper Fig. 4
//! (`len ‖ IV ‖ len ‖ ciphertext`) that the node RSA-wraps into `Em`.

use std::fmt;

/// Size of a blockchain address (HASH160) used as `@R`.
pub const ADDRESS_LEN: usize = 20;

/// The 4-byte PHY length header of §5.2: magic byte, frame type, and a
/// big-endian payload length.
pub const HEADER_LEN: usize = 4;

const MAGIC: u8 = 0xbc;

/// The inner encrypted message of paper Fig. 4.
///
/// For a ≤16-byte sensor reading under AES-256-CBC this serializes to
/// exactly 34 bytes: `1 (IV len) + 16 (IV) + 1 (ct len) + 16 (ciphertext)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncryptedReading {
    /// CBC initialization vector.
    pub iv: [u8; 16],
    /// AES-256-CBC ciphertext (multiple of 16 bytes).
    pub ciphertext: Vec<u8>,
}

/// Errors from frame encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Input ended before the structure was complete.
    Truncated,
    /// Magic byte or frame type unknown.
    BadHeader(u8),
    /// A declared length was inconsistent.
    BadLength {
        /// Length a prefix claimed.
        declared: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// Payload exceeds what the spreading factor permits.
    PayloadTooLarge {
        /// Attempted payload length.
        len: usize,
        /// Regional maximum.
        max: usize,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "frame truncated"),
            FrameError::BadHeader(b) => write!(f, "bad frame header byte 0x{b:02x}"),
            FrameError::BadLength {
                declared,
                available,
            } => {
                write!(
                    f,
                    "declared length {declared} but {available} bytes available"
                )
            }
            FrameError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds radio limit {max}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl EncryptedReading {
    /// Serializes to the Fig. 4 layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + 16 + self.ciphertext.len());
        out.push(16u8);
        out.extend_from_slice(&self.iv);
        out.push(self.ciphertext.len() as u8);
        out.extend_from_slice(&self.ciphertext);
        out
    }

    /// Parses the Fig. 4 layout.
    ///
    /// # Errors
    ///
    /// [`FrameError`] on truncation or inconsistent lengths.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        if bytes.len() < 18 {
            return Err(FrameError::Truncated);
        }
        if bytes[0] != 16 {
            return Err(FrameError::BadLength {
                declared: bytes[0] as usize,
                available: 16,
            });
        }
        let mut iv = [0u8; 16];
        iv.copy_from_slice(&bytes[1..17]);
        let ct_len = bytes[17] as usize;
        let rest = &bytes[18..];
        if rest.len() != ct_len {
            return Err(FrameError::BadLength {
                declared: ct_len,
                available: rest.len(),
            });
        }
        Ok(EncryptedReading {
            iv,
            ciphertext: rest.to_vec(),
        })
    }

    /// Total encoded size.
    pub fn encoded_len(&self) -> usize {
        2 + 16 + self.ciphertext.len()
    }
}

/// A frame on the LoRa radio.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoraFrame {
    /// Node → gateway: "I have data for `@R`, give me an ephemeral key."
    UplinkRequest {
        /// The sending device's identifier.
        device_id: u32,
        /// Blockchain address of the home recipient.
        recipient: [u8; ADDRESS_LEN],
    },
    /// Gateway → node: the serialized ephemeral RSA public key.
    DownlinkEphemeralKey {
        /// Target device.
        device_id: u32,
        /// `RsaPublicKey::to_bytes()` payload.
        public_key: Vec<u8>,
    },
    /// Node → gateway: the encrypted message and its signature.
    DataUplink {
        /// The sending device's identifier.
        device_id: u32,
        /// Blockchain address of the home recipient (`@R`).
        recipient: [u8; ADDRESS_LEN],
        /// RSA-wrapped [`EncryptedReading`] (`Em`, one RSA block).
        em: Vec<u8>,
        /// Node signature over `Em ‖ ePk` (`Sig`, one RSA block).
        sig: Vec<u8>,
    },
}

const TYPE_REQUEST: u8 = 1;
const TYPE_EPHEMERAL_KEY: u8 = 2;
const TYPE_DATA: u8 = 3;

impl LoraFrame {
    /// The frame type byte on the wire.
    fn type_byte(&self) -> u8 {
        match self {
            LoraFrame::UplinkRequest { .. } => TYPE_REQUEST,
            LoraFrame::DownlinkEphemeralKey { .. } => TYPE_EPHEMERAL_KEY,
            LoraFrame::DataUplink { .. } => TYPE_DATA,
        }
    }

    /// Serializes header + payload to radio bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        match self {
            LoraFrame::UplinkRequest {
                device_id,
                recipient,
            } => {
                payload.extend_from_slice(&device_id.to_be_bytes());
                payload.extend_from_slice(recipient);
            }
            LoraFrame::DownlinkEphemeralKey {
                device_id,
                public_key,
            } => {
                payload.extend_from_slice(&device_id.to_be_bytes());
                payload.extend_from_slice(public_key);
            }
            LoraFrame::DataUplink {
                device_id,
                recipient,
                em,
                sig,
            } => {
                payload.extend_from_slice(&device_id.to_be_bytes());
                payload.extend_from_slice(recipient);
                payload.extend_from_slice(&(em.len() as u16).to_be_bytes());
                payload.extend_from_slice(em);
                payload.extend_from_slice(&(sig.len() as u16).to_be_bytes());
                payload.extend_from_slice(sig);
            }
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.push(MAGIC);
        out.push(self.type_byte());
        out.extend_from_slice(&(payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Parses radio bytes.
    ///
    /// # Errors
    ///
    /// [`FrameError`] on bad magic, unknown type, or truncation.
    pub fn decode(bytes: &[u8]) -> Result<Self, FrameError> {
        if bytes.len() < HEADER_LEN {
            return Err(FrameError::Truncated);
        }
        let magic = bytes[0];
        if magic != MAGIC {
            return Err(FrameError::BadHeader(magic));
        }
        let frame_type = bytes[1];
        let declared = u16::from_be_bytes([bytes[2], bytes[3]]) as usize;
        let buf = &bytes[HEADER_LEN..];
        if buf.len() != declared {
            return Err(FrameError::BadLength {
                declared,
                available: buf.len(),
            });
        }
        let read_u32 = |b: &[u8]| u32::from_be_bytes([b[0], b[1], b[2], b[3]]);
        match frame_type {
            TYPE_REQUEST => {
                if buf.len() < 4 + ADDRESS_LEN {
                    return Err(FrameError::Truncated);
                }
                let device_id = read_u32(buf);
                let mut recipient = [0u8; ADDRESS_LEN];
                recipient.copy_from_slice(&buf[4..4 + ADDRESS_LEN]);
                Ok(LoraFrame::UplinkRequest {
                    device_id,
                    recipient,
                })
            }
            TYPE_EPHEMERAL_KEY => {
                if buf.len() < 4 {
                    return Err(FrameError::Truncated);
                }
                let device_id = read_u32(buf);
                Ok(LoraFrame::DownlinkEphemeralKey {
                    device_id,
                    public_key: buf[4..].to_vec(),
                })
            }
            TYPE_DATA => {
                if buf.len() < 4 + ADDRESS_LEN + 2 {
                    return Err(FrameError::Truncated);
                }
                let device_id = read_u32(buf);
                let mut recipient = [0u8; ADDRESS_LEN];
                recipient.copy_from_slice(&buf[4..4 + ADDRESS_LEN]);
                let mut rest = &buf[4 + ADDRESS_LEN..];
                let em_len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
                rest = &rest[2..];
                if rest.len() < em_len + 2 {
                    return Err(FrameError::Truncated);
                }
                let em = rest[..em_len].to_vec();
                rest = &rest[em_len..];
                let sig_len = u16::from_be_bytes([rest[0], rest[1]]) as usize;
                rest = &rest[2..];
                if rest.len() != sig_len {
                    return Err(FrameError::BadLength {
                        declared: sig_len,
                        available: rest.len(),
                    });
                }
                let sig = rest.to_vec();
                Ok(LoraFrame::DataUplink {
                    device_id,
                    recipient,
                    em,
                    sig,
                })
            }
            other => Err(FrameError::BadHeader(other)),
        }
    }

    /// Total on-air PHY size (header + payload).
    pub fn phy_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_encrypted_reading_is_34_bytes() {
        let reading = EncryptedReading {
            iv: [0xab; 16],
            ciphertext: vec![0xcd; 16],
        };
        let encoded = reading.encode();
        assert_eq!(encoded.len(), 34, "paper Fig. 4: 34 bytes");
        assert_eq!(EncryptedReading::decode(&encoded).unwrap(), reading);
    }

    #[test]
    fn encrypted_reading_multi_block() {
        let reading = EncryptedReading {
            iv: [1; 16],
            ciphertext: vec![2; 48],
        };
        let round = EncryptedReading::decode(&reading.encode()).unwrap();
        assert_eq!(round, reading);
    }

    #[test]
    fn encrypted_reading_decode_errors() {
        assert_eq!(EncryptedReading::decode(&[]), Err(FrameError::Truncated));
        assert_eq!(
            EncryptedReading::decode(&[0u8; 10]),
            Err(FrameError::Truncated)
        );
        // Wrong IV length marker.
        let mut bad = EncryptedReading {
            iv: [0; 16],
            ciphertext: vec![0; 16],
        }
        .encode();
        bad[0] = 8;
        assert!(matches!(
            EncryptedReading::decode(&bad),
            Err(FrameError::BadLength { .. })
        ));
        // Ciphertext length mismatch.
        let mut bad2 = EncryptedReading {
            iv: [0; 16],
            ciphertext: vec![0; 16],
        }
        .encode();
        bad2.pop();
        assert!(matches!(
            EncryptedReading::decode(&bad2),
            Err(FrameError::BadLength { .. })
        ));
    }

    #[test]
    fn frames_round_trip() {
        let frames = vec![
            LoraFrame::UplinkRequest {
                device_id: 42,
                recipient: [7; ADDRESS_LEN],
            },
            LoraFrame::DownlinkEphemeralKey {
                device_id: 42,
                public_key: vec![9; 71],
            },
            LoraFrame::DataUplink {
                device_id: 42,
                recipient: [7; ADDRESS_LEN],
                em: vec![1; 64],
                sig: vec![2; 64],
            },
        ];
        for frame in frames {
            let bytes = frame.encode();
            assert_eq!(LoraFrame::decode(&bytes).unwrap(), frame);
        }
    }

    #[test]
    fn paper_data_uplink_size() {
        // Em (64) + Sig (64) = the paper's 128-byte minimum payload; our
        // wire adds device id, @R, and two 2-byte length prefixes on top of
        // the 4-byte header.
        let frame = LoraFrame::DataUplink {
            device_id: 1,
            recipient: [0; ADDRESS_LEN],
            em: vec![0; 64],
            sig: vec![0; 64],
        };
        let expected = HEADER_LEN + 4 + ADDRESS_LEN + 2 + 64 + 2 + 64;
        assert_eq!(frame.phy_len(), expected);
        assert_eq!(frame.phy_len(), 160);
    }

    #[test]
    fn decode_rejects_bad_magic_and_type() {
        let good = LoraFrame::UplinkRequest {
            device_id: 1,
            recipient: [0; ADDRESS_LEN],
        }
        .encode();
        let mut bad_magic = good.to_vec();
        bad_magic[0] = 0x00;
        assert!(matches!(
            LoraFrame::decode(&bad_magic),
            Err(FrameError::BadHeader(0))
        ));
        let mut bad_type = good.to_vec();
        bad_type[1] = 0x77;
        assert!(matches!(
            LoraFrame::decode(&bad_type),
            Err(FrameError::BadHeader(0x77))
        ));
    }

    #[test]
    fn decode_rejects_truncation_and_trailing() {
        let good = LoraFrame::DataUplink {
            device_id: 1,
            recipient: [3; ADDRESS_LEN],
            em: vec![1; 64],
            sig: vec![2; 64],
        }
        .encode();
        for cut in [0, 3, 10, good.len() - 1] {
            assert!(LoraFrame::decode(&good[..cut]).is_err(), "cut at {cut}");
        }
        let mut extra = good.to_vec();
        extra.push(0xee);
        assert!(LoraFrame::decode(&extra).is_err());
    }
}
