//! Node energy model.
//!
//! The paper's pitch rests on LoRa's "low power aspect (multi-year life,
//! coin cell operation)". This module prices a BcWAN exchange in
//! millijoules and projects battery life, so the protocol's radio
//! overhead (one extra request frame and one downlink receive per
//! exchange, versus plain LoRaWAN's single uplink) can be quantified.
//!
//! Current-draw defaults follow the SX1276 datasheet (+14 dBm) and a
//! Nucleo-class MCU.

use crate::airtime::time_on_air;
use crate::params::RadioConfig;
use bcwan_sim::SimDuration;

/// Node power characteristics.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Supply voltage (V).
    pub voltage: f64,
    /// Radio transmit current (A) — SX1276 at +14 dBm ≈ 44 mA.
    pub tx_current: f64,
    /// Radio receive current (A) ≈ 12 mA.
    pub rx_current: f64,
    /// MCU active current while processing (A).
    pub mcu_current: f64,
    /// Sleep current (A) — microcontroller + radio in sleep.
    pub sleep_current: f64,
}

impl EnergyModel {
    /// SX1276 + Cortex-M-class MCU on a 3 V coin cell.
    pub fn sx1276_coin_cell() -> Self {
        EnergyModel {
            voltage: 3.0,
            tx_current: 0.044,
            rx_current: 0.012,
            mcu_current: 0.010,
            sleep_current: 0.000_002,
        }
    }

    /// Energy (J) to transmit for `airtime`.
    pub fn tx_energy(&self, airtime: SimDuration) -> f64 {
        self.voltage * self.tx_current * airtime.as_secs_f64()
    }

    /// Energy (J) to receive for `airtime`.
    pub fn rx_energy(&self, airtime: SimDuration) -> f64 {
        self.voltage * self.rx_current * airtime.as_secs_f64()
    }

    /// Energy (J) for `cpu_time` of MCU work (the node's crypto).
    pub fn cpu_energy(&self, cpu_time: SimDuration) -> f64 {
        self.voltage * self.mcu_current * cpu_time.as_secs_f64()
    }

    /// Sleep energy (J) over `duration`.
    pub fn sleep_energy(&self, duration: SimDuration) -> f64 {
        self.voltage * self.sleep_current * duration.as_secs_f64()
    }
}

/// Energy cost of one full BcWAN exchange from the node's side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeEnergy {
    /// Uplink request transmission (J).
    pub request_tx: f64,
    /// Ephemeral-key downlink reception (J).
    pub key_rx: f64,
    /// Node-side crypto (AES + RSA wrap + sign) (J).
    pub crypto: f64,
    /// Data uplink transmission (J).
    pub data_tx: f64,
}

impl ExchangeEnergy {
    /// Total energy per exchange (J).
    pub fn total(&self) -> f64 {
        self.request_tx + self.key_rx + self.crypto + self.data_tx
    }
}

/// Prices one BcWAN exchange: `request_len`/`key_len`/`data_len` are the
/// PHY frame sizes, `crypto_time` the node CPU time (use the cost model's
/// `node_encrypt + node_sign`).
pub fn exchange_energy(
    model: &EnergyModel,
    config: &RadioConfig,
    request_len: usize,
    key_len: usize,
    data_len: usize,
    crypto_time: SimDuration,
) -> ExchangeEnergy {
    ExchangeEnergy {
        request_tx: model.tx_energy(time_on_air(config, request_len)),
        key_rx: model.rx_energy(time_on_air(config, key_len)),
        crypto: model.cpu_energy(crypto_time),
        data_tx: model.tx_energy(time_on_air(config, data_len)),
    }
}

/// Projected battery life in years for a node performing
/// `exchanges_per_day` BcWAN exchanges on a battery of `capacity_mah`
/// milliamp-hours, sleeping otherwise.
pub fn battery_life_years(
    model: &EnergyModel,
    per_exchange: &ExchangeEnergy,
    exchanges_per_day: f64,
    capacity_mah: f64,
) -> f64 {
    assert!(exchanges_per_day >= 0.0, "negative rate");
    let capacity_j = capacity_mah / 1_000.0 * 3_600.0 * model.voltage;
    let day = SimDuration::from_secs(24 * 3600);
    let active_j = per_exchange.total() * exchanges_per_day;
    let sleep_j = model.sleep_energy(day);
    let per_day = active_j + sleep_j;
    capacity_j / per_day / 365.25
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcwan_sim::SimDuration;

    fn paper_exchange() -> (EnergyModel, ExchangeEnergy) {
        let model = EnergyModel::sx1276_coin_cell();
        let cfg = RadioConfig::paper_sf7();
        // BcWAN frames: 28 B request, 79 B key downlink, 160 B data.
        let ex = exchange_energy(&model, &cfg, 28, 79, 160, SimDuration::from_millis(450));
        (model, ex)
    }

    #[test]
    fn exchange_energy_is_millijoule_scale() {
        let (_, ex) = paper_exchange();
        let mj = ex.total() * 1e3;
        assert!((10.0..120.0).contains(&mj), "exchange cost {mj} mJ");
        // Transmit dominates receive.
        assert!(ex.data_tx > ex.key_rx);
    }

    #[test]
    fn battery_life_multi_year_at_modest_rates() {
        // The intro's "multi-year life, coin cell operation": a 1000 mAh
        // cell at 24 exchanges/day must exceed 2 years.
        let (model, ex) = paper_exchange();
        let years = battery_life_years(&model, &ex, 24.0, 1000.0);
        assert!(years > 2.0, "battery life {years:.1} years");
        // Saturating the duty cycle (≈ 3900/day) drains far faster.
        let saturated = battery_life_years(&model, &ex, 3900.0, 1000.0);
        assert!(saturated < 1.0, "saturated life {saturated:.2} years");
        assert!(years > saturated * 10.0);
    }

    #[test]
    fn sleep_floor_bounds_battery_life() {
        // Even at zero exchanges the sleep current caps the lifetime.
        let (model, ex) = paper_exchange();
        let idle_years = battery_life_years(&model, &ex, 0.0, 1000.0);
        // 2 µA on 1000 mAh ≈ 57 years — finite, sleep-limited.
        assert!((30.0..100.0).contains(&idle_years), "{idle_years}");
    }

    #[test]
    fn higher_sf_costs_more_energy() {
        let model = EnergyModel::sx1276_coin_cell();
        let sf7 = exchange_energy(
            &model,
            &RadioConfig::paper_sf7(),
            28,
            79,
            160,
            SimDuration::ZERO,
        );
        let sf9 = exchange_energy(
            &model,
            &RadioConfig::with_sf(crate::params::SpreadingFactor::Sf9),
            28,
            79,
            160,
            SimDuration::ZERO,
        );
        assert!(sf9.total() > sf7.total() * 2.0, "SF9 should cost >2× SF7");
    }

    #[test]
    fn energy_components_accounted() {
        let (_, ex) = paper_exchange();
        let sum = ex.request_tx + ex.key_rx + ex.crypto + ex.data_tx;
        assert!((ex.total() - sum).abs() < 1e-15);
        assert!(ex.request_tx > 0.0 && ex.key_rx > 0.0 && ex.crypto > 0.0);
    }
}
