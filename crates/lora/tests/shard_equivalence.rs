//! Pins the two radio-path implementations to each other and to the
//! thread count:
//!
//! - **Scalar ≡ columnar**: for the same seed, the struct-of-arrays
//!   sharded world must produce bit-identical aggregate counters to the
//!   per-`Radio` reference — including the f64 airtime/energy sums,
//!   which only works if both paths consume RNG draws and accumulate
//!   floats in exactly the documented order.
//! - **Thread invariance**: stepping the sharded world with 1, 4 or 8
//!   worker threads must not change a single counter (per-shard
//!   `SimRng::stream`s plus merge-in-shard-order).
//! - **Determinism**: same seed ⇒ same counters; different seed ⇒
//!   different counters.

use bcwan_lora::mac::MacConfig;
use bcwan_lora::params::SpreadingFactor;
use bcwan_lora::shard::{ScalarFleet, ShardConfig, ShardCounters, ShardedLora};
use bcwan_sim::{SimDuration, SimTime};

fn run_columnar(cfg: &ShardConfig, until_s: u64, threads: usize) -> ShardCounters {
    let mut world = ShardedLora::new(cfg);
    world.step_until(SimTime::from_micros(until_s * 1_000_000), threads);
    world.counters()
}

fn run_scalar(cfg: &ShardConfig, until_s: u64) -> ShardCounters {
    let mut fleet = ScalarFleet::new(cfg);
    fleet.step_until(SimTime::from_micros(until_s * 1_000_000));
    fleet.counters()
}

/// Busy enough that every mechanism (arrivals, duty blocking, CCA,
/// collisions, capture, demod saturation) fires within the horizon.
fn busy_cfg(seed: u64, mac: MacConfig, sf_fixed: Option<SpreadingFactor>) -> ShardConfig {
    ShardConfig {
        mac,
        sf_fixed,
        mean_interval: SimDuration::from_secs(20),
        channels: 2,
        ..ShardConfig::dense(3, 150, seed)
    }
}

#[test]
fn scalar_and_columnar_agree_pure_aloha() {
    let cfg = busy_cfg(101, MacConfig::pure_aloha(), None);
    let columnar = run_columnar(&cfg, 300, 1);
    let scalar = run_scalar(&cfg, 300);
    assert_eq!(columnar, scalar);
    assert!(columnar.fired > 100, "{columnar:?}");
    assert!(columnar.lost_collision > 0, "{columnar:?}");
}

#[test]
fn scalar_and_columnar_agree_full_csma() {
    let cfg = busy_cfg(202, MacConfig::csma(), None);
    let columnar = run_columnar(&cfg, 300, 1);
    let scalar = run_scalar(&cfg, 300);
    assert_eq!(columnar, scalar);
    assert!(columnar.cca_busy > 0, "{columnar:?}");
    assert!(columnar.delivered > 0, "{columnar:?}");
}

#[test]
fn scalar_and_columnar_agree_fixed_sf_saturated_gateway() {
    let mac = MacConfig {
        cca: true,
        backoff_base_s: 0.5,
        capture_threshold_db: 6.0,
        demod_slots: 1,
    };
    let cfg = ShardConfig {
        mean_interval: SimDuration::from_secs(4),
        ..busy_cfg(303, mac, Some(SpreadingFactor::Sf7))
    };
    let columnar = run_columnar(&cfg, 300, 1);
    let scalar = run_scalar(&cfg, 300);
    assert_eq!(columnar, scalar);
    assert!(columnar.demod_dropped > 0, "{columnar:?}");
}

#[test]
fn thread_count_does_not_change_results() {
    let cfg = ShardConfig {
        mean_interval: SimDuration::from_secs(30),
        ..ShardConfig::dense(8, 100, 404)
    };
    let t1 = run_columnar(&cfg, 600, 1);
    let t4 = run_columnar(&cfg, 600, 4);
    let t8 = run_columnar(&cfg, 600, 8);
    assert_eq!(t1, t4, "4 threads diverged from 1");
    assert_eq!(t1, t8, "8 threads diverged from 1");
    assert!(t1.delivered > 0, "{t1:?}");
    // More workers than shards is clamped, not an error.
    let t99 = run_columnar(&cfg, 600, 99);
    assert_eq!(t1, t99);
}

#[test]
fn same_seed_reproduces_different_seed_diverges() {
    let cfg = busy_cfg(7, MacConfig::csma(), None);
    let a = run_columnar(&cfg, 200, 2);
    let b = run_columnar(&cfg, 200, 3);
    assert_eq!(a, b);
    let other = busy_cfg(8, MacConfig::csma(), None);
    let c = run_columnar(&other, 200, 2);
    assert_ne!(a, c, "different seeds produced identical worlds");
}

#[test]
fn aggregate_airtime_stays_under_duty_budget() {
    // World-level restatement of the governor invariant: with saturated
    // queues, total granted airtime tracks duty × elapsed × nodes.
    let cfg = ShardConfig {
        mean_interval: SimDuration::from_secs(1),
        mac: MacConfig::pure_aloha(),
        ..ShardConfig::dense(4, 64, 505)
    };
    let horizon_s = 900u64;
    let c = run_columnar(&cfg, horizon_s, 2);
    let budget = cfg.duty * horizon_s as f64 * cfg.total_nodes() as f64;
    // Slack: one worst-case (SF12) frame per node.
    let sf12 = bcwan_lora::airtime::time_on_air(
        &bcwan_lora::params::RadioConfig {
            spreading_factor: SpreadingFactor::Sf12,
            ..cfg.radio
        },
        cfg.frame_len,
    )
    .as_secs_f64();
    assert!(
        c.airtime_s <= budget + cfg.total_nodes() as f64 * sf12,
        "airtime {} vs budget {budget}",
        c.airtime_s
    );
}
