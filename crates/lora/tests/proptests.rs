//! Property tests: frame codecs, duty-cycle budget, airtime monotonicity.

// QUARANTINED (see ROADMAP "Open items"): the proptest crate cannot be
// fetched in the offline build environment, so this suite only compiles
// with `--features proptest-tests` after restoring the proptest
// dev-dependency in Cargo.toml. The properties themselves are still the
// reference spec for this crate's invariants.
#![cfg(feature = "proptest-tests")]

use bcwan_lora::airtime::time_on_air;
use bcwan_lora::duty_cycle::DutyCycleGovernor;
use bcwan_lora::frame::{EncryptedReading, LoraFrame, ADDRESS_LEN};
use bcwan_lora::params::{RadioConfig, SpreadingFactor};
use bcwan_sim::{SimDuration, SimTime};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = LoraFrame> {
    prop_oneof![
        (any::<u32>(), any::<[u8; ADDRESS_LEN]>()).prop_map(|(device_id, recipient)| {
            LoraFrame::UplinkRequest {
                device_id,
                recipient,
            }
        }),
        (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..200)).prop_map(
            |(device_id, public_key)| LoraFrame::DownlinkEphemeralKey {
                device_id,
                public_key
            }
        ),
        (
            any::<u32>(),
            any::<[u8; ADDRESS_LEN]>(),
            proptest::collection::vec(any::<u8>(), 0..128),
            proptest::collection::vec(any::<u8>(), 0..128),
        )
            .prop_map(|(device_id, recipient, em, sig)| LoraFrame::DataUplink {
                device_id,
                recipient,
                em,
                sig,
            }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn frame_codec_round_trip(frame in arb_frame()) {
        let bytes = frame.encode();
        prop_assert_eq!(LoraFrame::decode(&bytes).unwrap(), frame);
    }

    #[test]
    fn frame_decoder_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..300)) {
        let _ = LoraFrame::decode(&bytes);
    }

    #[test]
    fn truncated_frames_error_not_panic(frame in arb_frame(), cut in any::<prop::sample::Index>()) {
        let bytes = frame.encode();
        let cut = cut.index(bytes.len());
        prop_assume!(cut < bytes.len());
        prop_assert!(LoraFrame::decode(&bytes[..cut]).is_err());
    }

    #[test]
    fn encrypted_reading_round_trip(
        iv in any::<[u8; 16]>(),
        blocks in 1usize..8,
        fill in any::<u8>(),
    ) {
        let reading = EncryptedReading { iv, ciphertext: vec![fill; blocks * 16] };
        prop_assert_eq!(
            EncryptedReading::decode(&reading.encode()).unwrap(),
            reading
        );
    }

    /// The governor never grants more airtime than the duty fraction of
    /// elapsed time (plus one frame of slack).
    #[test]
    fn duty_budget_never_exceeded(
        duty_pct in 1u32..100,
        attempts in proptest::collection::vec((0u64..60_000_000, 1u64..500_000), 1..80),
    ) {
        let duty = f64::from(duty_pct) / 100.0;
        let mut gov = DutyCycleGovernor::new(duty);
        let mut now_us = 0u64;
        let mut max_air = SimDuration::ZERO;
        for (advance, air_us) in attempts {
            now_us += advance;
            let airtime = SimDuration::from_micros(air_us);
            max_air = max_air.max(airtime);
            let _ = gov.try_transmit(SimTime::from_micros(now_us), airtime);
            prop_assert!(
                gov.within_budget(SimTime::from_micros(now_us + air_us), max_air),
                "budget exceeded at t={now_us}"
            );
        }
    }

    /// Airtime is monotone in payload length for every SF.
    #[test]
    fn airtime_monotone_in_payload(
        len_a in 0usize..220,
        len_b in 0usize..220,
    ) {
        prop_assume!(len_a < len_b);
        for sf in SpreadingFactor::ALL {
            let cfg = RadioConfig::with_sf(sf);
            prop_assert!(
                time_on_air(&cfg, len_a) <= time_on_air(&cfg, len_b),
                "{sf}: airtime({len_a}) > airtime({len_b})"
            );
        }
    }

    /// Airtime is monotone in spreading factor for every payload.
    #[test]
    fn airtime_monotone_in_sf(len in 0usize..220) {
        let mut prev = SimDuration::ZERO;
        for sf in SpreadingFactor::ALL {
            let t = time_on_air(&RadioConfig::with_sf(sf), len);
            prop_assert!(t >= prev, "{sf} not slower for len {len}");
            prev = t;
        }
    }
}
