//! Randomized invariant tests for `DutyCycleGovernor`.
//!
//! The governor is the one component every transmit path (per-`Radio`
//! scalar and columnar sharded alike) relies on for regulatory
//! correctness, so its invariants are pinned under adversarial random
//! attempt patterns with fixed StdRng seeds:
//!
//! - granted airtime never exceeds `duty × elapsed` (plus one frame of
//!   in-flight slack),
//! - `next_allowed` is monotone non-decreasing,
//! - a rejected attempt reports exactly the current `next_allowed` and
//!   changes no state.

use bcwan_lora::duty_cycle::DutyCycleGovernor;
use bcwan_sim::{SimDuration, SimRng, SimTime};

/// Drives a governor with randomly timed, randomly sized attempts and
/// checks every invariant after every attempt.
fn hammer(seed: u64, duty: f64, attempts: u32) {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut gov = DutyCycleGovernor::new(duty);
    let max_airtime = SimDuration::from_millis(500);
    let mut now = SimTime::ZERO;
    let mut prev_next_allowed = gov.next_allowed();
    let mut granted = 0u64;
    for _ in 0..attempts {
        // Jump forward by anything from 0 to ~3 off-time windows; a zero
        // advance retries at the same instant.
        let jump = rng.uniform_range(0.0, 3.0 * max_airtime.as_secs_f64() / duty);
        now += SimDuration::from_secs_f64(jump * rng.uniform());
        let airtime = SimDuration::from_micros(1 + (rng.uniform() * 500_000.0) as u64);
        let before_total = gov.total_airtime();
        let before_next = gov.next_allowed();
        match gov.try_transmit(now, airtime) {
            Ok(()) => {
                granted += 1;
                assert!(now >= before_next, "grant before the off-time elapsed");
                assert_eq!(gov.total_airtime(), before_total + airtime);
            }
            Err(deadline) => {
                assert_eq!(deadline, before_next, "rejection must report next_allowed");
                assert_eq!(gov.total_airtime(), before_total, "rejection mutated state");
                assert_eq!(
                    gov.next_allowed(),
                    before_next,
                    "rejection moved the window"
                );
            }
        }
        assert!(
            gov.next_allowed() >= prev_next_allowed,
            "next_allowed went backwards: {} -> {}",
            prev_next_allowed,
            gov.next_allowed()
        );
        prev_next_allowed = gov.next_allowed();
        assert!(
            gov.within_budget(now.max(gov.next_allowed()), max_airtime),
            "budget violated at {now}: airtime {:?} duty {duty}",
            gov.total_airtime()
        );
    }
    assert_eq!(gov.transmissions(), granted);
    assert!(granted > 0, "seed {seed} never transmitted");
}

#[test]
fn invariants_hold_at_one_percent() {
    for seed in [1, 2, 3, 42] {
        hammer(seed, 0.01, 2_000);
    }
}

#[test]
fn invariants_hold_at_ten_percent() {
    for seed in [7, 99] {
        hammer(seed, 0.1, 2_000);
    }
}

#[test]
fn invariants_hold_at_full_duty() {
    hammer(1234, 1.0, 2_000);
}

#[test]
fn greedy_sender_hits_exact_ceiling() {
    // A sender that retries at every next_allowed converges on exactly
    // duty × elapsed airtime usage.
    let mut gov = DutyCycleGovernor::new(0.01);
    let airtime = SimDuration::from_millis(220);
    let mut now = SimTime::ZERO;
    for _ in 0..200 {
        gov.try_transmit(now, airtime).unwrap();
        now = gov.next_allowed();
    }
    let used = gov.total_airtime().as_secs_f64();
    let elapsed = now.as_secs_f64();
    assert!((used / elapsed - 0.01).abs() < 1e-6, "{used} / {elapsed}");
}
