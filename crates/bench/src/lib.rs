//! # bcwan-bench
//!
//! Figure-reproduction harnesses and Criterion micro-benchmarks for the
//! BcWAN paper. Each `--bin` target regenerates one artefact of the
//! evaluation (see DESIGN.md's experiment index):
//!
//! | binary | paper artefact |
//! |---|---|
//! | `fig5_latency` | Fig. 5 — exchange latency, verification off |
//! | `fig6_latency` | Fig. 6 — exchange latency, verification on |
//! | `lora_capacity` | §5.2's "183 messages per sensor per hour" (T-SF) |
//! | `ablation_confirmations` | §6 double-spend vs confirmation depth (A1) |
//! | `ablation_keysize` | §6 RSA size vs LoRa airtime (A2) |
//! | `baseline_reputation` | §4.4 reputation-only baseline (A3) |
//! | `ablation_consensus` | §6 PoW vs PoS (A4) |
//! | `ablation_colocation` | §6 co-located gateways vs WAN latency (A5) |
//! | `chain_throughput` | §5.2 Multichain "1000 tx/s" context (T-TP) |
//!
//! Every binary prints a human-readable table and, with `--json PATH`,
//! writes machine-readable rows for replotting.

#![warn(missing_docs)]

use bcwan_sim::{Bucket, Series};
use serde::Serialize;

/// One experiment's latency distribution, ready for serialization.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyReport {
    /// Which figure/config this is.
    pub label: String,
    /// The paper's reported mean for comparison (seconds).
    pub paper_mean_s: Option<f64>,
    /// Completed exchanges.
    pub completed: usize,
    /// Failed exchanges.
    pub failed: usize,
    /// Measured mean (s).
    pub mean_s: f64,
    /// Standard deviation (s).
    pub std_s: f64,
    /// Minimum (s).
    pub min_s: f64,
    /// Median (s).
    pub p50_s: f64,
    /// 95th percentile (s).
    pub p95_s: f64,
    /// 99th percentile (s).
    pub p99_s: f64,
    /// Maximum (s).
    pub max_s: f64,
    /// Histogram rows `(lo, hi, count)` matching the figure's x-axis.
    pub histogram: Vec<(f64, f64, usize)>,
    /// Simulated seconds consumed.
    pub sim_time_s: f64,
    /// Blocks mined during the run.
    pub blocks_mined: u64,
    /// Verification stalls observed.
    pub stalls: u64,
}

impl LatencyReport {
    /// Builds a report from a latency series plus run counters.
    #[allow(clippy::too_many_arguments)] // flat experiment-counter list
    pub fn from_series(
        label: &str,
        paper_mean_s: Option<f64>,
        series: &Series,
        completed: usize,
        failed: usize,
        sim_time_s: f64,
        blocks_mined: u64,
        stalls: u64,
        hist_max_s: f64,
        buckets: usize,
    ) -> Option<Self> {
        let summary = series.summary()?;
        let histogram = series
            .histogram(0.0, hist_max_s, buckets)
            .into_iter()
            .map(|Bucket { lo, hi, count }| (lo, hi, count))
            .collect();
        Some(LatencyReport {
            label: label.to_string(),
            paper_mean_s,
            completed,
            failed,
            mean_s: summary.mean,
            std_s: summary.std_dev,
            min_s: summary.min,
            p50_s: summary.median,
            p95_s: summary.p95,
            p99_s: summary.p99,
            max_s: summary.max,
            histogram,
            sim_time_s,
            blocks_mined,
            stalls,
        })
    }

    /// Prints the report as the text figure: summary line plus an ASCII
    /// histogram shaped like the paper's latency plots.
    pub fn print(&self) {
        println!("== {} ==", self.label);
        match self.paper_mean_s {
            Some(p) => println!(
                "paper mean {:.3}s | measured mean {:.3}s (std {:.3}, n={})",
                p, self.mean_s, self.std_s, self.completed
            ),
            None => println!(
                "measured mean {:.3}s (std {:.3}, n={})",
                self.mean_s, self.std_s, self.completed
            ),
        }
        println!(
            "min {:.3}  p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}  (failed {})",
            self.min_s, self.p50_s, self.p95_s, self.p99_s, self.max_s, self.failed
        );
        println!(
            "sim time {:.1}s, {} blocks, {} stalls",
            self.sim_time_s, self.blocks_mined, self.stalls
        );
        let peak = self
            .histogram
            .iter()
            .map(|&(_, _, c)| c)
            .max()
            .unwrap_or(1)
            .max(1);
        for &(lo, hi, count) in &self.histogram {
            let bar = "#".repeat(count * 50 / peak);
            println!("{lo:7.2}–{hi:<7.2} {count:6} {bar}");
        }
    }
}

/// Parses `--json PATH` and `N` (positional exchange-count override) from
/// `std::env::args`. Returns `(target_override, json_path)`.
pub fn parse_harness_args() -> (Option<usize>, Option<String>) {
    let mut target = None;
    let mut json = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            json = args.next();
        } else if let Ok(n) = arg.parse::<usize>() {
            target = Some(n);
        }
    }
    (target, json)
}

/// Writes any serializable report to a JSON file.
///
/// # Errors
///
/// I/O or serialization failure.
pub fn write_json<T: Serialize>(path: &str, value: &T) -> std::io::Result<()> {
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_from_series() {
        let series: Series = vec![1.0, 2.0, 3.0].into_iter().collect();
        let report = LatencyReport::from_series(
            "test", Some(1.6), &series, 3, 0, 100.0, 5, 0, 5.0, 5,
        )
        .unwrap();
        assert_eq!(report.completed, 3);
        assert!((report.mean_s - 2.0).abs() < 1e-12);
        assert_eq!(report.histogram.len(), 5);
        assert_eq!(
            report.histogram.iter().map(|&(_, _, c)| c).sum::<usize>(),
            3
        );
    }

    #[test]
    fn empty_series_no_report() {
        let series = Series::new();
        assert!(LatencyReport::from_series("x", None, &series, 0, 0, 0.0, 0, 0, 1.0, 2).is_none());
    }

    #[test]
    fn json_round_trip() {
        let series: Series = vec![1.0].into_iter().collect();
        let report =
            LatencyReport::from_series("j", None, &series, 1, 0, 1.0, 1, 0, 2.0, 2).unwrap();
        let text = serde_json::to_string(&report).unwrap();
        assert!(text.contains("\"label\":\"j\""));
    }
}
