//! # bcwan-bench
//!
//! Figure-reproduction harnesses and micro-benchmarks for the BcWAN
//! paper. Each `--bin` target regenerates one artefact of the evaluation
//! (see DESIGN.md's experiment index):
//!
//! | binary | paper artefact |
//! |---|---|
//! | `fig5_latency` | Fig. 5 — exchange latency, verification off |
//! | `fig6_latency` | Fig. 6 — exchange latency, verification on |
//! | `lora_capacity` | §5.2's "183 messages per sensor per hour" (T-SF) |
//! | `ablation_confirmations` | §6 double-spend vs confirmation depth (A1) |
//! | `ablation_keysize` | §6 RSA size vs LoRa airtime (A2) |
//! | `baseline_reputation` | §4.4 reputation-only baseline (A3) |
//! | `ablation_consensus` | §6 PoW vs PoS (A4) |
//! | `ablation_colocation` | §6 co-located gateways vs WAN latency (A5) |
//! | `chain_throughput` | §5.2 Multichain "1000 tx/s" context (T-TP) |
//! | `node_energy` | E1 — node energy budget and channel contention |
//!
//! Every binary prints a human-readable table and, with `--json PATH`,
//! writes one [`BenchReport`] — the schema-versioned machine-readable
//! document described in EXPERIMENTS.md ("Reading the metrics").

#![warn(missing_docs)]

use bcwan_sim::{Bucket, Json, Registry, Series, Snapshot, SnapshotSeries, Summary};

/// Version stamp every bench JSON document carries as `schema_version`.
///
/// Bump when the shape of [`BenchReport::to_json`] changes incompatibly
/// (renamed keys, moved sections). Adding new keys is not a bump.
///
/// History: v2 added the optional `timeline` section (periodic metric
/// snapshots over sim time); v1 documents carry everything else and
/// remain comparable, so [`bench_compare`] accepts any version in
/// `[`[`MIN_SCHEMA_VERSION`]`, `[`SCHEMA_VERSION`]`]`.
pub const SCHEMA_VERSION: u64 = 2;

/// Oldest document version [`bench_compare`] still accepts. Baselines
/// recorded before the `timeline` section exist at v1 and stay valid:
/// every section the comparison reads is unchanged since then.
pub const MIN_SCHEMA_VERSION: u64 = 1;

/// The one machine-readable document shape all bench binaries emit.
///
/// ```json
/// {
///   "schema_version": 2,
///   "experiment": "fig5_latency",
///   "config": { "target_exchanges": 2000, ... },
///   "rows": [ ... experiment-specific rows ... ],
///   "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} },
///   "phases": { "request_uplink": { "count": ..., "mean_s": ..., ... }, ... },
///   "timeline": { "interval_seconds": ..., "frames": [ { "t": ..., ... } ] }
/// }
/// ```
///
/// `rows` carries the experiment's own table (whatever the figure plots);
/// `metrics` is a [`Registry`] snapshot — for world-driven experiments the
/// full `world.*`/`chain.*`/`net.*` instrumentation, for analytic ones a
/// small registry of run counters; `phases` summarizes the sim-time spans
/// when the run traced them (empty object otherwise).
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// Binary name, e.g. `"fig5_latency"`.
    pub experiment: String,
    /// Run configuration, as an ordered JSON object.
    pub config: Json,
    /// Experiment-specific result rows.
    pub rows: Json,
    /// Metrics registry snapshot.
    pub metrics: Snapshot,
    /// Phase-latency summaries, `(phase name, summary)` per traced span.
    pub phases: Vec<(String, Summary)>,
    /// Periodic metric snapshots over sim time (schema v2). `None` — the
    /// run recorded no timeline — omits the `timeline` key entirely.
    pub timeline: Option<SnapshotSeries>,
}

impl BenchReport {
    /// Starts a report with an empty config, no rows, and empty metrics.
    pub fn new(experiment: &str) -> Self {
        BenchReport {
            experiment: experiment.to_string(),
            config: Json::object(),
            rows: Json::Array(Vec::new()),
            metrics: Registry::new().snapshot(),
            phases: Vec::new(),
            timeline: None,
        }
    }

    /// Appends one config key.
    #[must_use]
    pub fn config(mut self, key: &str, value: Json) -> Self {
        self.config = self.config.with(key, value);
        self
    }

    /// Sets the experiment rows.
    #[must_use]
    pub fn rows(mut self, rows: Json) -> Self {
        self.rows = rows;
        self
    }

    /// Attaches a registry snapshot.
    #[must_use]
    pub fn metrics(mut self, snapshot: Snapshot) -> Self {
        self.metrics = snapshot;
        self
    }

    /// Attaches phase series (as produced by a traced `World::run`),
    /// keeping each phase that has at least one sample.
    #[must_use]
    pub fn phases(mut self, phases: &[(String, Series)]) -> Self {
        self.phases = phases
            .iter()
            .filter_map(|(name, series)| series.summary().map(|s| (name.clone(), s)))
            .collect();
        self
    }

    /// Attaches the run's periodic metric timeline (schema v2 section;
    /// see EXPERIMENTS.md, "Reading the metrics"). Empty series are
    /// dropped so an unused `--timeline` flag doesn't emit `[]`.
    #[must_use]
    pub fn timeline(mut self, series: Option<SnapshotSeries>) -> Self {
        self.timeline = series.filter(|s| !s.is_empty());
        self
    }

    /// Renders the schema-versioned document.
    pub fn to_json(&self) -> Json {
        let phases = Json::Object(
            self.phases
                .iter()
                .map(|(name, s)| (name.clone(), summary_json(s)))
                .collect(),
        );
        let mut doc = Json::object()
            .with("schema_version", Json::uint(SCHEMA_VERSION))
            .with("experiment", Json::str(&self.experiment))
            .with("config", self.config.clone())
            .with("rows", self.rows.clone())
            .with("metrics", self.metrics.to_json())
            .with("phases", phases);
        if let Some(timeline) = &self.timeline {
            doc = doc.with("timeline", timeline.to_json());
        }
        doc
    }

    /// Writes the pretty-rendered document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the I/O failure.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json().render_pretty())
    }

    /// Prints the phase table (no-op when the run was untraced).
    pub fn print_phases(&self) {
        if self.phases.is_empty() {
            return;
        }
        println!("phase                 count    mean(s)     p50(s)     p95(s)");
        for (name, s) in &self.phases {
            println!(
                "{name:20} {:>6}  {:>9.4}  {:>9.4}  {:>9.4}",
                s.count, s.mean, s.median, s.p95
            );
        }
    }
}

/// Renders a [`Summary`] as the JSON object used in `phases`.
pub fn summary_json(s: &Summary) -> Json {
    Json::object()
        .with("count", Json::size(s.count))
        .with("mean_s", Json::num(s.mean))
        .with("std_s", Json::num(s.std_dev))
        .with("min_s", Json::num(s.min))
        .with("p50_s", Json::num(s.median))
        .with("p95_s", Json::num(s.p95))
        .with("p99_s", Json::num(s.p99))
        .with("max_s", Json::num(s.max))
}

/// One experiment's latency distribution, ready for rendering.
#[derive(Debug, Clone)]
pub struct LatencyReport {
    /// Which figure/config this is.
    pub label: String,
    /// The paper's reported mean for comparison (seconds).
    pub paper_mean_s: Option<f64>,
    /// Completed exchanges.
    pub completed: usize,
    /// Failed exchanges.
    pub failed: usize,
    /// Measured mean (s).
    pub mean_s: f64,
    /// Standard deviation (s).
    pub std_s: f64,
    /// Minimum (s).
    pub min_s: f64,
    /// Median (s).
    pub p50_s: f64,
    /// 95th percentile (s).
    pub p95_s: f64,
    /// 99th percentile (s).
    pub p99_s: f64,
    /// Maximum (s).
    pub max_s: f64,
    /// Histogram rows `(lo, hi, count)` matching the figure's x-axis.
    pub histogram: Vec<(f64, f64, usize)>,
    /// Simulated seconds consumed.
    pub sim_time_s: f64,
    /// Blocks mined during the run.
    pub blocks_mined: u64,
    /// Verification stalls observed.
    pub stalls: u64,
}

impl LatencyReport {
    /// Builds a report from a latency series plus run counters.
    #[allow(clippy::too_many_arguments)] // flat experiment-counter list
    pub fn from_series(
        label: &str,
        paper_mean_s: Option<f64>,
        series: &Series,
        completed: usize,
        failed: usize,
        sim_time_s: f64,
        blocks_mined: u64,
        stalls: u64,
        hist_max_s: f64,
        buckets: usize,
    ) -> Option<Self> {
        let summary = series.summary()?;
        let histogram = series
            .histogram(0.0, hist_max_s, buckets)
            .into_iter()
            .map(|Bucket { lo, hi, count }| (lo, hi, count))
            .collect();
        Some(LatencyReport {
            label: label.to_string(),
            paper_mean_s,
            completed,
            failed,
            mean_s: summary.mean,
            std_s: summary.std_dev,
            min_s: summary.min,
            p50_s: summary.median,
            p95_s: summary.p95,
            p99_s: summary.p99,
            max_s: summary.max,
            histogram,
            sim_time_s,
            blocks_mined,
            stalls,
        })
    }

    /// Prints the report as the text figure: summary line plus an ASCII
    /// histogram shaped like the paper's latency plots.
    pub fn print(&self) {
        println!("== {} ==", self.label);
        match self.paper_mean_s {
            Some(p) => println!(
                "paper mean {:.3}s | measured mean {:.3}s (std {:.3}, n={})",
                p, self.mean_s, self.std_s, self.completed
            ),
            None => println!(
                "measured mean {:.3}s (std {:.3}, n={})",
                self.mean_s, self.std_s, self.completed
            ),
        }
        println!(
            "min {:.3}  p50 {:.3}  p95 {:.3}  p99 {:.3}  max {:.3}  (failed {})",
            self.min_s, self.p50_s, self.p95_s, self.p99_s, self.max_s, self.failed
        );
        println!(
            "sim time {:.1}s, {} blocks, {} stalls",
            self.sim_time_s, self.blocks_mined, self.stalls
        );
        let peak = self
            .histogram
            .iter()
            .map(|&(_, _, c)| c)
            .max()
            .unwrap_or(1)
            .max(1);
        for &(lo, hi, count) in &self.histogram {
            let bar = "#".repeat(count * 50 / peak);
            println!("{lo:7.2}–{hi:<7.2} {count:6} {bar}");
        }
    }

    /// Renders the report as one JSON object (a `rows` entry).
    pub fn to_json(&self) -> Json {
        let histogram = Json::Array(
            self.histogram
                .iter()
                .map(|&(lo, hi, count)| {
                    Json::Array(vec![Json::num(lo), Json::num(hi), Json::size(count)])
                })
                .collect(),
        );
        Json::object()
            .with("label", Json::str(&self.label))
            .with(
                "paper_mean_s",
                self.paper_mean_s.map(Json::num).unwrap_or(Json::Null),
            )
            .with("completed", Json::size(self.completed))
            .with("failed", Json::size(self.failed))
            .with("mean_s", Json::num(self.mean_s))
            .with("std_s", Json::num(self.std_s))
            .with("min_s", Json::num(self.min_s))
            .with("p50_s", Json::num(self.p50_s))
            .with("p95_s", Json::num(self.p95_s))
            .with("p99_s", Json::num(self.p99_s))
            .with("max_s", Json::num(self.max_s))
            .with("histogram", histogram)
            .with("sim_time_s", Json::num(self.sim_time_s))
            .with("blocks_mined", Json::uint(self.blocks_mined))
            .with("stalls", Json::uint(self.stalls))
    }
}

/// Per-iteration timing statistics from one [`bench_fn_stats`] run.
#[derive(Debug, Clone)]
pub struct BenchStats {
    /// Mean seconds per iteration.
    pub mean_s: f64,
    /// Median seconds per iteration.
    pub median_s: f64,
    /// 95th-percentile seconds per iteration.
    pub p95_s: f64,
    /// Iterations timed.
    pub iters: u32,
    /// Iterations flagged as outliers: more than `3 · 1.4826 · MAD` from
    /// the median (the scaled-MAD rule; 1.4826 makes MAD consistent with
    /// σ under normality). A noisy machine shows up here instead of
    /// silently skewing the mean.
    pub outliers: usize,
    /// Lower bound of the 95% bootstrap confidence interval for the mean
    /// (percentile method over [`BOOTSTRAP_RESAMPLES`] resamples).
    pub ci95_lo_s: f64,
    /// Upper bound of the 95% bootstrap confidence interval for the mean.
    pub ci95_hi_s: f64,
}

/// Resamples drawn by [`bootstrap_ci_mean`] inside [`bench_fn_stats`].
pub const BOOTSTRAP_RESAMPLES: usize = 200;

impl BenchStats {
    /// Whether the mean is trustworthy: no outlier among the samples and
    /// the mean within 20 % of the median.
    pub fn is_stable(&self) -> bool {
        self.outliers == 0 && (self.mean_s - self.median_s).abs() <= 0.2 * self.median_s.max(1e-12)
    }
}

/// 95% bootstrap confidence interval for the mean of `samples`
/// (percentile method): draw `resamples` same-size resamples with
/// replacement, take each resample's mean, and return the 2.5th and
/// 97.5th percentiles of those means. The resampler is a seeded
/// xorshift64, so reruns over the same samples return the same interval.
/// Degenerate inputs (empty, single sample, or `resamples == 0`)
/// collapse to `(mean, mean)`.
pub fn bootstrap_ci_mean(samples: &[f64], resamples: usize, seed: u64) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len();
    let mean = samples.iter().sum::<f64>() / n as f64;
    if n == 1 || resamples == 0 {
        return (mean, mean);
    }
    let mut state = seed.max(1);
    let mut means = Vec::with_capacity(resamples);
    for _ in 0..resamples {
        let mut sum = 0.0;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            sum += samples[(state % n as u64) as usize];
        }
        means.push(sum / n as f64);
    }
    means.sort_by(|a, b| a.total_cmp(b));
    (percentile(&means, 0.025), percentile(&means, 0.975))
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (q * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Times `f` per-iteration over `iters` iterations (after
/// `max(iters/10, 1)` warm-up calls) and returns the full [`BenchStats`]:
/// mean, median, p95, and MAD-based outlier count. The plain-`main`
/// replacement for the Criterion harness the offline build cannot fetch
/// (see ROADMAP "Open items").
pub fn bench_fn_stats<R>(iters: u32, mut f: impl FnMut() -> R) -> BenchStats {
    let iters = iters.max(1);
    for _ in 0..(iters / 10).max(1) {
        std::hint::black_box(f());
    }
    let mut samples = Vec::with_capacity(iters as usize);
    for _ in 0..iters {
        let t0 = std::time::Instant::now();
        std::hint::black_box(f());
        samples.push(t0.elapsed().as_secs_f64());
    }
    let mean_s = samples.iter().sum::<f64>() / f64::from(iters);
    let mut sorted = samples.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median_s = percentile(&sorted, 0.5);
    let p95_s = percentile(&sorted, 0.95);
    let outliers = mad_outlier_flags(&samples)
        .into_iter()
        .filter(|flagged| *flagged)
        .count();
    let (ci95_lo_s, ci95_hi_s) =
        bootstrap_ci_mean(&samples, BOOTSTRAP_RESAMPLES, 0x9e37_79b9_7f4a_7c15);
    BenchStats {
        mean_s,
        median_s,
        p95_s,
        iters,
        outliers,
        ci95_lo_s,
        ci95_hi_s,
    }
}

/// Times `f` over `iters` iterations, prints one table line
/// (mean with its 95% bootstrap CI, median, p95, plus an outlier flag
/// when the MAD rule fires), and returns the per-iteration mean in
/// seconds.
pub fn bench_fn<R>(name: &str, iters: u32, f: impl FnMut() -> R) -> f64 {
    let stats = bench_fn_stats(iters, f);
    let (scale, unit) = if stats.median_s < 1e-3 {
        (1e6, "µs")
    } else {
        (1e3, "ms")
    };
    let flag = if stats.outliers > 0 {
        format!("  [{} outliers]", stats.outliers)
    } else {
        String::new()
    };
    println!(
        "{name:<48} mean {:>9.2} {unit}  ci95 [{:>8.2}, {:>8.2}] {unit}  p50 {:>9.2} {unit}  p95 {:>9.2} {unit}  ({} iters){flag}",
        stats.mean_s * scale,
        stats.ci95_lo_s * scale,
        stats.ci95_hi_s * scale,
        stats.median_s * scale,
        stats.p95_s * scale,
        stats.iters,
    );
    stats.mean_s
}

/// Per-element scaled-MAD outlier flags (the rule [`bench_fn_stats`]
/// applies to iteration timings): an element is flagged when it lies more
/// than `3 · 1.4826 · MAD` from the median. With degenerate MAD (over half
/// the samples identical) any sample differing from the median is flagged.
pub fn mad_outlier_flags(samples: &[f64]) -> Vec<bool> {
    if samples.is_empty() {
        return Vec::new();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let median = percentile(&sorted, 0.5);
    let mut deviations: Vec<f64> = samples.iter().map(|s| (s - median).abs()).collect();
    deviations.sort_by(|a, b| a.total_cmp(b));
    let mad = percentile(&deviations, 0.5);
    let cutoff = 3.0 * 1.4826 * mad;
    if cutoff > 0.0 {
        samples
            .iter()
            .map(|s| (s - median).abs() > cutoff)
            .collect()
    } else {
        samples.iter().map(|s| *s != median).collect()
    }
}

/// Which way a metric should move to count as an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricDirection {
    /// Throughput-style metric (`*_per_s`, `*throughput*`).
    HigherIsBetter,
    /// Latency-style metric (`*_s`, `*latency*`).
    LowerIsBetter,
    /// Event counts and configuration echoes — compared but never gated on.
    Informational,
}

/// Classifies a metric name by the report's naming conventions. CI-bound
/// gauges (`*_ci95_lo_s`/`*_ci95_hi_s`) describe measurement noise, not
/// performance, so they are never gated on.
pub fn metric_direction(name: &str) -> MetricDirection {
    if name.contains("_ci95_") {
        MetricDirection::Informational
    } else if name.contains("per_s") || name.contains("throughput") {
        MetricDirection::HigherIsBetter
    } else if name.ends_with("_s") || name.contains("latency") {
        MetricDirection::LowerIsBetter
    } else {
        MetricDirection::Informational
    }
}

/// One metric's baseline-vs-current comparison from [`bench_compare`].
#[derive(Debug, Clone)]
pub struct MetricDelta {
    /// Qualified metric name (`counters.…`, `gauges.…`, `phases.….mean_s`).
    pub name: String,
    /// Value in the baseline report.
    pub baseline: f64,
    /// Value in the current report.
    pub current: f64,
    /// Relative change in percent (positive = current is larger);
    /// `+∞` when the baseline was zero and the current value is not.
    pub delta_pct: f64,
    /// How this metric is judged.
    pub direction: MetricDirection,
    /// Whether the change exceeds the threshold in the bad direction
    /// (and, when both reports carry CI bounds, the intervals separate).
    pub regression: bool,
    /// Both reports carried 95% CI bounds for this metric
    /// (`<stem>_ci95_lo_s`/`_hi_s` gauges) and the intervals overlap:
    /// an over-threshold delta is then measurement noise, and
    /// `regression` stays false.
    pub within_noise: bool,
    /// Scaled-MAD flag over all delta percentages: this metric moved very
    /// differently from the rest of the report (see [`mad_outlier_flags`]).
    pub outlier: bool,
}

/// Extracts every comparable scalar from a bench report document:
/// metrics counters and gauges, plus each phase's `mean_s`.
fn collect_comparables(doc: &Json) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for section in ["counters", "gauges"] {
        if let Some(Json::Object(entries)) = doc.get("metrics").and_then(|m| m.get(section)) {
            for (name, value) in entries {
                if let Some(v) = value.as_f64() {
                    out.push((format!("{section}.{name}"), v));
                }
            }
        }
    }
    if let Some(Json::Object(phases)) = doc.get("phases") {
        for (name, summary) in phases {
            if let Some(v) = summary.get("mean_s").and_then(Json::as_f64) {
                out.push((format!("phases.{name}.mean_s"), v));
            }
        }
    }
    out
}

/// The 95% CI bounds that accompany metric `name`, if the report emitted
/// them: for a metric `<stem>_s` the companions are `<stem>_ci95_lo_s`
/// and `<stem>_ci95_hi_s` in the same section.
fn ci_bounds(metrics: &[(String, f64)], name: &str) -> Option<(f64, f64)> {
    let stem = name.strip_suffix("_s")?;
    let lo = metrics
        .iter()
        .find(|(n, _)| *n == format!("{stem}_ci95_lo_s"))?
        .1;
    let hi = metrics
        .iter()
        .find(|(n, _)| *n == format!("{stem}_ci95_hi_s"))?
        .1;
    (lo <= hi).then_some((lo, hi))
}

/// Compares two bench report documents metric by metric.
///
/// Both documents must carry a schema version in
/// [`MIN_SCHEMA_VERSION`]`..=`[`SCHEMA_VERSION`] and name the same
/// experiment (the `timeline` section added in v2 is ignored here, so
/// v1 baselines stay comparable). Every counter, gauge and phase mean present in *both*
/// reports produces one [`MetricDelta`]; a delta counts as a regression
/// when a `HigherIsBetter` metric drops, or a `LowerIsBetter` metric
/// rises, by more than `threshold_pct` percent. When both reports also
/// carry bootstrap CI gauges for a metric, an over-threshold delta whose
/// intervals still overlap is reported as `within_noise`, not a
/// regression — two noisy runs straddling the threshold don't fail CI.
///
/// # Errors
///
/// A description of the structural mismatch (missing/incompatible schema
/// version, different experiments, or no shared metrics).
pub fn bench_compare(
    baseline: &Json,
    current: &Json,
    threshold_pct: f64,
) -> Result<Vec<MetricDelta>, String> {
    bench_compare_with(baseline, current, threshold_pct, &[])
}

/// [`bench_compare`] with per-metric threshold overrides: each
/// `(pattern, pct)` pair replaces `threshold_pct` for every metric whose
/// qualified name contains `pattern` (last match wins). This is how CI
/// holds one hot metric to a tighter bar — e.g.
/// `("ecdsa_verify_digest", 10.0)` — without squeezing the whole report.
///
/// # Errors
///
/// Same structural errors as [`bench_compare`].
pub fn bench_compare_with(
    baseline: &Json,
    current: &Json,
    threshold_pct: f64,
    overrides: &[(String, f64)],
) -> Result<Vec<MetricDelta>, String> {
    for (label, doc) in [("baseline", baseline), ("current", current)] {
        match doc.get("schema_version").and_then(Json::as_f64) {
            Some(v) if v >= MIN_SCHEMA_VERSION as f64 && v <= SCHEMA_VERSION as f64 => {}
            Some(v) => {
                return Err(format!(
                    "{label}: schema_version {v}, expected {MIN_SCHEMA_VERSION}..={SCHEMA_VERSION}"
                ))
            }
            None => {
                return Err(format!(
                    "{label}: missing schema_version — not a bench report"
                ))
            }
        }
    }
    let base_exp = baseline.get("experiment").and_then(Json::as_str);
    let cur_exp = current.get("experiment").and_then(Json::as_str);
    if base_exp != cur_exp {
        return Err(format!(
            "experiment mismatch: baseline {base_exp:?} vs current {cur_exp:?}"
        ));
    }
    let base_metrics = collect_comparables(baseline);
    let cur_metrics = collect_comparables(current);
    let mut deltas: Vec<MetricDelta> = Vec::new();
    for (name, base_value) in &base_metrics {
        let Some((_, cur_value)) = cur_metrics.iter().find(|(n, _)| n == name) else {
            continue;
        };
        let delta_pct = if *base_value != 0.0 {
            (cur_value - base_value) / base_value * 100.0
        } else if *cur_value == 0.0 {
            0.0
        } else {
            f64::INFINITY
        };
        let direction = metric_direction(name);
        let threshold = overrides
            .iter()
            .rev()
            .find(|(pattern, _)| name.contains(pattern.as_str()))
            .map_or(threshold_pct, |(_, pct)| *pct);
        let over_threshold = match direction {
            MetricDirection::HigherIsBetter => delta_pct < -threshold,
            MetricDirection::LowerIsBetter => delta_pct > threshold,
            MetricDirection::Informational => false,
        };
        // CI-overlap gate: if both reports bound this metric's mean and
        // the intervals overlap, the delta is indistinguishable from
        // run-to-run noise.
        let within_noise = over_threshold
            && match (
                ci_bounds(&base_metrics, name),
                ci_bounds(&cur_metrics, name),
            ) {
                (Some((b_lo, b_hi)), Some((c_lo, c_hi))) => b_lo <= c_hi && c_lo <= b_hi,
                _ => false,
            };
        deltas.push(MetricDelta {
            name: name.clone(),
            baseline: *base_value,
            current: *cur_value,
            delta_pct,
            direction,
            regression: over_threshold && !within_noise,
            within_noise,
            outlier: false,
        });
    }
    if deltas.is_empty() {
        return Err("no shared metrics between the two reports".to_string());
    }
    let pcts: Vec<f64> = deltas.iter().map(|d| d.delta_pct).collect();
    for (delta, flagged) in deltas.iter_mut().zip(mad_outlier_flags(&pcts)) {
        delta.outlier = flagged;
    }
    Ok(deltas)
}

/// Flags shared by the figure harnesses.
#[derive(Debug, Clone, Default)]
pub struct HarnessArgs {
    /// Positional count override (`N`).
    pub target: Option<usize>,
    /// `--json PATH` — write the [`BenchReport`] document here.
    pub json: Option<String>,
    /// `--timeline SECS` — sample the metrics registry every `SECS` of
    /// sim time into the report's `timeline` section (schema v2).
    pub timeline_s: Option<f64>,
}

/// Parses the shared harness flags (`N`, `--json PATH`,
/// `--timeline SECS`) from `std::env::args`.
pub fn harness_args() -> HarnessArgs {
    let mut parsed = HarnessArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            parsed.json = args.next();
        } else if arg == "--timeline" {
            parsed.timeline_s = args.next().and_then(|v| v.parse().ok());
            assert!(
                parsed.timeline_s.is_some_and(|s| s > 0.0),
                "--timeline requires a positive interval in seconds"
            );
        } else if let Ok(n) = arg.parse::<usize>() {
            parsed.target = Some(n);
        }
    }
    parsed
}

/// Parses `--json PATH` and `N` (positional count override) from
/// `std::env::args`. Returns `(target_override, json_path)`.
/// A `--timeline` flag is consumed (so it never misparses as `N`) but
/// ignored; harnesses that emit timelines use [`harness_args`].
pub fn parse_harness_args() -> (Option<usize>, Option<String>) {
    let args = harness_args();
    (args.target, args.json)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let series: Series = vec![1.0, 2.0, 3.0].into_iter().collect();
        let mut registry = Registry::new();
        let c = registry.counter("bench.rows_total");
        registry.add(c, 3);
        BenchReport::new("unit_test")
            .config("n", Json::size(3))
            .rows(Json::Array(vec![Json::num(1.5)]))
            .metrics(registry.snapshot())
            .phases(&[("settle".to_string(), series)])
    }

    #[test]
    fn report_from_series() {
        let series: Series = vec![1.0, 2.0, 3.0].into_iter().collect();
        let report =
            LatencyReport::from_series("test", Some(1.6), &series, 3, 0, 100.0, 5, 0, 5.0, 5)
                .unwrap();
        assert_eq!(report.completed, 3);
        assert!((report.mean_s - 2.0).abs() < 1e-12);
        assert_eq!(report.histogram.len(), 5);
        assert_eq!(
            report.histogram.iter().map(|&(_, _, c)| c).sum::<usize>(),
            3
        );
        let json = report.to_json();
        assert_eq!(json.get("completed").and_then(Json::as_f64), Some(3.0));
        assert_eq!(json.get("paper_mean_s").and_then(Json::as_f64), Some(1.6));
    }

    #[test]
    fn empty_series_no_report() {
        let series = Series::new();
        assert!(LatencyReport::from_series("x", None, &series, 0, 0, 0.0, 0, 0, 1.0, 2).is_none());
    }

    #[test]
    fn bench_report_carries_schema_version() {
        let doc = sample_report().to_json();
        assert_eq!(
            doc.get("schema_version").and_then(Json::as_f64),
            Some(SCHEMA_VERSION as f64)
        );
        assert_eq!(
            doc.get("experiment").and_then(Json::as_str),
            Some("unit_test")
        );
        let metrics = doc.get("metrics").expect("metrics section");
        let counters = metrics.get("counters").expect("counters");
        assert_eq!(
            counters.get("bench.rows_total").and_then(Json::as_f64),
            Some(3.0)
        );
        let phases = doc.get("phases").expect("phases section");
        let settle = phases.get("settle").expect("settle phase");
        assert_eq!(settle.get("count").and_then(Json::as_f64), Some(3.0));
        assert_eq!(settle.get("mean_s").and_then(Json::as_f64), Some(2.0));
    }

    #[test]
    fn bench_report_round_trips_through_parser() {
        let doc = sample_report().to_json();
        for text in [doc.render(), doc.render_pretty()] {
            let parsed = bcwan_sim::json::parse(&text).expect("parses");
            assert_eq!(parsed, doc);
        }
        // The metrics section parses back into a Snapshot.
        let metrics = doc.get("metrics").expect("metrics");
        let snap = Snapshot::from_json(metrics).expect("valid snapshot");
        assert_eq!(snap.counters, vec![("bench.rows_total".to_string(), 3)]);
    }

    #[test]
    fn bench_stats_orders_percentiles() {
        let stats = bench_fn_stats(50, || std::hint::black_box(17u64.wrapping_mul(31)));
        assert_eq!(stats.iters, 50);
        assert!(stats.median_s <= stats.p95_s);
        assert!(stats.mean_s > 0.0);
        assert!(stats.ci95_lo_s <= stats.ci95_hi_s);
        assert!(stats.ci95_lo_s > 0.0, "timings are positive: {stats:?}");
    }

    #[test]
    fn bootstrap_ci_brackets_the_mean_and_is_deterministic() {
        let samples: Vec<f64> = (0..40).map(|i| 1.0 + f64::from(i % 5) * 0.1).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let (lo, hi) = bootstrap_ci_mean(&samples, 200, 42);
        assert!(
            lo <= mean && mean <= hi,
            "CI [{lo}, {hi}] misses mean {mean}"
        );
        assert!(hi - lo < 0.2, "CI absurdly wide for tight samples");
        assert_eq!(
            bootstrap_ci_mean(&samples, 200, 42),
            (lo, hi),
            "same seed, same CI"
        );
        // Degenerate inputs collapse to the mean.
        assert_eq!(bootstrap_ci_mean(&[], 200, 1), (0.0, 0.0));
        assert_eq!(bootstrap_ci_mean(&[3.0], 200, 1), (3.0, 3.0));
        assert_eq!(bootstrap_ci_mean(&samples, 0, 1), (mean, mean));
    }

    #[test]
    fn ci_gauges_are_informational() {
        assert_eq!(
            metric_direction("gauges.bench.ecdsa_verify_digest_ci95_lo_s"),
            MetricDirection::Informational
        );
        assert_eq!(
            metric_direction("gauges.bench.ecdsa_verify_digest_ci95_hi_s"),
            MetricDirection::Informational
        );
        assert_eq!(
            metric_direction("gauges.bench.ecdsa_verify_digest_s"),
            MetricDirection::LowerIsBetter
        );
    }

    fn latency_report_with_ci(mean: f64, lo: f64, hi: f64) -> Json {
        let mut registry = Registry::new();
        registry.set_gauge("bench.verify_s", mean);
        registry.set_gauge("bench.verify_ci95_lo_s", lo);
        registry.set_gauge("bench.verify_ci95_hi_s", hi);
        BenchReport::new("micro")
            .metrics(registry.snapshot())
            .to_json()
    }

    #[test]
    fn overlapping_cis_suppress_a_regression() {
        // +30% mean shift past a 20% threshold, but the intervals overlap:
        // noise, not a regression.
        let baseline = latency_report_with_ci(1.0, 0.7, 1.4);
        let noisy = latency_report_with_ci(1.3, 1.1, 1.6);
        let deltas = bench_compare(&baseline, &noisy, 20.0).unwrap();
        let verify = deltas
            .iter()
            .find(|d| d.name == "gauges.bench.verify_s")
            .unwrap();
        assert!(verify.within_noise, "overlapping CIs: {verify:?}");
        assert!(!verify.regression);

        // Separated intervals: the same shift is a real regression.
        let clearly_worse = latency_report_with_ci(1.3, 1.28, 1.32);
        let tight_base = latency_report_with_ci(1.0, 0.98, 1.02);
        let deltas = bench_compare(&tight_base, &clearly_worse, 20.0).unwrap();
        let verify = deltas
            .iter()
            .find(|d| d.name == "gauges.bench.verify_s")
            .unwrap();
        assert!(verify.regression, "separated CIs must gate: {verify:?}");
        assert!(!verify.within_noise);
    }

    #[test]
    fn per_metric_threshold_overrides_apply_by_substring() {
        let baseline = latency_report_with_ci(1.0, 0.98, 1.02);
        // Current is +15%: passes the default 20% threshold.
        let current = latency_report_with_ci(1.15, 1.13, 1.17);
        let deltas = bench_compare(&baseline, &current, 20.0).unwrap();
        assert!(deltas.iter().all(|d| !d.regression));
        // A 10% override on the verify metric: fails.
        let overrides = vec![("verify_s".to_string(), 10.0)];
        let deltas = bench_compare_with(&baseline, &current, 20.0, &overrides).unwrap();
        let verify = deltas
            .iter()
            .find(|d| d.name == "gauges.bench.verify_s")
            .unwrap();
        assert!(verify.regression, "10% override must trip on +15%");
        // The override never touches unrelated metrics.
        assert!(deltas
            .iter()
            .filter(|d| d.name != "gauges.bench.verify_s")
            .all(|d| !d.regression));
    }

    #[test]
    fn mad_outlier_flagging_catches_a_spike() {
        // One iteration sleeps ~3ms among ~instant ones: must be flagged.
        let mut n = 0u32;
        let stats = bench_fn_stats(30, || {
            n += 1;
            if n == 25 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
        });
        assert!(stats.outliers >= 1, "spike not flagged: {stats:?}");
        assert!(
            stats.median_s < stats.mean_s,
            "spike skews mean above median"
        );
    }

    fn throughput_report(tx_per_s: f64, accepted: u64) -> Json {
        let mut registry = Registry::new();
        registry.set_counter("mempool.accepted", accepted);
        registry.set_gauge("bench.block_connect_tx_per_s", tx_per_s);
        BenchReport::new("chain_throughput")
            .metrics(registry.snapshot())
            .to_json()
    }

    #[test]
    fn compare_flags_throughput_regression() {
        let baseline = throughput_report(100.0, 500);
        let improved = throughput_report(250.0, 500);
        let regressed = throughput_report(70.0, 500);

        let deltas = bench_compare(&baseline, &improved, 20.0).unwrap();
        assert!(deltas.iter().all(|d| !d.regression), "{deltas:?}");
        let tp = deltas
            .iter()
            .find(|d| d.name == "gauges.bench.block_connect_tx_per_s")
            .unwrap();
        assert_eq!(tp.direction, MetricDirection::HigherIsBetter);
        assert!((tp.delta_pct - 150.0).abs() < 1e-9);

        let deltas = bench_compare(&baseline, &regressed, 20.0).unwrap();
        let tp = deltas
            .iter()
            .find(|d| d.name == "gauges.bench.block_connect_tx_per_s")
            .unwrap();
        assert!(tp.regression, "-30% must trip a 20% threshold");
        // A -30% drop passes a generous 40% threshold.
        let deltas = bench_compare(&baseline, &regressed, 40.0).unwrap();
        assert!(deltas.iter().all(|d| !d.regression));
    }

    #[test]
    fn compare_counters_are_informational() {
        let baseline = throughput_report(100.0, 500);
        let current = throughput_report(100.0, 2); // count collapsed
        let deltas = bench_compare(&baseline, &current, 20.0).unwrap();
        let accepted = deltas
            .iter()
            .find(|d| d.name == "counters.mempool.accepted")
            .unwrap();
        assert_eq!(accepted.direction, MetricDirection::Informational);
        assert!(!accepted.regression);
    }

    #[test]
    fn compare_accepts_v1_baselines_rejects_future_schemas() {
        let current = throughput_report(100.0, 500);
        // A v1 baseline (recorded before the timeline section existed).
        let v1 = {
            let Json::Object(mut fields) = throughput_report(90.0, 500) else {
                unreachable!()
            };
            fields.retain(|(k, _)| k != "schema_version");
            fields.insert(0, ("schema_version".to_string(), Json::uint(1)));
            Json::Object(fields)
        };
        let deltas = bench_compare(&v1, &current, 20.0).expect("v1 baseline still compares");
        assert!(deltas.iter().all(|d| !d.regression));
        // A document from a future schema is refused, not misread.
        let future = {
            let Json::Object(mut fields) = throughput_report(90.0, 500) else {
                unreachable!()
            };
            fields.retain(|(k, _)| k != "schema_version");
            fields.insert(0, ("schema_version".to_string(), Json::uint(99)));
            Json::Object(fields)
        };
        assert!(bench_compare(&future, &current, 20.0)
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn timeline_section_is_optional_and_round_trips() {
        // No timeline: the key is absent, not null/empty.
        let bare = BenchReport::new("x").to_json();
        assert_eq!(bare.get("timeline"), None);

        let mut series = bcwan_sim::SnapshotSeries::new(bcwan_sim::SimDuration::from_secs(10));
        let mut registry = Registry::new();
        registry.set_counter("world.lora_frames_lost_total", 1);
        series.maybe_sample(bcwan_sim::SimTime::ZERO, &registry);
        registry.set_counter("world.lora_frames_lost_total", 4);
        series.maybe_sample(bcwan_sim::SimTime::from_micros(10_000_000), &registry);
        let doc = BenchReport::new("x").timeline(Some(series)).to_json();
        let timeline = doc.get("timeline").expect("timeline section");
        assert_eq!(
            timeline.get("interval_seconds").and_then(Json::as_f64),
            Some(10.0)
        );
        let Some(Json::Array(frames)) = timeline.get("frames") else {
            panic!("frames array");
        };
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[1].get("t").and_then(Json::as_f64), Some(10.0));
        // And the whole document still parses back.
        let parsed = bcwan_sim::json::parse(&doc.render_pretty()).expect("parses");
        assert_eq!(parsed, doc);

        // An empty series is dropped like None.
        let empty = bcwan_sim::SnapshotSeries::new(bcwan_sim::SimDuration::from_secs(1));
        let doc = BenchReport::new("x").timeline(Some(empty)).to_json();
        assert_eq!(doc.get("timeline"), None);
    }

    #[test]
    fn compare_rejects_mismatched_reports() {
        let a = throughput_report(100.0, 1);
        let other = BenchReport::new("fig5_latency").to_json();
        assert!(bench_compare(&a, &other, 20.0)
            .unwrap_err()
            .contains("experiment mismatch"));
        let no_schema = Json::object().with("experiment", Json::str("chain_throughput"));
        assert!(bench_compare(&no_schema, &a, 20.0)
            .unwrap_err()
            .contains("schema_version"));
    }

    #[test]
    fn compare_phase_means_lower_is_better() {
        let mk = |mean: f64| {
            let series: Series = vec![mean; 3].into_iter().collect();
            BenchReport::new("fig5_latency")
                .phases(&[("keygen".to_string(), series)])
                .to_json()
        };
        let deltas = bench_compare(&mk(2.0), &mk(1.0), 20.0).unwrap();
        let keygen = deltas
            .iter()
            .find(|d| d.name == "phases.keygen.mean_s")
            .unwrap();
        assert_eq!(keygen.direction, MetricDirection::LowerIsBetter);
        assert!(!keygen.regression, "getting faster is not a regression");
        let deltas = bench_compare(&mk(1.0), &mk(2.0), 20.0).unwrap();
        assert!(
            deltas.iter().any(|d| d.regression),
            "phase mean doubling must regress: {deltas:?}"
        );
    }

    #[test]
    fn mad_flags_match_bench_stats_rule() {
        assert!(mad_outlier_flags(&[]).is_empty());
        // Degenerate MAD: identical samples, one differs.
        let flags = mad_outlier_flags(&[5.0, 5.0, 5.0, 7.0]);
        assert_eq!(flags, vec![false, false, false, true]);
        // A clear spike among spread samples.
        let flags = mad_outlier_flags(&[1.0, 1.1, 0.9, 1.05, 50.0]);
        assert!(flags[4] && flags[..4].iter().all(|f| !f));
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[4.0], 0.95), 4.0);
        let sorted = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 4.0);
    }

    #[test]
    fn empty_phases_render_as_empty_object() {
        let doc = BenchReport::new("x").to_json();
        assert_eq!(doc.get("phases"), Some(&Json::Object(Vec::new())));
        assert!(doc.render().contains("\"phases\":{}"));
    }
}
