//! T-CAP: the sharded LoRa world at scale — goodput vs offered load,
//! step throughput from 10³ to 10⁶ sensors, and the columnar-vs-scalar
//! speedup gate.
//!
//! Three phases:
//!
//! 1. **Goodput curve** (skip with `--no-curve`): one gateway, one
//!    channel, fixed SF7, pure-ALOHA MAC, the paper's 132 B data frame.
//!    Sweeps the offered load `G` from 0.1 up to the per-sensor
//!    duty-cycle ceiling (the paper's §5.2 cap of ~183 messages per
//!    sensor per hour; with the full explicit-header + CRC time on air
//!    the ceiling lands at ~163) and checks the measured goodput curve
//!    against `G·e^(−2G)`: the peak must land near the textbook
//!    `G = 0.5`. Exits 1 if it doesn't.
//! 2. **Scale sweep**: for each population in `--nodes`, steps the
//!    sharded world (1000 sensors per gateway shard, CSMA MAC) through
//!    `--sim-secs` of simulated time in 12 segments, reporting seconds
//!    per node-tick with a 95 % bootstrap CI over the segments. The
//!    largest population also records a per-segment metric timeline into
//!    the report's `timeline` section.
//! 3. **Speedup**: at `--scalar-nodes` sensors on a 6-hour metering
//!    cadence, steps the per-`Radio` scalar reference and the columnar
//!    world (both single-threaded, best of three runs each) over the
//!    same 1800 s window, asserts their counters are bit-identical, and
//!    reports the wall-clock ratio. With `--check-speedup X`, exits 1
//!    below `X×`.
//!
//! Usage: `lora_scale [--nodes N,N,…] [--sim-secs S] [--threads T]
//! [--seed S] [--no-curve] [--scalar-nodes N] [--check-speedup X]
//! [--json PATH]`. Defaults: nodes 1000,10000,100000,1000000;
//! sim-secs 3600 (one simulated hour); threads = available cores.
//!
//! The headline gauge `bench.shard_step_s` (seconds per node-tick at the
//! largest population, with `bench.shard_step_ci95_lo_s`/`_hi_s`
//! bootstrap bounds) is what CI gates with `compare --metric
//! shard_step_s:10` against `results/lora_scale.baseline.json`.

use bcwan_bench::{bootstrap_ci_mean, BenchReport, BOOTSTRAP_RESAMPLES};
use bcwan_lora::mac::MacConfig;
use bcwan_lora::params::{RadioConfig, SpreadingFactor};
use bcwan_lora::shard::{ScalarFleet, ShardConfig, ShardCounters, ShardedLora};
use bcwan_lora::time_on_air;
use bcwan_sim::{Json, Registry, SimDuration, SimTime, SnapshotSeries};

/// Sensors per gateway shard in the scale sweep.
const NODES_PER_SHARD: u64 = 1000;
/// Wall-clock samples per scale-sweep run (one per sim segment).
const SEGMENTS: u64 = 12;
/// Simulated window for the speedup phase, seconds. Long enough that
/// the columnar wall time (a few ms at 10⁵ nodes) sits well above
/// timer/scheduler noise.
const SPEEDUP_SIM_S: u64 = 1800;

struct Args {
    nodes: Vec<u64>,
    sim_secs: u64,
    threads: usize,
    seed: u64,
    curve: bool,
    scalar_nodes: u64,
    check_speedup: Option<f64>,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        nodes: vec![1_000, 10_000, 100_000, 1_000_000],
        sim_secs: 3600,
        threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        seed: 42,
        curve: true,
        scalar_nodes: 100_000,
        check_speedup: None,
        json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--nodes" => {
                let list = args.next().expect("--nodes takes a comma-separated list");
                parsed.nodes = list
                    .split(',')
                    .map(|n| n.trim().parse().expect("node count"))
                    .collect();
            }
            "--sim-secs" => {
                parsed.sim_secs = args
                    .next()
                    .expect("--sim-secs takes seconds")
                    .parse()
                    .expect("seconds");
            }
            "--threads" => {
                parsed.threads = args
                    .next()
                    .expect("--threads takes a count")
                    .parse()
                    .expect("thread count");
            }
            "--seed" => {
                parsed.seed = args
                    .next()
                    .expect("--seed takes a value")
                    .parse()
                    .expect("seed");
            }
            "--no-curve" => parsed.curve = false,
            "--scalar-nodes" => {
                parsed.scalar_nodes = args
                    .next()
                    .expect("--scalar-nodes takes a count")
                    .parse()
                    .expect("node count");
            }
            "--check-speedup" => {
                parsed.check_speedup = Some(
                    args.next()
                        .expect("--check-speedup takes a ratio")
                        .parse()
                        .expect("ratio"),
                );
            }
            "--json" => parsed.json = args.next(),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(
        !parsed.nodes.is_empty(),
        "--nodes must name at least one population"
    );
    parsed
}

/// The scale-sweep world: `n` sensors split into 1000-sensor gateway
/// shards (one shard when `n < 1000`), dense-deployment defaults.
fn scale_cfg(n: u64, seed: u64) -> ShardConfig {
    let shards = (n / NODES_PER_SHARD).max(1) as u32;
    let per_shard = (n / u64::from(shards)) as u32;
    ShardConfig::dense(shards, per_shard, seed)
}

/// Phase 1 — the ALOHA goodput curve on a single `(channel, SF)` key.
/// Returns `(rows, peak_measured_g)`.
fn goodput_curve(seed: u64) -> (Vec<Json>, f64) {
    let nodes: u32 = 2000;
    let sim_s: u64 = 7200;
    let base = ShardConfig {
        channels: 1,
        sf_fixed: Some(SpreadingFactor::Sf7),
        mac: MacConfig::pure_aloha(),
        // The paper's data frame: 128 B payload + 4 B header. At SF7
        // this puts the 1 % duty ceiling at ~183 msg/sensor/h (§5.2).
        frame_len: 132,
        // Small cell: the link budget clears for everyone, so the curve
        // isolates contention loss.
        region_radius_m: 500.0,
        ..ShardConfig::dense(1, nodes, seed)
    };
    let airtime_s = time_on_air(
        &RadioConfig {
            spreading_factor: SpreadingFactor::Sf7,
            ..base.radio
        },
        base.frame_len,
    )
    .as_secs_f64();
    // Per-sensor duty ceiling: at 1 % duty a sensor may send at most
    // duty/airtime frames per second (~183/h at the paper's SF7 frame).
    let ceiling_per_h = base.duty / airtime_s * 3600.0;
    let ceiling_g = f64::from(nodes) * (ceiling_per_h / 3600.0) * airtime_s;
    let mut targets = vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0, 1.5];
    targets.push(ceiling_g);

    println!("== goodput vs offered load (1 channel, SF7, pure ALOHA, {nodes} sensors) ==");
    println!(
        "{:>8} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "G", "msg/h", "meas G", "goodput", "G·e^-2G", "delivered"
    );
    let mut rows = Vec::new();
    let mut peak = (0.0f64, 0.0f64); // (goodput, measured_g)
    for &g in &targets {
        let mean_interval_s = f64::from(nodes) * airtime_s / g;
        let cfg = ShardConfig {
            mean_interval: SimDuration::from_secs_f64(mean_interval_s),
            ..base.clone()
        };
        let mut world = ShardedLora::new(&cfg);
        world.step_until(SimTime::from_micros(sim_s * 1_000_000), 1);
        let c = world.counters();
        let sim = sim_s as f64;
        let measured_g = c.airtime_s / sim;
        let goodput = c.delivered_airtime_s / sim;
        let analytic = g * (-2.0 * g).exp();
        let msg_per_h = 3600.0 / mean_interval_s;
        println!(
            "{g:>8.2} {msg_per_h:>10.1} {measured_g:>10.4} {goodput:>10.4} {analytic:>10.4} {:>12}",
            c.delivered
        );
        if goodput > peak.0 {
            peak = (goodput, measured_g);
        }
        rows.push(
            Json::object()
                .with("target_g", Json::num(g))
                .with("msg_per_sensor_h", Json::num(msg_per_h))
                .with("measured_g", Json::num(measured_g))
                .with("goodput", Json::num(goodput))
                .with("analytic_goodput", Json::num(analytic))
                .with("fired", Json::uint(c.fired))
                .with("delivered", Json::uint(c.delivered))
                .with("lost_collision", Json::uint(c.lost_collision)),
        );
    }
    println!(
        "peak goodput {:.4} at measured G {:.3} (theory: 1/(2e) ≈ 0.184 at G = 0.5)",
        peak.0, peak.1
    );
    (rows, peak.1)
}

/// Publishes one world's counters into the registry (the names EXPERIMENTS.md
/// documents for the timeline frames).
fn publish_counters(reg: &mut Registry, c: &ShardCounters) {
    reg.set_counter("world.lora_fired_total", c.fired);
    reg.set_counter("world.lora_attempted_total", c.attempted);
    reg.set_counter("world.lora_delivered_total", c.delivered);
    reg.set_counter("world.lora_lost_link_total", c.lost_link);
    reg.set_counter("world.lora_lost_collision_total", c.lost_collision);
    reg.set_counter("world.lora_captured_total", c.captured);
    reg.set_counter("world.lora_demod_dropped_total", c.demod_dropped);
    reg.set_counter("world.lora_cca_busy_total", c.cca_busy);
    reg.set_gauge("world.lora_airtime_s", c.airtime_s);
    reg.set_gauge("world.lora_goodput_airtime_s", c.delivered_airtime_s);
    reg.set_gauge("world.lora_energy_j", c.energy_j);
}

fn main() {
    let args = parse_args();
    let mut gate_failed = false;

    // Phase 1 — goodput curve.
    let (curve_rows, curve_peak_g) = if args.curve {
        let (rows, peak_g) = goodput_curve(args.seed);
        if !(0.3..=0.7).contains(&peak_g) {
            eprintln!("CURVE GATE FAILED: peak at G {peak_g:.3}, expected near 0.5");
            gate_failed = true;
        }
        (rows, Some(peak_g))
    } else {
        (Vec::new(), None)
    };

    // Phase 2 — scale sweep with per-segment wall samples.
    println!("\n== shard step throughput (CSMA MAC, {NODES_PER_SHARD} sensors/shard) ==");
    println!(
        "{:>9} {:>7} {:>10} {:>14} {:>26} {:>12}",
        "sensors", "shards", "wall(s)", "node-ticks/s", "s/node-tick [95% CI]", "delivered"
    );
    let mut scale_rows = Vec::new();
    let mut registry = Registry::new();
    let mut timeline = None;
    let mut headline: Option<(f64, f64, f64)> = None; // (mean, ci_lo, ci_hi) s/node-tick
    let largest = *args.nodes.iter().max().expect("non-empty nodes");
    for &n in &args.nodes {
        let cfg = scale_cfg(n, args.seed);
        let total_nodes = cfg.total_nodes();
        let seg_sim = (args.sim_secs / SEGMENTS).max(1);
        let mut world = ShardedLora::new(&cfg);
        let mut samples = Vec::new();
        let mut series =
            (n == largest).then(|| SnapshotSeries::new(SimDuration::from_secs(seg_sim)));
        let t_total = std::time::Instant::now();
        let mut sim_done = 0u64;
        while sim_done < args.sim_secs {
            sim_done = (sim_done + seg_sim).min(args.sim_secs);
            let t0 = std::time::Instant::now();
            world.step_until(SimTime::from_micros(sim_done * 1_000_000), args.threads);
            let wall = t0.elapsed().as_secs_f64();
            samples.push(wall / (total_nodes as f64 * seg_sim as f64));
            if let Some(series) = series.as_mut() {
                publish_counters(&mut registry, &world.counters());
                series.maybe_sample(world.now(), &registry);
            }
        }
        let wall_total = t_total.elapsed().as_secs_f64();
        let c = world.counters();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let (ci_lo, ci_hi) = bootstrap_ci_mean(&samples, BOOTSTRAP_RESAMPLES, 0x10a5 ^ n);
        let ticks_per_s = total_nodes as f64 * args.sim_secs as f64 / wall_total.max(1e-12);
        println!(
            "{n:>9} {:>7} {wall_total:>10.2} {ticks_per_s:>14.3e} {:>26} {:>12}",
            cfg.shards,
            format!("{mean:.3e} [{ci_lo:.3e}, {ci_hi:.3e}]"),
            c.delivered
        );
        scale_rows.push(
            Json::object()
                .with("sensors", Json::uint(n))
                .with("shards", Json::uint(u64::from(cfg.shards)))
                .with("sim_secs", Json::uint(args.sim_secs))
                .with("wall_s", Json::num(wall_total))
                .with("node_ticks_per_s", Json::num(ticks_per_s))
                .with("s_per_node_tick", Json::num(mean))
                .with("s_per_node_tick_ci_lo", Json::num(ci_lo))
                .with("s_per_node_tick_ci_hi", Json::num(ci_hi))
                .with("fired", Json::uint(c.fired))
                .with("delivered", Json::uint(c.delivered))
                .with("lost_collision", Json::uint(c.lost_collision))
                .with("demod_dropped", Json::uint(c.demod_dropped))
                .with("cca_busy", Json::uint(c.cca_busy))
                .with("energy_j", Json::num(c.energy_j)),
        );
        if n == largest {
            headline = Some((mean, ci_lo, ci_hi));
            timeline = series;
            publish_counters(&mut registry, &c);
        }
    }

    // Phase 3 — columnar vs scalar speedup + embedded equivalence check.
    // Both paths single-threaded: the ratio measures the data layout and
    // the wake-heap, not the core count. The workload is a metering
    // fleet — one report per sensor every 6 h, the cadence of smart
    // water/gas meters — so almost every per-node visit the scalar path
    // makes is an idle scan. That scan is exactly the cost the columnar
    // wake-heap eliminates; denser traffic shifts both paths towards the
    // shared per-event math and shrinks the ratio.
    let speedup_cfg = ShardConfig {
        mean_interval: SimDuration::from_secs(21_600),
        ..scale_cfg(args.scalar_nodes, args.seed)
    };
    let until = SimTime::from_micros(SPEEDUP_SIM_S * 1_000_000);
    // Best of three runs per path: at these wall times (tens of ms) a
    // single scheduler hiccup would swing the ratio.
    let mut scalar_wall = f64::MAX;
    let mut columnar_wall = f64::MAX;
    for _ in 0..3 {
        let mut scalar = ScalarFleet::new(&speedup_cfg);
        let t0 = std::time::Instant::now();
        scalar.step_until(until);
        scalar_wall = scalar_wall.min(t0.elapsed().as_secs_f64());
        let mut columnar = ShardedLora::new(&speedup_cfg);
        let t0 = std::time::Instant::now();
        columnar.step_until(until, 1);
        columnar_wall = columnar_wall.min(t0.elapsed().as_secs_f64());
        if scalar.counters() != columnar.counters() {
            eprintln!(
                "EQUIVALENCE FAILED at {} sensors:\n  scalar   {:?}\n  columnar {:?}",
                args.scalar_nodes,
                scalar.counters(),
                columnar.counters()
            );
            gate_failed = true;
        }
    }
    let speedup = scalar_wall / columnar_wall.max(1e-12);
    println!(
        "\n== speedup vs per-Radio scalar ({} sensors, {SPEEDUP_SIM_S} sim-s, 1 thread) ==",
        args.scalar_nodes
    );
    println!(
        "scalar {scalar_wall:.3}s, columnar {columnar_wall:.3}s → {speedup:.1}× (counters bit-identical)"
    );
    if let Some(min) = args.check_speedup {
        if speedup < min {
            eprintln!("SPEEDUP GATE FAILED: {speedup:.1}× < required {min}×");
            gate_failed = true;
        }
    }

    // Report.
    let (step_mean, step_lo, step_hi) = headline.expect("at least one population");
    registry.set_gauge("bench.shard_step_s", step_mean);
    registry.set_gauge("bench.shard_step_ci95_lo_s", step_lo);
    registry.set_gauge("bench.shard_step_ci95_hi_s", step_hi);
    registry.set_gauge("bench.speedup_vs_scalar", speedup);
    if let Some(peak_g) = curve_peak_g {
        registry.set_gauge("bench.curve_peak_g", peak_g);
    }
    let report = BenchReport::new("lora_scale")
        .config(
            "sweep",
            Json::object()
                .with(
                    "nodes",
                    Json::Array(args.nodes.iter().map(|&n| Json::uint(n)).collect()),
                )
                .with("sim_secs", Json::uint(args.sim_secs))
                .with("threads", Json::uint(args.threads as u64))
                .with("seed", Json::uint(args.seed))
                .with("nodes_per_shard", Json::uint(NODES_PER_SHARD))
                .with("scalar_nodes", Json::uint(args.scalar_nodes)),
        )
        .rows(
            Json::object()
                .with("curve", Json::Array(curve_rows))
                .with("scale", Json::Array(scale_rows)),
        )
        .metrics(registry.snapshot())
        .timeline(timeline);
    if let Some(path) = &args.json {
        report.write(path).expect("write json");
        eprintln!("wrote {path}");
    }

    if gate_failed {
        eprintln!("lora_scale FAILED (see gate messages above)");
        std::process::exit(1);
    }
    eprintln!("lora_scale passed");
}
