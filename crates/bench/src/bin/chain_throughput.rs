//! Throughput check against Multichain's §5.2 claim.
//!
//! "Multichain advertises a transaction throughput of up to 1000 tx/s
//! (transaction per second) in its latest version. We saw different
//! results during our experiments…" This harness measures what *our*
//! chain substrate sustains on the reference machine — mempool admission
//! (full script verification) and block connection — so the stall model's
//! premise (verification is the bottleneck, not BcWAN) is checkable.
//!
//! Usage: `chain_throughput [N_TXS] [--json PATH]`.

use bcwan_bench::{bench_fn_stats, parse_harness_args, BenchReport};
use bcwan_chain::{
    validate_block_with, Block, BlockValidationOptions, Chain, ChainParams, Mempool, OutPoint,
    SigCache, Transaction, TxOut, Wallet,
};
use bcwan_crypto::ecdsa::{batch_verify, EcdsaPrivateKey};
use bcwan_script::Script;
use bcwan_sim::{Json, Registry};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Validates `block` against the chain's UTXO set with a fresh (cold)
/// signature cache and returns the tx/s rate.
fn cold_connect_rate(
    chain: &Chain,
    block: &Block,
    params: &ChainParams,
    height: u64,
    n: usize,
    batch: bool,
) -> f64 {
    let cache = SigCache::default();
    let opts = BlockValidationOptions {
        cache: Some(&cache),
        workers: 0,
        batch,
    };
    let t = std::time::Instant::now();
    validate_block_with(block, chain.utxo(), height, params, &opts).expect("block valid");
    n as f64 / t.elapsed().as_secs_f64()
}

fn main() {
    let (target, json) = parse_harness_args();
    let n = target.unwrap_or(2_000);

    let mut rng = StdRng::seed_from_u64(1);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 1;
    let wallet = Wallet::generate(&mut rng);
    let allocations: Vec<_> = (0..n).map(|_| (wallet.address(), 1_000u64)).collect();
    let genesis = Chain::make_genesis(&params, &allocations);
    let mut chain = Chain::new(params.clone(), genesis);
    // Mature the genesis coinbase.
    let cb = Transaction::coinbase(
        1,
        b"w",
        vec![TxOut {
            value: params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    );
    let warm = Block::mine(chain.tip(), 1, params.difficulty_bits, vec![cb]);
    chain.add_block(warm).expect("warmup");
    let genesis_txid = chain.block_at(0).unwrap().transactions[0].txid();

    eprintln!("building {n} signed transactions…");
    let txs: Vec<Transaction> = (0..n as u32)
        .map(|vout| {
            wallet.build_payment(
                vec![(
                    OutPoint {
                        txid: genesis_txid,
                        vout,
                    },
                    wallet.locking_script(),
                )],
                vec![TxOut {
                    value: 990,
                    script_pubkey: Script::new(),
                }],
                0,
            )
        })
        .collect();

    // Mempool admission rate (ECDSA verify + UTXO checks per tx). The
    // pool shares the chain's signature cache so that block connection
    // below exercises the admission-warmed fast path, exactly as the
    // daemon wires it.
    let mut pool = Mempool::with_cache(chain.sig_cache().clone());
    let t0 = std::time::Instant::now();
    for tx in &txs {
        pool.insert(tx.clone(), chain.utxo(), chain.height() + 1, &params)
            .expect("valid");
    }
    let admit_rate = n as f64 / t0.elapsed().as_secs_f64();

    // Block connection rate (re-verification inside block validation).
    let height = chain.height() + 1;
    let mut block_txs = vec![Transaction::coinbase(
        height,
        b"big",
        vec![TxOut {
            value: params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    )];
    block_txs.extend(txs.iter().cloned());
    let block = Block::mine(chain.tip(), height, params.difficulty_bits, block_txs);

    // Cold-cache connect: validating this block as a fresh peer would —
    // no admission-warmed sigcache, so every spend pays real ECDSA work.
    // This is the path batch verification accelerates (the warm connect
    // below hits the cache and never reaches the verifier). Measured with
    // batching on and off to surface the block-level speedup.
    let cold_batch_rate = cold_connect_rate(&chain, &block, &params, height, n, true);
    let cold_seq_rate = cold_connect_rate(&chain, &block, &params, height, n, false);

    let t1 = std::time::Instant::now();
    chain.add_block(block).expect("block valid");
    let connect_rate = n as f64 / t1.elapsed().as_secs_f64();

    // Fold the substrate's own counters into the report: the mempool and
    // chainstate stats the world-level runs also export.
    let mut registry = Registry::new();
    let pool_stats = pool.stats();
    let chain_stats = chain.stats();
    for (name, value) in [
        ("mempool.accepted_total", pool_stats.accepted),
        ("mempool.evicted_total", pool_stats.evicted),
        ("chain.blocks_connected_total", chain_stats.blocks_connected),
        ("chain.txs_connected_total", chain_stats.txs_connected),
        ("chain.utxos_created_total", chain_stats.utxos_created),
        ("chain.utxos_spent_total", chain_stats.utxos_spent),
    ] {
        let id = registry.counter(name);
        registry.add(id, value);
    }
    let admit_gauge = registry.gauge("bench.mempool_admission_tx_per_s");
    registry.set(admit_gauge, admit_rate);
    let connect_gauge = registry.gauge("bench.block_connect_tx_per_s");
    registry.set(connect_gauge, connect_rate);
    chain.sig_cache().export(&mut registry);

    // Hot-path microbench: one ECDSA verify over a fixed digest — the
    // dominant per-transaction cost at admission. Exported with its
    // bootstrap CI bounds so the compare job can hold the fixed-limb
    // field arithmetic to a tight threshold without tripping on noise.
    let ec = EcdsaPrivateKey::generate(&mut rng);
    let digest = [0x5au8; 32];
    let sig = ec.sign_digest(&digest);
    let public = ec.public_key();
    let verify = bench_fn_stats(200, || public.verify_digest(&digest, &sig));
    registry.set_gauge("bench.ecdsa_verify_digest_s", verify.mean_s);
    registry.set_gauge("bench.ecdsa_verify_digest_ci95_lo_s", verify.ci95_lo_s);
    registry.set_gauge("bench.ecdsa_verify_digest_ci95_hi_s", verify.ci95_hi_s);

    // Batch-verification microbench: 64 signatures in the block-realistic
    // shape (8 wallets × 8 spends each, so pubkey coalescing engages).
    // The speedup gauge is per-signature: sequential cost of 64 single
    // verifies over the batch call's cost.
    let wallets: Vec<EcdsaPrivateKey> = (0..8)
        .map(|_| EcdsaPrivateKey::generate(&mut rng))
        .collect();
    let mut batch_digests = Vec::new();
    let mut batch_sigs = Vec::new();
    let mut batch_pubs = Vec::new();
    for i in 0..64usize {
        let mut d = [0u8; 32];
        d[..8].copy_from_slice(&(i as u64).to_le_bytes());
        let key = &wallets[i / 8];
        batch_sigs.push(key.sign_digest(&d));
        batch_pubs.push(key.public_key());
        batch_digests.push(d);
    }
    let items: Vec<_> = (0..64)
        .map(|i| (&batch_digests[i], &batch_sigs[i], &batch_pubs[i]))
        .collect();
    let batch64 = bench_fn_stats(30, || batch_verify(&items).unwrap());
    let batch_speedup = verify.mean_s * 64.0 / batch64.mean_s;
    registry.set_gauge("bench.ecdsa_batch_verify64_s", batch64.mean_s);
    registry.set_gauge("bench.ecdsa_batch_verify64_ci95_lo_s", batch64.ci95_lo_s);
    registry.set_gauge("bench.ecdsa_batch_verify64_ci95_hi_s", batch64.ci95_hi_s);
    registry.set_gauge("bench.batch_verify_speedup", batch_speedup);
    registry.set_gauge("bench.block_connect_cold_tx_per_s", cold_batch_rate);
    registry.set_gauge("bench.block_connect_cold_seq_tx_per_s", cold_seq_rate);

    println!("transactions:              {n}");
    println!("mempool admission:         {admit_rate:9.0} tx/s");
    println!("block connection:          {connect_rate:9.0} tx/s");
    println!("cold connect (batched):    {cold_batch_rate:9.0} tx/s");
    println!("cold connect (sequential): {cold_seq_rate:9.0} tx/s");
    println!(
        "sigcache:                  {} hits / {} misses",
        chain.sig_cache().hits(),
        chain.sig_cache().misses()
    );
    println!(
        "ecdsa verify:              {:9.1} µs  ci95 [{:.1}, {:.1}] µs",
        verify.mean_s * 1e6,
        verify.ci95_lo_s * 1e6,
        verify.ci95_hi_s * 1e6
    );
    println!(
        "ecdsa batch64 verify:      {:9.1} µs/sig  ({batch_speedup:.2}x per-sig speedup)",
        batch64.mean_s * 1e6 / 64.0
    );
    println!("multichain's §5.2 claim:        1000 tx/s (advertised)");
    println!();
    println!("Admission pays the full ECDSA verify (Montgomery modexp + windowed");
    println!("scalar mul); block connection then hits the shared signature cache");
    println!("warmed at admission, so connecting a block of mempool transactions");
    println!("skips script re-verification entirely. Both paths exceed the BcWAN");
    println!("workload (~5 tx/s at full Fig. 5 load) by orders of magnitude,");
    println!("consistent with the paper's finding that raw throughput was never");
    println!("the issue; the *stall on block arrival* was.");
    if let Some(path) = json {
        BenchReport::new("chain_throughput")
            .config("transactions", Json::size(n))
            .rows(Json::Array(vec![Json::object()
                .with("transactions", Json::size(n))
                .with("mempool_admission_tx_per_s", Json::num(admit_rate))
                .with("block_connect_tx_per_s", Json::num(connect_rate))
                .with("multichain_advertised_tx_per_s", Json::num(1000.0))]))
            .metrics(registry.snapshot())
            .write(&path)
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
