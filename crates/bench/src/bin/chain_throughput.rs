//! Throughput check against Multichain's §5.2 claim.
//!
//! "Multichain advertises a transaction throughput of up to 1000 tx/s
//! (transaction per second) in its latest version. We saw different
//! results during our experiments…" This harness measures what *our*
//! chain substrate sustains on the reference machine — mempool admission
//! (full script verification) and block connection — so the stall model's
//! premise (verification is the bottleneck, not BcWAN) is checkable.
//!
//! Usage: `chain_throughput [N_TXS] [--json PATH]`.

use bcwan_bench::{bench_fn_stats, parse_harness_args, BenchReport};
use bcwan_chain::{Block, Chain, ChainParams, Mempool, OutPoint, Transaction, TxOut, Wallet};
use bcwan_crypto::ecdsa::EcdsaPrivateKey;
use bcwan_script::Script;
use bcwan_sim::{Json, Registry};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (target, json) = parse_harness_args();
    let n = target.unwrap_or(2_000);

    let mut rng = StdRng::seed_from_u64(1);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 1;
    let wallet = Wallet::generate(&mut rng);
    let allocations: Vec<_> = (0..n).map(|_| (wallet.address(), 1_000u64)).collect();
    let genesis = Chain::make_genesis(&params, &allocations);
    let mut chain = Chain::new(params.clone(), genesis);
    // Mature the genesis coinbase.
    let cb = Transaction::coinbase(
        1,
        b"w",
        vec![TxOut {
            value: params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    );
    let warm = Block::mine(chain.tip(), 1, params.difficulty_bits, vec![cb]);
    chain.add_block(warm).expect("warmup");
    let genesis_txid = chain.block_at(0).unwrap().transactions[0].txid();

    eprintln!("building {n} signed transactions…");
    let txs: Vec<Transaction> = (0..n as u32)
        .map(|vout| {
            wallet.build_payment(
                vec![(
                    OutPoint {
                        txid: genesis_txid,
                        vout,
                    },
                    wallet.locking_script(),
                )],
                vec![TxOut {
                    value: 990,
                    script_pubkey: Script::new(),
                }],
                0,
            )
        })
        .collect();

    // Mempool admission rate (ECDSA verify + UTXO checks per tx). The
    // pool shares the chain's signature cache so that block connection
    // below exercises the admission-warmed fast path, exactly as the
    // daemon wires it.
    let mut pool = Mempool::with_cache(chain.sig_cache().clone());
    let t0 = std::time::Instant::now();
    for tx in &txs {
        pool.insert(tx.clone(), chain.utxo(), chain.height() + 1, &params)
            .expect("valid");
    }
    let admit_rate = n as f64 / t0.elapsed().as_secs_f64();

    // Block connection rate (re-verification inside block validation).
    let height = chain.height() + 1;
    let mut block_txs = vec![Transaction::coinbase(
        height,
        b"big",
        vec![TxOut {
            value: params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    )];
    block_txs.extend(txs.iter().cloned());
    let block = Block::mine(chain.tip(), height, params.difficulty_bits, block_txs);
    let t1 = std::time::Instant::now();
    chain.add_block(block).expect("block valid");
    let connect_rate = n as f64 / t1.elapsed().as_secs_f64();

    // Fold the substrate's own counters into the report: the mempool and
    // chainstate stats the world-level runs also export.
    let mut registry = Registry::new();
    let pool_stats = pool.stats();
    let chain_stats = chain.stats();
    for (name, value) in [
        ("mempool.accepted_total", pool_stats.accepted),
        ("mempool.evicted_total", pool_stats.evicted),
        ("chain.blocks_connected_total", chain_stats.blocks_connected),
        ("chain.txs_connected_total", chain_stats.txs_connected),
        ("chain.utxos_created_total", chain_stats.utxos_created),
        ("chain.utxos_spent_total", chain_stats.utxos_spent),
    ] {
        let id = registry.counter(name);
        registry.add(id, value);
    }
    let admit_gauge = registry.gauge("bench.mempool_admission_tx_per_s");
    registry.set(admit_gauge, admit_rate);
    let connect_gauge = registry.gauge("bench.block_connect_tx_per_s");
    registry.set(connect_gauge, connect_rate);
    chain.sig_cache().export(&mut registry);

    // Hot-path microbench: one ECDSA verify over a fixed digest — the
    // dominant per-transaction cost at admission. Exported with its
    // bootstrap CI bounds so the compare job can hold the fixed-limb
    // field arithmetic to a tight threshold without tripping on noise.
    let ec = EcdsaPrivateKey::generate(&mut rng);
    let digest = [0x5au8; 32];
    let sig = ec.sign_digest(&digest);
    let public = ec.public_key();
    let verify = bench_fn_stats(200, || public.verify_digest(&digest, &sig));
    registry.set_gauge("bench.ecdsa_verify_digest_s", verify.mean_s);
    registry.set_gauge("bench.ecdsa_verify_digest_ci95_lo_s", verify.ci95_lo_s);
    registry.set_gauge("bench.ecdsa_verify_digest_ci95_hi_s", verify.ci95_hi_s);

    println!("transactions:              {n}");
    println!("mempool admission:         {admit_rate:9.0} tx/s");
    println!("block connection:          {connect_rate:9.0} tx/s");
    println!(
        "sigcache:                  {} hits / {} misses",
        chain.sig_cache().hits(),
        chain.sig_cache().misses()
    );
    println!(
        "ecdsa verify:              {:9.1} µs  ci95 [{:.1}, {:.1}] µs",
        verify.mean_s * 1e6,
        verify.ci95_lo_s * 1e6,
        verify.ci95_hi_s * 1e6
    );
    println!("multichain's §5.2 claim:        1000 tx/s (advertised)");
    println!();
    println!("Admission pays the full ECDSA verify (Montgomery modexp + windowed");
    println!("scalar mul); block connection then hits the shared signature cache");
    println!("warmed at admission, so connecting a block of mempool transactions");
    println!("skips script re-verification entirely. Both paths exceed the BcWAN");
    println!("workload (~5 tx/s at full Fig. 5 load) by orders of magnitude,");
    println!("consistent with the paper's finding that raw throughput was never");
    println!("the issue; the *stall on block arrival* was.");
    if let Some(path) = json {
        BenchReport::new("chain_throughput")
            .config("transactions", Json::size(n))
            .rows(Json::Array(vec![Json::object()
                .with("transactions", Json::size(n))
                .with("mempool_admission_tx_per_s", Json::num(admit_rate))
                .with("block_connect_tx_per_s", Json::num(connect_rate))
                .with("multichain_advertised_tx_per_s", Json::num(1000.0))]))
            .metrics(registry.snapshot())
            .write(&path)
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
