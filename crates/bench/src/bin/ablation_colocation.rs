//! Ablation A5 (§6): gateway co-location.
//!
//! "In a real world environment, a sensor has higher chances to
//! communicate with a Gateway that is geolocated closer to his origin
//! deployment. The network latency can thus be decreased between
//! co-located foreign Gateways and lower the data retrieval latency."
//!
//! This sweep re-runs the Fig. 5 workload under three WAN regimes —
//! continent-scale PlanetLab, metro-scale, and co-located LAN — and
//! reports how much of the exchange latency the network actually owns.
//!
//! Usage: `ablation_colocation [N] [--json PATH]`.

use bcwan::world::{WorkloadConfig, World};
use bcwan_bench::{parse_harness_args, summary_json, BenchReport};
use bcwan_sim::{Json, LatencyModel, SimDuration};

fn main() {
    let (target, json) = parse_harness_args();
    let n = target.unwrap_or(300);

    let regimes: Vec<(&str, LatencyModel)> = vec![
        ("planetlab (paper testbed)", LatencyModel::planetlab()),
        (
            "metro (co-located city operators)",
            LatencyModel::Normal {
                mean_s: 0.008,
                std_s: 0.002,
                min: SimDuration::from_millis(2),
            },
        ),
        ("lan (same facility)", LatencyModel::lan()),
    ];

    let mut rows = Vec::new();
    let mut means = Vec::new();
    let mut last = None;
    println!("regime                               mean(s)   p95(s)   n");
    for (name, latency) in regimes {
        // Trace the last (LAN) run so the report shows where the
        // remaining latency lives once the WAN is out of the picture.
        let mut cfg = WorkloadConfig::paper_fig5();
        cfg.target_exchanges = n;
        cfg.latency = latency;
        if name.starts_with("lan") {
            cfg = cfg.with_tracing();
        }
        let result = World::new(cfg).run();
        let s = result.latencies.summary().expect("completed exchanges");
        println!(
            "{name:36} {:>7.3}  {:>7.3}  {:>4}",
            s.mean, s.p95, result.completed
        );
        means.push(s.mean);
        rows.push(
            Json::object()
                .with("regime", Json::str(name))
                .with("completed", Json::size(result.completed))
                .with("latency", summary_json(&s)),
        );
        last = Some(result);
    }
    println!();
    let saved = means[0] - means[2];
    println!(
        "co-location strips ≈{:.0} ms off the mean — the WAN's share; the rest is",
        saved * 1e3
    );
    println!("radio airtime and edge CPU, which §6's co-location argument cannot touch.");
    if let Some(path) = json {
        let lan = last.expect("three regimes ran");
        BenchReport::new("ablation_colocation")
            .config("target_exchanges", Json::size(n))
            .rows(Json::Array(rows))
            .metrics(lan.metrics.clone())
            .phases(&lan.phases)
            .write(&path)
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
