//! Ablation A1 (§6): double-spend theft rate and honest-exchange latency
//! versus the confirmation depth the gateway demands before revealing the
//! ephemeral private key.
//!
//! The paper's PoC reveals at zero confirmations and §6 observes that "a
//! malicious user could double spend this transaction"; Bitcoin's 6-conf
//! advice would cost 60 minutes. This sweep quantifies both sides, plus a
//! single mechanics run through the real chain proving the attack path.
//!
//! Usage: `ablation_confirmations [TRIALS] [--json PATH]`.

use bcwan::attack::{play_double_spend_mechanics, simulate_attack_rates, AttackConfig};
use bcwan::costs::CostModel;
use bcwan_bench::{parse_harness_args, BenchReport};
use bcwan_sim::{Json, LatencyModel, Registry, SimRng};

fn main() {
    let (trials, json) = parse_harness_args();
    let trials = trials.unwrap_or(20_000);

    // First: prove the mechanics once on the real substrate.
    let mechanics = play_double_spend_mechanics(42);
    println!("mechanics (real chain, zero-conf):");
    println!(
        "  gateway accepted escrow:  {}",
        mechanics.gateway_accepted_escrow
    );
    println!(
        "  miner accepted conflict:  {}",
        mechanics.miner_accepted_conflict
    );
    println!(
        "  miner rejected escrow:    {}",
        mechanics.miner_rejected_escrow
    );
    println!(
        "  claim orphaned at miner:  {}",
        mechanics.claim_orphaned_at_miner
    );
    println!(
        "  recipient extracted eSk:  {}",
        mechanics.recipient_got_key
    );
    println!("  gateway left unpaid:      {}", mechanics.gateway_unpaid);
    println!(
        "  → attack succeeded:       {}",
        mechanics.attack_succeeded()
    );
    println!();

    let mut registry = Registry::new();
    let trials_counter = registry.counter("attack.trials_total");
    let theft_hist = registry.histogram("attack.theft_rate_by_depth");

    // Then sweep the depth.
    let mut rng = SimRng::seed_from_u64(7);
    let mut rows = Vec::new();
    println!("depth  theft-rate  honest-extra-latency(s)");
    for depth in 0..=6u64 {
        let cfg = AttackConfig {
            latency: LatencyModel::planetlab(),
            costs: CostModel::pi_class(),
            block_interval_s: 15.0,
            confirmation_depth: depth,
        };
        let out = simulate_attack_rates(&cfg, trials, &mut rng);
        println!(
            "{:>5}  {:>10.4}  {:>22.1}",
            depth, out.theft_rate, out.honest_extra_latency_s
        );
        registry.add(trials_counter, trials as u64);
        registry.observe(theft_hist, out.theft_rate);
        rows.push(
            Json::object()
                .with("confirmation_depth", Json::uint(depth))
                .with("theft_rate", Json::num(out.theft_rate))
                .with(
                    "honest_extra_latency_s",
                    Json::num(out.honest_extra_latency_s),
                ),
        );
    }
    println!();
    println!("paper §6: zero-conf is exploitable; Bitcoin's 6-conf advice would cost");
    println!("6 × block-interval of latency (60 min on Bitcoin, ~90 s on this chain).");
    if let Some(path) = json {
        BenchReport::new("ablation_confirmations")
            .config("trials_per_depth", Json::size(trials))
            .config("block_interval_s", Json::num(15.0))
            .config(
                "mechanics_attack_succeeded",
                Json::Bool(mechanics.attack_succeeded()),
            )
            .rows(Json::Array(rows))
            .metrics(registry.snapshot())
            .write(&path)
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
