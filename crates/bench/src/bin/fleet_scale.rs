//! Throughput-vs-host-count scaling sweep over the fleet preset.
//!
//! For each host count, runs the simulated testbed on a degree-6 ring
//! lattice ([`WorkloadConfig::fleet`]) across several seeds and reports
//! exchange throughput (completed exchanges per simulated second) with
//! a 95 % bootstrap confidence interval per host count, plus wall-clock
//! cost — the curve that shows whether the federation's gossip and sync
//! machinery scales past the paper's 6-host testbed.
//!
//! Usage: `fleet_scale [--hosts 50,200,1000] [--seeds N]
//! [--exchanges-per-host X] [--json PATH]`. Defaults: hosts 50,200,1000,
//! 3 seeds, 0.2 exchanges per host (minimum 10). Exits 1 if any run
//! fails an exchange or violates an invariant, so CI can gate on it.

use bcwan::world::{WorkloadConfig, World};
use bcwan_bench::{bootstrap_ci_mean, BenchReport, BOOTSTRAP_RESAMPLES};
use bcwan_sim::Json;

struct Args {
    hosts: Vec<u32>,
    seeds: u64,
    exchanges_per_host: f64,
    json: Option<String>,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        hosts: vec![50, 200, 1000],
        seeds: 3,
        exchanges_per_host: 0.2,
        json: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--hosts" => {
                let list = args.next().expect("--hosts takes a comma-separated list");
                parsed.hosts = list
                    .split(',')
                    .map(|h| h.trim().parse().expect("host count"))
                    .collect();
            }
            "--seeds" => {
                parsed.seeds = args
                    .next()
                    .expect("--seeds takes a count")
                    .parse()
                    .expect("seed count");
            }
            "--exchanges-per-host" => {
                parsed.exchanges_per_host = args
                    .next()
                    .expect("--exchanges-per-host takes a ratio")
                    .parse()
                    .expect("ratio");
            }
            "--json" => parsed.json = args.next(),
            other => panic!("unknown argument {other:?}"),
        }
    }
    parsed
}

fn main() {
    let args = parse_args();
    let mut rows = Vec::new();
    let mut last_metrics = None;
    let mut gate_failures = 0u32;

    for &hosts in &args.hosts {
        let target = ((hosts as f64 * args.exchanges_per_host) as usize).max(10);
        let mut throughput = Vec::new();
        let mut wall_s = Vec::new();
        for seed in 0..args.seeds {
            let cfg = WorkloadConfig::fleet(hosts, target, 0xf1ee7 ^ seed);
            let t0 = std::time::Instant::now();
            let result = World::new(cfg).run();
            let wall = t0.elapsed().as_secs_f64();
            let sim_s = result.sim_time.as_secs_f64().max(1e-9);
            throughput.push(result.completed as f64 / sim_s);
            wall_s.push(wall);
            let ok = result.failed == 0 && result.invariant_violations == 0;
            if !ok {
                gate_failures += 1;
            }
            eprintln!(
                "hosts={hosts} seed={seed}: {} — completed={} failed={} violations={} \
                 sim={:.0}s wall={wall:.1}s",
                if ok { "OK" } else { "FAILED" },
                result.completed,
                result.failed,
                result.invariant_violations,
                sim_s,
            );
            last_metrics = Some(result.metrics);
        }
        let mean = throughput.iter().sum::<f64>() / throughput.len() as f64;
        let (ci_lo, ci_hi) =
            bootstrap_ci_mean(&throughput, BOOTSTRAP_RESAMPLES, 0xb007 + hosts as u64);
        let wall_mean = wall_s.iter().sum::<f64>() / wall_s.len() as f64;
        eprintln!(
            "hosts={hosts}: throughput {mean:.4} ex/sim-s (95% CI {ci_lo:.4}–{ci_hi:.4}), \
             wall {wall_mean:.1}s/run"
        );
        rows.push(
            Json::object()
                .with("hosts", Json::uint(hosts as u64))
                .with("target_exchanges", Json::size(target))
                .with("seeds", Json::uint(args.seeds))
                .with("throughput_ex_per_sim_s", Json::num(mean))
                .with("throughput_ci_lo", Json::num(ci_lo))
                .with("throughput_ci_hi", Json::num(ci_hi))
                .with("wall_s_mean", Json::num(wall_mean)),
        );
    }

    let report = BenchReport::new("fleet_scale")
        .config(
            "sweep",
            Json::object()
                .with(
                    "hosts",
                    Json::Array(args.hosts.iter().map(|&h| Json::uint(h as u64)).collect()),
                )
                .with("seeds", Json::uint(args.seeds))
                .with("exchanges_per_host", Json::num(args.exchanges_per_host))
                .with("gossip_degree", Json::uint(6)),
        )
        .rows(Json::Array(rows))
        .metrics(last_metrics.expect("at least one run"));
    if let Some(path) = &args.json {
        report.write(path).expect("write json");
        eprintln!("wrote {path}");
    }

    if gate_failures > 0 {
        eprintln!("fleet_scale FAILED: {gate_failures} run(s) had failures or violations");
        std::process::exit(1);
    }
    eprintln!("fleet_scale passed: all runs clean");
}
