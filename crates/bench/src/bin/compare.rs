//! Compares two bench reports metric by metric (any schema version the
//! library still accepts — see `MIN_SCHEMA_VERSION`).
//!
//! ```text
//! Usage: compare BASELINE.json CURRENT.json [--threshold PCT] [--metric PATTERN:PCT]...
//! ```
//!
//! Prints one line per shared counter, gauge and phase mean with its
//! relative delta, marks metrics whose movement is a scaled-MAD outlier
//! against the rest of the report, and exits non-zero when any
//! direction-aware metric (`*_per_s` higher-is-better, `*_s`
//! lower-is-better) regressed by more than the threshold (default 20%).
//! `--metric PATTERN:PCT` overrides the threshold for metrics whose name
//! contains `PATTERN` (repeatable; last match wins), so CI can hold one
//! hot metric to a tighter bar. When both reports carry bootstrap CI
//! gauges (`*_ci95_lo_s`/`*_ci95_hi_s`), an over-threshold delta whose
//! intervals overlap is reported as `[within CI]` and does not fail.
//!
//! Exit codes: `0` no regression, `1` regression past the threshold,
//! `2` structural problem (unreadable file, schema or experiment mismatch).

use bcwan_bench::{bench_compare_with, MetricDelta, MetricDirection};

fn load(path: &str) -> Result<bcwan_sim::Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    bcwan_sim::json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn print_delta(d: &MetricDelta) {
    let arrow = match d.direction {
        MetricDirection::HigherIsBetter => "↑good",
        MetricDirection::LowerIsBetter => "↓good",
        MetricDirection::Informational => "     ",
    };
    let mut flags = String::new();
    if d.regression {
        flags.push_str("  REGRESSION");
    }
    if d.within_noise {
        flags.push_str("  [within CI]");
    }
    if d.outlier {
        flags.push_str("  [outlier]");
    }
    println!(
        "{:<44} {:>14.4} {:>14.4} {:>+9.1}%  {arrow}{flags}",
        d.name, d.baseline, d.current, d.delta_pct
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut threshold = 20.0f64;
    let mut overrides: Vec<(String, f64)> = Vec::new();
    let mut paths: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "--threshold" {
            match iter.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(t) => threshold = t,
                None => {
                    eprintln!("--threshold requires a numeric percentage");
                    std::process::exit(2);
                }
            }
        } else if arg == "--metric" {
            let parsed = iter.next().and_then(|v| {
                let (pattern, pct) = v.rsplit_once(':')?;
                Some((pattern.to_string(), pct.parse::<f64>().ok()?))
            });
            match parsed {
                Some(pair) => overrides.push(pair),
                None => {
                    eprintln!("--metric requires PATTERN:PCT (e.g. ecdsa_verify_digest:10)");
                    std::process::exit(2);
                }
            }
        } else {
            paths.push(arg);
        }
    }
    let [baseline_path, current_path] = paths[..] else {
        eprintln!(
            "Usage: compare BASELINE.json CURRENT.json [--threshold PCT] [--metric PATTERN:PCT]..."
        );
        std::process::exit(2);
    };

    let (baseline, current) = match (load(baseline_path), load(current_path)) {
        (Ok(b), Ok(c)) => (b, c),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let deltas = match bench_compare_with(&baseline, &current, threshold, &overrides) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };

    println!(
        "comparing {} -> {} (threshold {threshold}%)",
        baseline_path, current_path
    );
    println!(
        "{:<44} {:>14} {:>14} {:>10}",
        "metric", "baseline", "current", "delta"
    );
    for d in &deltas {
        print_delta(d);
    }
    let regressions: Vec<&MetricDelta> = deltas.iter().filter(|d| d.regression).collect();
    if regressions.is_empty() {
        println!(
            "no regressions past {threshold}% across {} metrics",
            deltas.len()
        );
    } else {
        println!(
            "{} regression(s) past {threshold}% across {} metrics",
            regressions.len(),
            deltas.len()
        );
        std::process::exit(1);
    }
}
