//! Ablation A3 (§4.4): the reputation-only baseline versus BcWAN's fair
//! exchange.
//!
//! "This solution reduces the probability of misbehavior but does not
//! eliminate the problem." The sweep varies the malicious-gateway
//! fraction and reports the residual loss under pay-first + reputation;
//! BcWAN's structural loss is zero by construction (the escrow releases
//! only against the key).
//!
//! Usage: `baseline_reputation [MESSAGES] [--json PATH]`.

use bcwan::reputation::{run_reputation_baseline, ReputationConfig};
use bcwan_bench::{parse_harness_args, BenchReport};
use bcwan_sim::{Json, Registry, SimRng};

fn main() {
    let (messages, json) = parse_harness_args();
    let messages = messages.unwrap_or(20_000);
    let mut registry = Registry::new();
    let attempted_counter = registry.counter("reputation.attempted_total");
    let stolen_counter = registry.counter("reputation.stolen_total");
    let banned_counter = registry.counter("reputation.banned_gateways_total");

    let mut rng = SimRng::seed_from_u64(11);
    let mut rows = Vec::new();
    println!("malicious%  delivered   stolen  value-lost  loss-rate  banned   bcwan");
    for pct in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let cfg = ReputationConfig {
            malicious_fraction: pct,
            ..ReputationConfig::default()
        };
        let out = run_reputation_baseline(&cfg, messages, &mut rng);
        println!(
            "{:>9.0}%  {:>9}  {:>7}  {:>10}  {:>9.4}  {:>6}  {:>6.4}",
            pct * 100.0,
            out.delivered,
            out.stolen,
            out.stolen_value,
            out.loss_rate(),
            out.banned_gateways,
            0.0,
        );
        registry.add(attempted_counter, out.attempted as u64);
        registry.add(stolen_counter, out.stolen as u64);
        registry.add(banned_counter, out.banned_gateways as u64);
        rows.push(
            Json::object()
                .with("malicious_fraction", Json::num(pct))
                .with("attempted", Json::size(out.attempted))
                .with("delivered", Json::size(out.delivered))
                .with("stolen", Json::size(out.stolen))
                .with("stolen_value", Json::uint(out.stolen_value))
                .with("loss_rate", Json::num(out.loss_rate()))
                .with("banned_gateways", Json::size(out.banned_gateways))
                .with("bcwan_loss_rate", Json::num(0.0)),
        );
    }
    println!();
    println!("BcWAN column is structural: the Listing 1 escrow cannot pay without");
    println!("revealing the key, so pay-without-delivery is impossible (§4.4).");
    if let Some(path) = json {
        BenchReport::new("baseline_reputation")
            .config("messages_per_fraction", Json::size(messages))
            .rows(Json::Array(rows))
            .metrics(registry.snapshot())
            .write(&path)
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
