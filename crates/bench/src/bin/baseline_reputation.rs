//! Ablation A3 (§4.4): the reputation-only baseline versus BcWAN's fair
//! exchange.
//!
//! "This solution reduces the probability of misbehavior but does not
//! eliminate the problem." The sweep varies the malicious-gateway
//! fraction and reports the residual loss under pay-first + reputation;
//! BcWAN's structural loss is zero by construction (the escrow releases
//! only against the key).
//!
//! A second, *observed* section replays real settlement behavior —
//! the auditor's per-gateway claim/refund counts from a Byzantine
//! chaos run — through the same scoring rules: every CLTV refund that
//! fair exchange turned into a harmless timeout would have been a
//! stolen payment under pay-first.
//!
//! Usage: `baseline_reputation [MESSAGES] [--json PATH]`.

use bcwan::reputation::{run_reputation_baseline, score_observed, ReputationConfig};
use bcwan::world::{WorkloadConfig, World};
use bcwan_bench::{parse_harness_args, BenchReport};
use bcwan_sim::{ChaosFault, ChaosPlan, Json, Registry, SimRng, SimTime};

fn main() {
    let (messages, json) = parse_harness_args();
    let messages = messages.unwrap_or(20_000);
    let mut registry = Registry::new();
    let attempted_counter = registry.counter("reputation.attempted_total");
    let stolen_counter = registry.counter("reputation.stolen_total");
    let banned_counter = registry.counter("reputation.banned_gateways_total");

    let mut rng = SimRng::seed_from_u64(11);
    let mut rows = Vec::new();
    println!("malicious%  delivered   stolen  value-lost  loss-rate  banned   bcwan");
    for pct in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let cfg = ReputationConfig {
            malicious_fraction: pct,
            ..ReputationConfig::default()
        };
        let out = run_reputation_baseline(&cfg, messages, &mut rng);
        println!(
            "{:>9.0}%  {:>9}  {:>7}  {:>10}  {:>9.4}  {:>6}  {:>6.4}",
            pct * 100.0,
            out.delivered,
            out.stolen,
            out.stolen_value,
            out.loss_rate(),
            out.banned_gateways,
            0.0,
        );
        registry.add(attempted_counter, out.attempted as u64);
        registry.add(stolen_counter, out.stolen as u64);
        registry.add(banned_counter, out.banned_gateways as u64);
        rows.push(
            Json::object()
                .with("malicious_fraction", Json::num(pct))
                .with("attempted", Json::size(out.attempted))
                .with("delivered", Json::size(out.delivered))
                .with("stolen", Json::size(out.stolen))
                .with("stolen_value", Json::uint(out.stolen_value))
                .with("loss_rate", Json::num(out.loss_rate()))
                .with("banned_gateways", Json::size(out.banned_gateways))
                .with("bcwan_loss_rate", Json::num(0.0)),
        );
    }
    println!();
    println!("BcWAN column is structural: the Listing 1 escrow cannot pay without");
    println!("revealing the key, so pay-without-delivery is impossible (§4.4).");

    // Observed mode: a small Byzantine world (one gateway withholding
    // its claims forever — all its escrows refund via CLTV) feeds the
    // auditor's per-gateway outcomes into the same scoring rules.
    let forever = SimTime::from_micros(u64::MAX / 2);
    let plan = ChaosPlan {
        faults: vec![ChaosFault::ClaimWithhold {
            host: 2,
            from: SimTime::ZERO,
            until: forever,
        }],
    };
    let mut cfg = WorkloadConfig::fleet(5, 40, 7).with_chaos(plan);
    cfg.refund_delta = 12;
    let result = World::new(cfg).run();
    let observed = score_observed(&ReputationConfig::default(), &result.gateway_settlements);
    println!();
    println!("Observed replay (Byzantine world, 5 gateways, host 2 withholds):");
    println!(
        "  settled={} refunded={} -> pay-first would have: delivered={} stolen={} \
         value-lost={} starved={} banned={}",
        result.escrows_claimed,
        result.escrows_refunded,
        observed.delivered,
        observed.stolen,
        observed.stolen_value,
        observed.starved,
        observed.banned_gateways,
    );
    println!("Under fair exchange the same run lost nothing: every refund returned");
    println!("the recipient's coin instead of paying the withholding gateway.");
    registry.set_counter("reputation.observed_stolen_total", observed.stolen as u64);
    registry.set_counter(
        "reputation.observed_banned_gateways_total",
        observed.banned_gateways as u64,
    );

    if let Some(path) = json {
        BenchReport::new("baseline_reputation")
            .config("messages_per_fraction", Json::size(messages))
            .rows(Json::Array(rows))
            .config(
                "observed",
                Json::object()
                    .with("escrows_claimed", Json::size(result.escrows_claimed))
                    .with("escrows_refunded", Json::size(result.escrows_refunded))
                    .with("delivered", Json::size(observed.delivered))
                    .with("stolen", Json::size(observed.stolen))
                    .with("stolen_value", Json::uint(observed.stolen_value))
                    .with("starved", Json::size(observed.starved))
                    .with("banned_gateways", Json::size(observed.banned_gateways)),
            )
            .metrics(registry.snapshot())
            .write(&path)
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
