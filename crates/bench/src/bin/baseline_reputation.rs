//! Ablation A3 (§4.4): the reputation-only baseline versus BcWAN's fair
//! exchange.
//!
//! "This solution reduces the probability of misbehavior but does not
//! eliminate the problem." The sweep varies the malicious-gateway
//! fraction and reports the residual loss under pay-first + reputation;
//! BcWAN's structural loss is zero by construction (the escrow releases
//! only against the key).
//!
//! Usage: `baseline_reputation [MESSAGES] [--json PATH]`.

use bcwan::reputation::{run_reputation_baseline, ReputationConfig};
use bcwan_bench::{parse_harness_args, write_json};
use bcwan_sim::SimRng;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    malicious_fraction: f64,
    attempted: usize,
    delivered: usize,
    stolen: usize,
    stolen_value: u64,
    loss_rate: f64,
    banned_gateways: usize,
    bcwan_loss_rate: f64,
}

fn main() {
    let (messages, json) = parse_harness_args();
    let messages = messages.unwrap_or(20_000);
    let mut rng = SimRng::seed_from_u64(11);
    let mut rows = Vec::new();
    println!("malicious%  delivered   stolen  value-lost  loss-rate  banned   bcwan");
    for pct in [0.0, 0.1, 0.2, 0.3, 0.4, 0.5] {
        let cfg = ReputationConfig {
            malicious_fraction: pct,
            ..ReputationConfig::default()
        };
        let out = run_reputation_baseline(&cfg, messages, &mut rng);
        println!(
            "{:>9.0}%  {:>9}  {:>7}  {:>10}  {:>9.4}  {:>6}  {:>6.4}",
            pct * 100.0,
            out.delivered,
            out.stolen,
            out.stolen_value,
            out.loss_rate(),
            out.banned_gateways,
            0.0,
        );
        rows.push(Row {
            malicious_fraction: pct,
            attempted: out.attempted,
            delivered: out.delivered,
            stolen: out.stolen,
            stolen_value: out.stolen_value,
            loss_rate: out.loss_rate(),
            banned_gateways: out.banned_gateways,
            bcwan_loss_rate: 0.0,
        });
    }
    println!();
    println!("BcWAN column is structural: the Listing 1 escrow cannot pay without");
    println!("revealing the key, so pay-without-delivery is impossible (§4.4).");
    if let Some(path) = json {
        write_json(&path, &rows).expect("write json");
        eprintln!("wrote {path}");
    }
}
