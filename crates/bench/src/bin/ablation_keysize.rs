//! Ablation A2 (§6): RSA key size versus LoRa cost.
//!
//! "We chose RSA-512 as method to encrypt our data due to the size limit
//! of the payload that can be sent on the LoRa network… For application
//! where this may be a problem it is possible to use higher levels of
//! encryption but messages will be lengthier on the LoRa network."
//!
//! For each modulus size this prints the data-uplink PHY size (Em + Sig
//! are one RSA block each), its airtime per spreading factor, the
//! duty-cycle message budget, and whether the frame fits the regional
//! payload caps at all.
//!
//! Usage: `ablation_keysize [--json PATH]`.

use bcwan_bench::{parse_harness_args, write_json};
use bcwan_lora::airtime::{max_messages_per_hour, time_on_air};
use bcwan_lora::params::{RadioConfig, SpreadingFactor};
use bcwan_crypto::rsa::RsaKeySize;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Row {
    rsa_bits: usize,
    uplink_phy_bytes: usize,
    spreading_factor: u32,
    fits: bool,
    airtime_ms: f64,
    msgs_per_hour_1pct: f64,
}

fn main() {
    let (_, json) = parse_harness_args();
    let mut rows = Vec::new();
    println!("RSA    frame(B)  SF    fits  airtime(ms)  msgs/h@1%");
    for size in [RsaKeySize::Rsa512, RsaKeySize::Rsa1024, RsaKeySize::Rsa2048] {
        // DataUplink wire: 4 header + 4 device + 20 @R + 2+Em + 2+Sig.
        let phy = 4 + 4 + 20 + 2 + size.block_len() + 2 + size.block_len();
        for sf in [SpreadingFactor::Sf7, SpreadingFactor::Sf9, SpreadingFactor::Sf12] {
            let cfg = RadioConfig::with_sf(sf);
            let fits = phy <= sf.max_payload() + 4;
            let airtime = time_on_air(&cfg, phy);
            let rate = max_messages_per_hour(&cfg, phy, 0.01);
            println!(
                "{:>5}  {:>8}  SF{:<3} {:>4}  {:>11.1}  {:>9.1}",
                size.bits(),
                phy,
                sf.value(),
                if fits { "yes" } else { "NO" },
                airtime.as_secs_f64() * 1e3,
                rate,
            );
            rows.push(Row {
                rsa_bits: size.bits(),
                uplink_phy_bytes: phy,
                spreading_factor: sf.value(),
                fits,
                airtime_ms: airtime.as_secs_f64() * 1e3,
                msgs_per_hour_1pct: rate,
            });
        }
    }
    println!();
    println!("shape check: doubling the modulus roughly doubles the frame and halves");
    println!("the duty-cycle budget; RSA-2048 no longer fits SF9+ payload caps at all —");
    println!("the paper's §6 justification for accepting RSA-512's weakness.");
    if let Some(path) = json {
        write_json(&path, &rows).expect("write json");
        eprintln!("wrote {path}");
    }
}
