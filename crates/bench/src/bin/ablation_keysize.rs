//! Ablation A2 (§6): RSA key size versus LoRa cost.
//!
//! "We chose RSA-512 as method to encrypt our data due to the size limit
//! of the payload that can be sent on the LoRa network… For application
//! where this may be a problem it is possible to use higher levels of
//! encryption but messages will be lengthier on the LoRa network."
//!
//! For each modulus size this prints the data-uplink PHY size (Em + Sig
//! are one RSA block each), its airtime per spreading factor, the
//! duty-cycle message budget, and whether the frame fits the regional
//! payload caps at all.
//!
//! Usage: `ablation_keysize [--json PATH]`.

use bcwan_bench::{parse_harness_args, BenchReport};
use bcwan_crypto::rsa::RsaKeySize;
use bcwan_lora::airtime::{max_messages_per_hour, time_on_air};
use bcwan_lora::params::{RadioConfig, SpreadingFactor};
use bcwan_sim::{Json, Registry};

fn main() {
    let (_, json) = parse_harness_args();
    let mut registry = Registry::new();
    let rows_counter = registry.counter("bench.rows_total");
    let misfit_counter = registry.counter("lora.payload_cap_violations_total");
    let airtime_hist = registry.histogram("lora.uplink_airtime_seconds");

    let mut rows = Vec::new();
    println!("RSA    frame(B)  SF    fits  airtime(ms)  msgs/h@1%");
    for size in [RsaKeySize::Rsa512, RsaKeySize::Rsa1024, RsaKeySize::Rsa2048] {
        // DataUplink wire: 4 header + 4 device + 20 @R + 2+Em + 2+Sig.
        let phy = 4 + 4 + 20 + 2 + size.block_len() + 2 + size.block_len();
        for sf in [
            SpreadingFactor::Sf7,
            SpreadingFactor::Sf9,
            SpreadingFactor::Sf12,
        ] {
            let cfg = RadioConfig::with_sf(sf);
            let fits = phy <= sf.max_payload() + 4;
            let airtime = time_on_air(&cfg, phy);
            let rate = max_messages_per_hour(&cfg, phy, 0.01);
            println!(
                "{:>5}  {:>8}  SF{:<3} {:>4}  {:>11.1}  {:>9.1}",
                size.bits(),
                phy,
                sf.value(),
                if fits { "yes" } else { "NO" },
                airtime.as_secs_f64() * 1e3,
                rate,
            );
            registry.inc(rows_counter);
            registry.observe(airtime_hist, airtime.as_secs_f64());
            if !fits {
                registry.inc(misfit_counter);
            }
            rows.push(
                Json::object()
                    .with("rsa_bits", Json::size(size.bits()))
                    .with("uplink_phy_bytes", Json::size(phy))
                    .with("spreading_factor", Json::num(sf.value()))
                    .with("fits", Json::Bool(fits))
                    .with("airtime_ms", Json::num(airtime.as_secs_f64() * 1e3))
                    .with("msgs_per_hour_1pct", Json::num(rate)),
            );
        }
    }
    println!();
    println!("shape check: doubling the modulus roughly doubles the frame and halves");
    println!("the duty-cycle budget; RSA-2048 no longer fits SF9+ payload caps at all —");
    println!("the paper's §6 justification for accepting RSA-512's weakness.");
    if let Some(path) = json {
        BenchReport::new("ablation_keysize")
            .config("duty_cycle", Json::num(0.01))
            .rows(Json::Array(rows))
            .metrics(registry.snapshot())
            .write(&path)
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
