//! Ablation A4 (§6): proof-of-work versus proof-of-stake block
//! production at the edge.
//!
//! "The Proof-of-Work is not suitable for edge nodes to run the
//! blockchain as this is a computational power based method of election.
//! Other methods such as Proof-of-stake do not rely on computational
//! power…" This harness compares the two on (a) hash evaluations burned
//! per block at increasing difficulty — the CPU a PoW edge node would
//! waste — and (b) fairness of reward distribution under PoS
//! stake-weighted election.
//!
//! Usage: `ablation_consensus [--json PATH]`.

use bcwan_bench::{parse_harness_args, write_json};
use bcwan_chain::pos::ValidatorSet;
use bcwan_chain::{Address, Block, BlockHash, Transaction, TxOut};
use bcwan_script::Script;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct PowRow {
    difficulty_bits: u32,
    blocks: u32,
    mean_hashes_per_block: f64,
    mean_mine_time_us: f64,
}

#[derive(Debug, Serialize)]
struct PosRow {
    validator: usize,
    stake: u64,
    expected_share: f64,
    observed_share: f64,
}

#[derive(Debug, Serialize)]
struct Report {
    pow: Vec<PowRow>,
    pos: Vec<PosRow>,
}

fn mine_cost(bits: u32, blocks: u32) -> PowRow {
    let mut total_nonce: u64 = 0;
    let t0 = std::time::Instant::now();
    for i in 0..blocks {
        let cb = Transaction::coinbase(
            u64::from(i),
            b"bench",
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
        );
        let block = Block::mine(BlockHash([i as u8; 32]), u64::from(i), bits, vec![cb]);
        total_nonce += block.header.nonce + 1; // nonce count ≈ hashes tried
    }
    let elapsed = t0.elapsed();
    PowRow {
        difficulty_bits: bits,
        blocks,
        mean_hashes_per_block: total_nonce as f64 / blocks as f64,
        mean_mine_time_us: elapsed.as_micros() as f64 / blocks as f64,
    }
}

fn main() {
    let (_, json) = parse_harness_args();

    println!("proof-of-work cost (hash evaluations are the edge node's wasted CPU):");
    println!("bits  blocks  hashes/block  µs/block (this machine)");
    let mut pow = Vec::new();
    for bits in [4u32, 8, 12, 16, 20] {
        let blocks = if bits >= 16 { 8 } else { 64 };
        let row = mine_cost(bits, blocks);
        println!(
            "{:>4}  {:>6}  {:>12.0}  {:>8.1}",
            row.difficulty_bits, row.blocks, row.mean_hashes_per_block, row.mean_mine_time_us
        );
        pow.push(row);
    }

    println!();
    println!("proof-of-stake: zero hashing; election is a stake-weighted draw.");
    println!("validator  stake  expected  observed (10000 slots)");
    let stakes: Vec<(Address, u64)> = (0..5u8)
        .map(|i| (Address([i; 20]), u64::from(i) * 10 + 10))
        .collect();
    let total: u64 = stakes.iter().map(|(_, s)| s).sum();
    let set = ValidatorSet::new(stakes.clone()).expect("valid set");
    let mut pos = Vec::new();
    for (i, (addr, stake)) in stakes.iter().enumerate() {
        let expected = *stake as f64 / total as f64;
        let observed = set.leadership_share(addr, b"bcwan-consensus", 10_000);
        println!("{i:>9}  {stake:>5}  {expected:>8.3}  {observed:>8.3}");
        pos.push(PosRow {
            validator: i,
            stake: *stake,
            expected_share: expected,
            observed_share: observed,
        });
    }
    println!();
    println!("shape check: PoW cost grows ×2^4 per 4 difficulty bits (prohibitive on");
    println!("battery/edge hardware); PoS costs one hash per slot and allocates blocks");
    println!("stake-proportionally — the paper's §6 argument.");
    if let Some(path) = json {
        write_json(&path, &Report { pow, pos }).expect("write json");
        eprintln!("wrote {path}");
    }
}
