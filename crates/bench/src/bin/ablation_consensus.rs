//! Ablation A4 (§6): proof-of-work versus proof-of-stake block
//! production at the edge.
//!
//! "The Proof-of-Work is not suitable for edge nodes to run the
//! blockchain as this is a computational power based method of election.
//! Other methods such as Proof-of-stake do not rely on computational
//! power…" This harness compares the two on (a) hash evaluations burned
//! per block at increasing difficulty — the CPU a PoW edge node would
//! waste — and (b) fairness of reward distribution under PoS
//! stake-weighted election.
//!
//! Usage: `ablation_consensus [--json PATH]`.

use bcwan_bench::{parse_harness_args, BenchReport};
use bcwan_chain::pos::ValidatorSet;
use bcwan_chain::{Address, Block, BlockHash, Transaction, TxOut};
use bcwan_script::Script;
use bcwan_sim::{Json, Registry};

struct PowRow {
    difficulty_bits: u32,
    blocks: u32,
    mean_hashes_per_block: f64,
    mean_mine_time_us: f64,
}

fn mine_cost(bits: u32, blocks: u32) -> PowRow {
    let mut total_nonce: u64 = 0;
    let t0 = std::time::Instant::now();
    for i in 0..blocks {
        let cb = Transaction::coinbase(
            u64::from(i),
            b"bench",
            vec![TxOut {
                value: 1,
                script_pubkey: Script::new(),
            }],
        );
        let block = Block::mine(BlockHash([i as u8; 32]), u64::from(i), bits, vec![cb]);
        total_nonce += block.header.nonce + 1; // nonce count ≈ hashes tried
    }
    let elapsed = t0.elapsed();
    PowRow {
        difficulty_bits: bits,
        blocks,
        mean_hashes_per_block: total_nonce as f64 / blocks as f64,
        mean_mine_time_us: elapsed.as_micros() as f64 / blocks as f64,
    }
}

fn main() {
    let (_, json) = parse_harness_args();
    let mut registry = Registry::new();
    let blocks_counter = registry.counter("pow.blocks_mined_total");
    let hashes_counter = registry.counter("pow.hash_evaluations_total");
    let mine_hist = registry.histogram("pow.mine_seconds_per_block");

    println!("proof-of-work cost (hash evaluations are the edge node's wasted CPU):");
    println!("bits  blocks  hashes/block  µs/block (this machine)");
    let mut pow = Vec::new();
    for bits in [4u32, 8, 12, 16, 20] {
        let blocks = if bits >= 16 { 8 } else { 64 };
        let row = mine_cost(bits, blocks);
        println!(
            "{:>4}  {:>6}  {:>12.0}  {:>8.1}",
            row.difficulty_bits, row.blocks, row.mean_hashes_per_block, row.mean_mine_time_us
        );
        registry.add(blocks_counter, u64::from(row.blocks));
        registry.add(
            hashes_counter,
            (row.mean_hashes_per_block * f64::from(row.blocks)) as u64,
        );
        registry.observe(mine_hist, row.mean_mine_time_us * 1e-6);
        pow.push(
            Json::object()
                .with("difficulty_bits", Json::num(row.difficulty_bits))
                .with("blocks", Json::num(row.blocks))
                .with(
                    "mean_hashes_per_block",
                    Json::num(row.mean_hashes_per_block),
                )
                .with("mean_mine_time_us", Json::num(row.mean_mine_time_us)),
        );
    }

    println!();
    println!("proof-of-stake: zero hashing; election is a stake-weighted draw.");
    println!("validator  stake  expected  observed (10000 slots)");
    let stakes: Vec<(Address, u64)> = (0..5u8)
        .map(|i| (Address([i; 20]), u64::from(i) * 10 + 10))
        .collect();
    let total: u64 = stakes.iter().map(|(_, s)| s).sum();
    let set = ValidatorSet::new(stakes.clone()).expect("valid set");
    let mut pos = Vec::new();
    for (i, (addr, stake)) in stakes.iter().enumerate() {
        let expected = *stake as f64 / total as f64;
        let observed = set.leadership_share(addr, b"bcwan-consensus", 10_000);
        println!("{i:>9}  {stake:>5}  {expected:>8.3}  {observed:>8.3}");
        pos.push(
            Json::object()
                .with("validator", Json::size(i))
                .with("stake", Json::uint(*stake))
                .with("expected_share", Json::num(expected))
                .with("observed_share", Json::num(observed)),
        );
    }
    println!();
    println!("shape check: PoW cost grows ×2^4 per 4 difficulty bits (prohibitive on");
    println!("battery/edge hardware); PoS costs one hash per slot and allocates blocks");
    println!("stake-proportionally — the paper's §6 argument.");
    if let Some(path) = json {
        BenchReport::new("ablation_consensus")
            .config("pos_slots", Json::size(10_000))
            .rows(
                Json::object()
                    .with("pow", Json::Array(pow))
                    .with("pos", Json::Array(pos)),
            )
            .metrics(registry.snapshot())
            .write(&path)
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
