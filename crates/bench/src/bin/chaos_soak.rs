//! Chaos soak CI gate: generated fault plans against the full testbed,
//! failing the process if any fairness invariant breaks.
//!
//! Runs the same seeded scenarios as `crates/bcwan/tests/chaos_soak.rs`
//! (ISSUE 4): for each seed, a `ChaosPlan` drawn from the soak profile —
//! LoRa bursts, crash/restart windows, connection kills, block delays,
//! partitions, claim withholding, forks — over a 10-exchange tiny world.
//! After each run the exit gate checks:
//!
//! - `chaos.invariant.violation_total == 0` (value conserved, exactly
//!   one settlement per escrow, FSM/chain agreement);
//! - no escrow left open (every one ended Claimed or Refunded).
//!
//! Usage: `chaos_soak [SEED...] [--hosts N] [--exchanges N] [--store]
//! [--json PATH]`. With no positional seeds, the two CI seeds 101 and
//! 202 run. `--hosts` switches from the 2-actor tiny world to the
//! fleet preset ([`WorkloadConfig::fleet`]): N gateways on a degree-6
//! ring lattice, the configuration the CI fleet-soak job drives to
//! 1 000 hosts. `--store` gives every host a persistent chain store
//! (ISSUE 7): chaos-crashed hosts must restart *warm* — reopening
//! their block files instead of rebuilding from genesis — and the gate
//! additionally fails on any cold fallback, or on zero warm restarts
//! when the plan scheduled a crash. Exit status 1 on any violation, so
//! CI can gate on it directly.

use bcwan::world::{WorkloadConfig, World};
use bcwan_bench::BenchReport;
use bcwan_sim::{ChaosFault, ChaosPlan, ChaosProfile, Json, SimDuration, SimRng};

fn main() {
    let mut seeds: Vec<u64> = Vec::new();
    let mut json = None;
    let mut hosts: Option<u32> = None;
    let mut exchanges: Option<usize> = None;
    let mut store = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            json = args.next();
        } else if arg == "--store" {
            store = true;
        } else if arg == "--hosts" {
            hosts = Some(
                args.next()
                    .expect("--hosts takes a count")
                    .parse()
                    .expect("host count"),
            );
        } else if arg == "--exchanges" {
            exchanges = Some(
                args.next()
                    .expect("--exchanges takes a count")
                    .parse()
                    .expect("exchange count"),
            );
        } else if let Ok(seed) = arg.parse::<u64>() {
            seeds.push(seed);
        }
    }
    if seeds.is_empty() {
        seeds = vec![101, 202];
    }
    // Default target: 10 exchanges in the tiny world, one per five
    // hosts (min 10) in fleet mode so the workload scales with N.
    let target = exchanges.unwrap_or_else(|| match hosts {
        Some(n) => (n as usize / 5).max(10),
        None => 10,
    });

    let mut rows = Vec::new();
    let mut failures = 0u32;
    let mut last_metrics = None;
    for &seed in &seeds {
        let mut rng = SimRng::seed_from_u64(seed ^ 0xc4a0_5eed);
        let actor_hosts = hosts.unwrap_or(2);
        let plan = ChaosPlan::generate(
            &mut rng,
            &ChaosProfile::soak(),
            SimDuration::from_secs(240),
            actor_hosts,
        );
        let faults = plan.faults.len();
        let crashes_scheduled = plan
            .faults
            .iter()
            .any(|f| matches!(f, ChaosFault::HostCrash { .. }));
        let mut cfg = match hosts {
            Some(n) => WorkloadConfig::fleet(n, target, seed),
            None => WorkloadConfig::tiny(target, seed),
        }
        .with_chaos(plan);
        cfg.refund_delta = 12;
        let store_root = store.then(|| {
            std::env::temp_dir().join(format!("chaos-soak-store-{}-{seed}", std::process::id()))
        });
        if let Some(root) = &store_root {
            let _ = std::fs::remove_dir_all(root);
            cfg = cfg.with_store_dir(root);
        }
        eprintln!(
            "seed {seed}: {faults} faults scheduled, {actor_hosts} hosts, {target} exchanges{}…",
            if store { ", persistent stores" } else { "" }
        );
        let result = World::new(cfg).run();
        if let Some(root) = &store_root {
            let _ = std::fs::remove_dir_all(root);
        }

        let mut ok = result.invariant_violations == 0 && result.escrows_open == 0;
        if store {
            // Store mode gate: every restart must have reopened its
            // store (no cold fallback), and a plan that scheduled a
            // crash must actually have exercised the warm path.
            if result.restarts_cold > 0 {
                eprintln!(
                    "seed {seed}: {} restart(s) fell back to cold rebuild",
                    result.restarts_cold
                );
                ok = false;
            }
            if crashes_scheduled && result.restarts_warm == 0 {
                eprintln!("seed {seed}: crashes scheduled but no warm restart happened");
                ok = false;
            }
        }
        if !ok {
            failures += 1;
        }
        eprintln!(
            "seed {seed}: {} — completed={} failed={} claimed={} refunded={} open={} \
             violations={} blocks={} warm={} cold={} sim_time={:.0}s",
            if ok { "OK" } else { "VIOLATION" },
            result.completed,
            result.failed,
            result.escrows_claimed,
            result.escrows_refunded,
            result.escrows_open,
            result.invariant_violations,
            result.blocks_mined,
            result.restarts_warm,
            result.restarts_cold,
            result.sim_time.as_secs_f64(),
        );
        rows.push(
            Json::object()
                .with("seed", Json::uint(seed))
                .with("faults", Json::size(faults))
                .with("completed", Json::size(result.completed))
                .with("failed", Json::size(result.failed))
                .with("escrows_claimed", Json::size(result.escrows_claimed))
                .with("escrows_refunded", Json::size(result.escrows_refunded))
                .with("escrows_open", Json::size(result.escrows_open))
                .with(
                    "invariant_violations",
                    Json::uint(result.invariant_violations),
                )
                .with("utxo_fingerprint", Json::uint(result.utxo_fingerprint))
                .with("blocks_mined", Json::uint(result.blocks_mined))
                .with("restarts_warm", Json::uint(result.restarts_warm))
                .with("restarts_cold", Json::uint(result.restarts_cold))
                .with("sim_time_s", Json::num(result.sim_time.as_secs_f64())),
        );
        last_metrics = Some(result.metrics);
    }

    let report = BenchReport::new("chaos_soak")
        .config(
            "workload",
            Json::object()
                .with(
                    "seeds",
                    Json::Array(seeds.iter().map(|&s| Json::uint(s)).collect()),
                )
                .with("hosts", Json::uint(u64::from(hosts.unwrap_or(2))))
                .with("target_exchanges", Json::size(target))
                .with("store", Json::Bool(store))
                .with("refund_delta", Json::uint(12)),
        )
        .rows(Json::Array(rows))
        .metrics(last_metrics.expect("at least one seed"));
    if let Some(path) = json {
        report.write(&path).expect("write json");
        eprintln!("wrote {path}");
    }

    if failures > 0 {
        eprintln!("chaos soak FAILED: {failures} seed(s) violated invariants");
        std::process::exit(1);
    }
    eprintln!(
        "chaos soak passed: {} seed(s), all invariants held",
        seeds.len()
    );
}
