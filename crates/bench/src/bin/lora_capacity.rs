//! Reproduces the §5.2 workload arithmetic (experiment T-SF): airtime and
//! duty-cycle-limited message rate for the BcWAN frame across spreading
//! factors. The paper quotes "a theoretical maximum of 183 messages per
//! sensor per hour" at SF7/1 % for 128 payload + 4 header bytes; the full
//! AN1200.13 airtime model lands at 163 msg/h for the same numbers (the
//! paper's figure matches the nominal-bitrate approximation — both rows
//! are printed).
//!
//! Usage: `lora_capacity [--json PATH]`.

use bcwan_bench::{parse_harness_args, BenchReport};
use bcwan_lora::airtime::{max_messages_per_hour, time_on_air};
use bcwan_lora::params::{RadioConfig, SpreadingFactor};
use bcwan_sim::{Json, Registry};

fn main() {
    let (_, json) = parse_harness_args();
    // The paper's frame: 128-byte payload + 4-byte length header.
    const PHY_LEN: usize = 132;
    const DUTY: f64 = 0.01;

    let mut registry = Registry::new();
    let rows_counter = registry.counter("bench.rows_total");
    let misfit_counter = registry.counter("lora.payload_cap_violations_total");

    let mut rows = Vec::new();
    let mut sf7 = (0.0, 0.0); // (nominal, AN1200.13) msgs/h at SF7
    println!("SF   airtime(ms)  msgs/h@1%  nominal-bps  nominal-msgs/h  fits");
    for sf in SpreadingFactor::ALL {
        let cfg = RadioConfig::with_sf(sf);
        let fits = PHY_LEN <= sf.max_payload() + 4;
        let airtime = time_on_air(&cfg, PHY_LEN);
        let per_hour = max_messages_per_hour(&cfg, PHY_LEN, DUTY);
        // Nominal-bitrate approximation (SF · BW / 2^SF · CR) the paper's
        // 183/h figure matches.
        let cr = 4.0 / (4.0 + cfg.coding_rate.denominator_offset() as f64);
        let bitrate =
            sf.value() as f64 * cfg.bandwidth.hz() as f64 / (1u64 << sf.value()) as f64 * cr;
        let nominal_airtime = (PHY_LEN * 8) as f64 / bitrate;
        let nominal_per_hour = 3600.0 * DUTY / nominal_airtime;
        if sf == SpreadingFactor::Sf7 {
            sf7 = (nominal_per_hour, per_hour);
        }
        println!(
            "SF{:<2} {:>10.1}  {:>9.1}  {:>11.0}  {:>14.1}  {}",
            sf.value(),
            airtime.as_secs_f64() * 1e3,
            per_hour,
            bitrate,
            nominal_per_hour,
            if fits { "yes" } else { "NO (payload cap)" },
        );
        registry.inc(rows_counter);
        if !fits {
            registry.inc(misfit_counter);
        }
        rows.push(
            Json::object()
                .with("spreading_factor", Json::num(sf.value()))
                .with("airtime_ms", Json::num(airtime.as_secs_f64() * 1e3))
                .with("max_per_hour_duty1pct", Json::num(per_hour))
                .with("nominal_bitrate_bps", Json::num(bitrate))
                .with("nominal_per_hour", Json::num(nominal_per_hour))
                .with("fits_payload", Json::Bool(fits)),
        );
    }
    println!();
    println!("paper (§5.2): \"theoretical maximum of 183 messages per sensor per hour\" at SF7/1%");
    println!(
        "nominal-bitrate model gives {:.0}/h, full AN1200.13 model {:.0}/h — same order, see EXPERIMENTS.md",
        sf7.0, sf7.1
    );
    if let Some(path) = json {
        BenchReport::new("lora_capacity")
            .config("phy_len_bytes", Json::size(PHY_LEN))
            .config("duty_cycle", Json::num(DUTY))
            .rows(Json::Array(rows))
            .metrics(registry.snapshot())
            .write(&path)
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
