//! Reproduces the §5.2 workload arithmetic (experiment T-SF): airtime and
//! duty-cycle-limited message rate for the BcWAN frame across spreading
//! factors. The paper quotes "a theoretical maximum of 183 messages per
//! sensor per hour" at SF7/1 % for 128 payload + 4 header bytes; the full
//! AN1200.13 airtime model lands at 163 msg/h for the same numbers (the
//! paper's figure matches the nominal-bitrate approximation — both rows
//! are printed).
//!
//! Usage: `lora_capacity [--json PATH]`.

use bcwan_bench::{parse_harness_args, write_json};
use bcwan_lora::airtime::{max_messages_per_hour, time_on_air};
use bcwan_lora::params::{RadioConfig, SpreadingFactor};
use serde::Serialize;

/// One row of the capacity table.
#[derive(Debug, Serialize)]
struct Row {
    spreading_factor: u32,
    airtime_ms: f64,
    max_per_hour_duty1pct: f64,
    nominal_bitrate_bps: f64,
    nominal_per_hour: f64,
    fits_payload: bool,
}

fn main() {
    let (_, json) = parse_harness_args();
    // The paper's frame: 128-byte payload + 4-byte length header.
    const PHY_LEN: usize = 132;
    const DUTY: f64 = 0.01;

    let mut rows = Vec::new();
    println!("SF   airtime(ms)  msgs/h@1%  nominal-bps  nominal-msgs/h  fits");
    for sf in SpreadingFactor::ALL {
        let cfg = RadioConfig::with_sf(sf);
        let fits = PHY_LEN <= sf.max_payload() + 4;
        let airtime = time_on_air(&cfg, PHY_LEN);
        let per_hour = max_messages_per_hour(&cfg, PHY_LEN, DUTY);
        // Nominal-bitrate approximation (SF · BW / 2^SF · CR) the paper's
        // 183/h figure matches.
        let cr = 4.0 / (4.0 + cfg.coding_rate.denominator_offset() as f64);
        let bitrate =
            sf.value() as f64 * cfg.bandwidth.hz() as f64 / (1u64 << sf.value()) as f64 * cr;
        let nominal_airtime = (PHY_LEN * 8) as f64 / bitrate;
        let nominal_per_hour = 3600.0 * DUTY / nominal_airtime;
        println!(
            "SF{:<2} {:>10.1}  {:>9.1}  {:>11.0}  {:>14.1}  {}",
            sf.value(),
            airtime.as_secs_f64() * 1e3,
            per_hour,
            bitrate,
            nominal_per_hour,
            if fits { "yes" } else { "NO (payload cap)" },
        );
        rows.push(Row {
            spreading_factor: sf.value(),
            airtime_ms: airtime.as_secs_f64() * 1e3,
            max_per_hour_duty1pct: per_hour,
            nominal_bitrate_bps: bitrate,
            nominal_per_hour,
            fits_payload: fits,
        });
    }
    println!();
    println!(
        "paper (§5.2): \"theoretical maximum of 183 messages per sensor per hour\" at SF7/1%"
    );
    println!(
        "nominal-bitrate model gives {:.0}/h, full AN1200.13 model {:.0}/h — same order, see EXPERIMENTS.md",
        rows[0].nominal_per_hour, rows[0].max_per_hour_duty1pct
    );
    if let Some(path) = json {
        write_json(&path, &rows).expect("write json");
        eprintln!("wrote {path}");
    }
}
