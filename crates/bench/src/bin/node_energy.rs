//! Extension E1: node energy budget and channel contention.
//!
//! The paper's introduction leans on LoRa's "low power aspect (multi-year
//! life, coin cell operation)"; BcWAN adds a request frame and a downlink
//! receive to every delivery. This harness prices the full exchange in
//! millijoules, projects coin-cell battery life across send rates, and
//! reports the ALOHA contention the §5.2 workload would put on a single
//! channel.
//!
//! Usage: `node_energy [--json PATH]`.

use bcwan::costs::CostModel;
use bcwan_bench::{parse_harness_args, BenchReport};
use bcwan_lora::collision::{aloha_success_probability, offered_load};
use bcwan_lora::energy::{battery_life_years, exchange_energy, EnergyModel};
use bcwan_lora::params::RadioConfig;
use bcwan_lora::time_on_air;
use bcwan_sim::{Json, Registry};

fn main() {
    let (_, json) = parse_harness_args();
    let model = EnergyModel::sx1276_coin_cell();
    let cfg = RadioConfig::paper_sf7();
    let costs = CostModel::pi_class();
    let crypto_time = costs.node_encrypt + costs.node_sign;
    // BcWAN frame sizes: 28 B request, 79 B key downlink, 160 B data.
    let ex = exchange_energy(&model, &cfg, 28, 79, 160, crypto_time);

    println!("one BcWAN exchange at SF7 (node side):");
    println!("  request tx : {:7.3} mJ", ex.request_tx * 1e3);
    println!("  ePk rx     : {:7.3} mJ", ex.key_rx * 1e3);
    println!("  crypto     : {:7.3} mJ", ex.crypto * 1e3);
    println!("  data tx    : {:7.3} mJ", ex.data_tx * 1e3);
    println!("  total      : {:7.3} mJ", ex.total() * 1e3);

    let mut registry = Registry::new();
    let energy_gauge = registry.gauge("energy.exchange_mj");
    registry.set(energy_gauge, ex.total() * 1e3);
    let life_hist = registry.histogram("energy.battery_life_years");
    let aloha_hist = registry.histogram("lora.aloha_success_probability");

    println!("\ncoin-cell (1000 mAh) battery life vs exchange rate:");
    println!("  rate/day   years");
    let mut battery_years = Vec::new();
    for rate in [1.0, 24.0, 96.0, 480.0, 1440.0] {
        let years = battery_life_years(&model, &ex, rate, 1000.0);
        println!("  {rate:>8.0}  {years:>6.1}");
        registry.observe(life_hist, years);
        battery_years.push(Json::Array(vec![Json::num(rate), Json::num(years)]));
    }

    println!("\nALOHA contention, 160 B data frames on one SF7 channel:");
    println!("  sensors  frame-success-probability (each at 1 msg/50 s)");
    let airtime = time_on_air(&cfg, 160).as_secs_f64();
    let mut contention = Vec::new();
    for sensors in [10u32, 30, 60, 150, 300] {
        let g = offered_load(sensors, 1.0 / 50.0, airtime);
        let p = aloha_success_probability(g);
        println!("  {sensors:>7}  {p:>8.3}");
        registry.observe(aloha_hist, p);
        contention.push(Json::Array(vec![Json::num(sensors), Json::num(p)]));
    }
    println!("\nThe intro's multi-year coin-cell claim holds at telemetry rates");
    println!("(24/day ⇒ years of life) but not at the duty-cycle ceiling; and one");
    println!("channel tolerates a gateway's 30 sensors, not the whole city's 300.");

    if let Some(path) = json {
        BenchReport::new("node_energy")
            .config("battery_mah", Json::num(1000.0))
            .config("data_frame_bytes", Json::size(160))
            .rows(
                Json::object()
                    .with("exchange_mj", Json::num(ex.total() * 1e3))
                    .with("request_tx_mj", Json::num(ex.request_tx * 1e3))
                    .with("key_rx_mj", Json::num(ex.key_rx * 1e3))
                    .with("crypto_mj", Json::num(ex.crypto * 1e3))
                    .with("data_tx_mj", Json::num(ex.data_tx * 1e3))
                    .with("battery_years", Json::Array(battery_years))
                    .with("contention", Json::Array(contention)),
            )
            .metrics(registry.snapshot())
            .write(&path)
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
