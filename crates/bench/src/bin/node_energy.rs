//! Extension E1: node energy budget and channel contention.
//!
//! The paper's introduction leans on LoRa's "low power aspect (multi-year
//! life, coin cell operation)"; BcWAN adds a request frame and a downlink
//! receive to every delivery. This harness prices the full exchange in
//! millijoules, projects coin-cell battery life across send rates, and
//! reports the ALOHA contention the §5.2 workload would put on a single
//! channel.
//!
//! Usage: `node_energy [--json PATH]`.

use bcwan::costs::CostModel;
use bcwan_bench::{parse_harness_args, write_json};
use bcwan_lora::collision::{aloha_success_probability, offered_load};
use bcwan_lora::energy::{battery_life_years, exchange_energy, EnergyModel};
use bcwan_lora::params::RadioConfig;
use bcwan_lora::time_on_air;
use serde::Serialize;

#[derive(Debug, Serialize)]
struct Report {
    exchange_mj: f64,
    request_tx_mj: f64,
    key_rx_mj: f64,
    crypto_mj: f64,
    data_tx_mj: f64,
    battery_years: Vec<(f64, f64)>,
    contention: Vec<(u32, f64)>,
}

fn main() {
    let (_, json) = parse_harness_args();
    let model = EnergyModel::sx1276_coin_cell();
    let cfg = RadioConfig::paper_sf7();
    let costs = CostModel::pi_class();
    let crypto_time = costs.node_encrypt + costs.node_sign;
    // BcWAN frame sizes: 28 B request, 79 B key downlink, 160 B data.
    let ex = exchange_energy(&model, &cfg, 28, 79, 160, crypto_time);

    println!("one BcWAN exchange at SF7 (node side):");
    println!("  request tx : {:7.3} mJ", ex.request_tx * 1e3);
    println!("  ePk rx     : {:7.3} mJ", ex.key_rx * 1e3);
    println!("  crypto     : {:7.3} mJ", ex.crypto * 1e3);
    println!("  data tx    : {:7.3} mJ", ex.data_tx * 1e3);
    println!("  total      : {:7.3} mJ", ex.total() * 1e3);

    println!("\ncoin-cell (1000 mAh) battery life vs exchange rate:");
    println!("  rate/day   years");
    let mut battery_years = Vec::new();
    for rate in [1.0, 24.0, 96.0, 480.0, 1440.0] {
        let years = battery_life_years(&model, &ex, rate, 1000.0);
        println!("  {rate:>8.0}  {years:>6.1}");
        battery_years.push((rate, years));
    }

    println!("\nALOHA contention, 160 B data frames on one SF7 channel:");
    println!("  sensors  frame-success-probability (each at 1 msg/50 s)");
    let airtime = time_on_air(&cfg, 160).as_secs_f64();
    let mut contention = Vec::new();
    for sensors in [10u32, 30, 60, 150, 300] {
        let g = offered_load(sensors, 1.0 / 50.0, airtime);
        let p = aloha_success_probability(g);
        println!("  {sensors:>7}  {p:>8.3}");
        contention.push((sensors, p));
    }
    println!("\nThe intro's multi-year coin-cell claim holds at telemetry rates");
    println!("(24/day ⇒ years of life) but not at the duty-cycle ceiling; and one");
    println!("channel tolerates a gateway's 30 sensors, not the whole city's 300.");

    if let Some(path) = json {
        write_json(
            &path,
            &Report {
                exchange_mj: ex.total() * 1e3,
                request_tx_mj: ex.request_tx * 1e3,
                key_rx_mj: ex.key_rx * 1e3,
                crypto_mj: ex.crypto * 1e3,
                data_tx_mj: ex.data_tx * 1e3,
                battery_years,
                contention,
            },
        )
        .expect("write json");
        eprintln!("wrote {path}");
    }
}
