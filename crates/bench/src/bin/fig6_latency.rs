//! Reproduces **paper Fig. 6**: BcWAN full-exchange latency with block
//! verification enabled — every block arrival stalls the Multichain-like
//! daemon ("the block verification made the Multichain daemon stall and
//! become unresponsive for extended periods upon each block arrival").
//! Paper result: **mean 30.241 s**.
//!
//! Usage: `fig6_latency [N] [--json PATH]`.

use bcwan::world::{WorkloadConfig, World};
use bcwan_bench::{parse_harness_args, BenchReport, LatencyReport};
use bcwan_sim::Json;

fn main() {
    let (target, json) = parse_harness_args();
    let mut cfg = WorkloadConfig::paper_fig6().with_tracing();
    if let Some(n) = target {
        cfg.target_exchanges = n;
    }
    eprintln!(
        "running Fig. 6: {} exchanges with verification stalls…",
        cfg.target_exchanges
    );
    let config = Json::object()
        .with("target_exchanges", Json::size(cfg.target_exchanges))
        .with("actor_hosts", Json::size(cfg.actor_hosts as usize))
        .with(
            "sensors_per_host",
            Json::size(cfg.sensors_per_host as usize),
        )
        .with("seed", Json::uint(cfg.seed))
        .with("stall_enabled", Json::Bool(cfg.chain_params.stall.enabled))
        .with("tracing", Json::Bool(cfg.tracing));
    let result = World::new(cfg).run();
    let latency = LatencyReport::from_series(
        "Fig. 6 — exchange latency, block verification enabled",
        Some(30.241),
        &result.latencies,
        result.completed,
        result.failed,
        result.sim_time.as_secs_f64(),
        result.blocks_mined,
        result.stalls,
        120.0,
        24,
    )
    .expect("at least one exchange completed");
    latency.print();
    let report = BenchReport::new("fig6_latency")
        .config("workload", config)
        .rows(Json::Array(vec![latency.to_json()]))
        .metrics(result.metrics.clone())
        .phases(&result.phases);
    // The stall shows up as a fat confirmation_wait / escrow_publish tail.
    report.print_phases();
    if let Some(path) = json {
        report.write(&path).expect("write json");
        eprintln!("wrote {path}");
    }
}
