//! Reproduces **paper Fig. 6**: BcWAN full-exchange latency with block
//! verification enabled — every block arrival stalls the Multichain-like
//! daemon ("the block verification made the Multichain daemon stall and
//! become unresponsive for extended periods upon each block arrival").
//! Paper result: **mean 30.241 s**.
//!
//! Usage: `fig6_latency [N] [--json PATH]`.

use bcwan::world::{WorkloadConfig, World};
use bcwan_bench::{parse_harness_args, write_json, LatencyReport};

fn main() {
    let (target, json) = parse_harness_args();
    let mut cfg = WorkloadConfig::paper_fig6();
    if let Some(n) = target {
        cfg.target_exchanges = n;
    }
    eprintln!(
        "running Fig. 6: {} exchanges with verification stalls…",
        cfg.target_exchanges
    );
    let result = World::new(cfg).run();
    let report = LatencyReport::from_series(
        "Fig. 6 — exchange latency, block verification enabled",
        Some(30.241),
        &result.latencies,
        result.completed,
        result.failed,
        result.sim_time.as_secs_f64(),
        result.blocks_mined,
        result.stalls,
        120.0,
        24,
    )
    .expect("at least one exchange completed");
    report.print();
    // Phase breakdown (means): where the latency lives.
    if let (Some(r), Some(f), Some(s)) = (
        result.phase_radio.summary(),
        result.phase_forward.summary(),
        result.phase_settlement.summary(),
    ) {
        println!(
            "phases (mean): radio+node {:.3}s | forward+verify {:.3}s | escrow+claim+open {:.3}s",
            r.mean, f.mean, s.mean
        );
    }
    if let Some(path) = json {
        write_json(&path, &report).expect("write json");
        eprintln!("wrote {path}");
    }
}
