//! Reproduces **paper Fig. 5**: BcWAN full-exchange latency with block
//! verification disabled. Paper setup: 5 PlanetLab hosts × 30 sensors,
//! SF7, 1 % duty cycle, 128-byte payload + 4-byte header, AWS master
//! mining, 2000 exchanges. Paper result: **mean 1.604 s**.
//!
//! Usage: `fig5_latency [N] [--json PATH]` (N overrides 2000 exchanges).

use bcwan::world::{WorkloadConfig, World};
use bcwan_bench::{parse_harness_args, write_json, LatencyReport};

fn main() {
    let (target, json) = parse_harness_args();
    let mut cfg = WorkloadConfig::paper_fig5();
    if let Some(n) = target {
        cfg.target_exchanges = n;
    }
    eprintln!(
        "running Fig. 5: {} exchanges, {} hosts × {} sensors, SF7, 1% duty…",
        cfg.target_exchanges, cfg.actor_hosts, cfg.sensors_per_host
    );
    let result = World::new(cfg).run();
    let report = LatencyReport::from_series(
        "Fig. 5 — exchange latency, block verification disabled",
        Some(1.604),
        &result.latencies,
        result.completed,
        result.failed,
        result.sim_time.as_secs_f64(),
        result.blocks_mined,
        result.stalls,
        4.0,
        20,
    )
    .expect("at least one exchange completed");
    report.print();
    // Phase breakdown (means): where the latency lives.
    if let (Some(r), Some(f), Some(s)) = (
        result.phase_radio.summary(),
        result.phase_forward.summary(),
        result.phase_settlement.summary(),
    ) {
        println!(
            "phases (mean): radio+node {:.3}s | forward+verify {:.3}s | escrow+claim+open {:.3}s",
            r.mean, f.mean, s.mean
        );
    }
    if let Some(path) = json {
        write_json(&path, &report).expect("write json");
        eprintln!("wrote {path}");
    }
}
