//! Reproduces **paper Fig. 5**: BcWAN full-exchange latency with block
//! verification disabled. Paper setup: 5 PlanetLab hosts × 30 sensors,
//! SF7, 1 % duty cycle, 128-byte payload + 4-byte header, AWS master
//! mining, 2000 exchanges. Paper result: **mean 1.604 s**.
//!
//! Usage: `fig5_latency [N] [--json PATH] [--timeline SECS]`
//! (N overrides 2000 exchanges; `--timeline` samples the full metrics
//! registry every SECS of sim time into the report's `timeline`
//! section — see EXPERIMENTS.md, "Reading the metrics").

use bcwan::world::{WorkloadConfig, World};
use bcwan_bench::{harness_args, BenchReport, LatencyReport};
use bcwan_sim::{Json, SimDuration};

fn main() {
    let args = harness_args();
    let mut cfg = WorkloadConfig::paper_fig5().with_tracing();
    if let Some(n) = args.target {
        cfg.target_exchanges = n;
    }
    if let Some(every) = args.timeline_s {
        cfg = cfg.with_metrics_interval(SimDuration::from_secs_f64(every));
    }
    eprintln!(
        "running Fig. 5: {} exchanges, {} hosts × {} sensors, SF7, 1% duty…",
        cfg.target_exchanges, cfg.actor_hosts, cfg.sensors_per_host
    );
    let config = Json::object()
        .with("target_exchanges", Json::size(cfg.target_exchanges))
        .with("actor_hosts", Json::size(cfg.actor_hosts as usize))
        .with(
            "sensors_per_host",
            Json::size(cfg.sensors_per_host as usize),
        )
        .with("seed", Json::uint(cfg.seed))
        .with("tracing", Json::Bool(cfg.tracing));
    let result = World::new(cfg).run();
    let latency = LatencyReport::from_series(
        "Fig. 5 — exchange latency, block verification disabled",
        Some(1.604),
        &result.latencies,
        result.completed,
        result.failed,
        result.sim_time.as_secs_f64(),
        result.blocks_mined,
        result.stalls,
        4.0,
        20,
    )
    .expect("at least one exchange completed");
    latency.print();
    let report = BenchReport::new("fig5_latency")
        .config("workload", config)
        .rows(Json::Array(vec![latency.to_json()]))
        .metrics(result.metrics.clone())
        .phases(&result.phases)
        .timeline(result.timeline);
    // Phase decomposition: where the latency lives, span by span.
    report.print_phases();
    if let Some(path) = args.json {
        report.write(&path).expect("write json");
        eprintln!("wrote {path}");
    }
}
