//! Byzantine soak CI gate: hand-built adversary plans — equivocating
//! gateways, a claim-withholding gateway, a censoring master miner, and
//! a three-way partition — against the full testbed, failing the
//! process unless fair exchange holds *and* misbehavior is both
//! detected and unprofitable.
//!
//! Per seed, the Byzantine gateway fraction sweeps over 1 then 2 of
//! the 5 gateways (20 % and 40 %): the first adversary equivocates
//! (two conflicting claims per escrow, different fee → different
//! txid), the second withholds its claims forever (its escrows must
//! all refund via CLTV). In every run host 0 — the acting miner —
//! censors claim/refund transactions from its block templates for a
//! long window, so settlement only survives if the censorship detector
//! demotes it and mining rotates to a standby. A three-way
//! `PartitionGroups` window stresses the sync failover on top.
//!
//! The exit gate checks, per (seed, fraction) run:
//!
//! - `chaos.invariant.violation_total == 0` — value conserved, at most
//!   one settlement per escrow, FSM/chain agreement (the always-on
//!   auditor, not an end-of-run sweep);
//! - no escrow left open: every victimized recipient was made whole by
//!   a claim or a CLTV refund;
//! - `byzantine.equivocation_detected_total` equals
//!   `chaos.equivocations_injected_total`, and both are nonzero —
//!   every injected double-claim was caught;
//! - `chaos.claims_censored_total > 0` and
//!   `byzantine.censorship_suspected_total >= 1` — the censor actually
//!   suppressed templates and was caught doing it;
//! - honest claim revenue strictly exceeds adversarial claim revenue —
//!   misbehavior must not pay;
//! - rerunning the first seed reproduces the identical
//!   `utxo_fingerprint` and counters (bit-identical determinism).
//!
//! Usage: `byzantine_soak [SEED...] [--exchanges N] [--json PATH]`.
//! With no positional seeds, the three CI seeds 11, 22 and 33 run.
//! Exit status 1 on any gate failure, so CI can gate on it directly.

use bcwan::world::{ExperimentResult, WorkloadConfig, World};
use bcwan_bench::BenchReport;
use bcwan_sim::{ChaosFault, ChaosPlan, Json, SimDuration, SimRng, SimTime};

const ACTOR_HOSTS: u32 = 5;

/// Builds the adversary schedule for one `(seed, adversaries)` run.
/// The Byzantine gateway hosts are drawn from the seed so different
/// seeds exercise different victim/adversary layouts, but a rerun of
/// the same seed rebuilds the identical plan. The first adversary
/// always equivocates (so the detection gate has work at every
/// fraction); the second, when present, withholds.
fn byzantine_plan(seed: u64, adversaries: u32) -> ChaosPlan {
    let mut rng = SimRng::seed_from_u64(seed ^ 0xb12a_4713);
    let forever = SimTime::from_micros(u64::MAX / 2);
    let equivocator = rng.index(ACTOR_HOSTS as usize) as u32 + 1;
    let withholder = loop {
        let h = rng.index(ACTOR_HOSTS as usize) as u32 + 1;
        if h != equivocator {
            break h;
        }
    };
    // Three-way split in the middle of the censorship window: master
    // and two actors per cell, pairing drawn from the seed.
    let mut cells: Vec<Vec<u32>> = vec![vec![0], vec![], vec![]];
    let mut actors: Vec<u32> = (1..=ACTOR_HOSTS).collect();
    while !actors.is_empty() {
        let pick = actors.remove(rng.index(actors.len()));
        let cell = rng.index(3);
        cells[cell].push(pick);
    }
    cells.retain(|c| !c.is_empty());
    let partition_from = SimTime::ZERO + SimDuration::from_secs(150);
    let mut faults = vec![
        ChaosFault::Equivocate {
            host: equivocator,
            from: SimTime::ZERO,
            until: forever,
        },
        ChaosFault::CensorClaims {
            miner: 0,
            from: SimTime::ZERO + SimDuration::from_secs(30),
            until: SimTime::ZERO + SimDuration::from_secs(230),
        },
        ChaosFault::PartitionGroups {
            groups: cells,
            from: partition_from,
            until: partition_from + SimDuration::from_secs(12),
        },
    ];
    if adversaries >= 2 {
        faults.push(ChaosFault::ClaimWithhold {
            host: withholder,
            from: SimTime::ZERO,
            until: forever,
        });
    }
    ChaosPlan { faults }
}

fn run_seed(seed: u64, adversaries: u32, target: usize) -> ExperimentResult {
    let plan = byzantine_plan(seed, adversaries);
    let mut cfg = WorkloadConfig::fleet(ACTOR_HOSTS, target, seed).with_chaos(plan);
    cfg.refund_delta = 12;
    World::new(cfg).run()
}

fn counter(result: &ExperimentResult, name: &str) -> u64 {
    result.metrics.counter(name).unwrap_or(0)
}

fn check_gates(seed: u64, result: &ExperimentResult) -> bool {
    let injected = counter(result, "chaos.equivocations_injected_total");
    let detected = counter(result, "byzantine.equivocation_detected_total");
    let censored = counter(result, "chaos.claims_censored_total");
    let suspected = counter(result, "byzantine.censorship_suspected_total");
    let mut ok = true;
    let mut fail = |msg: String| {
        eprintln!("seed {seed}: GATE FAILED — {msg}");
        ok = false;
    };
    if result.invariant_violations != 0 {
        fail(format!(
            "{} invariant violation(s)",
            result.invariant_violations
        ));
    }
    if result.escrows_open != 0 {
        fail(format!(
            "{} escrow(s) left open — a recipient was not made whole",
            result.escrows_open
        ));
    }
    if injected == 0 {
        fail("no equivocation was injected (plan never activated)".into());
    }
    if detected != injected {
        fail(format!(
            "equivocations detected {detected} != injected {injected}"
        ));
    }
    if censored == 0 {
        fail("censoring miner never suppressed a settlement".into());
    }
    if suspected == 0 {
        fail("censorship was never suspected — detector asleep".into());
    }
    if result.honest_revenue <= result.adversarial_revenue {
        fail(format!(
            "honest revenue {} does not dominate adversarial {}",
            result.honest_revenue, result.adversarial_revenue
        ));
    }
    ok
}

fn main() {
    let mut seeds: Vec<u64> = Vec::new();
    let mut json = None;
    let mut exchanges = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--json" {
            json = args.next();
        } else if arg == "--exchanges" {
            exchanges = Some(
                args.next()
                    .expect("--exchanges takes a count")
                    .parse()
                    .expect("exchange count"),
            );
        } else if let Ok(seed) = arg.parse::<u64>() {
            seeds.push(seed);
        }
    }
    if seeds.is_empty() {
        seeds = vec![11, 22, 33];
    }
    let target = exchanges.unwrap_or(40);

    let mut rows = Vec::new();
    let mut failures = 0u32;
    let mut last_metrics = None;
    for &seed in &seeds {
        for adversaries in [1u32, 2] {
            let plan = byzantine_plan(seed, adversaries);
            let fraction = f64::from(adversaries) / f64::from(ACTOR_HOSTS);
            eprintln!(
                "seed {seed} ({:.0}% Byzantine): adversaries on hosts {:?}, \
                 {ACTOR_HOSTS} gateways, {target} exchanges…",
                fraction * 100.0,
                plan.adversarial_hosts()
            );
            let result = run_seed(seed, adversaries, target);
            let ok = check_gates(seed, &result);
            if !ok {
                failures += 1;
            }
            eprintln!(
                "seed {seed}: {} — completed={} claimed={} refunded={} open={} violations={} \
                 equivocations={}/{} censored={} suspected={} honest={} adversarial={} \
                 standby_blocks={} sim_time={:.0}s",
                if ok { "OK" } else { "VIOLATION" },
                result.completed,
                result.escrows_claimed,
                result.escrows_refunded,
                result.escrows_open,
                result.invariant_violations,
                counter(&result, "byzantine.equivocation_detected_total"),
                counter(&result, "chaos.equivocations_injected_total"),
                counter(&result, "chaos.claims_censored_total"),
                counter(&result, "byzantine.censorship_suspected_total"),
                result.honest_revenue,
                result.adversarial_revenue,
                result.standby_blocks_mined,
                result.sim_time.as_secs_f64(),
            );
            rows.push(
                Json::object()
                    .with("seed", Json::uint(seed))
                    .with("adversarial_fraction", Json::num(fraction))
                    .with("completed", Json::size(result.completed))
                    .with("escrows_claimed", Json::size(result.escrows_claimed))
                    .with("escrows_refunded", Json::size(result.escrows_refunded))
                    .with("escrows_open", Json::size(result.escrows_open))
                    .with(
                        "invariant_violations",
                        Json::uint(result.invariant_violations),
                    )
                    .with(
                        "equivocations_injected",
                        Json::uint(counter(&result, "chaos.equivocations_injected_total")),
                    )
                    .with(
                        "equivocations_detected",
                        Json::uint(counter(&result, "byzantine.equivocation_detected_total")),
                    )
                    .with(
                        "claims_censored",
                        Json::uint(counter(&result, "chaos.claims_censored_total")),
                    )
                    .with(
                        "censorship_suspected",
                        Json::uint(counter(&result, "byzantine.censorship_suspected_total")),
                    )
                    .with("honest_revenue", Json::uint(result.honest_revenue))
                    .with(
                        "adversarial_revenue",
                        Json::uint(result.adversarial_revenue),
                    )
                    .with(
                        "standby_blocks_mined",
                        Json::uint(result.standby_blocks_mined),
                    )
                    .with("utxo_fingerprint", Json::uint(result.utxo_fingerprint))
                    .with("sim_time_s", Json::num(result.sim_time.as_secs_f64())),
            );
            last_metrics = Some(result.metrics);
        }
    }

    // Determinism gate: the first seed at the full adversary fraction,
    // rerun from scratch, must land on the identical final UTXO set and
    // identical Byzantine counters.
    let first = seeds[0];
    eprintln!("seed {first}: determinism rerun…");
    let a = run_seed(first, 2, target);
    let b = run_seed(first, 2, target);
    let fingerprint_ok = a.utxo_fingerprint == b.utxo_fingerprint;
    let counters_ok = [
        "chaos.equivocations_injected_total",
        "byzantine.equivocation_detected_total",
        "chaos.claims_censored_total",
        "byzantine.censorship_suspected_total",
    ]
    .iter()
    .all(|name| counter(&a, name) == counter(&b, name));
    if !fingerprint_ok || !counters_ok {
        eprintln!(
            "seed {first}: GATE FAILED — rerun diverged (fingerprint {:#x} vs {:#x})",
            a.utxo_fingerprint, b.utxo_fingerprint
        );
        failures += 1;
    }

    let report = BenchReport::new("byzantine_soak")
        .config(
            "workload",
            Json::object()
                .with(
                    "seeds",
                    Json::Array(seeds.iter().map(|&s| Json::uint(s)).collect()),
                )
                .with("hosts", Json::uint(u64::from(ACTOR_HOSTS)))
                .with(
                    "adversarial_fractions",
                    Json::Array(vec![Json::num(0.2), Json::num(0.4)]),
                )
                .with("target_exchanges", Json::size(target))
                .with("refund_delta", Json::uint(12)),
        )
        .rows(Json::Array(rows))
        .metrics(last_metrics.expect("at least one seed"));
    if let Some(path) = json {
        report.write(&path).expect("write json");
        eprintln!("wrote {path}");
    }

    if failures > 0 {
        eprintln!("byzantine soak FAILED: {failures} gate failure(s)");
        std::process::exit(1);
    }
    eprintln!(
        "byzantine soak passed: {} seed(s), misbehavior detected, contained, and unprofitable",
        seeds.len()
    );
}
