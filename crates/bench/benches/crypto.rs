//! Criterion micro-benchmarks for the cryptographic primitives on the
//! BcWAN hot path (Fig. 4 framing, Fig. 3 steps 1/3/4/8/10).

use bcwan_crypto::aes::{cbc_decrypt, cbc_encrypt};
use bcwan_crypto::ecdsa::EcdsaPrivateKey;
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
use bcwan_crypto::{hash160, sha256d};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_hashes(c: &mut Criterion) {
    let data = vec![0xa5u8; 160]; // one BcWAN data-uplink frame
    c.bench_function("sha256d_160B", |b| b.iter(|| sha256d(black_box(&data))));
    let pubkey = [0x02u8; 33];
    c.bench_function("hash160_pubkey", |b| b.iter(|| hash160(black_box(&pubkey))));
}

fn bench_aes(c: &mut Criterion) {
    let key = [7u8; 32];
    let iv = [9u8; 16];
    let reading = b"t=21.5C;h=40%";
    c.bench_function("aes256_cbc_encrypt_reading", |b| {
        b.iter(|| cbc_encrypt(black_box(&key), black_box(&iv), black_box(reading)))
    });
    let ct = cbc_encrypt(&key, &iv, reading);
    c.bench_function("aes256_cbc_decrypt_reading", |b| {
        b.iter(|| cbc_decrypt(black_box(&key), black_box(&iv), black_box(&ct)).unwrap())
    });
}

fn bench_rsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    c.bench_function("rsa512_keygen (paper step 1)", |b| {
        b.iter(|| generate_keypair(black_box(&mut rng), RsaKeySize::Rsa512))
    });
    let (pk, sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let inner = vec![0u8; 34]; // Fig. 4 frame
    c.bench_function("rsa512_encrypt_fig4 (step 3)", |b| {
        b.iter(|| pk.encrypt(black_box(&mut rng), black_box(&inner)).unwrap())
    });
    let em = pk.encrypt(&mut rng, &inner).unwrap();
    c.bench_function("rsa512_decrypt (step 10)", |b| {
        b.iter(|| sk.decrypt(black_box(&em)).unwrap())
    });
    c.bench_function("rsa512_sign (step 4)", |b| {
        b.iter(|| sk.sign(black_box(&em)))
    });
    let sig = sk.sign(&em);
    c.bench_function("rsa512_verify (step 8)", |b| {
        b.iter(|| pk.verify(black_box(&em), black_box(&sig)))
    });
    c.bench_function("rsa512_pair_check (OP_CHECKRSA512PAIR)", |b| {
        b.iter(|| pk.matches_private(black_box(&sk)))
    });
}

fn bench_ecdsa(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let key = EcdsaPrivateKey::generate(&mut rng);
    let digest = [0x5au8; 32];
    c.bench_function("ecdsa_sign_digest", |b| {
        b.iter(|| key.sign_digest(black_box(&digest)))
    });
    let sig = key.sign_digest(&digest);
    let public = key.public_key();
    c.bench_function("ecdsa_verify_digest", |b| {
        b.iter(|| public.verify_digest(black_box(&digest), black_box(&sig)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hashes, bench_aes, bench_rsa, bench_ecdsa
}
criterion_main!(benches);
