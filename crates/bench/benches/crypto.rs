//! Micro-benchmarks for the cryptographic primitives on the BcWAN hot
//! path (Fig. 4 framing, Fig. 3 steps 1/3/4/8/10). Plain `main` harness
//! (`cargo bench -p bcwan-bench --bench crypto`).

use bcwan_bench::bench_fn;
use bcwan_crypto::aes::{cbc_decrypt, cbc_encrypt};
use bcwan_crypto::ecdsa::EcdsaPrivateKey;
use bcwan_crypto::field::FieldElement;
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
use bcwan_crypto::{hash160, sha256d};
use bcwan_script::interpreter::{verify_spend, DigestChecker, ExecContext};
use bcwan_script::templates;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn main() {
    let data = vec![0xa5u8; 160]; // one BcWAN data-uplink frame
    bench_fn("sha256d_160B", 10_000, || sha256d(black_box(&data)));
    let pubkey = [0x02u8; 33];
    bench_fn("hash160_pubkey", 10_000, || hash160(black_box(&pubkey)));

    let key = [7u8; 32];
    let iv = [9u8; 16];
    let reading = b"t=21.5C;h=40%";
    bench_fn("aes256_cbc_encrypt_reading", 10_000, || {
        cbc_encrypt(black_box(&key), black_box(&iv), black_box(reading))
    });
    let ct = cbc_encrypt(&key, &iv, reading);
    bench_fn("aes256_cbc_decrypt_reading", 10_000, || {
        cbc_decrypt(black_box(&key), black_box(&iv), black_box(&ct)).unwrap()
    });

    let mut rng = StdRng::seed_from_u64(1);
    bench_fn("rsa512_keygen (paper step 1)", 10, || {
        generate_keypair(black_box(&mut rng), RsaKeySize::Rsa512)
    });
    let (pk, sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let inner = vec![0u8; 34]; // Fig. 4 frame
    bench_fn("rsa512_encrypt_fig4 (step 3)", 200, || {
        pk.encrypt(black_box(&mut rng), black_box(&inner)).unwrap()
    });
    let em = pk.encrypt(&mut rng, &inner).unwrap();
    bench_fn("rsa512_decrypt (step 10)", 100, || {
        sk.decrypt(black_box(&em)).unwrap()
    });
    bench_fn("rsa512_sign (step 4)", 100, || sk.sign(black_box(&em)));
    let sig = sk.sign(&em);
    bench_fn("rsa512_verify (step 8)", 200, || {
        pk.verify(black_box(&em), black_box(&sig))
    });
    bench_fn("rsa512_pair_check (OP_CHECKRSA512PAIR)", 100, || {
        pk.matches_private(black_box(&sk))
    });

    let mut rng = StdRng::seed_from_u64(2);
    let ec = EcdsaPrivateKey::generate(&mut rng);
    let digest = [0x5au8; 32];
    bench_fn("ecdsa_sign_digest", 100, || {
        ec.sign_digest(black_box(&digest))
    });
    let sig = ec.sign_digest(&digest);
    let public = ec.public_key();
    bench_fn("ecdsa_verify_digest", 100, || {
        public.verify_digest(black_box(&digest), black_box(&sig))
    });

    // Batch verification across block-shaped workloads. "grouped" mimics a
    // real block — a handful of wallets each spending several outputs — so
    // the verifier's pubkey coalescing folds repeated keys into one
    // multi-scalar term; "distinct" is the adversarial shape where every
    // signature carries a fresh key. Compare per-signature cost against
    // `ecdsa_verify_digest` above.
    let make_batch = |wallets: usize, count: usize| {
        let mut rng = StdRng::seed_from_u64(3);
        let keys: Vec<EcdsaPrivateKey> = (0..wallets)
            .map(|_| EcdsaPrivateKey::generate(&mut rng))
            .collect();
        let per_key = count / wallets;
        let mut digests = Vec::new();
        let mut sigs = Vec::new();
        let mut pubs = Vec::new();
        for i in 0..count {
            let mut d = [0u8; 32];
            d[..8].copy_from_slice(&(i as u64).to_le_bytes());
            let key = &keys[(i / per_key.max(1)).min(wallets - 1)];
            sigs.push(key.sign_digest(&d));
            pubs.push(key.public_key());
            digests.push(d);
        }
        (digests, sigs, pubs)
    };
    for (name, wallets, count, iters) in [
        ("ecdsa_batch_verify4_distinct", 4, 4, 60),
        ("ecdsa_batch_verify16_distinct", 16, 16, 30),
        ("ecdsa_batch_verify64_distinct", 64, 64, 10),
        ("ecdsa_batch_verify64_grouped (8 wallets)", 8, 64, 10),
        ("ecdsa_batch_verify256_grouped (8 wallets)", 8, 256, 5),
    ] {
        let (digests, sigs, pubs) = make_batch(wallets, count);
        let items: Vec<(
            &[u8; 32],
            &bcwan_crypto::Signature,
            &bcwan_crypto::EcdsaPublicKey,
        )> = (0..count)
            .map(|i| (&digests[i], &sigs[i], &pubs[i]))
            .collect();
        bench_fn(name, iters, || {
            bcwan_crypto::batch_verify(black_box(&items)).unwrap()
        });
    }

    // The fixed-limb field primitives under every EC point operation.
    let fa = FieldElement::from_u64(0xdead_beef_1234_5678)
        .mul(&FieldElement::from_u64(0x9e37_79b9))
        .add(&FieldElement::ONE);
    let fb = fa.sqr().sub(&FieldElement::from_u64(977));
    bench_fn("fe_mul", 100_000, || black_box(&fa).mul(black_box(&fb)));
    bench_fn("fe_sqr", 100_000, || black_box(&fa).sqr());
    bench_fn("fe_invert", 10_000, || black_box(&fa).invert());

    // Full escrow spend check: the Listing 1 reveal path — ePk/eSk pair
    // check (OP_CHECKRSA512PAIR), P2PKH hash check, and the final
    // OP_CHECKSIG over the sighash digest. This is the per-input cost a
    // validator pays for a claim transaction on a sigcache miss.
    let gateway_hash = hash160(&public.to_bytes());
    let buyer_hash = [0x33u8; 20];
    let escrow = templates::ephemeral_key_release(&pk, &gateway_hash, &buyer_hash, 100);
    let reveal = templates::key_reveal_sig(&sig.to_bytes(), &public.to_bytes(), &sk);
    let checker = DigestChecker { digest };
    let ctx = ExecContext {
        checker: &checker,
        lock_time: 0,
        input_final: true,
    };
    bench_fn("escrow_verify (reveal path, cache miss)", 100, || {
        verify_spend(black_box(&reveal), black_box(&escrow), &ctx).unwrap()
    });
}
