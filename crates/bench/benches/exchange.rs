//! Micro-benchmarks for the end-to-end protocol pieces: sealing and
//! opening readings (the node/recipient CPU of Fig. 3) and escrow/claim
//! construction, plus a miniature whole-world run. Plain `main` harness
//! (`cargo bench -p bcwan-bench --bench exchange`).

use bcwan::costs::CostModel;
use bcwan::escrow::{build_claim, build_escrow};
use bcwan::exchange::{open_reading, seal_reading, verify_uplink};
use bcwan::provisioning::{DeviceId, DeviceRegistry};
use bcwan::world::{WorkloadConfig, World};
use bcwan_bench::bench_fn;
use bcwan_chain::{Address, Chain, ChainParams, OutPoint, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let mut registry = DeviceRegistry::new();
    let creds = registry.provision(&mut rng, DeviceId(1), Address([1; 20]));
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let reading = b"t=21.5C;h=40%";

    bench_fn("seal_reading (node: steps 3-4)", 100, || {
        seal_reading(black_box(&mut rng), &creds, &e_pk, reading).unwrap()
    });
    let sealed = seal_reading(&mut rng, &creds, &e_pk, reading).unwrap();
    let record = registry.get(&DeviceId(1)).unwrap();
    bench_fn("verify_uplink (recipient: step 8)", 100, || {
        verify_uplink(black_box(record), &e_pk, &sealed)
    });
    bench_fn("open_reading (recipient: step 10)", 100, || {
        open_reading(black_box(record), &e_sk, &sealed.em).unwrap()
    });

    let mut rng = StdRng::seed_from_u64(2);
    let params = ChainParams::multichain_like();
    let recipient = Wallet::generate(&mut rng);
    let gateway = Wallet::generate(&mut rng);
    let genesis = Chain::make_genesis(&params, &[(recipient.address(), 1_000)]);
    let chain = Chain::new(params, genesis);
    let coin = (
        OutPoint {
            txid: chain.block_at(0).unwrap().transactions[0].txid(),
            vout: 0,
        },
        recipient.locking_script(),
        1_000u64,
    );
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);

    bench_fn("build_escrow (step 9)", 50, || {
        build_escrow(
            black_box(&recipient),
            std::slice::from_ref(&coin),
            &e_pk,
            &gateway.address(),
            100,
            10,
            0,
        )
    });
    let escrow = build_escrow(&recipient, &[coin], &e_pk, &gateway.address(), 100, 10, 0);
    bench_fn("build_claim (step 10)", 50, || {
        build_claim(
            black_box(&gateway),
            escrow.outpoint(),
            &escrow.script,
            100,
            &e_sk,
            5,
        )
    });

    bench_fn("world_5_exchanges_tiny", 3, || {
        let mut cfg = WorkloadConfig::tiny(5, 42);
        cfg.costs = CostModel::zero();
        World::new(cfg).run().completed
    });
}
