//! Criterion benchmarks for the end-to-end protocol pieces: sealing and
//! opening readings (the node/recipient CPU of Fig. 3) and escrow/claim
//! construction, plus a miniature whole-world run.

use bcwan::costs::CostModel;
use bcwan::escrow::{build_claim, build_escrow};
use bcwan::exchange::{open_reading, seal_reading, verify_uplink};
use bcwan::provisioning::{DeviceId, DeviceRegistry};
use bcwan::world::{WorkloadConfig, World};
use bcwan_chain::{Address, Chain, ChainParams, OutPoint, Wallet};
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_seal_open(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut registry = DeviceRegistry::new();
    let creds = registry.provision(&mut rng, DeviceId(1), Address([1; 20]));
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let reading = b"t=21.5C;h=40%";

    c.bench_function("seal_reading (node: steps 3-4)", |b| {
        b.iter(|| seal_reading(black_box(&mut rng), &creds, &e_pk, reading).unwrap())
    });
    let sealed = seal_reading(&mut rng, &creds, &e_pk, reading).unwrap();
    let record = registry.get(&DeviceId(1)).unwrap();
    c.bench_function("verify_uplink (recipient: step 8)", |b| {
        b.iter(|| verify_uplink(black_box(record), &e_pk, &sealed))
    });
    c.bench_function("open_reading (recipient: step 10)", |b| {
        b.iter(|| open_reading(black_box(record), &e_sk, &sealed.em).unwrap())
    });
}

fn bench_escrow(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let params = ChainParams::multichain_like();
    let recipient = Wallet::generate(&mut rng);
    let gateway = Wallet::generate(&mut rng);
    let genesis = Chain::make_genesis(&params, &[(recipient.address(), 1_000)]);
    let chain = Chain::new(params, genesis);
    let coin = (
        OutPoint {
            txid: chain.block_at(0).unwrap().transactions[0].txid(),
            vout: 0,
        },
        recipient.locking_script(),
        1_000u64,
    );
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);

    c.bench_function("build_escrow (step 9)", |b| {
        b.iter(|| {
            build_escrow(
                black_box(&recipient),
                &[coin.clone()],
                &e_pk,
                &gateway.address(),
                100,
                10,
                0,
            )
        })
    });
    let escrow = build_escrow(&recipient, &[coin], &e_pk, &gateway.address(), 100, 10, 0);
    c.bench_function("build_claim (step 10)", |b| {
        b.iter(|| {
            build_claim(
                black_box(&gateway),
                escrow.outpoint(),
                &escrow.script,
                100,
                &e_sk,
                5,
            )
        })
    });
}

fn bench_world(c: &mut Criterion) {
    c.bench_function("world_5_exchanges_tiny", |b| {
        b.iter(|| {
            let mut cfg = WorkloadConfig::tiny(5, 42);
            cfg.costs = CostModel::zero();
            World::new(cfg).run().completed
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_seal_open, bench_escrow, bench_world
}
criterion_main!(benches);
