//! Micro-benchmarks for the blockchain substrate: transaction validation,
//! block assembly/connection, merkle trees, and the mempool — the work a
//! gateway daemon performs per gossip message. Plain `main` harness
//! (`cargo bench -p bcwan-bench --bench chain`).

use bcwan_bench::bench_fn;
use bcwan_chain::merkle::{merkle_proof, merkle_root};
use bcwan_chain::tx::TxId;
use bcwan_chain::{
    validate_transaction, Block, Chain, ChainParams, Mempool, OutPoint, Transaction, TxOut, Wallet,
};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

struct Fixture {
    params: ChainParams,
    chain: Chain,
    wallet: Wallet,
    coins: Vec<(OutPoint, Script, u64)>,
}

fn fixture(n_coins: usize) -> Fixture {
    let mut rng = StdRng::seed_from_u64(99);
    let mut params = ChainParams::multichain_like();
    params.coinbase_maturity = 1;
    let wallet = Wallet::generate(&mut rng);
    let allocations: Vec<_> = (0..n_coins).map(|_| (wallet.address(), 1_000u64)).collect();
    let genesis = Chain::make_genesis(&params, &allocations);
    let mut chain = Chain::new(params.clone(), genesis);
    // One empty block to mature the genesis coinbase.
    let cb = Transaction::coinbase(
        1,
        b"w",
        vec![TxOut {
            value: params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    );
    let block = Block::mine(chain.tip(), 1, params.difficulty_bits, vec![cb]);
    chain.add_block(block).unwrap();
    let genesis_txid = chain.block_at(0).unwrap().transactions[0].txid();
    let coins = (0..n_coins as u32)
        .map(|vout| {
            (
                OutPoint {
                    txid: genesis_txid,
                    vout,
                },
                wallet.locking_script(),
                1_000u64,
            )
        })
        .collect();
    Fixture {
        params,
        chain,
        wallet,
        coins,
    }
}

fn payment(f: &Fixture, coin: usize) -> Transaction {
    f.wallet.build_payment(
        vec![(f.coins[coin].0, f.coins[coin].1.clone())],
        vec![TxOut {
            value: 990,
            script_pubkey: Script::new(),
        }],
        0,
    )
}

fn clone_for_bench(f: &Fixture) -> Chain {
    let blocks: Vec<Block> = f.chain.iter_main().cloned().collect();
    let mut chain = Chain::new(f.params.clone(), blocks[0].clone());
    for b in blocks.into_iter().skip(1) {
        chain.add_block(b).unwrap();
    }
    chain
}

fn main() {
    let f = fixture(4);
    let tx = payment(&f, 0);
    bench_fn("tx_build_and_sign_p2pkh", 50, || payment(black_box(&f), 0));
    bench_fn("tx_validate_p2pkh (daemon hot path)", 100, || {
        validate_transaction(
            black_box(&tx),
            f.chain.utxo(),
            f.chain.height() + 1,
            &f.params,
        )
        .unwrap()
    });
    bench_fn("txid_serialize_hash", 10_000, || black_box(&tx).txid());

    let f = fixture(64);
    bench_fn("mempool_insert_64", 5, || {
        let mut pool = Mempool::new();
        for i in 0..64 {
            pool.insert(
                payment(&f, i),
                f.chain.utxo(),
                f.chain.height() + 1,
                &f.params,
            )
            .unwrap();
        }
        pool.len()
    });
    let mut pool = Mempool::new();
    for i in 0..64 {
        pool.insert(
            payment(&f, i),
            f.chain.utxo(),
            f.chain.height() + 1,
            &f.params,
        )
        .unwrap();
    }
    bench_fn("mempool_block_template_64", 1_000, || {
        black_box(&pool).block_template(1 << 20)
    });

    let f = fixture(32);
    let mut txs = vec![Transaction::coinbase(
        2,
        b"bench",
        vec![TxOut {
            value: f.params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    )];
    for i in 0..32 {
        txs.push(payment(&f, i));
    }
    bench_fn("block_mine_12bits_33txs", 5, || {
        Block::mine(f.chain.tip(), 2, f.params.difficulty_bits, txs.clone())
    });
    let block = Block::mine(f.chain.tip(), 2, f.params.difficulty_bits, txs);
    bench_fn("block_connect_33txs (stall-free verification)", 10, || {
        let mut chain = clone_for_bench(&f);
        chain.add_block(black_box(block.clone())).unwrap()
    });

    let ids: Vec<TxId> = (0..255u8).map(|i| TxId([i; 32])).collect();
    bench_fn("merkle_root_255", 1_000, || merkle_root(black_box(&ids)));
    let root = merkle_root(&ids);
    let proof = merkle_proof(&ids, 100).unwrap();
    bench_fn("merkle_proof_verify_255", 10_000, || {
        black_box(&proof).verify(black_box(&root))
    });
}
