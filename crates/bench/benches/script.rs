//! Micro-benchmarks for script execution — Listing 1 both paths, P2PKH,
//! and the serialization codec. Plain `main` harness
//! (`cargo bench -p bcwan-bench --bench script`).

use bcwan_bench::bench_fn;
use bcwan_crypto::rsa::{generate_keypair, RsaKeySize};
use bcwan_script::interpreter::{verify_spend, DigestChecker, ExecContext};
use bcwan_script::templates::{
    ephemeral_key_release, key_reveal_sig, p2pkh, p2pkh_sig, refund_sig,
};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const DIGEST: [u8; 32] = [0x11; 32];

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let signer = bcwan_crypto::ecdsa::EcdsaPrivateKey::generate(&mut rng);
    let pubkey = signer.public_key().to_bytes();
    let lock = p2pkh(&bcwan_crypto::hash160(&pubkey));
    let sig = signer.sign_digest(&DIGEST).to_bytes();
    let unlock = p2pkh_sig(&sig, &pubkey);
    let checker = DigestChecker { digest: DIGEST };
    let ctx = ExecContext {
        checker: &checker,
        lock_time: 0,
        input_final: false,
    };
    bench_fn("p2pkh_verify_spend", 100, || {
        verify_spend(black_box(&unlock), black_box(&lock), black_box(&ctx)).unwrap()
    });

    let mut rng = StdRng::seed_from_u64(2);
    let gateway = bcwan_crypto::ecdsa::EcdsaPrivateKey::generate(&mut rng);
    let buyer = bcwan_crypto::ecdsa::EcdsaPrivateKey::generate(&mut rng);
    let gw_pub = gateway.public_key().to_bytes();
    let buyer_pub = buyer.public_key().to_bytes();
    let (e_pk, e_sk) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let lock = ephemeral_key_release(
        &e_pk,
        &bcwan_crypto::hash160(&gw_pub),
        &bcwan_crypto::hash160(&buyer_pub),
        100,
    );
    let checker = DigestChecker { digest: DIGEST };

    let sig = gateway.sign_digest(&DIGEST).to_bytes();
    let reveal = key_reveal_sig(&sig, &gw_pub, &e_sk);
    let ctx0 = ExecContext {
        checker: &checker,
        lock_time: 0,
        input_final: false,
    };
    bench_fn("listing1_reveal_path (escrow claim)", 100, || {
        verify_spend(black_box(&reveal), black_box(&lock), black_box(&ctx0)).unwrap()
    });

    let bsig = buyer.sign_digest(&DIGEST).to_bytes();
    let refund = refund_sig(&bsig, &buyer_pub);
    let ctx_late = ExecContext {
        checker: &checker,
        lock_time: 150,
        input_final: false,
    };
    bench_fn("listing1_refund_path (timeout)", 100, || {
        verify_spend(black_box(&refund), black_box(&lock), black_box(&ctx_late)).unwrap()
    });

    let mut rng = StdRng::seed_from_u64(3);
    let (e_pk, _) = generate_keypair(&mut rng, RsaKeySize::Rsa512);
    let lock = ephemeral_key_release(&e_pk, &[1; 20], &[2; 20], 100);
    bench_fn("script_serialize_listing1", 10_000, || {
        black_box(&lock).to_bytes()
    });
    let bytes = lock.to_bytes();
    bench_fn("script_parse_listing1", 10_000, || {
        Script::from_bytes(black_box(&bytes)).unwrap()
    });
}
