//! Parallel block validation must be observably identical to sequential:
//! same accept/reject decision and the *same* error for invalid blocks,
//! regardless of worker count or cache state. These tests pin that
//! contract for a valid block, a block with a bad mid-block signature,
//! and a block with a mid-block structural failure.

use bcwan_chain::{
    validate_block_with, Block, BlockError, BlockValidationOptions, ChainParams, OutPoint,
    SigCache, Transaction, TxError, TxOut, UtxoSet, Wallet,
};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::SeedableRng;

const COINS: usize = 8;

struct Fixture {
    params: ChainParams,
    utxo: UtxoSet,
    wallet: Wallet,
    coins: Vec<OutPoint>,
}

/// UTXO set holding `COINS` mature 1000-value coins owned by one wallet.
fn fixture() -> Fixture {
    let mut rng = StdRng::seed_from_u64(7);
    let params = ChainParams::fast_test();
    let wallet = Wallet::generate(&mut rng);
    let outputs = vec![
        TxOut {
            value: 1000,
            script_pubkey: wallet.locking_script(),
        };
        COINS
    ];
    let cb = Transaction::coinbase(0, b"pd", outputs);
    let mut utxo = UtxoSet::new();
    utxo.apply_block(std::slice::from_ref(&cb), 0).unwrap();
    let coins = (0..COINS as u32)
        .map(|vout| OutPoint {
            txid: cb.txid(),
            vout,
        })
        .collect();
    Fixture {
        params,
        utxo,
        wallet,
        coins,
    }
}

fn spend(f: &Fixture, coin: OutPoint, value: u64) -> Transaction {
    f.wallet.build_payment(
        vec![(coin, f.wallet.locking_script())],
        vec![TxOut {
            value,
            script_pubkey: Script::new(),
        }],
        0,
    )
}

fn mine(f: &Fixture, height: u64, spends: Vec<Transaction>) -> Block {
    let mut txs = vec![Transaction::coinbase(
        height,
        b"pd-block",
        vec![TxOut {
            value: f.params.coinbase_reward,
            script_pubkey: Script::new(),
        }],
    )];
    txs.extend(spends);
    let prev = bcwan_chain::BlockHash([0u8; 32]);
    Block::mine(prev, height, f.params.difficulty_bits, txs)
}

fn validate_at(
    f: &Fixture,
    block: &Block,
    workers: usize,
    cache: Option<&SigCache>,
) -> Result<(), BlockError> {
    validate_with_batch(f, block, workers, cache, true)
}

fn validate_with_batch(
    f: &Fixture,
    block: &Block,
    workers: usize,
    cache: Option<&SigCache>,
    batch: bool,
) -> Result<(), BlockError> {
    let opts = BlockValidationOptions {
        cache,
        workers,
        batch,
    };
    let height = f.params.coinbase_maturity;
    validate_block_with(block, &f.utxo, height, &f.params, &opts)
}

#[test]
fn valid_block_accepted_at_every_worker_count() {
    let f = fixture();
    let spends: Vec<_> = f.coins.iter().map(|&c| spend(&f, c, 990)).collect();
    let block = mine(&f, f.params.coinbase_maturity, spends);
    for workers in [1, 2, 4] {
        assert_eq!(validate_at(&f, &block, workers, None), Ok(()));
        let cache = SigCache::default();
        assert_eq!(validate_at(&f, &block, workers, Some(&cache)), Ok(()));
        // Second run hits the cache populated by the first.
        assert_eq!(validate_at(&f, &block, workers, Some(&cache)), Ok(()));
        assert!(cache.hits() > 0);
    }
}

#[test]
fn bad_mid_block_signature_reported_identically() {
    let f = fixture();
    let mut spends: Vec<_> = f.coins.iter().map(|&c| spend(&f, c, 990)).collect();
    // Corrupt transaction #4's signature by editing an output after
    // signing: the sighash no longer matches, scripts still parse.
    spends[4].outputs[0].value = 989;
    let block = mine(&f, f.params.coinbase_maturity, spends);

    let expected = validate_at(&f, &block, 1, None);
    let Err(BlockError::BadTransaction { index, ref error }) = expected else {
        panic!("corrupted block unexpectedly validated: {expected:?}");
    };
    assert_eq!(index, 5, "coinbase is tx 0, corrupted spend is tx 5");
    assert!(matches!(error, TxError::ScriptFailed { input: 0, .. }));

    for workers in [2, 4] {
        assert_eq!(validate_at(&f, &block, workers, None), expected);
        let cache = SigCache::default();
        assert_eq!(validate_at(&f, &block, workers, Some(&cache)), expected);
        // Re-validation with the now-warm cache (valid inputs cached,
        // the bad one never inserted) still reports the same failure.
        assert_eq!(validate_at(&f, &block, workers, Some(&cache)), expected);
    }
}

#[test]
fn batched_verification_reports_identical_error_as_sequential() {
    let f = fixture();
    let mut spends: Vec<_> = f.coins.iter().map(|&c| spend(&f, c, 990)).collect();
    // One bad signature mid-block: tx 3 (block index 4), input 0. The
    // batch over its chunk must reject, fall back to per-signature
    // verification, and surface the exact same (tx, input) error the
    // plain sequential path reports.
    spends[3].outputs[0].value = 989;
    let block = mine(&f, f.params.coinbase_maturity, spends);

    let expected = validate_with_batch(&f, &block, 1, None, false);
    let Err(BlockError::BadTransaction {
        index: 4,
        ref error,
    }) = expected
    else {
        panic!("corrupted block unexpectedly validated: {expected:?}");
    };
    assert!(matches!(error, TxError::ScriptFailed { input: 0, .. }));

    for workers in [1, 2, 4] {
        for batch in [false, true] {
            assert_eq!(
                validate_with_batch(&f, &block, workers, None, batch),
                expected,
                "workers={workers} batch={batch}"
            );
            let cache = SigCache::default();
            assert_eq!(
                validate_with_batch(&f, &block, workers, Some(&cache), batch),
                expected,
                "workers={workers} batch={batch} cold cache"
            );
            // Warm cache (good spends cached, the bad one never inserted).
            assert_eq!(
                validate_with_batch(&f, &block, workers, Some(&cache), batch),
                expected,
                "workers={workers} batch={batch} warm cache"
            );
        }
    }

    // A clean block accepts identically with batching on and off.
    let good: Vec<_> = f.coins.iter().map(|&c| spend(&f, c, 990)).collect();
    let good_block = mine(&f, f.params.coinbase_maturity, good);
    for batch in [false, true] {
        assert_eq!(
            validate_with_batch(&f, &good_block, 0, None, batch),
            Ok(()),
            "batch={batch}"
        );
    }
}

#[test]
fn structural_failure_beats_later_script_failures() {
    let f = fixture();
    let mut spends: Vec<_> = f.coins.iter().map(|&c| spend(&f, c, 990)).collect();
    // Tx 3 (index 4 in the block) overspends: structural failure. Jobs
    // are only collected for txs before it, all of which are valid, so
    // every worker count must report the structural error.
    spends[3] = spend(&f, f.coins[3], 2000);
    let block = mine(&f, f.params.coinbase_maturity, spends);

    let expected = validate_at(&f, &block, 1, None);
    assert!(matches!(
        expected,
        Err(BlockError::BadTransaction {
            index: 4,
            error: TxError::ValueOutOfRange { .. }
        })
    ));
    for workers in [2, 4] {
        assert_eq!(validate_at(&f, &block, workers, None), expected);
    }
}
