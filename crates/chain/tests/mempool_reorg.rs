//! Regression tests for mempool behaviour across reorganizations.
//!
//! A reorg can invalidate pooled transactions two ways: the new branch
//! re-spends their inputs (a confirmed conflict), or it orphans the
//! confirmed parent a pooled child depends on. Before this sweep
//! existed, such entries sat in the pool forever — unminable, and
//! blocking re-broadcast of the transaction that actually won. These
//! tests pin [`Chain::take_last_reorg`] + [`Mempool::evict_invalid`]
//! and the re-admission path an orphaned claim takes after re-broadcast.

use bcwan_chain::{
    Block, BlockAction, Chain, ChainParams, Mempool, OutPoint, Transaction, TxOut, Wallet,
};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Mines a block containing `txs` (after the coinbase) on top of `parent`.
fn mine_on(
    chain: &Chain,
    parent: bcwan_chain::BlockHash,
    height: u64,
    txs: Vec<Transaction>,
) -> Block {
    let fees: u64 = 0; // test txs burn fees to keep coinbase simple
    let mut transactions = vec![Transaction::coinbase(
        height,
        &height.to_le_bytes(),
        vec![TxOut {
            value: chain.params().coinbase_reward + fees,
            script_pubkey: Script::new(),
        }],
    )];
    transactions.extend(txs);
    Block::mine(parent, height, chain.params().difficulty_bits, transactions)
}

/// A chain whose genesis funds `wallet` with two mature coins.
fn setup() -> (Chain, Wallet, Vec<(OutPoint, Script)>) {
    let mut rng = StdRng::seed_from_u64(11);
    let wallet = Wallet::generate(&mut rng);
    let mut params = ChainParams::fast_test();
    // These tests spend the genesis allocation right away.
    params.coinbase_maturity = 0;
    let genesis = Chain::make_genesis(
        &params,
        &[(wallet.address(), 1_000), (wallet.address(), 1_000)],
    );
    let cb = genesis.transactions[0].txid();
    let chain = Chain::new(params, genesis);
    let coins = (0..2)
        .map(|vout| (OutPoint { txid: cb, vout }, wallet.locking_script()))
        .collect();
    (chain, wallet, coins)
}

fn pay(wallet: &Wallet, coin: (OutPoint, Script), value: u64, to_self: bool) -> Transaction {
    let script = if to_self {
        wallet.locking_script()
    } else {
        Script::new()
    };
    wallet.build_payment(
        vec![coin],
        vec![TxOut {
            value,
            script_pubkey: script,
        }],
        0,
    )
}

/// The new branch re-spends a pooled transaction's input: the pool entry
/// is a confirmed conflict and must be evicted, not linger unminable.
#[test]
fn reorg_confirming_conflict_evicts_pooled_double_spend() {
    let (mut chain, wallet, coins) = setup();
    let mut pool = Mempool::with_cache(chain.sig_cache().clone());

    // Pool a spend of coin 0.
    let pooled = pay(&wallet, coins[0].clone(), 900, false);
    pool.insert(pooled.clone(), chain.utxo(), 1, chain.params())
        .unwrap();

    // Main chain grows one empty block...
    let g = chain.tip();
    let b1 = mine_on(&chain, g, 1, vec![]);
    assert_eq!(chain.add_block(b1).unwrap(), BlockAction::Extended(1));
    assert!(
        chain.take_last_reorg().is_none(),
        "extension is not a reorg"
    );

    // ...but a two-block side branch confirms a *conflicting* spend of
    // the same coin and wins.
    let conflict = pay(&wallet, coins[0].clone(), 800, false);
    let a1 = mine_on(&chain, g, 1, vec![conflict.clone()]);
    assert_eq!(chain.add_block(a1.clone()).unwrap(), BlockAction::SideChain);
    let a2 = mine_on(&chain, a1.hash(), 2, vec![]);
    assert!(matches!(
        chain.add_block(a2).unwrap(),
        BlockAction::Reorganized {
            disconnected: 1,
            connected: 2
        }
    ));

    let info = chain.take_last_reorg().expect("reorg recorded");
    assert!(info.disconnected_txs.is_empty(), "old branch was empty");
    assert_eq!(info.connected_txs.len(), 1);
    assert_eq!(info.connected_txs[0].txid(), conflict.txid());
    assert!(chain.take_last_reorg().is_none(), "handed out once");

    // Daemon discipline: evict what the branch confirmed/conflicted…
    pool.remove_confirmed(&info.connected_txs);
    // …then sweep anything the new UTXO view no longer supports.
    let dropped = pool.evict_invalid(chain.utxo(), chain.height() + 1, chain.params());
    assert!(pool.is_empty(), "conflicted entry must not linger");
    assert_eq!(dropped, 0, "remove_confirmed already took it");
    // And the winner is of course not re-admittable.
    assert!(pool
        .insert(pooled, chain.utxo(), chain.height() + 1, chain.params())
        .is_err());
}

/// A reorg orphans a confirmed parent; the pooled child (the claim
/// spending an escrow, in BcWAN terms) is invalidated and swept — then
/// becomes admissible again once the parent is re-broadcast.
#[test]
fn reorg_orphaning_parent_sweeps_child_and_allows_readmission() {
    let (mut chain, wallet, coins) = setup();
    let mut pool = Mempool::with_cache(chain.sig_cache().clone());

    // Block 1 confirms `parent` (pays the wallet back so the child can
    // spend it); the child sits in the pool — the claim-before-confirm
    // pattern of the paper's §6.
    let parent = pay(&wallet, coins[0].clone(), 900, true);
    let g = chain.tip();
    let b1 = mine_on(&chain, g, 1, vec![parent.clone()]);
    chain.add_block(b1).unwrap();
    let child = pay(
        &wallet,
        (
            OutPoint {
                txid: parent.txid(),
                vout: 0,
            },
            wallet.locking_script(),
        ),
        850,
        false,
    );
    pool.insert(child.clone(), chain.utxo(), 2, chain.params())
        .unwrap();

    // An empty two-block branch orphans block 1 (and `parent` with it).
    let a1 = mine_on(&chain, g, 1, vec![]);
    chain.add_block(a1.clone()).unwrap();
    let a2 = mine_on(&chain, a1.hash(), 2, vec![]);
    assert!(matches!(
        chain.add_block(a2).unwrap(),
        BlockAction::Reorganized { .. }
    ));
    let info = chain.take_last_reorg().unwrap();
    assert_eq!(info.disconnected_txs.len(), 1);
    assert_eq!(info.disconnected_txs[0].txid(), parent.txid());

    // The child's input no longer exists: the sweep must drop it.
    pool.remove_confirmed(&info.connected_txs);
    let dropped = pool.evict_invalid(chain.utxo(), chain.height() + 1, chain.params());
    assert_eq!(dropped, 1);
    assert!(pool.is_empty());

    // Recovery: the disconnected parent is resubmitted (what a daemon
    // does on reorg), after which the re-broadcast child re-admits on
    // top of it — nothing was permanently lost.
    pool.insert(
        parent.clone(),
        chain.utxo(),
        chain.height() + 1,
        chain.params(),
    )
    .unwrap();
    pool.insert(
        child.clone(),
        chain.utxo(),
        chain.height() + 1,
        chain.params(),
    )
    .expect("orphaned claim re-admits after re-broadcast");
    // And the pair can be mined together again.
    let tip = chain.tip();
    let b3 = mine_on(&chain, tip, 3, pool.block_template(1 << 20));
    assert!(matches!(
        chain.add_block(b3).unwrap(),
        BlockAction::Extended(3)
    ));
}

/// `evict_invalid` keeps dependent chains whose ancestors survive: only
/// entries actually invalidated go.
#[test]
fn evict_invalid_keeps_valid_unconfirmed_chains() {
    let (chain, wallet, coins) = setup();
    let mut pool = Mempool::with_cache(chain.sig_cache().clone());
    let parent = pay(&wallet, coins[0].clone(), 900, true);
    let child = pay(
        &wallet,
        (
            OutPoint {
                txid: parent.txid(),
                vout: 0,
            },
            wallet.locking_script(),
        ),
        850,
        false,
    );
    let other = pay(&wallet, coins[1].clone(), 990, false);
    for tx in [&parent, &child, &other] {
        pool.insert(tx.clone(), chain.utxo(), 1, chain.params())
            .unwrap();
    }
    let dropped = pool.evict_invalid(chain.utxo(), 1, chain.params());
    assert_eq!(dropped, 0, "everything still valid");
    assert_eq!(pool.len(), 3);
    assert!(pool.contains(&child.txid()), "unconfirmed chain survives");
}
