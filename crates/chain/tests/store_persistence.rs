//! Persistence round-trips for the chain store (ISSUE 7 acceptance).
//!
//! Each test builds a store-backed [`Chain`], kills it (drops it, the
//! sim's process-crash model), reopens the directory with
//! [`Chain::open_store`], and asserts the recovered tip and UTXO set
//! are exactly what the live chain held. The scenarios pin the three
//! recovery paths separately: a fresh snapshot (no work), a stale
//! snapshot rolled forward without script re-validation, and a snapshot
//! stranded on a reorged-away branch that must be walked back through
//! the on-disk undo records first.

use bcwan_chain::{
    Block, BlockAction, Chain, ChainParams, OutPoint, StoreConfig, Transaction, TxOut, UtxoEntry,
    Wallet,
};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;

/// Fast-test consensus with maturity 0 (the tests spend genesis coins
/// right away). Must match what `setup` baked into the store.
fn params() -> ChainParams {
    let mut p = ChainParams::fast_test();
    p.coinbase_maturity = 0;
    p
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bcwan-store-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Mines a block containing `txs` (after the coinbase) on top of `parent`.
fn mine_on(
    chain: &Chain,
    parent: bcwan_chain::BlockHash,
    height: u64,
    txs: Vec<Transaction>,
) -> Block {
    let mut transactions = vec![Transaction::coinbase(
        height,
        &height.to_le_bytes(),
        vec![TxOut {
            value: chain.params().coinbase_reward,
            script_pubkey: Script::new(),
        }],
    )];
    transactions.extend(txs);
    Block::mine(parent, height, chain.params().difficulty_bits, transactions)
}

/// A store-backed chain whose genesis funds `wallet` with two coins.
fn setup(dir: &PathBuf, cfg: StoreConfig) -> (Chain, Wallet, Vec<(OutPoint, Script)>) {
    let mut rng = StdRng::seed_from_u64(11);
    let wallet = Wallet::generate(&mut rng);
    let genesis = Chain::make_genesis(
        &params(),
        &[(wallet.address(), 1_000), (wallet.address(), 1_000)],
    );
    let cb = genesis.transactions[0].txid();
    let chain = Chain::create_with_store(params(), genesis, dir, cfg).expect("store creates");
    let coins = (0..2)
        .map(|vout| (OutPoint { txid: cb, vout }, wallet.locking_script()))
        .collect();
    (chain, wallet, coins)
}

/// Spends `coin` back to the wallet, returning the tx and the new coin.
fn churn(wallet: &Wallet, coin: (OutPoint, Script)) -> (Transaction, (OutPoint, Script)) {
    let value = 1_000;
    let tx = wallet.build_payment(
        vec![coin],
        vec![TxOut {
            value,
            script_pubkey: wallet.locking_script(),
        }],
        0,
    );
    let next = (
        OutPoint {
            txid: tx.txid(),
            vout: 0,
        },
        wallet.locking_script(),
    );
    (tx, next)
}

/// The full UTXO set as a sorted list for bit-exact comparison.
fn utxo_pairs(chain: &Chain) -> Vec<(OutPoint, UtxoEntry)> {
    let mut pairs: Vec<(OutPoint, UtxoEntry)> = chain
        .utxo()
        .iter()
        .map(|(op, e)| (*op, e.clone()))
        .collect();
    pairs.sort_unstable_by_key(|(op, _)| *op);
    pairs
}

/// Mines `n` blocks of wallet churn onto `chain`, threading the coin.
fn grow(
    chain: &mut Chain,
    wallet: &Wallet,
    mut coin: (OutPoint, Script),
    n: u64,
) -> (OutPoint, Script) {
    for _ in 0..n {
        let (tx, next) = churn(wallet, coin);
        coin = next;
        let height = chain.height() + 1;
        let block = mine_on(chain, chain.tip(), height, vec![tx]);
        assert!(matches!(
            chain.add_block(block).unwrap(),
            BlockAction::Extended(_)
        ));
    }
    coin
}

#[test]
fn reopen_restores_tip_and_utxo_exactly() {
    let dir = temp_dir("reopen");
    let (mut chain, wallet, coins) = setup(&dir, StoreConfig::default());
    grow(&mut chain, &wallet, coins[0].clone(), 12);
    chain.flush();
    let tip = chain.tip();
    let height = chain.height();
    let utxo = utxo_pairs(&chain);
    drop(chain); // the crash: no shutdown hook runs

    let opened = Chain::open_store(params(), &dir, StoreConfig::default()).expect("store reopens");
    assert!(!opened.reindexed, "snapshot was fresh, no reindex");
    assert_eq!(opened.rolled_forward, 0, "flush left nothing to replay");
    assert_eq!(opened.undone, 0);
    assert_eq!(opened.chain.tip(), tip);
    assert_eq!(opened.chain.height(), height);
    assert_eq!(utxo_pairs(&opened.chain), utxo, "UTXO set bit-identical");

    // The reopened chain is live: it extends.
    let mut chain = opened.chain;
    let block = mine_on(&chain, chain.tip(), height + 1, vec![]);
    assert!(matches!(
        chain.add_block(block).unwrap(),
        BlockAction::Extended(_)
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stale_snapshot_rolls_forward_without_revalidation() {
    let dir = temp_dir("rollfwd");
    // A flush interval the run never reaches: the only durable coins
    // snapshot is the one create_with_store wrote at genesis.
    let cfg = StoreConfig {
        fsync: false,
        coins_flush_interval: 1_000,
    };
    let (mut chain, wallet, coins) = setup(&dir, cfg.clone());
    grow(&mut chain, &wallet, coins[0].clone(), 6);
    let tip = chain.tip();
    let utxo = utxo_pairs(&chain);
    drop(chain);

    let opened = Chain::open_store(params(), &dir, cfg).expect("reopens");
    assert!(!opened.reindexed);
    assert_eq!(
        opened.rolled_forward, 6,
        "every block past the genesis snapshot re-applies"
    );
    assert_eq!(opened.chain.tip(), tip);
    assert_eq!(utxo_pairs(&opened.chain), utxo);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reorg_across_restart_consumes_undo_records() {
    let dir = temp_dir("reorg");
    let cfg = StoreConfig {
        fsync: false,
        coins_flush_interval: 1_000,
    };
    let (mut chain, wallet, coins) = setup(&dir, cfg.clone());
    let g = chain.tip();

    // Branch A: one block of churn, then pin the coins snapshot to it.
    let (tx_a, _) = churn(&wallet, coins[0].clone());
    let a1 = mine_on(&chain, g, 1, vec![tx_a]);
    let a1_hash = a1.hash();
    chain.add_block(a1).unwrap();
    chain.flush(); // durable snapshot now sits on A1

    // Branch B (empty blocks) overtakes: A1 is reorged away, but the
    // on-disk snapshot still points at it.
    let b1 = mine_on(&chain, g, 1, vec![]);
    assert_eq!(chain.add_block(b1.clone()).unwrap(), BlockAction::SideChain);
    let b2 = mine_on(&chain, b1.hash(), 2, vec![]);
    assert!(matches!(
        chain.add_block(b2).unwrap(),
        BlockAction::Reorganized { .. }
    ));
    assert_ne!(chain.tip(), a1_hash);
    let tip = chain.tip();
    let utxo = utxo_pairs(&chain);
    drop(chain); // crash before any post-reorg flush

    let opened = Chain::open_store(params(), &dir, cfg).expect("reopens");
    assert!(!opened.reindexed);
    assert_eq!(
        opened.undone, 1,
        "the stale A1 snapshot walks back through its undo record"
    );
    assert_eq!(
        opened.rolled_forward, 2,
        "then rolls forward along the winning branch"
    );
    assert_eq!(opened.chain.tip(), tip);
    assert_eq!(utxo_pairs(&opened.chain), utxo);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn missing_coins_log_forces_reindex_once() {
    let dir = temp_dir("reindex");
    let (mut chain, wallet, coins) = setup(&dir, StoreConfig::default());
    grow(&mut chain, &wallet, coins[0].clone(), 10);
    chain.flush();
    let tip = chain.tip();
    let utxo = utxo_pairs(&chain);
    drop(chain);

    // Lose the coins table entirely; blocks and manifest survive.
    for entry in std::fs::read_dir(&dir).unwrap().flatten() {
        let name = entry.file_name();
        if name.to_string_lossy().starts_with("coins-") {
            std::fs::remove_file(entry.path()).unwrap();
        }
    }

    let opened =
        Chain::open_store(params(), &dir, StoreConfig::default()).expect("reindex recovers");
    assert!(opened.reindexed, "coins table was gone");
    assert_eq!(opened.chain.tip(), tip);
    assert_eq!(utxo_pairs(&opened.chain), utxo);
    drop(opened);

    // The reindex flushed a new generation: the next open is warm.
    let opened = Chain::open_store(params(), &dir, StoreConfig::default()).expect("second reopen");
    assert!(!opened.reindexed, "reindex wrote a durable snapshot");
    assert_eq!(utxo_pairs(&opened.chain), utxo);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_rolls_back_to_last_commit() {
    let dir = temp_dir("torntail");
    let (mut chain, wallet, coins) = setup(&dir, StoreConfig::default());
    grow(&mut chain, &wallet, coins[0].clone(), 8);
    chain.flush();
    let tip = chain.tip();
    let utxo = utxo_pairs(&chain);
    drop(chain);

    // A torn write: garbage appended past the last commit on both the
    // block file and the manifest must be discarded, not trip recovery.
    for name in ["blocks.dat", "manifest.log"] {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join(name))
            .unwrap();
        f.write_all(&[0xde, 0xad, 0xbe, 0xef, 0x00, 0x11]).unwrap();
    }

    let opened =
        Chain::open_store(params(), &dir, StoreConfig::default()).expect("torn tail recovers");
    assert_eq!(opened.chain.tip(), tip);
    assert_eq!(utxo_pairs(&opened.chain), utxo);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trimmed_coins_read_back_through_the_store() {
    let dir = temp_dir("trim");
    let (mut chain, wallet, coins) = setup(&dir, StoreConfig::default());
    // Leave coin[1] untouched while churning coin[0] long enough for
    // several flushes, then evict the clean residents.
    grow(&mut chain, &wallet, coins[0].clone(), 10);
    chain.flush();
    let full = utxo_pairs(&chain);
    let trimmed = chain.trim_coins();
    assert!(trimmed > 0, "clean backed entries were evicted");
    assert!(
        chain.utxo().len() < full.len(),
        "resident set shrank after trim"
    );

    // Spending the evicted coin[1] faults it back in from disk.
    let (tx, _) = churn(&wallet, coins[1].clone());
    let height = chain.height() + 1;
    let block = mine_on(&chain, chain.tip(), height, vec![tx]);
    assert!(matches!(
        chain.add_block(block).unwrap(),
        BlockAction::Extended(_)
    ));
    let summary = chain.store_summary().expect("store attached");
    assert!(summary.cache_miss > 0, "the spend read through the store");
    let _ = std::fs::remove_dir_all(&dir);
}
