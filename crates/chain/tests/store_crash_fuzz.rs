//! Crash-safety fuzz for the chain store (ISSUE 7, satellite 3).
//!
//! The model: a gateway process dies at an arbitrary byte boundary —
//! mid-flush, mid-commit, anywhere — or a sector goes bad. We simulate
//! that by building a canonical 40-block store once, then repeatedly
//! restoring its files into a fresh directory and mutilating one of
//! them at a [`StdRng`]-chosen offset (truncation = torn write, byte
//! flip = corruption). Reopening must recover *some committed prefix*
//! of the canonical chain with a tip and UTXO set **bit-identical** to
//! a never-crashed replica replayed to that same height — never an
//! inconsistent hybrid — and the survivor must then catch back up to
//! the full chain by re-adding the remaining canonical blocks.

use bcwan_chain::{
    Block, Chain, ChainParams, OutPoint, StoreConfig, StoreError, Transaction, TxOut, UtxoEntry,
    Wallet,
};
use bcwan_script::Script;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::path::{Path, PathBuf};

const CHAIN_LEN: u64 = 40;

fn params() -> ChainParams {
    let mut p = ChainParams::fast_test();
    p.coinbase_maturity = 0;
    p
}

/// Frequent flushes so crash points land inside coins-log traffic too.
fn store_cfg() -> StoreConfig {
    StoreConfig {
        fsync: false,
        coins_flush_interval: 3,
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bcwan-crashfuzz-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn utxo_pairs(chain: &Chain) -> Vec<(OutPoint, UtxoEntry)> {
    let mut pairs: Vec<(OutPoint, UtxoEntry)> = chain
        .utxo()
        .iter()
        .map(|(op, e)| (*op, e.clone()))
        .collect();
    pairs.sort_unstable_by_key(|(op, _)| *op);
    pairs
}

/// The canonical script: genesis + CHAIN_LEN churn blocks, plus the
/// never-crashed replica's (tip, utxo) at every height.
struct Canonical {
    genesis: Block,
    blocks: Vec<Block>,                // heights 1..=CHAIN_LEN
    tips: Vec<bcwan_chain::BlockHash>, // indexed by height, 0..=CHAIN_LEN
    utxos: Vec<Vec<(OutPoint, UtxoEntry)>>,
}

fn build_canonical() -> Canonical {
    let mut rng = StdRng::seed_from_u64(4007);
    let wallet = Wallet::generate(&mut rng);
    let genesis = Chain::make_genesis(
        &params(),
        &[(wallet.address(), 1_000), (wallet.address(), 1_000)],
    );
    let cb = genesis.transactions[0].txid();
    let mut chain = Chain::new(params(), genesis.clone());
    let mut coin = (OutPoint { txid: cb, vout: 0 }, wallet.locking_script());

    let mut blocks = Vec::new();
    let mut tips = vec![chain.tip()];
    let mut utxos = vec![utxo_pairs(&chain)];
    for height in 1..=CHAIN_LEN {
        let tx = wallet.build_payment(
            vec![coin.clone()],
            vec![TxOut {
                value: 1_000,
                script_pubkey: wallet.locking_script(),
            }],
            0,
        );
        coin = (
            OutPoint {
                txid: tx.txid(),
                vout: 0,
            },
            wallet.locking_script(),
        );
        let transactions = vec![
            Transaction::coinbase(
                height,
                &height.to_le_bytes(),
                vec![TxOut {
                    value: chain.params().coinbase_reward,
                    script_pubkey: Script::new(),
                }],
            ),
            tx,
        ];
        let block = Block::mine(
            chain.tip(),
            height,
            chain.params().difficulty_bits,
            transactions,
        );
        chain.add_block(block.clone()).expect("canonical extends");
        blocks.push(block);
        tips.push(chain.tip());
        utxos.push(utxo_pairs(&chain));
    }
    Canonical {
        genesis,
        blocks,
        tips,
        utxos,
    }
}

/// Writes the canonical script through a store-backed chain and returns
/// the store directory's files as (name, bytes).
fn build_store_files(canonical: &Canonical, dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut chain = Chain::create_with_store(params(), canonical.genesis.clone(), dir, store_cfg())
        .expect("store creates");
    for block in &canonical.blocks {
        chain.add_block(block.clone()).expect("canonical extends");
    }
    chain.flush();
    drop(chain);
    let mut files = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap().flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        files.push((name, std::fs::read(entry.path()).unwrap()));
    }
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

fn restore(files: &[(String, Vec<u8>)], dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).unwrap();
    for (name, bytes) in files {
        std::fs::write(dir.join(name), bytes).unwrap();
    }
}

#[test]
fn crash_at_random_offsets_recovers_a_committed_prefix() {
    let canonical = build_canonical();
    let build_dir = temp_dir("build");
    let files = build_store_files(&canonical, &build_dir);
    let _ = std::fs::remove_dir_all(&build_dir);
    assert!(files.iter().any(|(n, _)| n == "blocks.dat"));

    let dir = temp_dir("iter");
    let mut rng = StdRng::seed_from_u64(0xc4a5_4f2e);
    let mut recovered = 0usize;
    let mut emptied = 0usize;
    for iter in 0..32 {
        restore(&files, &dir);
        // The crash: truncate (torn write) or flip a byte (bad sector)
        // at an rng-chosen offset of an rng-chosen file.
        let (name, bytes) = &files[rng.gen_range(0..files.len())];
        let path = dir.join(name);
        let truncate = rng.gen_range(0..2u8) == 0;
        if truncate {
            let at = rng.gen_range(0..bytes.len() as u64);
            let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
            f.set_len(at).unwrap();
        } else {
            let at = rng.gen_range(0..bytes.len());
            let mut mutated = bytes.clone();
            mutated[at] ^= 0x40;
            std::fs::write(&path, mutated).unwrap();
        }

        match Chain::open_store(params(), &dir, store_cfg()) {
            Ok(opened) => {
                let mut chain = opened.chain;
                let h = chain.height();
                assert!(h <= CHAIN_LEN, "iter {iter}: height within the script");
                assert_eq!(
                    chain.tip(),
                    canonical.tips[h as usize],
                    "iter {iter}: tip is the canonical block at height {h}"
                );
                assert_eq!(
                    utxo_pairs(&chain),
                    canonical.utxos[h as usize],
                    "iter {iter}: UTXO set bit-identical to the replica at height {h}"
                );
                // Liveness: the survivor re-syncs the rest of the chain.
                for block in &canonical.blocks[h as usize..] {
                    chain.add_block(block.clone()).unwrap_or_else(|e| {
                        panic!("iter {iter}: catch-up rejected a canonical block: {e}")
                    });
                }
                assert_eq!(chain.tip(), canonical.tips[CHAIN_LEN as usize]);
                assert_eq!(utxo_pairs(&chain), canonical.utxos[CHAIN_LEN as usize]);
                recovered += 1;
            }
            // Destroying the manifest (or the genesis record) leaves no
            // usable commit: the caller rebuilds from genesis. Legal,
            // but it must be reported as Empty — never a bad chain.
            Err(StoreError::Empty) => emptied += 1,
            Err(e) => panic!("iter {iter}: reopen failed unrecoverably: {e}"),
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        recovered >= 16,
        "most crashes must recover a prefix (got {recovered} recoveries, {emptied} empties)"
    );
}

#[test]
fn kill_mid_coins_flush_keeps_tip_and_utxo() {
    // The sharpest case from the issue: the process dies while the
    // coins log is being appended. The manifest and block files are
    // intact, so reopen must land on the *full* committed tip — the
    // torn coins tail only costs roll-forward work (or a reindex),
    // never state.
    let canonical = build_canonical();
    let build_dir = temp_dir("flushbuild");
    let files = build_store_files(&canonical, &build_dir);
    let _ = std::fs::remove_dir_all(&build_dir);
    let coins_name = files
        .iter()
        .map(|(n, _)| n.clone())
        .find(|n| n.starts_with("coins-"))
        .expect("a coins generation exists");

    let dir = temp_dir("flushiter");
    let mut rng = StdRng::seed_from_u64(0x0f10_54ed);
    for iter in 0..16 {
        restore(&files, &dir);
        let bytes = &files.iter().find(|(n, _)| n == &coins_name).unwrap().1;
        let at = rng.gen_range(0..bytes.len() as u64);
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(dir.join(&coins_name))
            .unwrap();
        f.set_len(at).unwrap();

        let opened = Chain::open_store(params(), &dir, store_cfg())
            .unwrap_or_else(|e| panic!("iter {iter}: torn coins log must not sink reopen: {e}"));
        assert_eq!(opened.chain.height(), CHAIN_LEN, "iter {iter}");
        assert_eq!(
            opened.chain.tip(),
            canonical.tips[CHAIN_LEN as usize],
            "iter {iter}: tip survives a torn coins flush"
        );
        assert_eq!(
            utxo_pairs(&opened.chain),
            canonical.utxos[CHAIN_LEN as usize],
            "iter {iter}: UTXO set rebuilt bit-identically"
        );
        assert!(
            opened.reindexed || opened.rolled_forward > 0,
            "iter {iter}: recovery did work to repair the torn tail"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
