//! Property tests: UTXO conservation, merkle soundness, mempool/undo
//! invariants under randomized workloads.

// QUARANTINED (see ROADMAP "Open items"): the proptest crate cannot be
// fetched in the offline build environment, so this suite only compiles
// with `--features proptest-tests` after restoring the proptest
// dev-dependency in Cargo.toml. The properties themselves are still the
// reference spec for this crate's invariants.
#![cfg(feature = "proptest-tests")]

use bcwan_chain::merkle::{merkle_proof, merkle_root};
use bcwan_chain::tx::TxId;
use bcwan_chain::{OutPoint, Transaction, TxIn, TxOut, UtxoSet, SEQUENCE_FINAL};
use bcwan_script::Script;
use proptest::prelude::*;

fn coinbase(height: u64, values: &[u64]) -> Transaction {
    Transaction::coinbase(
        height,
        b"prop",
        values
            .iter()
            .map(|&value| TxOut {
                value,
                script_pubkey: Script::new(),
            })
            .collect(),
    )
}

fn spend_all(prev: &[(OutPoint, u64)], outs: usize) -> Transaction {
    let total: u64 = prev.iter().map(|(_, v)| v).sum();
    let outs = outs.max(1);
    let share = total / outs as u64;
    let mut outputs: Vec<TxOut> = (0..outs)
        .map(|_| TxOut {
            value: share,
            script_pubkey: Script::new(),
        })
        .collect();
    outputs[0].value += total - share * outs as u64; // remainder
    Transaction {
        version: 1,
        inputs: prev
            .iter()
            .map(|(op, _)| TxIn {
                prevout: *op,
                script_sig: Script::new(),
                sequence: SEQUENCE_FINAL,
            })
            .collect(),
        outputs,
        lock_time: 0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Applying random full-value spends never changes total UTXO value,
    /// and undoing blocks restores the exact pre-block state.
    #[test]
    fn utxo_value_conserved_and_undo_exact(
        initial in proptest::collection::vec(1u64..10_000, 1..8),
        splits in proptest::collection::vec(1usize..5, 1..10),
    ) {
        let mut set = UtxoSet::new();
        let cb = coinbase(0, &initial);
        set.apply_block(&[cb.clone()], 0).unwrap();
        let minted: u64 = initial.iter().sum();
        prop_assert_eq!(set.total_value(), minted);

        let mut height = 1u64;
        let mut history: Vec<(Vec<Transaction>, bcwan_chain::utxo::UndoData)> = Vec::new();
        for outs in splits {
            // Spend every currently-unspent output into `outs` new ones.
            let prev: Vec<(OutPoint, u64)> = set
                .iter()
                .map(|(op, e)| (*op, e.output.value))
                .collect();
            let tx = spend_all(&prev, outs);
            let undo = set.apply_block(std::slice::from_ref(&tx), height).unwrap();
            history.push((vec![tx], undo));
            prop_assert_eq!(set.total_value(), minted, "conservation at height {}", height);
            height += 1;
        }
        // Unwind everything.
        for (txs, undo) in history.iter().rev() {
            set.undo_block(txs, undo);
            prop_assert_eq!(set.total_value(), minted);
        }
        // Exactly the genesis outputs remain.
        prop_assert_eq!(set.len(), initial.len());
        for vout in 0..initial.len() as u32 {
            let outpoint = OutPoint { txid: cb.txid(), vout };
            let present = set.contains(&outpoint);
            prop_assert!(present, "genesis output {} missing after undo", vout);
        }
    }

    /// Every merkle proof verifies against the root; any single-bit txid
    /// perturbation breaks it.
    #[test]
    fn merkle_proofs_sound(
        seeds in proptest::collection::vec(any::<[u8; 32]>(), 1..20),
        flip_bit in 0usize..256,
    ) {
        let ids: Vec<TxId> = seeds.into_iter().map(TxId).collect();
        let root = merkle_root(&ids);
        for i in 0..ids.len() {
            let proof = merkle_proof(&ids, i).unwrap();
            prop_assert!(proof.verify(&root));
            let mut corrupt = proof.clone();
            corrupt.txid.0[flip_bit / 8] ^= 1 << (flip_bit % 8);
            prop_assert!(!corrupt.verify(&root), "corrupted txid must not verify");
        }
    }

    /// The root is order-sensitive for distinct id lists.
    #[test]
    fn merkle_root_order_sensitive(
        seeds in proptest::collection::vec(any::<[u8; 32]>(), 2..12),
        i in any::<prop::sample::Index>(),
        j in any::<prop::sample::Index>(),
    ) {
        let ids: Vec<TxId> = seeds.into_iter().map(TxId).collect();
        let a = i.index(ids.len());
        let b = j.index(ids.len());
        prop_assume!(a != b && ids[a] != ids[b]);
        let mut swapped = ids.clone();
        swapped.swap(a, b);
        prop_assert_ne!(merkle_root(&ids), merkle_root(&swapped));
    }

    /// Transaction ids commit to every byte of the serialization.
    #[test]
    fn txid_sensitive_to_value_changes(
        values in proptest::collection::vec(1u64..1000, 1..6),
        which in any::<prop::sample::Index>(),
    ) {
        let tx = coinbase(3, &values);
        let idx = which.index(values.len());
        let mut modified = tx.clone();
        modified.outputs[idx].value += 1;
        prop_assert_ne!(tx.txid(), modified.txid());
    }
}
