//! Wallets and addresses.
//!
//! A BcWAN *actor* (gateway owner / recipient) holds one ECDSA wallet key;
//! its `HASH160` is both its payment address and — crucially for the
//! protocol — the blockchain address `@R` that sensors embed in uplinks
//! and that the IP directory keys on (paper §4.3).

use crate::tx::{Transaction, TxIn, TxOut};
use bcwan_crypto::ecdsa::{EcdsaPrivateKey, EcdsaPublicKey};
use bcwan_crypto::hash160;
use bcwan_script::templates::{p2pkh, p2pkh_sig};
use bcwan_script::Script;
use rand::RngCore;
use std::fmt;

/// A 20-byte account address (`HASH160` of the compressed public key).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address(pub [u8; 20]);

impl Address {
    /// Builds the address of a public key.
    pub fn from_pubkey(pk: &EcdsaPublicKey) -> Self {
        Address(hash160(&pk.to_bytes()))
    }

    /// The raw 20 bytes.
    pub fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Full lowercase hex.
    pub fn to_hex(&self) -> String {
        bcwan_crypto::hex::encode(&self.0)
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({self})")
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let hex = self.to_hex();
        write!(f, "{}…{}", &hex[..6], &hex[34..])
    }
}

/// A single-key wallet.
pub struct Wallet {
    key: EcdsaPrivateKey,
    pubkey_bytes: [u8; 33],
    address: Address,
}

impl fmt::Debug for Wallet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Wallet({})", self.address)
    }
}

impl Wallet {
    /// Generates a fresh wallet.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        Self::from_key(EcdsaPrivateKey::generate(rng))
    }

    /// Wraps an existing key.
    pub fn from_key(key: EcdsaPrivateKey) -> Self {
        let public = key.public_key();
        let pubkey_bytes = public.to_bytes();
        let address = Address::from_pubkey(&public);
        Wallet {
            key,
            pubkey_bytes,
            address,
        }
    }

    /// The wallet's address (and BcWAN blockchain identity `@R`).
    pub fn address(&self) -> Address {
        self.address
    }

    /// The compressed public key bytes.
    pub fn pubkey_bytes(&self) -> &[u8; 33] {
        &self.pubkey_bytes
    }

    /// The locking script paying this wallet.
    pub fn locking_script(&self) -> Script {
        p2pkh(&self.address.0)
    }

    /// Signs input `index` of `tx` (which spends an output locked by
    /// `prev_script_pubkey`) and returns the compact signature bytes.
    pub fn sign_input(
        &self,
        tx: &Transaction,
        index: usize,
        prev_script_pubkey: &Script,
    ) -> [u8; 64] {
        let digest = tx.sighash(index, prev_script_pubkey);
        self.key.sign_digest(&digest).to_bytes()
    }

    /// Signs input `index` and installs the standard P2PKH unlocking
    /// script into the transaction.
    pub fn sign_p2pkh_input(
        &self,
        tx: &mut Transaction,
        index: usize,
        prev_script_pubkey: &Script,
    ) {
        let sig = self.sign_input(tx, index, prev_script_pubkey);
        tx.inputs[index].script_sig = p2pkh_sig(&sig, &self.pubkey_bytes);
    }

    /// Convenience: builds and fully signs a P2PKH payment spending the
    /// given inputs (all assumed locked to this wallet).
    pub fn build_payment(
        &self,
        inputs: Vec<(crate::tx::OutPoint, Script)>,
        outputs: Vec<TxOut>,
        lock_time: u64,
    ) -> Transaction {
        let mut tx = Transaction {
            version: 1,
            inputs: inputs
                .iter()
                .map(|(prevout, _)| TxIn {
                    prevout: *prevout,
                    script_sig: Script::new(),
                    // Non-final so lock_time (and CLTV) stay meaningful.
                    sequence: 0,
                })
                .collect(),
            outputs,
            lock_time,
        };
        for (i, (_, prev_spk)) in inputs.iter().enumerate() {
            self.sign_p2pkh_input(&mut tx, i, prev_spk);
        }
        tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tx::{OutPoint, TxId};
    use bcwan_script::interpreter::{verify_spend, DigestChecker, ExecContext};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn address_derivation_is_deterministic() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = Wallet::generate(&mut rng);
        let again = Wallet::from_key(EcdsaPrivateKey::from_bytes(&w.key.to_bytes()).unwrap());
        assert_eq!(w.address(), again.address());
    }

    #[test]
    fn distinct_wallets_distinct_addresses() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Wallet::generate(&mut rng);
        let b = Wallet::generate(&mut rng);
        assert_ne!(a.address(), b.address());
    }

    #[test]
    fn signed_payment_passes_script_verification() {
        let mut rng = StdRng::seed_from_u64(3);
        let owner = Wallet::generate(&mut rng);
        let payee = Wallet::generate(&mut rng);
        let prev_spk = owner.locking_script();

        let tx = owner.build_payment(
            vec![(
                OutPoint {
                    txid: TxId([7; 32]),
                    vout: 0,
                },
                prev_spk.clone(),
            )],
            vec![TxOut {
                value: 10,
                script_pubkey: payee.locking_script(),
            }],
            0,
        );

        let digest = tx.sighash(0, &prev_spk);
        let checker = DigestChecker { digest };
        let ctx = ExecContext {
            checker: &checker,
            lock_time: tx.lock_time,
            input_final: false,
        };
        assert_eq!(
            verify_spend(&tx.inputs[0].script_sig, &prev_spk, &ctx),
            Ok(true)
        );
    }

    #[test]
    fn tampered_payment_fails_verification() {
        let mut rng = StdRng::seed_from_u64(4);
        let owner = Wallet::generate(&mut rng);
        let prev_spk = owner.locking_script();
        let mut tx = owner.build_payment(
            vec![(
                OutPoint {
                    txid: TxId([7; 32]),
                    vout: 0,
                },
                prev_spk.clone(),
            )],
            vec![TxOut {
                value: 10,
                script_pubkey: Script::new(),
            }],
            0,
        );
        // Tamper after signing.
        tx.outputs[0].value = 10_000;
        let digest = tx.sighash(0, &prev_spk);
        let checker = DigestChecker { digest };
        let ctx = ExecContext {
            checker: &checker,
            lock_time: 0,
            input_final: false,
        };
        assert_eq!(
            verify_spend(&tx.inputs[0].script_sig, &prev_spk, &ctx),
            Ok(false)
        );
    }

    #[test]
    fn display_abbreviates() {
        let addr = Address([0xab; 20]);
        let text = addr.to_string();
        assert!(text.starts_with("ababab"));
        assert!(text.contains('…'));
        assert_eq!(addr.to_hex().len(), 40);
    }
}
